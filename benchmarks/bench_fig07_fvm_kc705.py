"""Fig. 7 — FVMs of the two identical KC705 samples (die-to-die variation).

The two boards share a part number but must show a ~4.1x fault-rate ratio and
essentially unrelated fault maps, which is the paper's die-to-die process
variation finding.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.harness import UndervoltingExperiment


@pytest.mark.benchmark(group="fig07")
def test_fig07_die_to_die_fvm(benchmark, chips, fields):
    def body():
        fvms = {}
        for name in ("KC705-A", "KC705-B"):
            experiment = UndervoltingExperiment(chips[name], fault_field=fields[name], runs_per_step=3)
            cal = fields[name].calibration
            fvms[name] = experiment.extract_fvm(voltages=[cal.vcrash_bram_v])
        comparison = fvms["KC705-A"].compare(fvms["KC705-B"])

        report = ExperimentReport(
            "fig07_fvm_kc705", "FVMs of two identical KC705 samples at Vcrash (Fig. 7)"
        )
        section = report.new_section(
            "per-die summary", ["board", "faults_at_Vcrash", "never_faulty_%", "high_class_size"]
        )
        for name, fvm in fvms.items():
            section.add_row(
                name,
                int(fvm.counts_at_lowest_voltage().sum()),
                100.0 * fvm.never_faulty_fraction(),
                len(fvm.high_vulnerable_brams()),
            )
        diff = report.new_section(
            "die-to-die comparison", ["rate_ratio", "count_correlation", "high_class_jaccard"]
        )
        diff.add_row(comparison["rate_ratio"], comparison["count_correlation"], comparison["high_class_jaccard"])
        diff.add_note("paper: KC705-A shows a 4.1x higher fault rate and a different fault map than KC705-B")
        save_report(report)
        return comparison

    comparison = run_once(benchmark, body)
    assert comparison["rate_ratio"] == pytest.approx(4.1, rel=0.2)
    assert abs(comparison["count_correlation"]) < 0.3
    assert comparison["high_class_jaccard"] < 0.3
