"""Fig. 9 — minimum per-layer fixed-point precision of the NN weights.

The trained network's hidden-layer weights stay inside (-1, 1) and need no
digit (integer) bits, while the last layer's larger weights need a non-zero
digit component; all 16 bits are used, with the remainder as fraction bits.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport


@pytest.mark.benchmark(group="fig09")
def test_fig09_per_layer_precision(benchmark, trained_mnist_network):
    network = trained_mnist_network

    def body():
        report = ExperimentReport(
            "fig09_precision", "Minimum per-layer fixed-point precision of the NN weights (Fig. 9)"
        )
        section = report.new_section(
            "per-layer format", ["layer", "sign_bits", "digit_bits", "fraction_bits", "zero_bit_%"]
        )
        summary = network.precision_summary()
        for row, layer in zip(summary, network.layers):
            section.add_row(
                f"Layer{row['layer']}",
                row["sign_bits"],
                row["digit_bits"],
                row["fraction_bits"],
                100.0 * layer.zero_bit_fraction(),
            )
        section.add_note(
            "paper: all layers except the last fit in (-1, 1) and use no digit bits; "
            "the last layer needs a 4-bit digit component; 76.3 % of all weight bits are zero"
        )
        overall = report.new_section("whole network", ["total_weights", "zero_bit_%"])
        overall.add_row(network.n_weights, 100.0 * network.zero_bit_fraction())
        save_report(report)
        return summary

    summary = run_once(benchmark, body)
    digit_bits = [row["digit_bits"] for row in summary]
    # Fig. 9 shape: the earliest layers fit in (-1, 1) with no digit bits, the
    # digit width grows towards the output, and the last layer needs the most
    # (4 bits in the paper; the exact width depends on the trained weights).
    assert digit_bits[0] == 0
    assert digit_bits[1] == 0
    assert all(b >= a for a, b in zip(digit_bits, digit_bits[1:]))
    assert digit_bits[-1] >= 2
    assert digit_bits[-1] == max(digit_bits)
    assert all(row["sign_bits"] + row["digit_bits"] + row["fraction_bits"] == 16 for row in summary)
    assert trained_mnist_network.zero_bit_fraction() > 0.55
