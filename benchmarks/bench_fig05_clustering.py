"""Fig. 5 — k-means clustering of per-BRAM fault rates at Vcrash (VC707).

Reports the low / mid / high vulnerability classes, the share of BRAMs in
each, and the per-BRAM statistics the paper quotes (38.9 % never fault,
rates between 0 % and 2.84 %, most BRAMs in the low class).
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.characterization import variability_study
from repro.core.clustering import cluster_bram_vulnerability


@pytest.mark.benchmark(group="fig05")
def test_fig05_vulnerability_clustering(benchmark, fields):
    field = fields["VC707"]

    def body():
        cal = field.calibration
        report = ExperimentReport(
            "fig05_clustering",
            "K-means clustering of per-BRAM fault rates at Vcrash, VC707 (Fig. 5)",
        )
        counts = field.per_bram_counts(cal.vcrash_bram_v)
        clustering = cluster_bram_vulnerability(counts)
        section = report.new_section(
            "vulnerability classes", ["class", "brams", "share_%", "mean_fault_rate_%"]
        )
        for name in ("low", "mid", "high"):
            cluster = clustering.cluster(name)
            section.add_row(
                name,
                cluster.size,
                100.0 * clustering.fraction(name),
                100.0 * cluster.mean_fault_rate,
            )
        variability = variability_study(field, cal.vcrash_bram_v)
        stats = report.new_section(
            "per-BRAM statistics", ["max_%", "min_%", "mean_%", "never_faulty_%"]
        )
        stats.add_row(
            variability.max_percent,
            variability.min_percent,
            variability.mean_percent,
            100.0 * variability.never_faulty_fraction,
        )
        stats.add_note("paper: max 2.84 %, min 0 %, mean 0.04 %, 38.9 % never fault; 88.6 % low-vulnerable")
        save_report(report)
        return clustering, variability

    clustering, variability = run_once(benchmark, body)
    assert clustering.fraction("low") > 0.7
    assert clustering.fraction("high") < 0.1
    assert variability.never_faulty_fraction == pytest.approx(0.389, abs=0.06)
    assert variability.min_percent == 0.0
    assert variability.max_percent > 1.0
