"""Fig. 3 — fault rate and BRAM power versus VCCBRAM for all four platforms.

Runs the Listing 1 sweep (Vmin down to Vcrash, pattern 0xFFFF) on every board
and reports the median fault rate per Mbit and the BRAM power at every step.
The crash-voltage rates must land near the published 652 / 153 / 254 / 60
faults per Mbit, and the rate curves must be exponential.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport, fit_exponential_rate
from repro.harness import UndervoltingExperiment

PUBLISHED_CRASH_RATES = {"VC707": 652.0, "ZC702": 153.0, "KC705-A": 254.0, "KC705-B": 60.0}


@pytest.mark.benchmark(group="fig03")
def test_fig03_fault_rate_and_power(benchmark, chips, fields):
    def body():
        report = ExperimentReport(
            "fig03_fault_power",
            "Fault rate and BRAM power vs VCCBRAM, pattern 0xFFFF (Fig. 3)",
        )
        crash_rates = {}
        slopes = {}
        for name, chip in chips.items():
            experiment = UndervoltingExperiment(chip, fault_field=fields[name], runs_per_step=11)
            sweep = experiment.critical_region_sweep(n_runs=11)
            section = report.new_section(
                f"{name}", ["VCCBRAM_V", "faults_per_Mbit", "bram_power_W"]
            )
            for voltage, rate, power in sweep.as_series():
                section.add_row(voltage, rate, power)
            crash_rates[name] = sweep.fault_rates_per_mbit()[-1]
            # Fit the exponential over the clearly-faulty range; the first step
            # below Vmin only has a handful of faults and its median is noisy.
            positive = [
                (v, r)
                for v, r in zip(sweep.voltages(), sweep.fault_rates_per_mbit())
                if r > 5.0
            ]
            slope, r_squared = fit_exponential_rate(*zip(*positive))
            slopes[name] = (slope, r_squared)
            section.add_note(
                f"rate at Vcrash: {crash_rates[name]:.0f} /Mbit "
                f"(paper: {PUBLISHED_CRASH_RATES[name]:.0f}); exponential fit "
                f"k={slope:.0f}/V, R^2={r_squared:.3f}"
            )
        save_report(report)
        return crash_rates, slopes

    crash_rates, slopes = run_once(benchmark, body)
    for name, published in PUBLISHED_CRASH_RATES.items():
        assert crash_rates[name] == pytest.approx(published, rel=0.12)
    for name, (slope, r_squared) in slopes.items():
        assert slope > 0 and r_squared > 0.95
    # Reliability ordering across platforms is preserved (who wins).
    assert crash_rates["VC707"] > crash_rates["KC705-A"] > crash_rates["ZC702"] > crash_rates["KC705-B"]
