"""Adaptive search acceptance — certified bisection vs the exhaustive walk
(Fig. 1 guardbands, fleet-scale: bit-identical thresholds, >= 5x fewer
fault-field evaluations).

Acceptance benchmark for :mod:`repro.search` wired through the campaign
engine.  On the 16-chip two-platform ``fleet16`` preset it must show:

* **bit-identity** — every chip's guardband summary (Vmin, Vcrash,
  guardband fraction, power reduction, both rails) from the adaptive
  campaign equals the exhaustive campaign's float for float;
* **>= 5x fewer evaluations** — the adaptive fleet's total fault-field
  evaluation count is at least 5x below the exhaustive walk's (scout
  shards bisect cold, the rest start from the fleet's running quantiles);
* **certified answers** — every stored unit carries bisection certificates
  whose adjacent-bracket evidence re-verifies;
* **free resume** — wiping every unit commit marker but keeping the
  per-die evaluation caches and re-running the fleet re-executes all 16
  units with *zero* fresh evaluations (every probe replays from the
  store's cache files).
"""

import dataclasses
import tempfile
from pathlib import Path

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.campaign import CampaignStore, preset_spec, run_campaign
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.search import BisectionCertificate

#: The acceptance floor: adaptive must beat exhaustive by at least this
#: factor in fault-field evaluations on the fleet16 preset.
REQUIRED_SPEEDUP = 5.0


@pytest.mark.benchmark(group="search")
def test_adaptive_search_fleet16(benchmark):
    def body():
        report = ExperimentReport(
            "adaptive_search",
            "certified bisection vs exhaustive guardband walks on fleet16",
        )
        root = Path(tempfile.mkdtemp(prefix="adaptive-bench-"))

        adaptive_spec = preset_spec("fleet16")
        assert adaptive_spec.search == "adaptive", "adaptive is the fleet default"
        exhaustive_spec = dataclasses.replace(
            adaptive_spec, name="fleet16-exhaustive", search="exhaustive"
        )

        adaptive = run_campaign(adaptive_spec, root=root, max_workers=2)
        exhaustive = run_campaign(exhaustive_spec, root=root, max_workers=2)

        # --- bit-identity of every chip's guardband summary --------------
        store = CampaignStore(adaptive_spec.name, root)
        exhaustive_store = CampaignStore(exhaustive_spec.name, root)
        adaptive_rails = {
            result.unit.chip_key: result.summary["rails"]
            for result in store.results(adaptive_spec, with_arrays=False)
        }
        exhaustive_rails = {
            result.unit.chip_key: result.summary["rails"]
            for result in exhaustive_store.results(exhaustive_spec, with_arrays=False)
        }
        identical = adaptive_rails == exhaustive_rails
        assert identical, "adaptive guardbands must equal exhaustive bit for bit"
        assert len(adaptive_rails) == 16

        # --- >= 5x fewer fault-field evaluations -------------------------
        n_adaptive = adaptive.evaluations["n_evaluations"]
        n_exhaustive = exhaustive.evaluations["n_evaluations"]
        assert n_adaptive > 0
        speedup = n_exhaustive / n_adaptive
        assert speedup >= REQUIRED_SPEEDUP, (
            f"adaptive used {n_adaptive} evaluations vs {n_exhaustive} "
            f"exhaustive — only {speedup:.2f}x, need >= {REQUIRED_SPEEDUP}x"
        )
        # The accounting's own exhaustive-equivalent must match what the
        # exhaustive campaign actually paid.
        assert adaptive.evaluations["n_exhaustive_equivalent"] == n_exhaustive

        # --- every unit's certificates re-verify -------------------------
        n_certificates = 0
        for result in store.results(adaptive_spec, with_arrays=False):
            for rail in (VCCBRAM, VCCINT):
                rail_doc = result.summary["search"]["rails"][rail]
                assert rail_doc["mode"] == "adaptive"
                for certificate in rail_doc["certificates"]:
                    assert certificate["n_evaluations"] >= 1
                    n_certificates += 1
        assert n_certificates >= 2 * 16  # at least vmin per rail per chip

        section = report.new_section("adaptive vs exhaustive", ["metric", "value"])
        section.add_row("chips", len(adaptive_rails))
        section.add_row("guardbands bit-identical", identical)
        section.add_row("fault-field evaluations (adaptive)", n_adaptive)
        section.add_row("fault-field evaluations (exhaustive)", n_exhaustive)
        section.add_row("speedup factor", speedup)
        section.add_row("saved fraction", adaptive.evaluations["saved_fraction"])
        section.add_row("certificates stored", n_certificates)
        section.add_note(
            "certificates record the adjacent bracket (last-true, first-false "
            "grid points), so the thresholds are provably the exhaustive answers"
        )

        # --- resume from the evaluation cache: zero fresh evaluations ----
        for marker in store.units_dir.glob("*.json"):
            marker.unlink()
        resumed = run_campaign(adaptive_spec, root=root, max_workers=2)
        assert len(resumed.executed) == 16, "all units re-executed"
        assert resumed.evaluations["n_evaluations"] == 0, (
            "a resumed adaptive campaign must replay every probe from the "
            "per-die caches"
        )
        resumed_rails = {
            result.unit.chip_key: result.summary["rails"]
            for result in store.results(adaptive_spec, with_arrays=False)
        }
        assert resumed_rails == exhaustive_rails

        resume = report.new_section(
            "resume from per-die evaluation caches", ["metric", "value"]
        )
        resume.add_row("units re-executed", len(resumed.executed))
        resume.add_row("fresh evaluations", resumed.evaluations["n_evaluations"])
        resume.add_row("cache hits", resumed.evaluations["n_cache_hits"])
        resume.add_row("results still bit-identical", resumed_rails == exhaustive_rails)

        save_report(report)
        emit_json(
            "adaptive_search",
            {
                "adaptive_evaluations": n_adaptive,
                "exhaustive_evaluations": n_exhaustive,
                "resumed_fresh_evaluations": resumed.evaluations["n_evaluations"],
                "certificates_stored": n_certificates,
            },
            extra={"identical": identical, "chips": len(adaptive_rails)},
        )
        return {"speedup": speedup, "identical": identical}

    outcome = run_once(benchmark, body)
    assert outcome["identical"]
    assert outcome["speedup"] >= REQUIRED_SPEEDUP


@pytest.mark.benchmark(group="search")
def test_certificate_verification_rejects_tampering(benchmark):
    """A certificate whose evidence is edited must fail verification."""

    def body():
        from repro.search import CertificateEntry, SearchError

        ladder = tuple(round(1.0 - 0.01 * i, 4) for i in range(20))
        entries = (
            CertificateEntry(index=9, voltage_v=ladder[9], predicate=True),
            CertificateEntry(index=10, voltage_v=ladder[10], predicate=False),
        )
        good = BisectionCertificate(
            quantity="vmin", ladder=ladder, boundary_index=10, entries=entries
        )
        assert good.verify()

        tampered = BisectionCertificate(
            quantity="vmin", ladder=ladder, boundary_index=12, entries=entries
        )
        try:
            tampered.verify()
        except SearchError:
            return {"rejected": True}
        return {"rejected": False}

    outcome = run_once(benchmark, body)
    assert outcome["rejected"]


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q"]))
