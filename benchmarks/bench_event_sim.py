"""Figs. 1 & 3 at population scale — the discrete-event simulation core is
bit-identical to the stepped fleet simulator and >= 100x faster per
simulated device-second, carrying the runtime governor comparison from the
16-chip fleet to one million synthetic dies.

Acceptance benchmark for :mod:`repro.runtime.event_core` and
:mod:`repro.runtime.fleetscale`.  Two claims, two fleets:

* **identity** (always runs) — on the 16-chip acceptance fleet (8 ZC702 +
  8 KC705-A, ICBP-placed accelerators, diurnal trace) every one of the
  four governor policies produces a telemetry digest through the event
  core that is bit-identical to the stepped reference loop, and sharding
  the event core over worker processes leaves every digest unchanged.
  The same holds for the synthetic-fleet engine against its own per-die
  per-step reference.
* **throughput** (marked ``slow``; CI always runs it) — on a sparse
  diurnal trace (piecewise-constant 30-step epochs, one simulated day),
  the event engine simulates >= 100x more device-seconds per wall-second
  than the stepped reference at 100k dies for every policy, with the
  curve extended to 1M dies and a simulated month.
"""

import time

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.fpga.platform import FpgaChip, fleet_serials
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_mnist,
    train_network,
)
from repro.runtime import (
    FleetSimulator,
    GovernorBundle,
    POLICY_NAMES,
    diurnal_trace,
    sparse_diurnal_trace,
)
from repro.runtime.fleetscale import (
    SyntheticFleet,
    SyntheticFleetSpec,
    simulate_fleet,
)

#: Acceptance floor: simulated device-seconds per wall-second, event core
#: over stepped reference, at the 100k-die point.
REQUIRED_SPEEDUP = 100.0

#: Fleet shape of the identity run (the fleet16 campaign preset).
FLEET = (("ZC702", 8), ("KC705-A", 8))

#: Identity-run horizon (steps of the diurnal trace).
N_STEPS = 400

#: Stepped-reference subset for throughput baselines: per-device rates are
#: size-independent, so the reference is timed on a fleet it can finish.
REFERENCE_DIES = 400


def _rate(n_dies, trace, elapsed_s):
    """Simulated device-seconds per wall-second."""
    return n_dies * trace.duration_s / max(elapsed_s, 1e-9)


@pytest.mark.benchmark(group="event-sim")
def test_event_core_fleet16_identity(benchmark):
    def body():
        report = ExperimentReport(
            "event_sim_identity",
            "discrete-event core vs stepped simulator, 16-chip fleet",
        )
        chips = [
            FpgaChip.build(platform, serial=serial)
            for platform, n_chips in FLEET
            for serial in fleet_serials(platform, n_chips)
        ]
        bundle = GovernorBundle.from_chips(chips)
        dataset = synthetic_mnist(n_train=500, n_test=200)
        trained = train_network(
            dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
        )
        network = QuantizedNetwork.from_network(trained.network)
        trace = diurnal_trace(n_steps=N_STEPS, seed=7)
        simulator = FleetSimulator(bundle, network, trace)

        section = report.new_section(
            "telemetry digests, event core vs stepped reference",
            ["policy", "identical", "sharded x4 identical",
             "event (s)", "stepped (s)"],
        )
        for policy in POLICY_NAMES:
            t0 = time.perf_counter()
            event_log = simulator.run_event(policy)
            t1 = time.perf_counter()
            stepped_log = simulator.run_stepped(policy)
            t2 = time.perf_counter()
            sharded_log = simulator.run_event(
                policy, scheduler="process", jobs=4
            )
            identical = event_log.digest() == stepped_log.digest()
            sharded = sharded_log.digest() == event_log.digest()
            assert identical, f"{policy}: event core diverged from stepped"
            assert sharded, f"{policy}: sharded merge changed the digest"
            section.add_row(
                policy, identical, sharded,
                round(t1 - t0, 3), round(t2 - t1, 3),
            )
        section.add_note(
            f"{len(chips)}-chip fleet, {N_STEPS}-step diurnal trace; digests "
            "are SHA-256 over the canonical telemetry document."
        )
        save_report(report)
        emit_json(
            "event_sim",
            {
                "n_policies": len(POLICY_NAMES),
                "n_dies": len(chips),
                "n_steps": N_STEPS,
            },
            extra={"all_digests_identical": True},
        )
        return report

    run_once(benchmark, body)


@pytest.mark.benchmark(group="event-sim")
def test_fleetscale_identity(benchmark):
    def body():
        report = ExperimentReport(
            "event_sim_scale_identity",
            "synthetic-fleet event engine vs per-die-per-step reference",
        )
        fleet = SyntheticFleet.draw(SyntheticFleetSpec(n_dies=300, seed=11))
        trace = sparse_diurnal_trace(n_steps=240, seed=5)
        section = report.new_section(
            "population digests, event engine vs stepped reference",
            ["policy", "identical", "1 vs 4 workers identical", "crash steps"],
        )
        for policy in POLICY_NAMES:
            event = simulate_fleet(fleet, trace, policy, core="event")
            stepped = simulate_fleet(fleet, trace, policy, core="stepped")
            sharded = simulate_fleet(
                fleet, trace, policy, core="event",
                scheduler="process", jobs=4,
            )
            identical = event.digest() == stepped.digest()
            deterministic = sharded.digest() == event.digest()
            assert identical, f"{policy}: scale engine diverged from reference"
            assert deterministic, f"{policy}: worker count changed the digest"
            section.add_row(
                policy, identical, deterministic,
                event.totals()["crash_steps"],
            )
        section.add_note(
            "300 synthetic dies incl. drifted and crash-first "
            "subpopulations; sparse diurnal trace, 30-step epochs."
        )
        save_report(report)
        return report

    run_once(benchmark, body)


@pytest.mark.slow
@pytest.mark.benchmark(group="event-sim")
def test_event_sim_throughput_curve(benchmark):
    def body():
        report = ExperimentReport(
            "event_sim_throughput",
            "event-engine throughput, 100k to 1M synthetic dies",
        )
        trace = sparse_diurnal_trace(n_steps=720)
        reference = SyntheticFleet.draw(
            SyntheticFleetSpec(n_dies=REFERENCE_DIES, seed=11)
        )
        baseline_rates = {}
        for policy in ("static-undervolt", "reactive", "predictive"):
            t0 = time.perf_counter()
            simulate_fleet(reference, trace, policy, core="stepped")
            baseline_rates[policy] = _rate(
                REFERENCE_DIES, trace, time.perf_counter() - t0
            )

        section = report.new_section(
            "simulated device-seconds per wall-second (sparse diurnal day)",
            ["dies", "policy", "event rate", "stepped rate", "speedup",
             "wall (s)"],
        )
        curve = [
            (100_000, ("static-undervolt", "reactive", "predictive")),
            (1_000_000, ("static-undervolt", "predictive")),
        ]
        for n_dies, policies in curve:
            fleet = SyntheticFleet.draw(
                SyntheticFleetSpec(n_dies=n_dies, seed=11)
            )
            for policy in policies:
                t0 = time.perf_counter()
                simulate_fleet(fleet, trace, policy, core="event")
                elapsed = time.perf_counter() - t0
                event_rate = _rate(n_dies, trace, elapsed)
                speedup = event_rate / baseline_rates[policy]
                if n_dies == 100_000:
                    assert speedup >= REQUIRED_SPEEDUP, (
                        f"{policy} at {n_dies} dies: {speedup:.0f}x < "
                        f"{REQUIRED_SPEEDUP:.0f}x"
                    )
                section.add_row(
                    n_dies, policy, f"{event_rate:.2e}",
                    f"{baseline_rates[policy]:.2e}",
                    f"{speedup:.0f}x", round(elapsed, 2),
                )
        section.add_note(
            "Stepped rates timed on a 400-die subset (per-device rates are "
            "size-independent); speedup asserted >= "
            f"{REQUIRED_SPEEDUP:.0f}x at the 100k-die points."
        )

        month = report.new_section(
            "simulated month at 100k dies (21600 steps)",
            ["policy", "event rate", "wall (s)"],
        )
        long_trace = sparse_diurnal_trace(n_steps=21_600, period_steps=720)
        fleet = SyntheticFleet.draw(SyntheticFleetSpec(n_dies=100_000, seed=11))
        for policy in ("static-undervolt", "predictive"):
            t0 = time.perf_counter()
            simulate_fleet(fleet, long_trace, policy, core="event")
            elapsed = time.perf_counter() - t0
            month.add_row(
                policy, f"{_rate(100_000, long_trace, elapsed):.2e}",
                round(elapsed, 2),
            )
        save_report(report)
        return report

    run_once(benchmark, body)
