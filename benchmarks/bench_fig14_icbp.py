"""Fig. 14 — efficiency of ICBP for MNIST, Forest and Reuters on VC707.

For each benchmark the accelerator runs at Vcrash (roughly 38-40 % BRAM power
below Vmin) under (a) the default placement and (b) ICBP, which constrains
the most sensitive layer's BRAMs to low-vulnerable sites.  ICBP must keep the
accuracy loss near zero while the default placement pays a visibly larger
loss for the same power; Reuters, the least bit-sparse benchmark, suffers the
most without mitigation.
"""

import pytest

from conftest import run_once, save_report
from repro.accelerator import IcbpFlow, PlacementPolicy
from repro.analysis import ExperimentReport
from repro.fpga import FpgaChip
from repro.nn import QuantizedNetwork, TrainingConfig, train_network

TOPOLOGIES = {
    "MNIST": None,  # the session-scoped trained network is reused
    "Forest": (54, 64, 48, 32, 16, 7),
    "Reuters": (1000, 128, 64, 48, 32, 8),
}
COMPILE_SEEDS = tuple(range(5))


@pytest.mark.benchmark(group="fig14")
def test_fig14_icbp_efficiency(
    benchmark, fields, mnist_dataset, forest_dataset, reuters_dataset, trained_mnist_network
):
    datasets = {"MNIST": mnist_dataset, "Forest": forest_dataset, "Reuters": reuters_dataset}

    def body():
        field = fields["VC707"]
        chip = FpgaChip.build("VC707")
        report = ExperimentReport(
            "fig14_icbp", "Efficiency of ICBP for MNIST, Forest and Reuters on VC707 (Fig. 14)"
        )
        outcomes = {}
        for name, dataset in datasets.items():
            if name == "MNIST":
                quantized = trained_mnist_network
            else:
                result = train_network(
                    dataset, topology=TOPOLOGIES[name], config=TrainingConfig(seed=3)
                )
                quantized = QuantizedNetwork.from_network(result.network)
            flow = IcbpFlow(
                chip=chip,
                network=quantized,
                dataset=dataset,
                fault_field=field,
                max_eval_samples=1000,
            )
            comparison = flow.compare_policies(compile_seeds=COMPILE_SEEDS)
            worst_default = flow.evaluate(
                PlacementPolicy.DEFAULT, compile_seeds=COMPILE_SEEDS, aggregate="max"
            )
            default = comparison[PlacementPolicy.DEFAULT]
            icbp = comparison[PlacementPolicy.LAST_LAYER]
            outcomes[name] = (default, icbp, worst_default)

            section = report.new_section(
                f"{name} at Vcrash ({default.voltage_v:.2f} V, "
                f"{100 * default.power_savings_vs_vmin:.1f} % BRAM power below Vmin)",
                ["placement", "baseline_error_%", "error_%", "accuracy_loss_%", "protected_layers"],
            )
            section.add_row(
                "default (mean over 5 compilations)",
                100 * default.baseline_error,
                100 * default.classification_error,
                100 * default.accuracy_loss,
                "-",
            )
            section.add_row(
                "default (worst compilation)",
                100 * worst_default.baseline_error,
                100 * worst_default.classification_error,
                100 * worst_default.accuracy_loss,
                "-",
            )
            section.add_row(
                "ICBP (last layer)",
                100 * icbp.baseline_error,
                100 * icbp.classification_error,
                100 * icbp.accuracy_loss,
                str(list(icbp.protected_layers)),
            )
            section.add_note(
                "paper (MNIST): ~38.1 % power savings at Vcrash with 0.6 % accuracy loss under "
                "ICBP versus 3.59 % loss under the default placement"
            )
        save_report(report)
        return outcomes

    outcomes = run_once(benchmark, body)
    for name, (default, icbp, worst_default) in outcomes.items():
        # ICBP never loses to the default placement and keeps the loss small.
        assert icbp.accuracy_loss <= default.accuracy_loss + 1e-9
        assert icbp.accuracy_loss <= 0.015
        # The unlucky compilation is at least as bad as the average one.
        assert worst_default.accuracy_loss >= default.accuracy_loss - 1e-9
        # Both placements enjoy the same power savings (~40 % below Vmin).
        assert default.power_savings_vs_vmin == pytest.approx(0.40, abs=0.08)
        assert icbp.power_savings_vs_vmin == pytest.approx(default.power_savings_vs_vmin)
