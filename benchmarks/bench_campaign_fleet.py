"""Fleet campaign — 16 chips over two platforms through the campaign engine
(Table I / Figs. 1 and 7, generalized from four boards to a fleet).

Acceptance benchmark for :mod:`repro.campaign`: a declarative 16-chip
two-platform spec (8 ZC702 + 8 KC705-A dies, each fleet anchored on the
studied board) must

* run to completion through ``run_campaign`` and persist every unit;
* resume after interruption — a second run executes nothing and skips all
  16 units;
* produce per-chip guardband numbers *bit-identical* to driving the
  single-chip :class:`repro.harness.UndervoltingExperiment` on the same
  serial;
* aggregate into fleet statistics: the cross-chip guardband distribution
  must sit at the paper's per-platform anchors, and the FVM campaign over
  the same fleet must show essentially unrelated fault maps between
  same-part-number dies (the Fig. 7 die-to-die finding, across 56 pairs).
"""

import shutil
import tempfile
from pathlib import Path

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.campaign import CampaignStore, build_report, preset_spec, run_campaign
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness import UndervoltingExperiment


@pytest.mark.benchmark(group="campaign")
def test_campaign_fleet16(benchmark):
    def body():
        report = ExperimentReport(
            "campaign_fleet", "16-chip two-platform campaign through repro.campaign"
        )
        root = Path(tempfile.mkdtemp(prefix="campaign-bench-"))
        try:
            spec = preset_spec("fleet16")
            assert len(spec.chips()) == 16 and len(spec.groups) == 2

            first = run_campaign(spec, root=root, max_workers=2)
            resumed = run_campaign(spec, root=root, max_workers=2)
            store = CampaignStore(spec.name, root)
            status = store.status(spec)

            section = report.new_section("execution", ["metric", "value"])
            section.add_row("units executed (first run)", len(first.executed))
            section.add_row("units executed (resume)", len(resumed.executed))
            section.add_row("units skipped (resume)", len(resumed.skipped))
            section.add_row("store complete", status.is_complete)

            # Bit-identity: the campaign's stored guardband for the stock
            # ZC702 serial equals the single-chip experiment, float for float.
            chip = FpgaChip.build("ZC702")
            experiment = UndervoltingExperiment(chip, runs_per_step=3)
            identical = True
            stock_unit = next(
                u
                for u in spec.expand()
                if u.platform == "ZC702" and u.serial == chip.spec.serial_number
            )
            stored = store.load(stock_unit).summary["rails"]
            for rail in (VCCBRAM, VCCINT):
                measurement, _ = experiment.discover_guardband(
                    rail=rail,
                    pattern=stock_unit.pattern,
                    probe_runs=stock_unit.runs_per_step,
                )
                identical &= stored[rail]["vmin_v"] == measurement.vmin_v
                identical &= stored[rail]["vcrash_v"] == measurement.vcrash_v
                identical &= (
                    stored[rail]["power_reduction_factor_at_vmin"]
                    == measurement.power_reduction_factor_at_vmin
                )
            section.add_row("guardband bit-identical to single-chip path", identical)

            fleet = build_report(store, spec)
            population = report.new_section(
                "fleet guardband population",
                ["scope", "metric", "mean", "min", "max", "p95"],
            )
            for scope, dists in [("fleet", fleet.fleet)] + sorted(
                fleet.by_platform.items()
            ):
                for metric, dist in dists.items():
                    population.add_row(
                        scope,
                        metric,
                        dist.summary.mean,
                        dist.summary.minimum,
                        dist.summary.maximum,
                        dist.percentiles["p95"],
                    )

            # Same fleet through the FVM loop: die-to-die similarity.
            fvm_spec = preset_spec("fleet16-fvm")
            run_campaign(fvm_spec, root=root, max_workers=2)
            fvm_fleet = build_report(CampaignStore(fvm_spec.name, root), fvm_spec)
            extremes = fvm_fleet.to_dict()["fvm_similarity"]["extremes"]
            similarity = report.new_section(
                "die-to-die FVM similarity (Fig. 7, generalized)", ["metric", "value"]
            )
            for metric, value in sorted(extremes.items()):
                similarity.add_row(metric, value)
            similarity.add_note(
                "same part number, unrelated fault maps: correlation and overlap "
                "stay low across every pair of the fleet"
            )

            save_report(report)
            emit_json(
                "campaign_fleet",
                {
                    "units_executed_first": len(first.executed),
                    "units_executed_resume": len(resumed.executed),
                    "evaluations_first": first.evaluations["n_evaluations"],
                },
                extra={"identical": identical, "complete": status.is_complete},
            )
            return {
                "first": first,
                "resumed": resumed,
                "status": status,
                "identical": identical,
                "fleet": fleet,
                "extremes": extremes,
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)

    out = run_once(benchmark, body)
    assert len(out["first"].executed) == 16
    assert len(out["resumed"].executed) == 0 and len(out["resumed"].skipped) == 16
    assert out["status"].is_complete
    assert out["identical"]
    # Guardband anchors: ~39-40 % on VCCBRAM across the whole fleet (Fig. 1).
    guardband = out["fleet"].fleet["vccbram_guardband_fraction"]
    assert guardband.summary.mean == pytest.approx(0.395, abs=0.02)
    # Unrelated maps between same-part-number dies (Fig. 7): low correlation
    # and low overlap of the high-vulnerable sets, across all 56 pairs.
    assert out["extremes"]["n_pairs"] == 56
    assert out["extremes"]["max_abs_correlation"] < 0.5
    assert out["extremes"]["max_high_class_jaccard"] < 0.5
