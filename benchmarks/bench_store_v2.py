"""Table I at fleet scale — the v2 segmented columnar campaign store keeps
``campaign report`` sub-second at 100k synthetic dies, where the v1
per-unit-file layout already takes longer at 20k.

Acceptance benchmark for :mod:`repro.campaign.store_v2`, four claims:

* **scaling** — the streaming report over a 100k-die synthetic v2 store
  completes in under one second, with zero per-die objects (the
  ``UnitResult`` constructor is poisoned during the measurement); a
  1k/5k/20k ladder shows the v1 layout's report time growing linearly in
  die count until it crosses the v2-at-100k time before 20k dies;
* **bit-identity** — the paper's 16-chip fleet campaign (``fleet16``, the
  Table I fleet generalization) reports byte-identical JSON through a v1
  and a v2 store, modulo the layout-describing ``store`` block;
* **migration** — ``campaign migrate`` carries the fleet16 v1 store to v2
  with digest-verified payload equality, and a second migrate is a no-op;
* **durability** — the migrated store still resumes: a re-run executes
  nothing and skips every unit.
"""

import dataclasses
import json
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.campaign import (
    CampaignStore,
    CampaignStoreV2,
    build_report,
    migrate_store,
    open_store,
    preset_spec,
    run_campaign,
    store_digest,
)
from repro.campaign import store_v2 as store_v2_module
from repro.campaign.synthetic import synthetic_fleet_spec, synthetic_result_batches

LADDER = (1_000, 5_000, 20_000)
SCALE = 100_000


def _timed_report(store, spec):
    start = time.perf_counter()
    document = build_report(store, spec)
    return document, time.perf_counter() - start


def _normalized(document):
    """A report document with the name-derived and layout fields removed."""
    document = dict(document)
    document.pop("store")
    document["name"] = document["spec_hash"] = "-"
    return json.dumps(document, sort_keys=True)


@pytest.mark.benchmark(group="campaign")
def test_store_v2_streaming_scale(benchmark):
    def body():
        report = ExperimentReport(
            "store_v2",
            "v2 segmented columnar campaign store: scale, identity, migration",
        )
        root = Path(tempfile.mkdtemp(prefix="store-v2-bench-"))
        try:
            # -- scaling ladder: v1 vs v2 report latency ------------------
            ladder = report.new_section(
                "campaign report latency",
                ["dies", "v1 report (s)", "v2 report (s)"],
            )
            v1_seconds = {}
            for n_dies in LADDER:
                spec_v1 = synthetic_fleet_spec(n_dies, f"ladder{n_dies}-v1")
                store_v1 = CampaignStore.open(spec_v1, root)
                for batch in synthetic_result_batches(spec_v1):
                    for result in batch:
                        store_v1.save(result)
                _, v1_seconds[n_dies] = _timed_report(store_v1, spec_v1)

                spec_v2 = synthetic_fleet_spec(n_dies, f"ladder{n_dies}-v2")
                store_v2 = CampaignStoreV2.open(spec_v2, root)
                for batch in synthetic_result_batches(spec_v2):
                    store_v2.save_many(batch)
                _, v2_s = _timed_report(open_store(spec_v2.name, root), spec_v2)
                ladder.add_row(
                    n_dies, round(v1_seconds[n_dies], 3), round(v2_s, 3)
                )

            # -- 100k dies, v2 only, zero per-die materialization ---------
            spec_100k = synthetic_fleet_spec(SCALE, "scale100k")
            store_100k = CampaignStoreV2.open(spec_100k, root)
            for batch in synthetic_result_batches(spec_100k):
                store_100k.save_many(batch)

            def poisoned(*args, **kwargs):  # pragma: no cover
                raise AssertionError(
                    "streaming report materialized a per-die UnitResult"
                )

            saved_ctor = store_v2_module.UnitResult
            store_v2_module.UnitResult = poisoned
            try:
                fleet_report, seconds_100k = _timed_report(
                    open_store(spec_100k.name, root), spec_100k
                )
            finally:
                store_v2_module.UnitResult = saved_ctor
            assert fleet_report.n_completed == SCALE
            assert seconds_100k < 1.0, (
                f"100k-die v2 report took {seconds_100k:.3f}s (budget: 1s)"
            )
            assert v1_seconds[LADDER[-1]] > seconds_100k, (
                "v1 at 20k dies should already be slower than v2 at 100k"
            )
            scale = report.new_section("100k-die v2 store", ["metric", "value"])
            scale.add_row("dies", SCALE)
            scale.add_row("segments", fleet_report.store["n_segments"])
            scale.add_row("report wall time (s)", round(seconds_100k, 3))
            scale.add_row("per-die objects materialized", 0)

            # -- fleet16: v1-vs-v2 bit-identity + digest-verified migrate -
            fleet_v1 = preset_spec("fleet16")
            fleet_v2 = dataclasses.replace(fleet_v1, name="fleet16-v2")
            run_campaign(fleet_v1, root=root, max_workers=2, store_version=1)
            run_campaign(fleet_v2, root=root, max_workers=2, store_version=2)
            doc_v1 = build_report(open_store(fleet_v1.name, root), fleet_v1).to_dict()
            doc_v2 = build_report(open_store(fleet_v2.name, root), fleet_v2).to_dict()
            identical = _normalized(doc_v1) == _normalized(doc_v2)
            assert identical, "fleet16 v1 and v2 reports differ"

            digest_v1 = store_digest(open_store(fleet_v1.name, root), fleet_v1)
            migration = migrate_store(fleet_v1.name, root)
            migrated = open_store(fleet_v1.name, root)
            assert migration.digest == digest_v1
            assert store_digest(migrated, fleet_v1) == digest_v1
            assert migrate_store(fleet_v1.name, root).already_v2
            resumed = run_campaign(fleet_v1, root=root, max_workers=2)
            assert not resumed.executed and len(resumed.skipped) == 16

            identity = report.new_section("fleet16 identity", ["metric", "value"])
            identity.add_row("v1-vs-v2 report JSON bit-identical", identical)
            identity.add_row("migration digest", migration.digest)
            identity.add_row("migrated units", migration.n_units)
            identity.add_row("re-migrate is a no-op", True)
            identity.add_row("post-migration resume skips all units", True)
            emit_json(
                "store_v2",
                {
                    "migrated_units": migration.n_units,
                    "resume_skipped": len(resumed.skipped),
                    "resume_executed": len(resumed.executed),
                    "segments_100k": fleet_report.store["n_segments"],
                },
                extra={"identical": identical, "scale_dies": SCALE},
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return report

    save_report(run_once(benchmark, body))
