"""Batch engine — the Table II grid (50 voltages x 100 runs), batched vs. loop.

Acceptance benchmark for the vectorized batch evaluation engine
(:mod:`repro.core.batch`): evaluating a 50-voltage x 100-run operating grid
through one batched call must produce *bit-identical* fault counts to the
historical per-BRAM Python loop, and do so at least 10x faster.

The loop baseline below is a faithful reimplementation of the seed's
``FaultField.counts_over_runs`` hot path: one Python iteration per BRAM per
voltage step, each performing the (cells x runs) boolean comparison.  Both
paths are timed on fully-warmed caches (profiles built, flat table
assembled) so the comparison isolates evaluation cost, which is what repeat
sweeps pay.
"""

import time

import numpy as np
import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.batch import OperatingGrid

N_VOLTAGES = 50
N_RUNS = 100
BOARD = "VC707"


def loop_baseline_counts(field, voltages, n_runs, pattern=0xFFFF):
    """The seed's per-BRAM/per-voltage loop, kept as the reference baseline."""
    pattern_bits = field._pattern_bits(pattern)
    totals = np.zeros((len(voltages), n_runs), dtype=np.int64)
    ripples = np.array([field.ripple_v(run) for run in range(n_runs)])
    for step, vccbram_v in enumerate(voltages):
        base_v = field.itd.effective_voltage(vccbram_v, 50.0)
        run_voltages = base_v + ripples
        for index in range(field.chip.spec.n_brams):
            profile = field.profile(index)
            if profile.is_empty():
                continue
            stored = pattern_bits[profile.cols].astype(bool)
            observable = np.where(profile.one_to_zero, stored, ~stored)
            if not observable.any():
                continue
            thresholds = profile.failure_voltages_v[observable]
            totals[step] += (thresholds[:, None] > run_voltages[None, :]).sum(axis=0)
    return totals


@pytest.mark.benchmark(group="batch_engine")
def test_batch_engine_speed_and_equivalence(benchmark, chips, fields):
    field = fields[BOARD]
    cal = field.calibration
    span = cal.vmin_bram_v - cal.vcrash_bram_v
    voltages = [
        round(cal.vmin_bram_v - span * i / (N_VOLTAGES - 1), 6) for i in range(N_VOLTAGES)
    ]
    grid = OperatingGrid(tuple(voltages), run_indices=tuple(range(N_RUNS)))

    def body():
        # Warm both paths' caches so the timing compares evaluation only.
        field.batch.chip_counts(grid)
        loop_start = time.perf_counter()
        loop_counts = loop_baseline_counts(field, voltages, N_RUNS)
        loop_seconds = time.perf_counter() - loop_start

        batch_start = time.perf_counter()
        batch_counts = field.batch.chip_counts(grid)[:, 0, :]
        batch_seconds = time.perf_counter() - batch_start

        report = ExperimentReport(
            "batch_engine",
            f"Batched vs loop evaluation of a {N_VOLTAGES}x{N_RUNS} (V x run) grid on {BOARD}",
        )
        section = report.new_section(
            "timing", ["path", "grid_points", "seconds", "points_per_second"]
        )
        n_points = grid.n_points
        section.add_row("per-BRAM loop", n_points, round(loop_seconds, 4), int(n_points / loop_seconds))
        section.add_row("batched", n_points, round(batch_seconds, 6), int(n_points / batch_seconds))
        section.add_note(
            f"speedup: {loop_seconds / batch_seconds:.1f}x; results bit-identical: "
            f"{bool(np.array_equal(loop_counts, batch_counts))}"
        )
        save_report(report)
        emit_json(
            "batch_engine",
            {"grid_points": n_points, "batched_kernel_calls": 1},
            extra={
                "identical": bool(np.array_equal(loop_counts, batch_counts)),
                "n_voltages": N_VOLTAGES,
                "n_runs": N_RUNS,
            },
        )
        return loop_counts, batch_counts, loop_seconds, batch_seconds

    loop_counts, batch_counts, loop_seconds, batch_seconds = run_once(benchmark, body)
    assert np.array_equal(loop_counts, batch_counts)
    assert loop_seconds / batch_seconds >= 10.0
