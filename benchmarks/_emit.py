"""Machine-readable benchmark emission (the ``BENCH_*.json`` artifacts).

The human-facing benchmark output is an
:class:`repro.analysis.ExperimentReport` text table; this module adds the
machine-facing twin: one ``benchmarks/results/BENCH_<name>.json`` document
per benchmark, holding the *deterministic* metrics a CI regression guard
can compare run-over-run without flake.

The contract ``tools/check_bench_regression.py`` enforces:

* ``metrics`` holds only **count-based costs** (engine→backend crossings,
  kernel calls, cache hits, evaluations...) where *lower is better* and the
  value is a pure function of the code, never of machine load.  Wall-clock
  ratios belong in the text report, not here — timing flake must not gate
  CI.
* a committed baseline under ``benchmarks/baselines/`` pins each metric;
  the guard fails when a current value exceeds its baseline by more than
  the allowed fraction (default 30%), or when an expected metric vanishes.

Keep emission one call at the end of a benchmark body::

    from _emit import emit_json
    emit_json("fleet_batch", {"sequential_backend_calls": 224, ...})
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Schema version of the emitted documents (bumped on layout changes so the
#: regression guard rejects stale artifacts loudly).
EMIT_VERSION = 1


def emit_json(
    name: str,
    metrics: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> pathlib.Path:
    """Write one benchmark's machine-readable metrics document.

    ``metrics`` values must be plain numbers (the regression-guarded
    surface); ``extra`` carries free-form context (identity flags, sizes)
    that is recorded but never compared.
    """
    clean: Dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"metric {key!r} must be a plain number, got {value!r}; "
                "non-numeric context belongs in extra="
            )
        clean[str(key)] = value
    document = {
        "version": EMIT_VERSION,
        "benchmark": str(name),
        "metrics": clean,
        "extra": dict(extra or {}),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


__all__ = ["EMIT_VERSION", "RESULTS_DIR", "emit_json"]
