"""Figs. 1 & 7 served online — the characterization service answers 1000
concurrent governor clients against a fleet16 store with sub-50 ms p99
guardband lookups, coalesces engine-backed FVM queries (backend
evaluations << requests), and accounts it all in live ``/stats``
telemetry (docs/service.md).

Acceptance benchmark for :mod:`repro.service`.  Three claims:

* **fleet-scale lookup latency** — with 1000 concurrent keep-alive clients
  round-robining ``/v1/guardband`` and ``/v1/safe-vmin`` over all 16 dies
  of a freshly run ``fleet16`` campaign, the p99 request latency stays
  under 50 ms;
* **duplicate-load coalescing** — a cold burst of identical ``/v1/fvm``
  queries rides one in-flight sweep: the shared engine counters show one
  voltage ladder's worth of backend evaluations, not one per request;
* **telemetry** — ``/stats`` accounts every request with per-endpoint
  latency percentiles and mirrors the engine pool the way the CLI's
  ``backend`` blocks do.
"""

import asyncio
import tempfile
import time

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.campaign import preset_spec, run_campaign
from repro.service import BackgroundServer, FleetService, ServiceApp, ServiceClient

#: Concurrent keep-alive clients in the latency phase.
N_CLIENTS = 1000

#: Requests each client issues (alternating guardband / safe-vmin).
REQUESTS_PER_CLIENT = 4

#: The acceptance ceiling on p99 lookup latency, seconds.
P99_BUDGET_S = 0.050

#: Identical cold queries in the coalescing phase.
DUPLICATE_BURST = 200

#: Window the clients' first requests are staggered over, seconds.  Governor
#: daemons poll on their own control periods, not in lockstep; spreading the
#: arrivals models that while every connection stays open for the whole
#: phase.  1000 clients x 4 requests over 2 s is a sustained ~2000 QPS.
RAMP_S = 2.0


def _percentile(ordered, fraction):
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


async def _client_session(client, offset_s, targets):
    """One connected client: wait its phase offset, then issue every target."""
    await asyncio.sleep(offset_s)
    latencies = []
    for target in targets:
        start = time.perf_counter()
        status, _ = await client.get(target)
        latencies.append(time.perf_counter() - start)
        assert status == 200, f"{target} -> {status}"
    return latencies


async def _latency_phase(host, port, dies):
    """N_CLIENTS concurrent keep-alive sessions over the fleet.

    Every connection is opened up front and stays open for the whole phase;
    request start times are staggered across :data:`RAMP_S` so the load is
    a sustained rate rather than one synchronized thundering herd.
    """
    clients = [ServiceClient(host, port) for _ in range(N_CLIENTS)]
    await asyncio.gather(*(client.connect() for client in clients))
    try:
        sessions = []
        for index, client in enumerate(clients):
            targets = []
            for request_index in range(REQUESTS_PER_CLIENT):
                die = dies[(index + request_index) % len(dies)]
                base = f"platform={die['platform']}&serial={die['serial']}"
                if request_index % 2 == 0:
                    targets.append(f"/v1/guardband?{base}")
                else:
                    targets.append(f"/v1/safe-vmin?{base}&temperature_c=42.5")
            offset_s = RAMP_S * index / N_CLIENTS
            sessions.append(_client_session(client, offset_s, targets))
        per_client = await asyncio.gather(*sessions)
    finally:
        await asyncio.gather(*(client.close() for client in clients))
    return sorted(latency for session in per_client for latency in session)


async def _duplicate_phase(host, port, target, n_requests):
    """One burst of identical engine-backed queries from separate connections."""
    clients = [ServiceClient(host, port) for _ in range(n_requests)]
    await asyncio.gather(*(client.connect() for client in clients))
    try:
        start = time.perf_counter()
        responses = await asyncio.gather(*(client.get(target) for client in clients))
        elapsed = time.perf_counter() - start
    finally:
        await asyncio.gather(*(client.close() for client in clients))
    assert all(status == 200 for status, _ in responses)
    return elapsed


async def _fetch_stats(host, port):
    async with ServiceClient(host, port) as client:
        _, document = await client.get("/stats")
        return document


@pytest.mark.slow
@pytest.mark.benchmark(group="service")
def test_service_acceptance(benchmark):
    def body():
        report = ExperimentReport(
            "service",
            "characterization-as-a-service: 1000 concurrent clients on a "
            "fleet16 store, coalesced engine queries, /stats telemetry",
        )
        with tempfile.TemporaryDirectory() as root:
            spec = preset_spec("fleet16")
            run_campaign(spec, root=root, max_workers=4, scheduler="thread")
            service = FleetService.from_campaign(spec.name, root, engine_workers=4)
            app = ServiceApp(service)
            with BackgroundServer(app) as server:
                dies = service.dies()["dies"]

                # --- phase 1: fleet-scale lookup latency ------------------
                latencies = asyncio.run(
                    _latency_phase(server.host, server.port, dies)
                )
                p50 = _percentile(latencies, 0.50)
                p95 = _percentile(latencies, 0.95)
                p99 = _percentile(latencies, 0.99)
                section = report.new_section(
                    f"{N_CLIENTS} concurrent clients, "
                    f"{len(latencies)} lookups over {len(dies)} dies",
                    ["metric", "value"],
                )
                section.add_row("p50 latency (ms)", round(1000 * p50, 3))
                section.add_row("p95 latency (ms)", round(1000 * p95, 3))
                section.add_row("p99 latency (ms)", round(1000 * p99, 3))
                section.add_row("p99 budget (ms)", 1000 * P99_BUDGET_S)
                section.add_note(
                    "keep-alive clients alternating /v1/guardband and "
                    "/v1/safe-vmin round-robin across the fleet"
                )

                # --- phase 2: duplicate-load coalescing -------------------
                die = dies[0]
                target = (
                    f"/v1/fvm?platform={die['platform']}&serial={die['serial']}"
                )
                burst_s = asyncio.run(
                    _duplicate_phase(server.host, server.port, target, DUPLICATE_BURST)
                )
                stats = asyncio.run(_fetch_stats(server.host, server.port))
                counters = stats["backend"]["counters"]
                fvm_requests = stats["service"]["endpoints"]["/v1/fvm"]["n_requests"]
                coalescing = report.new_section(
                    "duplicate-load coalescing (cold /v1/fvm burst)",
                    ["metric", "value"],
                )
                coalescing.add_row("identical requests", DUPLICATE_BURST)
                coalescing.add_row("burst wall time (s)", round(burst_s, 3))
                coalescing.add_row(
                    "backend evaluations", counters["n_backend_evaluations"]
                )
                coalescing.add_row(
                    "evaluations / request",
                    round(counters["n_backend_evaluations"] / fvm_requests, 4),
                )
                coalescing.add_note(
                    "every duplicate rides the one in-flight sweep; the "
                    "engine pool evaluated a single voltage ladder"
                )

                # --- phase 3: /stats telemetry ----------------------------
                telemetry = report.new_section(
                    "/stats per-endpoint telemetry", ["endpoint", "requests", "p99 ms"]
                )
                for route, endpoint in sorted(
                    stats["service"]["endpoints"].items()
                ):
                    telemetry.add_row(route, endpoint["n_requests"], endpoint["p99_ms"])

            service.close()
        save_report(report)
        emit_json(
            "service",
            {
                "lookups": len(latencies),
                "fvm_requests": fvm_requests,
                "backend_evaluations": counters["n_backend_evaluations"],
            },
            extra={"n_dies": len(dies)},
        )
        return {
            "p99_s": p99,
            "n_lookups": len(latencies),
            "backend_evaluations": counters["n_backend_evaluations"],
            "fvm_requests": fvm_requests,
            "n_dies": len(dies),
        }

    outcome = run_once(benchmark, body)
    assert outcome["n_dies"] == 16
    assert outcome["n_lookups"] == N_CLIENTS * REQUESTS_PER_CLIENT
    # The acceptance floor: fleet lookups stay interactive under full load.
    assert outcome["p99_s"] < P99_BUDGET_S
    # Coalescing: identical engine-backed queries cost one sweep, so the
    # backend worked orders of magnitude less than the request count.
    assert outcome["backend_evaluations"] < outcome["fvm_requests"]
