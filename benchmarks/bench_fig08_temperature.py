"""Fig. 8 — fault rate versus voltage at 50/60/70/80 degC (ITD effect).

The chamber sweep must show the Inverse Thermal Dependence: heating the board
reduces the undervolting fault rate, by more than 3x on VC707 between 50 and
80 degC, and more strongly on the performance-optimized VC707 than on the
power-optimized KC705-A.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.temperature import STUDY_TEMPERATURES_C
from repro.harness import UndervoltingExperiment

STUDY_BOARDS = ("VC707", "KC705-A", "KC705-B")


@pytest.mark.benchmark(group="fig08")
def test_fig08_temperature_effect(benchmark, chips, fields):
    def body():
        report = ExperimentReport(
            "fig08_temperature",
            "Fault rate vs VCCBRAM at 50/60/70/80 degC, pattern 0xFFFF (Fig. 8)",
        )
        crash_rates = {}
        for name in STUDY_BOARDS:
            experiment = UndervoltingExperiment(chips[name], fault_field=fields[name], runs_per_step=3)
            sweeps = experiment.temperature_sweep(STUDY_TEMPERATURES_C, n_runs=3)
            section = report.new_section(
                f"{name}", ["VCCBRAM_V"] + [f"{int(t)}C_faults_per_Mbit" for t in STUDY_TEMPERATURES_C]
            )
            voltages = sweeps[STUDY_TEMPERATURES_C[0]].voltages()
            for index, voltage in enumerate(voltages):
                section.add_row(
                    voltage,
                    *[sweeps[t].fault_rates_per_mbit()[index] for t in STUDY_TEMPERATURES_C],
                )
            crash_rates[name] = {
                t: sweeps[t].fault_rates_per_mbit()[-1] for t in STUDY_TEMPERATURES_C
            }
            reduction = crash_rates[name][50.0] / max(crash_rates[name][80.0], 1e-9)
            section.add_note(f"rate reduction at Vcrash from 50C to 80C: {reduction:.2f}x")
        save_report(report)
        return crash_rates

    crash_rates = run_once(benchmark, body)
    vc707_reduction = crash_rates["VC707"][50.0] / crash_rates["VC707"][80.0]
    kc705a_reduction = crash_rates["KC705-A"][50.0] / crash_rates["KC705-A"][80.0]
    assert vc707_reduction > 3.0  # paper: more than 3x
    assert vc707_reduction > kc705a_reduction  # VC707 responds more strongly
    for name in STUDY_BOARDS:
        rates = [crash_rates[name][t] for t in STUDY_TEMPERATURES_C]
        assert all(b <= a for a, b in zip(rates, rates[1:]))  # monotone with heat
