"""Ablation — ICBP placement policies beyond the last-layer rule (Fig. 14).

Compares the default placement, the paper's last-layer ICBP and the
vulnerability-ordered extension (protect layers in decreasing sensitivity
until the low-vulnerable BRAM budget runs out) at Vcrash on VC707.
"""

import pytest

from conftest import run_once, save_report
from repro.accelerator import IcbpFlow, PlacementPolicy
from repro.analysis import ExperimentReport
from repro.fpga import FpgaChip

POLICIES = (
    PlacementPolicy.DEFAULT,
    PlacementPolicy.LAST_LAYER,
    PlacementPolicy.VULNERABILITY_ORDERED,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_icbp_policies(benchmark, fields, mnist_dataset, trained_mnist_network):
    def body():
        flow = IcbpFlow(
            chip=FpgaChip.build("VC707"),
            network=trained_mnist_network,
            dataset=mnist_dataset,
            fault_field=fields["VC707"],
            max_eval_samples=1000,
        )
        comparison = flow.compare_policies(policies=POLICIES, compile_seeds=range(4))

        report = ExperimentReport(
            "ablation_icbp_policies", "ICBP placement-policy ablation at Vcrash (VC707)"
        )
        section = report.new_section(
            "policy comparison",
            ["policy", "protected_layers", "error_%", "accuracy_loss_%", "power_savings_vs_Vmin_%"],
        )
        for policy in POLICIES:
            evaluation = comparison[policy]
            section.add_row(
                policy.value,
                str(list(evaluation.protected_layers)),
                100 * evaluation.classification_error,
                100 * evaluation.accuracy_loss,
                100 * evaluation.power_savings_vs_vmin,
            )
        section.add_note(
            "the paper protects only the last layer; the vulnerability-ordered extension "
            "protects additional layers while low-vulnerable BRAMs remain"
        )
        save_report(report)
        return comparison

    comparison = run_once(benchmark, body)
    default = comparison[PlacementPolicy.DEFAULT]
    last_layer = comparison[PlacementPolicy.LAST_LAYER]
    ordered = comparison[PlacementPolicy.VULNERABILITY_ORDERED]
    assert last_layer.accuracy_loss <= default.accuracy_loss + 1e-9
    assert ordered.accuracy_loss <= last_layer.accuracy_loss + 1e-9
    assert len(ordered.protected_layers) >= len(last_layer.protected_layers)
