"""Ablation — which fault-model ingredients matter (Figs. 7/8, Table II).

Turns off one ingredient of the fault model at a time and reports which of
the paper's qualitative findings breaks:

* no ITD term      -> the Fig. 8 temperature effect disappears;
* no ripple        -> the Table II run-to-run spread collapses to zero;
* no die-to-die    -> the two KC705 samples become statistically identical;
* no spatial field -> faults are still non-uniform (heavy-tailed per-BRAM
  weights remain) but lose their spatial clustering.
"""

import numpy as np
import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core import FaultField, FaultModelConfig
from repro.core.variation import VariationConfig
from repro.fpga import FpgaChip


@pytest.mark.benchmark(group="ablation")
def test_ablation_fault_model_ingredients(benchmark):
    def body():
        report = ExperimentReport(
            "ablation_faultmodel", "Fault-model ablation: which ingredient produces which finding"
        )
        cal_voltage = 0.53

        # Full model reference.
        full = FaultField(FpgaChip.build("KC705-A"))
        full_itd = full.chip_fault_count(cal_voltage, temperature_c=50.0) / max(
            1, full.chip_fault_count(cal_voltage, temperature_c=80.0)
        )
        full_runs = full.counts_over_runs(cal_voltage, 30)

        # (1) temperature disabled
        no_itd = FaultField(FpgaChip.build("KC705-A"), config=FaultModelConfig(temperature_enabled=False))
        no_itd_ratio = no_itd.chip_fault_count(cal_voltage, temperature_c=50.0) / max(
            1, no_itd.chip_fault_count(cal_voltage, temperature_c=80.0)
        )

        # (2) ripple disabled
        no_ripple = FaultField(FpgaChip.build("KC705-A"), config=FaultModelConfig(ripple_enabled=False))
        no_ripple_runs = no_ripple.counts_over_runs(cal_voltage, 30)

        # (3) die-to-die disabled (shared variation config so only the seed matters)
        shared = VariationConfig(never_faulty_fraction=0.45, lognormal_sigma=1.4)
        config = FaultModelConfig(die_to_die_enabled=False)
        same_a = FaultField(FpgaChip.build("KC705-A"), config=config, variation_config=shared)
        same_b = FaultField(FpgaChip.build("KC705-B"), config=config, variation_config=shared)
        map_correlation = same_a.variation.correlation_with(same_b.variation)

        # (4) spatial variation disabled
        no_spatial = FaultField(
            FpgaChip.build("KC705-A"), config=FaultModelConfig(spatial_variation_enabled=False)
        )
        gini_full = _gini(full.per_bram_counts(cal_voltage))
        gini_no_spatial = _gini(no_spatial.per_bram_counts(cal_voltage))

        section = report.new_section(
            "ablation outcomes", ["variant", "metric", "value", "full-model value"]
        )
        section.add_row("no ITD", "50C/80C fault-rate ratio", no_itd_ratio, full_itd)
        section.add_row("no ripple", "run-to-run std (counts)", float(no_ripple_runs.std()), float(full_runs.std()))
        section.add_row("no die-to-die", "KC705-A/B map correlation", map_correlation, "~0 with die-to-die")
        section.add_row("no spatial field", "per-BRAM Gini coefficient", gini_no_spatial, gini_full)
        save_report(report)
        return full_itd, no_itd_ratio, float(full_runs.std()), float(no_ripple_runs.std()), map_correlation

    full_itd, no_itd_ratio, full_std, no_ripple_std, map_correlation = run_once(benchmark, body)
    assert full_itd > 1.1 and no_itd_ratio == pytest.approx(1.0, abs=0.01)
    assert full_std > 0 and no_ripple_std == 0.0
    assert map_correlation == pytest.approx(1.0, abs=1e-9)


def _gini(counts) -> float:
    counts = np.sort(np.asarray(counts, dtype=float))
    total = counts.sum()
    if total == 0:
        return 0.0
    n = len(counts)
    cumulative = np.cumsum(counts)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)
