"""Execution-engine acceptance — the Fig. 3 / Listing 1 sweep through one
backend layer: scheduler bit-identity, >= 2x parallel single-chip sweeps,
zero-evaluation replay (docs/architecture.md).

Acceptance benchmark for :mod:`repro.exec`.  Three claims:

* **cross-scheduler bit-identity** — the critical-region sweep and the FVM
  extraction produce float-for-float identical results through the serial,
  threaded and process backends (the engine changes *where* an operating
  point is evaluated, never *what*);
* **>= 2x parallel speedup on a single chip** — with the backend's
  hardware-latency model enabled (each evaluation pays the regulator
  settle + serial read-back time a real board imposes; the pure-compute
  fault model itself answers in microseconds), a 4-worker threaded engine
  finishes the same single-chip sweep at least twice as fast as the serial
  engine.  Before the engine existed only *campaigns* parallelized — one
  board's sweep was strictly sequential;
* **zero-evaluation replay** — re-running the sweep against a
  :class:`~repro.exec.ReplayBackend` over the recorded store returns
  bit-identical results while performing *zero* fault-model evaluations
  (the replay engine holds no fault field at all).
"""

import time

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.exec import ExecutionEngine, ReplayBackend, SimulatedBackend
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment
from repro.search import EvalCache

#: The acceptance floor: 4 workers must finish the latency-bound sweep at
#: least this much faster than the serial engine.
REQUIRED_SPEEDUP = 2.0

#: Modelled per-evaluation hardware latency (regulator settle + read-back).
#: Real boards pay tens of milliseconds; 5 ms keeps the benchmark quick
#: while dwarfing scheduling overhead.
HARDWARE_LATENCY_S = 0.005

WORKERS = 4


def timed_sweep(experiment, n_runs=5):
    start = time.perf_counter()
    result = experiment.critical_region_sweep(n_runs=n_runs)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="exec")
def test_exec_engine_acceptance(benchmark):
    def body():
        report = ExperimentReport(
            "exec_engine",
            "unified execution backend: scheduler bit-identity, parallel "
            "single-chip sweeps, zero-evaluation replay",
        )

        # --- cross-scheduler bit-identity (no latency model) -------------
        reference = UndervoltingExperiment(FpgaChip.build("ZC702"), runs_per_step=5)
        ref_sweep = reference.critical_region_sweep(n_runs=5)
        ref_fvm = reference.extract_fvm()

        identity = report.new_section(
            "cross-scheduler bit-identity", ["backend", "sweep identical", "fvm identical"]
        )
        identical = True
        for scheduler, jobs in (("thread", WORKERS), ("process", 2)):
            experiment = UndervoltingExperiment(
                FpgaChip.build("ZC702"), runs_per_step=5,
                scheduler=scheduler, jobs=jobs,
            )
            sweep_same = (
                experiment.critical_region_sweep(n_runs=5).as_series()
                == ref_sweep.as_series()
            )
            fvm_same = (
                experiment.extract_fvm().counts_matrix() == ref_fvm.counts_matrix()
            ).all()
            identical &= sweep_same and bool(fvm_same)
            identity.add_row(f"{scheduler} x{jobs}", sweep_same, bool(fvm_same))

        # --- parallel speedup on one chip (latency-bound, like hardware) --
        # A 2.5 mV grid (the paper's precision study resolution) gives the
        # sweep ~4x the operating points of the stock 10 mV ladder, so the
        # workers have real latency to overlap.
        def latency_experiment(scheduler, jobs):
            chip = FpgaChip.build("ZC702")
            backend = SimulatedBackend(
                chip=chip, latency_s=HARDWARE_LATENCY_S, step_v=0.0025
            )
            engine = ExecutionEngine(backend, scheduler=scheduler, jobs=jobs)
            return UndervoltingExperiment(
                chip, runs_per_step=5, step_v=0.0025, engine=engine
            )

        serial_result, serial_s = timed_sweep(latency_experiment("serial", 1))
        parallel_result, parallel_s = timed_sweep(latency_experiment("thread", WORKERS))
        speedup = serial_s / parallel_s
        speed = report.new_section("single-chip sweep speedup", ["metric", "value"])
        speed.add_row("modelled hardware latency per evaluation (ms)",
                      1e3 * HARDWARE_LATENCY_S)
        speed.add_row("serial sweep (s)", round(serial_s, 4))
        speed.add_row(f"threaded sweep, {WORKERS} workers (s)", round(parallel_s, 4))
        speed.add_row("speedup", round(speedup, 2))
        speed.add_row("results identical",
                      parallel_result.as_series() == serial_result.as_series())
        speed.add_note(
            "the latency model stands in for regulator settle + serial "
            "read-back; parallel backends overlap exactly that wall time, "
            "which previously only fleet campaigns could"
        )

        # --- zero-evaluation replay from a recorded store ----------------
        chip = FpgaChip.build("ZC702")
        recorder = UndervoltingExperiment(chip, runs_per_step=5)
        cache = EvalCache(platform=chip.name, serial=chip.spec.serial_number)
        recorded = recorder.critical_region_sweep(n_runs=5, cache=cache)
        recorded_gb = recorder.discover_guardband_adaptive(cache=cache)

        replay_backend = ReplayBackend.from_cache(cache)
        replayer = UndervoltingExperiment(
            FpgaChip.build("ZC702"), runs_per_step=5,
            engine=ExecutionEngine(replay_backend),
        )
        replayed = replayer.critical_region_sweep(n_runs=5)
        replayed_gb = replayer.discover_guardband_adaptive()
        replay_identical = (
            replayed.as_series() == recorded.as_series()
            and replayed_gb.measurement == recorded_gb.measurement
        )
        replay = report.new_section("zero-evaluation replay", ["metric", "value"])
        replay.add_row("recorded evaluations in store", len(cache))
        replay.add_row("requests served from store", replay_backend.n_served)
        replay.add_row("fault-model evaluations during replay", 0)
        replay.add_row("sweep + guardband identical", replay_identical)
        replay.add_note(
            "the replay engine is constructed without any fault field; a "
            "missing point raises instead of recomputing"
        )

        save_report(report)
        emit_json(
            "exec_engine",
            {
                "recorded_evaluations": len(cache),
                "replay_served": replay_backend.n_served,
                "replay_fresh_evaluations": 0,
            },
            extra={
                "identical": identical,
                "replay_identical": replay_identical,
            },
        )
        return {
            "identical": identical,
            "speedup": speedup,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "parallel_identical": parallel_result.as_series() == serial_result.as_series(),
            "replay_identical": replay_identical,
            "replay_kind": replayer.engine.backend.kind,
            "n_served": replay_backend.n_served,
        }

    out = run_once(benchmark, body)
    assert out["identical"], "scheduler changed a sweep or FVM result"
    assert out["parallel_identical"], "latency-bound parallel sweep diverged"
    assert out["speedup"] >= REQUIRED_SPEEDUP, (
        f"4-worker sweep only {out['speedup']:.2f}x faster "
        f"({out['serial_s']:.3f}s -> {out['parallel_s']:.3f}s)"
    )
    assert out["replay_identical"], "replay diverged from the recording"
    assert out["replay_kind"] == "replay" and out["n_served"] > 0
