"""Fig. 4 — impact of the initial data pattern on the fault rate (VC707).

The fault rate must track the number of stored '1' bits: 0xFFFF is about
double 0xAAAA/0x5555/random-50 %, and the all-zero pattern shows almost no
faults.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.characterization import STUDY_PATTERNS, pattern_study


@pytest.mark.benchmark(group="fig04")
def test_fig04_data_pattern_impact(benchmark, fields):
    field = fields["VC707"]

    def body():
        cal = field.calibration
        report = ExperimentReport(
            "fig04_data_pattern", "Impact of the data pattern on the fault rate, VC707 (Fig. 4)"
        )
        section = report.new_section(
            "VC707 at Vcrash", ["pattern", "faults_per_Mbit", "relative_to_FFFF"]
        )
        study = pattern_study(field, cal.vcrash_bram_v, patterns=STUDY_PATTERNS)
        for pattern in STUDY_PATTERNS:
            rate = study.rate(pattern)
            section.add_row(pattern, rate, rate / study.rate("FFFF"))
        section.add_note("paper: FFFF ~2x AAAA; AAAA ~ 5555 ~ random50; 0000 shows only a few faults")
        save_report(report)
        return study

    study = run_once(benchmark, body)
    assert study.ratio("FFFF", "AAAA") == pytest.approx(2.0, rel=0.2)
    assert study.ratio("AAAA", "5555") == pytest.approx(1.0, abs=0.3)
    assert study.rate("0000") < 0.01 * study.rate("FFFF")
