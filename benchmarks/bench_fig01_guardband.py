"""Fig. 1 — voltage guardbands of VCCBRAM and VCCINT on all four platforms.

Regenerates the SAFE / CRITICAL / CRASH boundaries per board by sweeping each
rail down from the nominal voltage until the design crashes, and reports the
per-board and average guardbands (paper: 39 % for VCCBRAM, 34 % for VCCINT)
plus the power reduction available inside the guardband (>10x).
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.guardband import GuardbandResult, average_guardband_fraction
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness import UndervoltingExperiment


@pytest.mark.benchmark(group="fig01")
def test_fig01_guardband(benchmark, chips, fields):
    def body():
        report = ExperimentReport(
            "fig01_guardband", "Voltage guardbands of VCCBRAM and VCCINT (Fig. 1)"
        )
        averages = {}
        for rail in (VCCBRAM, VCCINT):
            section = report.new_section(
                f"{rail} undervolting", ["platform", "Vnom", "Vmin", "Vcrash", "guardband_%", "power_x_at_Vmin"]
            )
            results = []
            for name, chip in chips.items():
                experiment = UndervoltingExperiment(
                    chip, fault_field=fields[name], runs_per_step=3
                )
                measurement, _ = experiment.discover_guardband(rail=rail)
                results.append(
                    GuardbandResult(
                        nominal_v=measurement.nominal_v,
                        vmin_v=measurement.vmin_v,
                        vcrash_v=measurement.vcrash_v,
                    )
                )
                section.add_row(
                    name,
                    measurement.nominal_v,
                    measurement.vmin_v,
                    measurement.vcrash_v,
                    100 * measurement.guardband_fraction,
                    measurement.power_reduction_factor_at_vmin,
                )
            averages[rail] = average_guardband_fraction(results)
            section.add_note(
                f"average {rail} guardband: {100 * averages[rail]:.1f} % "
                f"(paper: {'39' if rail == VCCBRAM else '34'} %)"
            )
        save_report(report)
        return averages

    averages = run_once(benchmark, body)
    assert averages[VCCBRAM] == pytest.approx(0.39, abs=0.02)
    assert averages[VCCINT] == pytest.approx(0.34, abs=0.02)
