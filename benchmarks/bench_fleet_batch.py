"""Cross-die batched evaluation acceptance — the Fig. 1 guardband discovery
run in lockstep across a Table I fleet (one kernel call per wave: >= 10x
fewer backend crossings, >= 3x wall-clock under the hardware latency model,
bit-identical everything).

Acceptance benchmark for the batched evaluation layer
(:mod:`repro.harness.fleet`, ``SimulatedBackend.evaluate_batch``,
``ExecutionEngine`` batch routing).  Five claims:

* **bit-identity** — the lockstep fleet characterization of the 16-die
  two-platform fleet returns measurement-, sweep- and certificate-identical
  results to the sequential die-by-die adaptive discovery (batch off);
* **>= 10x fewer Python-level backend crossings** — the sequential path
  pays one engine→backend call per probe per die; the fleet path pays one
  vectorized kernel call per wave;
* **>= 3x wall-clock** — under the modelled hardware latency
  (regulator settle + serial read-back per evaluation, the
  ``bench_exec_engine`` convention), a wave settles every board
  *concurrently*, so the fleet pays the latency once per wave instead of
  once per probe;
* **golden/telemetry stability** — the region/FVM goldens are byte-identical
  across serial/thread/process schedulers with batching on and off, and the
  campaign trace digest is identical with batching on and off (probe flows
  never batch, so pinned telemetry digests cannot move);
* **fleet-scale lockstep** — on a 1000-die synthetic fleet the wave count
  stays logarithmic in the ladder length while sequential crossings grow
  linearly with the die count (> 100x reduction).
"""

import time

import numpy as np
import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.exec import ExecutionEngine, SimulatedBackend
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment, discover_guardband_fleet
from repro.search import FleetBisector, ThresholdBisector
from repro.runtime.fleetscale import SyntheticFleet, SyntheticFleetSpec

#: The acceptance floors.
REQUIRED_CALL_REDUCTION = 10.0
REQUIRED_SPEEDUP = 3.0
REQUIRED_SCALE_REDUCTION = 100.0

#: Modelled per-evaluation hardware latency (regulator settle + read-back);
#: same convention as ``bench_exec_engine``.
HARDWARE_LATENCY_S = 0.005

#: The studied fleet: 16 dies across two platforms (the fleet16 shape).
FLEET = (("ZC702", 8), ("KC705-A", 8))

#: The synthetic scaling demo's die count.
SCALE_DIES = 1000

PROBE_RUNS = 3


def _fleet_experiments(batch=True, latency_s=0.0):
    """Fresh cold experiments for the 16-die fleet, keyed by (platform, serial)."""
    experiments = {}
    for platform, n_chips in FLEET:
        for index in range(n_chips):
            chip = FpgaChip.build(platform, serial=f"{platform}-B{index:03d}")
            if latency_s:
                backend = SimulatedBackend(chip=chip, latency_s=latency_s)
                engine = ExecutionEngine(backend, batch=batch)
                experiment = UndervoltingExperiment(
                    chip, runs_per_step=PROBE_RUNS, engine=engine
                )
            else:
                experiment = UndervoltingExperiment(
                    chip, runs_per_step=PROBE_RUNS, batch=batch
                )
            experiments[(platform, chip.spec.serial_number)] = experiment
    return experiments


def _prewarm(experiments):
    """Build each die's one-time sorted threshold table outside the timed
    sections — it is shared setup paid identically by both paths, not
    per-evaluation work."""
    for experiment in experiments.values():
        experiment.fault_field.batch.sorted_observable_thresholds(0xFFFF)


def _sequential_characterization(experiments):
    """The PR-9 baseline: die-by-die adaptive discovery, one probe per call."""
    return {
        key: experiment.discover_guardband_adaptive(probe_runs=PROBE_RUNS)
        for key, experiment in experiments.items()
    }


@pytest.mark.benchmark(group="fleet-batch")
def test_fleet_batch_acceptance(benchmark):
    def body():
        report = ExperimentReport(
            "fleet_batch",
            "cross-die batched evaluation: lockstep bisection waves vs "
            "die-by-die characterization on the 16-die fleet",
        )

        # --- phase A: bit-identity + backend-crossing counts -------------
        sequential = _fleet_experiments(batch=False)
        sequential_results = _sequential_characterization(sequential)
        sequential_calls = sum(
            experiment.engine.counters.n_backend_calls
            for experiment in sequential.values()
        )

        fleet_experiments = _fleet_experiments()
        fleet = discover_guardband_fleet(fleet_experiments, probe_runs=PROBE_RUNS)

        identical = True
        for key in sequential:
            a = sequential_results[key]
            b = fleet.results[key]
            identical &= a.measurement == b.measurement
            identical &= a.sweep == b.sweep
            identical &= a.report.to_dict() == b.report.to_dict()
        assert identical, "lockstep fleet characterization diverged"
        assert fleet.stats.n_probes == sequential_calls, (
            "both paths must answer the same probe sequence"
        )
        call_reduction = sequential_calls / fleet.stats.n_waves
        assert call_reduction >= REQUIRED_CALL_REDUCTION, (
            f"{sequential_calls} sequential backend calls vs "
            f"{fleet.stats.n_waves} waves: only {call_reduction:.1f}x"
        )

        section = report.new_section(
            "16-die fleet: crossings and identity", ["metric", "value"]
        )
        section.add_row("sequential engine->backend calls", sequential_calls)
        section.add_row("lockstep kernel calls (waves)", fleet.stats.n_waves)
        section.add_row("crossing reduction", round(call_reduction, 1))
        section.add_row("probes answered (both paths)", fleet.stats.n_probes)
        section.add_row(
            "measurements + sweeps + certificates identical", identical
        )

        # --- phase B: wall-clock under the hardware latency model --------
        latency_sequential = _fleet_experiments(
            batch=False, latency_s=HARDWARE_LATENCY_S
        )
        _prewarm(latency_sequential)
        t0 = time.perf_counter()
        latency_results = _sequential_characterization(latency_sequential)
        sequential_s = time.perf_counter() - t0

        latency_fleet = _fleet_experiments()
        _prewarm(latency_fleet)
        t0 = time.perf_counter()
        fleet_latency = discover_guardband_fleet(
            latency_fleet, probe_runs=PROBE_RUNS, latency_s=HARDWARE_LATENCY_S
        )
        fleet_s = time.perf_counter() - t0
        speedup = sequential_s / fleet_s

        for key in latency_sequential:
            assert (
                latency_results[key].measurement
                == fleet_latency.results[key].measurement
            ), "latency model changed a measurement"
        assert speedup >= REQUIRED_SPEEDUP, (
            f"fleet characterization only {speedup:.2f}x faster "
            f"({sequential_s:.3f}s -> {fleet_s:.3f}s) under the "
            f"{1e3 * HARDWARE_LATENCY_S:.0f} ms latency model"
        )

        timing = report.new_section(
            "wall-clock under modelled hardware latency", ["metric", "value"]
        )
        timing.add_row("latency per evaluation (ms)", 1e3 * HARDWARE_LATENCY_S)
        timing.add_row("sequential characterization (s)", round(sequential_s, 3))
        timing.add_row("lockstep characterization (s)", round(fleet_s, 3))
        timing.add_row("speedup", round(speedup, 2))
        timing.add_note(
            "each die is its own board: a wave settles every regulator "
            "concurrently and pays the settle + read-back latency once"
        )

        # --- phase C: 1000-die synthetic lockstep scaling ----------------
        synthetic = SyntheticFleet.draw(SyntheticFleetSpec(n_dies=SCALE_DIES))
        ladder = tuple(round(1.0 - 0.01 * i, 4) for i in range(70))
        ladder_v = np.asarray(ladder)
        plans = {
            die: ThresholdBisector(ladder).search_steps("vmin")
            for die in range(SCALE_DIES)
        }
        driver = FleetBisector(plans)

        def synthetic_wave(pending):
            dies = np.fromiter(pending.keys(), dtype=np.int64, count=len(pending))
            indices = np.fromiter(
                pending.values(), dtype=np.int64, count=len(pending)
            )
            fault_free = ladder_v[indices] >= synthetic.vmin_v[dies]
            return {
                die: (bool(ok), False) for die, ok in zip(pending, fault_free)
            }

        t0 = time.perf_counter()
        certificates = driver.run(synthetic_wave)
        scale_s = time.perf_counter() - t0
        for die, certificate in certificates.items():
            boundary = certificate.boundary_index
            assert certificate.verify()
            vmin = synthetic.vmin_v[die]
            assert boundary == 0 or ladder[boundary - 1] >= vmin
            assert boundary == len(ladder) or ladder[boundary] < vmin
        scale_reduction = driver.n_steps / driver.n_waves
        assert scale_reduction >= REQUIRED_SCALE_REDUCTION

        scale = report.new_section(
            f"{SCALE_DIES}-die synthetic lockstep scaling", ["metric", "value"]
        )
        scale.add_row("sequential crossings (total steps)", driver.n_steps)
        scale.add_row("lockstep waves", driver.n_waves)
        scale.add_row("crossing reduction", round(scale_reduction, 1))
        scale.add_row("wall time (s)", round(scale_s, 3))
        scale.add_note(
            "waves grow with the bisection depth (log ladder), not the die "
            "count; every certificate re-verified against its die's true Vmin"
        )

        save_report(report)
        emit_json(
            "fleet_batch",
            {
                "sequential_backend_calls": sequential_calls,
                "fleet_waves": fleet.stats.n_waves,
                "fleet_probes": fleet.stats.n_probes,
                "scale_steps": driver.n_steps,
                "scale_waves": driver.n_waves,
            },
            extra={
                "identical": identical,
                "call_reduction": round(call_reduction, 2),
                "latency_speedup": round(speedup, 2),
                "scale_dies": SCALE_DIES,
            },
        )
        return {
            "identical": identical,
            "call_reduction": call_reduction,
            "speedup": speedup,
            "scale_reduction": scale_reduction,
        }

    out = run_once(benchmark, body)
    assert out["identical"]
    assert out["call_reduction"] >= REQUIRED_CALL_REDUCTION
    assert out["speedup"] >= REQUIRED_SPEEDUP
    assert out["scale_reduction"] >= REQUIRED_SCALE_REDUCTION


@pytest.mark.benchmark(group="fleet-batch")
def test_fleet_batch_goldens_and_digests(benchmark):
    """Batching must never move a golden result or a telemetry digest."""

    def body():
        import shutil
        import tempfile
        from pathlib import Path

        from repro.campaign import preset_spec, run_campaign
        from repro.obs import install_trace, reset_recorder
        from repro.obs.summarize import summarize_trace

        report = ExperimentReport(
            "fleet_batch_digests",
            "golden JSON and telemetry digests across schedulers and "
            "batch on/off",
        )

        # --- pure sweeps: goldens across schedulers x batch modes --------
        def sweep_pair(scheduler, jobs, batch):
            experiment = UndervoltingExperiment(
                FpgaChip.build("ZC702"), runs_per_step=PROBE_RUNS,
                scheduler=scheduler, jobs=jobs, batch=batch,
            )
            region = experiment.critical_region_sweep(n_runs=PROBE_RUNS)
            fvm = experiment.extract_fvm()
            calls = experiment.engine.counters.n_backend_calls
            return region.as_series(), fvm, calls

        reference_region, reference_fvm, unbatched_calls = sweep_pair(
            "serial", 1, False
        )
        golden = report.new_section(
            "region + FVM goldens", ["scheduler", "batch", "backend calls",
                                     "identical"],
        )
        golden.add_row("serial", False, unbatched_calls, True)
        goldens_identical = True
        batched_calls = None
        for scheduler, jobs, batch in (
            ("serial", 1, True),
            ("thread", 4, False),
            ("thread", 4, True),
            ("process", 2, False),
            ("process", 2, True),
        ):
            region, fvm, calls = sweep_pair(scheduler, jobs, batch)
            same = region == reference_region and fvm == reference_fvm
            goldens_identical &= same
            golden.add_row(scheduler, batch, calls, same)
            if scheduler == "serial" and batch:
                batched_calls = calls
        assert goldens_identical, "a scheduler/batch mode moved a golden"
        assert batched_calls is not None and batched_calls < unbatched_calls

        # --- campaign trace digests: batch on/off must not move them -----
        def traced_campaign_digest(tmp):
            Path(tmp).mkdir(parents=True, exist_ok=True)
            trace_path = Path(tmp) / "trace.jsonl"
            install_trace(trace_path)
            try:
                run_campaign(
                    preset_spec("fleet16-fast"), root=Path(tmp) / "store",
                    scheduler="serial",
                )
            finally:
                reset_recorder()
            summary = summarize_trace(str(trace_path))
            return summary["digest"], summary["n_spans"]

        def traced_probe_digest(tmp, batch):
            Path(tmp).mkdir(parents=True, exist_ok=True)
            trace_path = Path(tmp) / "trace.jsonl"
            install_trace(trace_path)
            try:
                experiment = UndervoltingExperiment(
                    FpgaChip.build("ZC702"), runs_per_step=PROBE_RUNS,
                    batch=batch,
                )
                experiment.discover_guardband_adaptive(probe_runs=PROBE_RUNS)
            finally:
                reset_recorder()
            return summarize_trace(str(trace_path))["digest"]

        tmp = tempfile.mkdtemp(prefix="fleet-batch-bench-")
        try:
            digest_a, n_spans = traced_campaign_digest(tmp + "/a")
            digest_b, _ = traced_campaign_digest(tmp + "/b")
            probe_on = traced_probe_digest(tmp + "/c", batch=True)
            probe_off = traced_probe_digest(tmp + "/d", batch=False)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        assert digest_a == digest_b, "campaign trace digest is not stable"
        assert probe_on == probe_off, (
            "batching moved a probe-flow telemetry digest; probe flows must "
            "never batch"
        )

        digests = report.new_section("telemetry digests", ["metric", "value"])
        digests.add_row("campaign digest (run a)", digest_a[:16])
        digests.add_row("campaign digest (run b)", digest_b[:16])
        digests.add_row("campaign spans per run", n_spans)
        digests.add_row("probe-flow digest, batch on == off", probe_on == probe_off)
        digests.add_note(
            "probes are hardware-mutating and always evaluate inline, so "
            "turning batching on cannot add engine.batch spans to any "
            "pinned campaign/runtime digest"
        )

        save_report(report)
        return {
            "goldens_identical": goldens_identical,
            "digests_stable": digest_a == digest_b and probe_on == probe_off,
            "unbatched_calls": unbatched_calls,
            "batched_calls": batched_calls,
        }

    out = run_once(benchmark, body)
    assert out["goldens_identical"]
    assert out["digests_stable"]
