"""Fig. 11 — NN classification error versus VCCBRAM (Vmin down to Vcrash).

The classification error stays at the inherent (fault-free) level until Vmin
and then grows with the exponentially increasing BRAM fault rate; the curve
is averaged over several place-and-route runs (see docs/intro.md) and the fault
rate observed with NN weights is far below the 0xFFFF rate because most
weight bits are zero.
"""

import pytest

from conftest import run_once, save_report
from repro.accelerator import mean_error_sweep
from repro.analysis import ExperimentReport
from repro.fpga import FpgaChip


@pytest.mark.benchmark(group="fig11")
def test_fig11_error_vs_voltage(benchmark, fields, mnist_dataset, trained_mnist_network):
    def body():
        chip = FpgaChip.build("VC707")
        field = fields["VC707"]
        cal = field.calibration
        voltages = []
        voltage = cal.vmin_bram_v
        while voltage >= cal.vcrash_bram_v - 1e-9:
            voltages.append(round(voltage, 3))
            voltage -= 0.01
        points = mean_error_sweep(
            chip,
            trained_mnist_network,
            mnist_dataset,
            voltages,
            compile_seeds=range(6),
            fault_field=field,
            max_samples=1500,
        )
        baseline = points[0].classification_error

        report = ExperimentReport(
            "fig11_nn_error", "NN classification error vs VCCBRAM, VC707 (Fig. 11)"
        )
        section = report.new_section(
            "error vs voltage (mean over 6 place-and-route runs)",
            ["VCCBRAM_V", "classification_error_%", "weight_bit_faults", "faults_per_Mbit"],
        )
        for point in points:
            section.add_row(
                point.voltage_v,
                100.0 * point.classification_error,
                point.weight_faults,
                point.fault_rate_per_mbit,
            )
        section.add_note(
            f"inherent (fault-free) error: {100 * baseline:.2f} % (paper: 2.56 %); "
            "paper error at Vcrash: 6.15 %"
        )
        ffff_rate = field.chip_fault_rate_per_mbit(cal.vcrash_bram_v)
        section.add_note(
            f"fault rate with NN weights at Vcrash: {points[-1].fault_rate_per_mbit:.1f} /Mbit vs "
            f"{ffff_rate:.0f} /Mbit with pattern 0xFFFF — weight bits are mostly zero "
            f"({100 * trained_mnist_network.zero_bit_fraction():.1f} % zero bits; paper: 76.3 %)"
        )
        save_report(report)
        return points, ffff_rate

    points, ffff_rate = run_once(benchmark, body)
    baseline = points[0].classification_error
    final = points[-1].classification_error
    # Error is flat at Vmin and rises towards Vcrash.
    assert points[0].weight_faults == 0
    assert final >= baseline
    assert final > baseline - 1e-9
    # Weight-resident fault rate is far below the 0xFFFF rate (bit sparsity).
    assert points[-1].fault_rate_per_mbit < 0.6 * ffff_rate
    # Fault counts grow monotonically as the voltage drops.
    faults = [p.weight_faults for p in points]
    assert all(b >= a for a, b in zip(faults, faults[1:]))
