"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes the
same rows/series the paper reports, renders them as an
:class:`repro.analysis.ExperimentReport`, prints it, and writes it to
``benchmarks/results/<experiment>.txt`` so the output survives pytest's
capture.  ``pytest benchmarks/ --benchmark-only`` runs everything.

Heavy shared state (fault fields for all four boards, the trained MNIST-like
network) is session-scoped, and each benchmark body runs exactly once through
``benchmark.pedantic(..., rounds=1, iterations=1)`` — the interesting output
is the reproduced numbers, not micro-timings.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis import ExperimentReport
from repro.core import cached_fault_field
from repro.fpga import FpgaChip, platform_names
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_forest,
    synthetic_mnist,
    synthetic_reuters,
    train_network,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    # Same switch tests/conftest.py registers; guarded so a combined
    # ``pytest tests benchmarks`` invocation loads both conftests cleanly.
    try:
        parser.addoption(
            "--run-slow",
            action="store_true",
            default=False,
            help="run the fleet-scale benchmarks marked 'slow' "
            "(CI always runs them)",
        )
    except ValueError:
        pass


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("CI"):
        return
    skip_slow = pytest.mark.skip(
        reason="fleet-scale benchmark; opt in with --run-slow "
        "(CI always runs it)"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def save_report(report: ExperimentReport) -> str:
    """Print a report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = report.render()
    (RESULTS_DIR / f"{report.experiment_id}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def run_once(benchmark, func):
    """Run a benchmark body exactly once and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def chips():
    """One chip instance per studied platform, keyed by board name."""
    return {name: FpgaChip.build(name) for name in platform_names()}


@pytest.fixture(scope="session")
def fields(chips):
    """Calibrated fault fields for all four boards (memoized per chip)."""
    return {name: cached_fault_field(chip) for name, chip in chips.items()}


@pytest.fixture(scope="session")
def mnist_dataset():
    """The MNIST-like benchmark used by the case-study figures."""
    return synthetic_mnist(n_train=6000, n_test=1500)


@pytest.fixture(scope="session")
def forest_dataset():
    """The Forest-like benchmark (Fig. 14b)."""
    return synthetic_forest(n_train=4000, n_test=1000)


@pytest.fixture(scope="session")
def reuters_dataset():
    """The Reuters-like benchmark (Fig. 14c)."""
    return synthetic_reuters(n_train=4000, n_test=1000)


@pytest.fixture(scope="session")
def trained_mnist_network(mnist_dataset):
    """The trained, quantized case-study network (scaled Table III topology)."""
    result = train_network(
        mnist_dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
    )
    return QuantizedNetwork.from_network(result.network)
