"""Figs. 1 & 3 applied at runtime — closed-loop undervolting governor on a
16-chip serving fleet: the predictive ITD-aware policy recovers >= 60 % of
the static guardband's BRAM power with zero uncorrected-fault inferences,
and the whole simulation replays bit-identically from its seed.

Acceptance benchmark for :mod:`repro.runtime`.  A 16-chip, two-platform
fleet (8 ZC702 + 8 KC705-A dies) is characterized through the adaptive
pipeline, then serves a 1000-step diurnal inference trace — load and
ambient cycling together, with night troughs 20 °C *below* the 50 °C
characterization temperature — on ICBP-placed NN accelerators while four
governor policies hold the rails.  The benchmark must show:

* **safety + recovery** — the predictive policy serves *zero*
  uncorrected-fault inferences and zero crash steps while recovering at
  least 60 % of the guardband BRAM power (nominal-energy minus
  park-at-Vmin energy) that static-nominal wastes;
* **the guardband is not free to close statically** — parking every die at
  its characterized Vmin (``static-undervolt``) serves faulty inferences
  through the cold transients, and the reactive fault-backoff policy cuts
  but does not eliminate them;
* **determinism** — re-running the predictive simulation from the same
  trace and seed produces a bit-identical telemetry digest;
* **runtime scale** — the 4-policy x 1000-step x 16-chip simulation
  completes in seconds (vectorized fault counting and power evaluation).
"""

import time

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.analysis.runtime import (
    guardband_recovery_fraction,
    policy_comparison,
    summarize_telemetry,
)
from repro.fpga.platform import FpgaChip, fleet_serials
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_mnist,
    train_network,
)
from repro.runtime import FleetSimulator, GovernorBundle, POLICY_NAMES, diurnal_trace

#: Acceptance floor: the predictive governor must recover at least this
#: fraction of the static guardband's BRAM power.
REQUIRED_RECOVERY = 0.60

#: Fleet shape of the acceptance run (matches the fleet16 campaign preset).
FLEET = (("ZC702", 8), ("KC705-A", 8))

#: Simulation horizon (steps of the diurnal trace).
N_STEPS = 1000


@pytest.mark.benchmark(group="runtime")
def test_runtime_governor_fleet16(benchmark):
    def body():
        report = ExperimentReport(
            "runtime_governor",
            "closed-loop undervolting governor on a 16-chip serving fleet",
        )

        # --- offline: characterize the fleet, train the served network ---
        chips = [
            FpgaChip.build(platform, serial=serial)
            for platform, n_chips in FLEET
            for serial in fleet_serials(platform, n_chips)
        ]
        bundle = GovernorBundle.from_chips(chips, runs_per_step=3)
        assert len(bundle) == 16

        dataset = synthetic_mnist(n_train=800, n_test=300)
        trained = train_network(
            dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
        )
        network = QuantizedNetwork.from_network(trained.network)

        # --- online: serve the diurnal trace under all four policies -----
        trace = diurnal_trace(n_steps=N_STEPS, seed=7)
        simulator = FleetSimulator(bundle, network, trace, capacity_rps=150.0)
        started = time.perf_counter()
        logs = simulator.run_policies()
        elapsed_s = time.perf_counter() - started

        nominal_j = simulator.nominal_energy_j()
        floor_j = simulator.guardband_floor_energy_j()
        summaries = {name: summarize_telemetry(log) for name, log in logs.items()}
        rows = policy_comparison(summaries, nominal_j, floor_j, order=POLICY_NAMES)

        section = report.new_section(
            f"{len(bundle)} chips x {N_STEPS} steps, diurnal trace "
            f"({trace.total_requests} inference arrivals)",
            ["policy", "mean V", "energy (J)", "guardband recovered %",
             "faulty inferences", "SLO violations", "crash steps"],
        )
        for row in rows:
            section.add_row(
                row["policy"],
                round(row["mean_voltage_v"], 4),
                round(row["energy_j"], 2),
                round(100.0 * row["guardband_recovered_fraction"], 2),
                row["faulty_inferences"],
                row["slo_violations"],
                row["crash_steps"],
            )

        # --- acceptance: predictive is safe AND recovers the guardband ---
        predictive = summaries["predictive"]
        recovery = guardband_recovery_fraction(predictive, nominal_j, floor_j)
        assert predictive.faulty_inferences == 0, (
            f"predictive served {predictive.faulty_inferences} "
            "uncorrected-fault inferences; the acceptance bar is zero"
        )
        assert predictive.crash_steps == 0
        assert predictive.served == predictive.requests
        assert recovery >= REQUIRED_RECOVERY, (
            f"predictive recovered only {100 * recovery:.1f} % of the "
            f"guardband power, need >= {100 * REQUIRED_RECOVERY:.0f} %"
        )

        # --- the static alternatives motivate the closed loop ------------
        static = summaries["static-undervolt"]
        reactive = summaries["reactive"]
        assert summaries["static-nominal"].faulty_inferences == 0
        assert static.faulty_inferences > 0, (
            "static undervolt at the characterized Vmin must fault through "
            "the trace's cold transients"
        )
        assert 0 < reactive.faulty_inferences < static.faulty_inferences

        # --- determinism: same trace + seed => bit-identical telemetry ---
        digest = logs["predictive"].digest()
        assert simulator.run("predictive").digest() == digest

        section.add_note(
            f"predictive recovers {100 * recovery:.2f} % of the guardband "
            f"BRAM power ({nominal_j:.1f} J nominal vs "
            f"{floor_j:.1f} J park-at-Vmin floor) with zero faulty inferences"
        )
        section.add_note(
            f"4 policies x {N_STEPS} steps x {len(bundle)} chips simulated "
            f"in {elapsed_s:.2f} s; predictive telemetry digest {digest[:16]}"
        )
        save_report(report)
        emit_json(
            "runtime_governor",
            {
                "faulty_inferences_predictive": predictive.faulty_inferences,
                "crash_steps_predictive": predictive.crash_steps,
                "slo_violations_predictive": predictive.slo_violations,
                "trace_requests": trace.total_requests,
            },
            extra={"n_dies": len(bundle), "digest": digest},
        )
        assert elapsed_s < 120.0, "the simulation loop must run at fleet scale"
        return report

    run_once(benchmark, body)
