"""Table II — fault-rate stability over 100 consecutive runs at Vcrash."""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.core.characterization import stability_study

PUBLISHED = {
    "VC707": {"avg": 652.0, "min": 630.0, "max": 669.0, "std": 7.3},
    "ZC702": {"avg": 153.0, "min": 140.0, "max": 162.0, "std": 5.9},
    "KC705-A": {"avg": 254.0, "min": 237.0, "max": 264.0, "std": 4.8},
    "KC705-B": {"avg": 60.0, "min": 51.0, "max": 69.0, "std": 1.8},
}


@pytest.mark.benchmark(group="table2")
def test_table2_fault_stability(benchmark, fields):
    def body():
        report = ExperimentReport(
            "table2_stability",
            "Fault stability over 100 consecutive runs at Vcrash, pattern 0xFFFF (Table II)",
        )
        section = report.new_section(
            "per-platform statistics (faults per Mbit)",
            ["platform", "AVERAGE", "MINIMUM", "MAXIMUM", "STD.DEV", "location_overlap"],
        )
        results = {}
        for name, field in fields.items():
            cal = field.calibration
            study = stability_study(field, cal.vcrash_bram_v, n_runs=100)
            results[name] = study
            section.add_row(
                name, study.average, study.minimum, study.maximum, study.std_dev, study.location_overlap
            )
        section.add_note(
            "paper averages: 652 / 153 / 254 / 60 per Mbit with std. dev 7.3 / 5.9 / 4.8 / 1.8"
        )
        save_report(report)
        return results

    results = run_once(benchmark, body)
    for name, study in results.items():
        published = PUBLISHED[name]
        assert study.average == pytest.approx(published["avg"], rel=0.12)
        assert study.std_dev < 0.05 * study.average
        assert study.location_overlap > 0.9
