"""Table I — specifications of the tested FPGA platforms."""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.fpga import ALL_PLATFORMS


@pytest.mark.benchmark(group="table1")
def test_table1_platform_specifications(benchmark):
    def body():
        report = ExperimentReport(
            "table1_platforms", "Specifications of tested FPGA platforms (Table I)"
        )
        keys = list(ALL_PLATFORMS[0].table_row().keys())
        section = report.new_section("Table I", ["field"] + [spec.name for spec in ALL_PLATFORMS])
        rows = {key: [spec.table_row()[key] for spec in ALL_PLATFORMS] for key in keys}
        for key in keys:
            section.add_row(key, *rows[key])
        save_report(report)
        return rows

    rows = run_once(benchmark, body)
    assert rows["Number of BRAMs"] == ["2060", "280", "890", "890"]
    assert set(rows["Nominal VCCBRAM (Vnom)"]) == {"1V"}
    assert set(rows["Manufacturing Process Technology"]) == {"28nm"}
