"""Table III — specification of the baseline NN and its FPGA utilization.

Builds the full 1.5M-weight Table III network (untrained weights suffice for
structure and utilization numbers), maps it onto the VC707 and reports the
topology, weight count and resource utilization; also reports the
width-scaled topology the experiments use.
"""

import pytest

from conftest import run_once, save_report
from repro.accelerator import NnAccelerator
from repro.analysis import ExperimentReport
from repro.fpga import FpgaChip
from repro.nn import FullyConnectedNetwork, PAPER_TOPOLOGY, QuantizedNetwork, SCALED_TOPOLOGY


@pytest.mark.benchmark(group="table3")
def test_table3_nn_specification(benchmark, fields, mnist_dataset):
    def body():
        chip = FpgaChip.build("VC707")
        full = QuantizedNetwork.from_network(FullyConnectedNetwork.initialize(PAPER_TOPOLOGY, seed=0))
        accelerator = NnAccelerator(chip=chip, network=full, fault_field=fields["VC707"])
        utilization = accelerator.utilization()

        report = ExperimentReport("table3_nn_spec", "Baseline NN specification (Table III)")
        spec = report.new_section("Neural network", ["field", "value"])
        spec.add_row("Type", "Fully-Connected Classifier")
        spec.add_row("Topology (number of layers)", "6L (1 input, 4 hidden, 1 output)")
        spec.add_row("Per layer size", str(PAPER_TOPOLOGY) + f" = {sum(PAPER_TOPOLOGY)} neurons")
        spec.add_row("Total number of weights", full.n_weights)
        spec.add_row("Activation function", "Logarithmic Sigmoid (logsig)")
        spec.add_row("Data representation", "16-bit fixed-point, per-layer minimum precision")
        spec.add_row("Major benchmark", f"{mnist_dataset.name} ({mnist_dataset.n_features} features, "
                                        f"{mnist_dataset.n_classes} classes)")
        spec.add_row("Inference images", mnist_dataset.n_test)
        spec.add_row("Experiment topology (width-scaled)", str(SCALED_TOPOLOGY))

        util = report.new_section(
            "VC707 synthesis utilization (%)", ["BRAM", "DSP", "FF", "LUT", "frequency_MHz"]
        )
        util.add_row(
            utilization.percent("BRAM"),
            utilization.percent("DSP"),
            utilization.percent("FF"),
            utilization.percent("LUT"),
            accelerator.bitstream.design.frequency_mhz,
        )
        util.add_note("paper: 70.8 % BRAM, 8.6 % DSP, 3.8 % FF, 4.9 % LUT at 100 MHz")
        save_report(report)
        return full, utilization

    full, utilization = run_once(benchmark, body)
    assert full.n_weights == pytest.approx(1.5e6, rel=0.05)
    assert utilization.percent("BRAM") == pytest.approx(70.8, abs=1.0)
    assert utilization.percent("DSP") == pytest.approx(8.6, abs=0.5)
    assert utilization.percent("FF") == pytest.approx(3.8, abs=0.5)
    assert utilization.percent("LUT") == pytest.approx(4.9, abs=0.5)
