"""Fig. 10 — on-chip power breakdown of the NN accelerator at Vnom/Vmin/Vcrash.

Regenerates the stacked-bar data: BRAM power collapses by more than an order
of magnitude at Vmin (a 24.1 % total on-chip reduction) and drops a further
~40 % at Vcrash, while the non-BRAM components are unchanged.
"""

import pytest

from conftest import run_once, save_report
from repro.accelerator import AcceleratorPowerModel
from repro.analysis import ExperimentReport
from repro.fpga import FpgaChip


@pytest.mark.benchmark(group="fig10")
def test_fig10_power_breakdown(benchmark):
    def body():
        model = AcceleratorPowerModel(chip=FpgaChip.build("VC707"), bram_utilization=0.708)
        cal = model.calibration
        rows = model.figure10_rows()
        report = ExperimentReport(
            "fig10_power_breakdown", "On-chip power breakdown at Vnom / Vmin / Vcrash (Fig. 10)"
        )
        components = ["bram", "clocking", "dsp", "logic_routing", "io_other"]
        section = report.new_section(
            "breakdown (W)", ["operating_point"] + components + ["total_W", "reduction_vs_Vnom_%"]
        )
        for label, voltage in (("Vnom", cal.vnom_v), ("Vmin", cal.vmin_bram_v), ("Vcrash", cal.vcrash_bram_v)):
            breakdown = rows[label]
            section.add_row(
                f"{label} ({voltage:.2f} V)",
                *[breakdown[c] for c in components],
                sum(breakdown.values()),
                100.0 * model.total_reduction_fraction(voltage),
            )
        section.add_note(
            "paper: >10x BRAM power reduction at Vmin = 24.1 % total on-chip reduction; "
            "a further ~40 % of BRAM power saved at Vcrash"
        )
        save_report(report)
        return model

    model = run_once(benchmark, body)
    cal = model.calibration
    assert model.bram_reduction_factor(cal.vmin_bram_v) > 10
    assert model.total_reduction_fraction(cal.vmin_bram_v) == pytest.approx(0.241, abs=0.02)
    assert model.bram_savings_between(cal.vmin_bram_v, cal.vcrash_bram_v) == pytest.approx(0.40, abs=0.08)
