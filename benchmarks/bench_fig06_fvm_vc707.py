"""Fig. 6 — Fault Variation Map of VC707, VCCBRAM swept from Vmin to Vcrash.

Builds the physical fault map of the VC707 die, renders a coarse ASCII view
of it, and summarizes the spatial non-uniformity that the ICBP mitigation
relies on.
"""

import pytest

from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.harness import UndervoltingExperiment


@pytest.mark.benchmark(group="fig06")
def test_fig06_fvm_vc707(benchmark, chips, fields):
    chip = chips["VC707"]
    field = fields["VC707"]

    def body():
        experiment = UndervoltingExperiment(chip, fault_field=field, runs_per_step=3)
        fvm = experiment.extract_fvm()
        report = ExperimentReport(
            "fig06_fvm_vc707", "Fault Variation Map of VC707, Vmin -> Vcrash (Fig. 6)"
        )
        summary = report.new_section(
            "map summary",
            ["brams", "swept_voltages", "never_faulty_%", "low_class_%", "high_class_%"],
        )
        clustering = fvm.clustering()
        summary.add_row(
            fvm.n_brams,
            len(fvm.voltages_v),
            100.0 * fvm.never_faulty_fraction(),
            100.0 * clustering.fraction("low"),
            100.0 * clustering.fraction("high"),
        )
        hottest = report.new_section(
            "ten most vulnerable physical BRAMs", ["bram_index", "x", "y", "faults_at_Vcrash"]
        )
        counts = fvm.counts_at_lowest_voltage()
        for index in sorted(range(fvm.n_brams), key=lambda i: -counts[i])[:10]:
            x, y = chip.floorplan.coordinates(index)
            hottest.add_row(index, x, y, int(counts[index]))
        ascii_section = report.new_section("ASCII rendering (. low, o mid, # high, blank empty site)", ["map"])
        ascii_section.add_row("\n" + fvm.ascii_map(chip.floorplan))
        save_report(report)
        return fvm

    fvm = run_once(benchmark, body)
    assert fvm.n_brams == 2060
    assert fvm.never_faulty_fraction() == pytest.approx(0.389, abs=0.06)
    assert max(fvm.voltages_v) == pytest.approx(0.61)
    assert min(fvm.voltages_v) == pytest.approx(0.54)
