"""Figs. 1 & 7 unobserved vs observed — the observability layer costs
under 2% on the fleet campaign path with tracing off (the null recorder
is the default), and under 10% fully instrumented (JSON-lines trace file
plus live metrics registry).

Acceptance benchmark for :mod:`repro.obs`.  Two claims over the
``fleet16-fast`` guardband campaign (the CI smoke fleet):

* **off is free** — with the null recorder installed (the default), the
  instrumentation amounts to one shared no-op context manager per span
  site.  Measured directly: the per-call cost of a null ``span()``,
  multiplied by the number of records a fully traced run actually emits,
  must stay under 2% of the campaign's wall-clock;
* **on is cheap** — running the same campaign with a trace recorder
  writing every span *and* the metrics registry collecting must finish
  within 10% of the untraced wall-clock (min-of-3 on both sides, which
  is what makes the comparison robust to scheduler noise).
"""

import shutil
import tempfile
import time
from pathlib import Path

import pytest

from _emit import emit_json
from conftest import run_once, save_report
from repro.analysis import ExperimentReport
from repro.campaign import preset_spec, run_campaign
from repro.obs import enable, disable, build_info, install_trace, reset_recorder
from repro.obs import trace as obs_trace
from repro.obs.summarize import summarize_trace

REPEATS = 3
NULL_SPAN_CALLS = 200_000


def _campaign_wall_s() -> float:
    """One fresh fleet16-fast campaign run, serial, in a throwaway root."""
    root = Path(tempfile.mkdtemp(prefix="obs-bench-"))
    try:
        t0 = time.perf_counter()
        run_campaign(preset_spec("fleet16-fast"), root=root, scheduler="serial")
        return time.perf_counter() - t0
    finally:
        shutil.rmtree(root, ignore_errors=True)


@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark):
    def body():
        report = ExperimentReport(
            "obs_overhead",
            "observability overhead on the fleet16-fast campaign path",
        )

        # --- baseline: the default null recorder --------------------------
        base_wall = min(_campaign_wall_s() for _ in range(REPEATS))

        # --- fully instrumented: trace file + metrics registry ------------
        traced_wall = float("inf")
        n_records = 0
        for _ in range(REPEATS):
            with tempfile.TemporaryDirectory(prefix="obs-bench-") as tmp:
                trace_path = Path(tmp) / "trace.jsonl"
                install_trace(trace_path)
                build_info("bench", enable())
                try:
                    wall = _campaign_wall_s()
                finally:
                    disable()
                    reset_recorder()
                traced_wall = min(traced_wall, wall)
                n_records = summarize_trace(str(trace_path))["n_records"]

        # --- the null recorder's measured per-call cost -------------------
        t0 = time.perf_counter()
        for _ in range(NULL_SPAN_CALLS):
            with obs_trace.span("bench.noop", die="x"):
                pass
        null_span_s = (time.perf_counter() - t0) / NULL_SPAN_CALLS

        null_overhead = n_records * null_span_s / base_wall
        traced_overhead = traced_wall / base_wall - 1.0

        section = report.new_section("overhead", ["metric", "value"])
        section.add_row("campaign wall, null recorder (s)", round(base_wall, 4))
        section.add_row("campaign wall, fully instrumented (s)", round(traced_wall, 4))
        section.add_row("trace records per run", n_records)
        section.add_row("null span cost (ns/call)", round(1e9 * null_span_s, 1))
        section.add_row("tracing-off overhead (%)", round(100 * null_overhead, 4))
        section.add_row("fully instrumented overhead (%)", round(100 * max(0.0, traced_overhead), 2))

        assert null_overhead < 0.02, (
            f"null-recorder overhead {100 * null_overhead:.3f}% >= 2%"
        )
        assert traced_overhead < 0.10, (
            f"instrumented overhead {100 * traced_overhead:.2f}% >= 10%"
        )
        emit_json(
            "obs_overhead",
            {"trace_records": n_records},
            extra={"null_span_ns": round(1e9 * null_span_s, 1)},
        )
        return report

    report = run_once(benchmark, body)
    save_report(report)
