#!/usr/bin/env python3
"""Markdown link checker for the project documentation.

Scans markdown files for inline links and images (``[text](target)``),
resolves every relative target against the linking file's directory, and
reports targets that do not exist on disk.  External links (``http://``,
``https://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped — the goal is to keep the README/docs cross-references from rotting
as files move, not to probe the network.

Usage::

    python tools/check_links.py                 # default file set
    python tools/check_links.py README.md docs  # explicit files/directories

Exit status is non-zero when any link is broken.  ``tests/test_docs.py``
runs the same check as part of tier 1; CI runs this script directly.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files checked when the command line names none.
DEFAULT_TARGETS = ("README.md", "docs", "benchmarks/README.md")

#: Inline markdown links/images: [text](target) or ![alt](target).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(targets: Iterable["str | Path"]) -> List[Path]:
    """Expand files/directories into the markdown files to check."""
    files: List[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md" and path.exists():
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {target}")
    return files


def links_in(text: str) -> List[str]:
    """Every inline link target in a markdown document."""
    return LINK_PATTERN.findall(text)


def broken_links(files: Iterable[Path]) -> List[str]:
    """Human-readable ``file: target`` entries for every dead relative link."""
    problems: List[str] = []
    for markdown in files:
        for target in links_in(markdown.read_text()):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (markdown.parent / relative).resolve()
            if not resolved.exists():
                try:
                    shown = markdown.relative_to(REPO_ROOT)
                except ValueError:
                    shown = markdown
                problems.append(f"{shown}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    files = markdown_files(argv or DEFAULT_TARGETS)
    problems = broken_links(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files, {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
