#!/usr/bin/env python
"""Fail CI when a benchmark's count metrics regress past the committed baseline.

Every smoke benchmark emits machine-readable counters to
``benchmarks/results/BENCH_<name>.json`` (see ``benchmarks/_emit.py``); the
committed baselines live in ``benchmarks/baselines/``.  This guard compares
each emitted result against its baseline and fails when

* a metric present in the baseline is missing from the current result,
* a result has no committed baseline (commit one alongside a new benchmark),
* or a count metric exceeds its baseline by more than
  :data:`REGRESSION_TOLERANCE` — counts are lower-is-better (backend
  crossings, kernel calls, evaluations), and a zero baseline must stay zero.

Metrics are deterministic Python-call / evaluation counts, never wall-clock
times, so the guard cannot flake on a loaded CI runner.  Baselines whose
benchmark did not run in this invocation only produce a warning, so partial
local runs stay usable; improvements beyond the tolerance are reported with
a hint to refresh the baseline.

Usage::

    python tools/check_bench_regression.py \
        [--results benchmarks/results] [--baselines benchmarks/baselines]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: A count metric may grow this fraction past its baseline before the
#: guard fails.  Counts are deterministic, so the slack only absorbs
#: intentional small growth (an extra probe after a search tweak), not noise.
REGRESSION_TOLERANCE = 0.30

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(path: pathlib.Path) -> dict:
    with path.open() as handle:
        document = json.load(handle)
    if document.get("version") != 1:
        raise SystemExit(f"{path}: unsupported benchmark-result version")
    return document


def compare(name: str, current: dict, baseline: dict) -> tuple[list, list]:
    """Compare one result's metrics; returns (failures, notes)."""
    failures, notes = [], []
    current_metrics = current.get("metrics", {})
    for key, base in sorted(baseline.get("metrics", {}).items()):
        value = current_metrics.get(key)
        if value is None:
            failures.append(f"{name}.{key}: metric vanished (baseline {base})")
            continue
        if base == 0:
            if value > 0:
                failures.append(f"{name}.{key}: {value} regressed from a zero baseline")
            continue
        ratio = value / base
        if ratio > 1.0 + REGRESSION_TOLERANCE:
            failures.append(
                f"{name}.{key}: {value} vs baseline {base} "
                f"(+{100 * (ratio - 1):.0f}% > {100 * REGRESSION_TOLERANCE:.0f}% tolerance)"
            )
        elif ratio < 1.0 - REGRESSION_TOLERANCE:
            notes.append(
                f"{name}.{key}: {value} vs baseline {base} "
                f"({100 * (1 - ratio):.0f}% better — consider refreshing the baseline)"
            )
    for key in sorted(set(current_metrics) - set(baseline.get("metrics", {}))):
        notes.append(f"{name}.{key}: new metric ({current_metrics[key]}), not yet in baseline")
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "results",
    )
    parser.add_argument(
        "--baselines", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
    )
    args = parser.parse_args(argv)

    results = sorted(args.results.glob("BENCH_*.json"))
    if not results:
        print(f"error: no BENCH_*.json results under {args.results}", file=sys.stderr)
        return 1

    failures: list[str] = []
    notes: list[str] = []
    compared = 0
    for path in results:
        current = _load(path)
        name = current.get("benchmark", path.stem)
        baseline_path = args.baselines / path.name
        if not baseline_path.exists():
            failures.append(
                f"{name}: no committed baseline at {baseline_path} — "
                "commit one with the benchmark"
            )
            continue
        fail, note = compare(name, current, _load(baseline_path))
        failures.extend(fail)
        notes.extend(note)
        compared += 1
        status = "FAIL" if fail else "ok"
        print(f"[{status}] {name}: {len(current.get('metrics', {}))} metrics checked")

    for baseline_path in sorted(args.baselines.glob("BENCH_*.json")):
        if not (args.results / baseline_path.name).exists():
            notes.append(f"{baseline_path.name}: baseline present but benchmark did not run")

    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} benchmark result(s) within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
