"""Golden regression tests: the paper-figure numbers, frozen as JSON.

These lock the *current* reproduced values of the headline artefacts —
guardband tables for all four boards, the KC705 die-to-die FVM comparison
(Fig. 7), and fleet guardband percentiles — as committed snapshots under
``tests/golden/``.  Any change to the fault model, calibration, batch
engine or search subsystem that moves one of these numbers fails loudly
here; an *intentional* recalibration refreshes the snapshots with::

    python -m pytest tests/test_goldens.py --update-goldens

The guardband golden runs through the adaptive search path on purpose: the
bisection certificates guarantee it equals the exhaustive walk, so this
file simultaneously pins the paper numbers and the equivalence contract.
"""

import pytest

from repro.campaign import CampaignSpec, CampaignStore, ChipGroup, build_report, run_campaign
from repro.fpga import FpgaChip, platform_names
from repro.harness import UndervoltingExperiment
from repro.fpga.voltage import VCCBRAM, VCCINT


class TestGuardbandGoldens:
    def test_guardband_table_all_platforms(self, golden):
        table = {}
        for platform in platform_names():
            experiment = UndervoltingExperiment(FpgaChip.build(platform), runs_per_step=3)
            rails = {}
            for rail in (VCCBRAM, VCCINT):
                measurement = experiment.discover_guardband_adaptive(rail=rail).measurement
                rails[rail] = {
                    "vnom_v": measurement.nominal_v,
                    "vmin_v": measurement.vmin_v,
                    "vcrash_v": measurement.vcrash_v,
                    "guardband_fraction": measurement.guardband_fraction,
                    "power_reduction_factor_at_vmin": (
                        measurement.power_reduction_factor_at_vmin
                    ),
                }
            table[platform] = rails
        golden("guardband_table", table)


class TestFvmSimilarityGolden:
    def test_kc705_pair_comparison(self, golden):
        maps = {}
        for platform in ("KC705-A", "KC705-B"):
            experiment = UndervoltingExperiment(FpgaChip.build(platform), runs_per_step=2)
            maps[platform] = experiment.extract_fvm()
        comparison = maps["KC705-A"].compare(maps["KC705-B"])
        payload = {
            "comparison": comparison,
            "statistics_a": maps["KC705-A"].statistics(),
            "statistics_b": maps["KC705-B"].statistics(),
        }
        golden("fvm_similarity_kc705", payload)


class TestFleetPercentileGoldens:
    def test_small_fleet_guardband_percentiles(self, golden, tmp_path):
        spec = CampaignSpec(
            name="golden-fleet",
            groups=(
                ChipGroup(
                    platform="ZC702",
                    serials=(
                        "630851561533-44019",
                        "SIM-ZC702-0001",
                        "SIM-ZC702-0002",
                        "SIM-ZC702-0003",
                    ),
                ),
            ),
            sweep="guardband",
            runs_per_step=2,
        )
        run_campaign(spec, root=tmp_path, use_processes=False)
        report = build_report(CampaignStore(spec.name, tmp_path), spec)
        payload = {
            metric: distribution.as_dict()
            for metric, distribution in report.fleet.items()
        }
        golden("fleet_percentiles_zc702", payload)
