"""Tests for the JSON-lines trace recorder and the null default."""

import json
import os

import pytest

from repro.obs import (
    NULL_RECORDER,
    JsonlTraceRecorder,
    get_recorder,
    install_trace,
    reset_recorder,
)
from repro.obs import trace as trace_module


@pytest.fixture()
def recorder(tmp_path):
    recorder = install_trace(tmp_path / "trace.jsonl")
    yield recorder
    reset_recorder()


def read_lines(recorder):
    recorder.close()
    with open(recorder.path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle.read().splitlines()]


class TestNullDefault:
    def test_null_recorder_is_the_default(self):
        assert get_recorder() is NULL_RECORDER
        assert not NULL_RECORDER.enabled

    def test_null_span_is_one_shared_object(self):
        first = trace_module.span("anything", die=1)
        second = trace_module.span("else")
        assert first is second
        with first:
            pass  # no file, no error

    def test_install_and_reset_swap_the_process_recorder(self, tmp_path):
        recorder = install_trace(tmp_path / "t.jsonl")
        try:
            assert get_recorder() is recorder
            assert recorder.enabled
        finally:
            reset_recorder()
        assert get_recorder() is NULL_RECORDER


class TestSpanStructure:
    def test_nested_spans_chain_parent_ids(self, recorder):
        with trace_module.span("outer", kind="root"):
            with trace_module.span("inner", kind="leaf"):
                pass
        inner, outer = read_lines(recorder)
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert inner["labels"] == {"kind": "leaf"}
        assert inner["duration_s"] >= 0.0
        assert inner["pid"] == os.getpid()

    def test_sibling_spans_share_a_parent(self, recorder):
        with trace_module.span("parent"):
            with trace_module.span("first"):
                pass
            with trace_module.span("second"):
                pass
        first, second, parent = read_lines(recorder)
        assert first["parent_id"] == parent["span_id"]
        assert second["parent_id"] == parent["span_id"]

    def test_interleaved_exits_do_not_leak_stack_entries(self, recorder):
        # Concurrent request spans on one event-loop thread can exit out
        # of LIFO order; the stack must still drain to empty.
        a = recorder.span("a").__enter__()
        b = recorder.span("b").__enter__()
        a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        assert recorder.current_span_id() is None

    def test_events_attach_to_the_open_span(self, recorder):
        with trace_module.span("work") as span:
            trace_module.event("progress", done=3)
        event, work = read_lines(recorder)
        assert event["kind"] == "event"
        assert event["fields"] == {"done": 3}
        assert event["parent_id"] == span.span_id

    def test_record_writes_premeasured_spans(self, recorder):
        recorder.record("sched.task", 1.0, 0.25, {"index": 0}, parent_id="x-1")
        (line,) = read_lines(recorder)
        assert line["kind"] == "span"
        assert line["duration_s"] == 0.25
        assert line["parent_id"] == "x-1"


class TestBoundedFiles:
    def test_max_records_caps_the_file_with_one_truncation_note(self, tmp_path):
        recorder = JsonlTraceRecorder(tmp_path / "t.jsonl", max_records=2)
        for index in range(5):
            recorder.event("tick", index=index)
        lines = read_lines(recorder)
        assert len(lines) == 3
        assert lines[-1]["name"] == "trace.truncated"
        assert lines[-1]["fields"] == {"max_records": 2}

    def test_max_records_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceRecorder(tmp_path / "t.jsonl", max_records=0)


class TestForkedWriters:
    def test_forked_children_write_disjoint_ids_to_one_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = JsonlTraceRecorder(path)
        with recorder.span("parent.work"):
            pids = []
            for _ in range(2):
                pid = os.fork()
                if pid == 0:  # child
                    with recorder.span("child.work"):
                        pass
                    os._exit(0)
                pids.append(pid)
            for pid in pids:
                os.waitpid(pid, 0)
        recorder.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        span_ids = [line["span_id"] for line in lines]
        assert len(span_ids) == len(set(span_ids)) == 3
        assert len({line["pid"] for line in lines}) == 3
        # Children inherited the parent's open span via the forked stack.
        parent = next(line for line in lines if line["name"] == "parent.work")
        for child in (line for line in lines if line["name"] == "child.work"):
            assert child["parent_id"] == parent["span_id"]
