"""Tests for the progress event stream and the legacy-callback shim."""

import json

from repro.campaign import CampaignSpec, ChipGroup, run_campaign
from repro.obs import EventStream, ProgressEvent, callback_shim, install_trace, reset_recorder


class TestEventStream:
    def test_subscribers_receive_events_in_order(self):
        stream = EventStream(record_trace=False)
        seen = []
        stream.subscribe(lambda event: seen.append(("a", event.name)))
        stream.subscribe(lambda event: seen.append(("b", event.name)))
        stream.emit("tick", n=1)
        assert seen == [("a", "tick"), ("b", "tick")]

    def test_emit_returns_the_event_with_its_fields(self):
        stream = EventStream(record_trace=False)
        event = stream.emit("campaign.progress", unit_id="u1", done=2, pending=3)
        assert event == ProgressEvent(
            name="campaign.progress",
            fields={"unit_id": "u1", "done": 2, "pending": 3},
        )

    def test_unsubscribe_handle_removes_the_subscriber(self):
        stream = EventStream(record_trace=False)
        seen = []
        unsubscribe = stream.subscribe(seen.append)
        stream.emit("one")
        unsubscribe()
        unsubscribe()  # idempotent
        stream.emit("two")
        assert [event.name for event in seen] == ["one"]

    def test_events_are_forwarded_to_the_trace_recorder(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = install_trace(path)
        try:
            EventStream().emit("campaign.progress", done=1)
        finally:
            reset_recorder()
        (line,) = [json.loads(raw) for raw in path.read_text().splitlines()]
        assert line["kind"] == "event"
        assert line["name"] == "campaign.progress"
        assert line["fields"] == {"done": 1}
        assert recorder.enabled


class TestCallbackShim:
    def test_shim_translates_progress_events(self):
        calls = []
        subscriber = callback_shim(
            lambda unit_id, done, pending: calls.append((unit_id, done, pending))
        )
        subscriber(ProgressEvent(
            "campaign.progress", {"unit_id": "u1", "done": 1, "pending": 4}
        ))
        assert calls == [("u1", 1, 4)]

    def test_shim_ignores_other_events(self):
        calls = []
        subscriber = callback_shim(lambda *args: calls.append(args))
        subscriber(ProgressEvent("campaign.wave", {"wave": 0}))
        assert calls == []


ZC702_STOCK_SERIAL = "630851561533-44019"


class TestRunCampaignIntegration:
    def spec(self):
        return CampaignSpec(
            name="obs-progress",
            groups=(ChipGroup(platform="ZC702", serials=(ZC702_STOCK_SERIAL,)),),
            sweep="guardband",
            runs_per_step=3,
        )

    def test_legacy_progress_callback_still_fires(self, tmp_path):
        calls = []
        run_campaign(
            self.spec(),
            root=tmp_path,
            scheduler="serial",
            progress=lambda unit_id, done, pending: calls.append(
                (unit_id, done, pending)
            ),
        )
        assert len(calls) == 1
        unit_id, done, total = calls[0]
        assert done == 1 and total == 1  # third arg: units pending at start
        assert len(unit_id) == 16  # the unit's deterministic digest id

    def test_event_stream_receives_campaign_progress(self, tmp_path):
        stream = EventStream(record_trace=False)
        names = []
        stream.subscribe(lambda event: names.append(event.name))
        run_campaign(self.spec(), root=tmp_path, scheduler="serial", events=stream)
        assert names == ["campaign.progress"]
