"""Tests for trace loading, summarize documents, and digest stability."""

import json

import pytest

from repro.campaign import CampaignSpec, ChipGroup, run_campaign
from repro.obs import (
    TraceError,
    install_trace,
    load_trace,
    reset_recorder,
    summarize_trace,
    trace_digest,
)
from repro.obs import trace as trace_module


def write_trace(path, records, tail=""):
    lines = [
        json.dumps(record, separators=(",", ":"), sort_keys=True)
        for record in records
    ]
    path.write_text("\n".join(lines) + "\n" + tail)


def span_record(name, span_id, parent_id=None, duration=1.0, labels=None):
    return {
        "kind": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "pid": 7,
        "t_start_s": 0.0,
        "duration_s": duration,
        "labels": labels or {},
    }


class TestLoader:
    def test_torn_final_line_is_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [span_record("a", "7-1")], tail='{"kind":"spa')
        records, warnings = load_trace(str(path))
        assert len(records) == 1
        assert len(warnings) == 1
        assert "torn final line" in warnings[0]
        assert summarize_trace(str(path))["warnings"] == warnings

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not-json\n{"kind":"span","name":"a"}\n')
        with pytest.raises(TraceError, match="line 1"):
            load_trace(str(path))

    def test_empty_file_summarizes_to_zero_counts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        document = summarize_trace(str(path))
        assert document["n_records"] == 0
        assert document["phases"] == []


class TestSummary:
    def test_self_time_excludes_direct_children(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            span_record("run", "7-1", duration=10.0),
            span_record("unit", "7-2", parent_id="7-1", duration=3.0),
            span_record("unit", "7-3", parent_id="7-1", duration=4.0),
        ])
        document = summarize_trace(str(path))
        by_phase = {row["phase"]: row for row in document["phases"]}
        assert by_phase["run"]["wall_s"] == 10.0
        assert by_phase["run"]["self_s"] == 3.0  # 10 - (3 + 4)
        assert by_phase["unit"]["n_spans"] == 2
        assert by_phase["unit"]["mean_ms"] == 3500.0
        assert document["n_processes"] == 1

    def test_events_are_counted_but_not_phased(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [
            span_record("work", "7-1"),
            {"kind": "event", "name": "tick", "span_id": "7-2",
             "parent_id": "7-1", "pid": 7, "t_start_s": 0.0, "fields": {}},
        ])
        document = summarize_trace(str(path))
        assert document["n_spans"] == 1
        assert document["n_events"] == 1
        assert [row["phase"] for row in document["phases"]] == ["work"]


class TestDigest:
    def test_digest_strips_ids_pids_and_timings(self):
        first = [span_record("a", "7-1", duration=1.0, labels={"x": 1})]
        second = [span_record("a", "9-5", duration=9.9, labels={"x": 1})]
        second[0]["pid"] = 9
        assert trace_digest(first) == trace_digest(second)

    def test_digest_is_order_insensitive_but_label_sensitive(self):
        spans = [span_record("a", "7-1", labels={"x": 1}),
                 span_record("b", "7-2", labels={"y": 2})]
        assert trace_digest(spans) == trace_digest(list(reversed(spans)))
        changed = [span_record("a", "7-1", labels={"x": 3}),
                   span_record("b", "7-2", labels={"y": 2})]
        assert trace_digest(spans) != trace_digest(changed)

    def test_events_do_not_enter_the_digest(self):
        spans = [span_record("a", "7-1")]
        with_event = spans + [
            {"kind": "event", "name": "tick", "span_id": "7-9", "pid": 7,
             "t_start_s": 0.0, "fields": {"done": 1}},
        ]
        assert trace_digest(spans) == trace_digest(with_event)


def small_spec():
    # Four dies: the scout wave covers one, leaving a three-shard warm
    # wave — enough for the process scheduler to actually fork workers
    # (single-task waves run inline in the parent).
    from repro.fpga.platform import fleet_serials

    return CampaignSpec(
        name="obs-digest",
        groups=(
            ChipGroup(platform="ZC702", serials=fleet_serials("ZC702", 4)),
        ),
        sweep="guardband",
        runs_per_step=3,
    )


class TestCampaignDigestStability:
    def run_traced(self, tmp_path, tag, **kwargs):
        trace_path = tmp_path / f"{tag}.jsonl"
        install_trace(trace_path)
        try:
            run_campaign(small_spec(), root=tmp_path / f"root-{tag}", **kwargs)
        finally:
            reset_recorder()
        return trace_path

    def test_parallel_campaign_digest_is_worker_count_invariant(self, tmp_path):
        """The stripped digest must not depend on the schedule.

        Two process-sharded runs with different worker counts must digest
        identically (ids, pids and timings are stripped; the wave/shard
        structure is deterministic), and the campaign-level span structure
        must match the serial reference run's.
        """
        two = self.run_traced(tmp_path, "w2", scheduler="process", max_workers=2)
        three = self.run_traced(tmp_path, "w3", scheduler="process", max_workers=3)
        serial = self.run_traced(tmp_path, "serial", scheduler="serial")

        doc_two = summarize_trace(str(two))
        doc_three = summarize_trace(str(three))
        assert doc_two["digest"] == doc_three["digest"]
        assert doc_two["n_processes"] >= 2
        phases = {row["phase"] for row in doc_two["phases"]}
        assert {"campaign.run", "campaign.wave", "campaign.shard",
                "campaign.unit", "sched.task"} <= phases

        def campaign_units_digest(path):
            records, _ = load_trace(str(path))
            return trace_digest([
                r for r in records
                if r.get("name") in ("campaign.shard", "campaign.unit")
            ])

        # The serial run has no waves/tasks, but the shard/unit structure
        # it traces is the reference the parallel schedules must hit.
        assert campaign_units_digest(two) == campaign_units_digest(serial)


def test_module_leaves_the_null_recorder_installed():
    assert trace_module.get_recorder() is trace_module.NULL_RECORDER


class TestBatchingBlock:
    def test_batched_trace_reports_ratio_and_requests(self, tmp_path):
        from repro.obs.summarize import render_summary_table

        path = tmp_path / "t.jsonl"
        write_trace(path, [
            span_record("sched.task", "7-1"),
            span_record("sched.task", "7-2"),
            span_record("sched.task", "7-3"),
            span_record("sched.task", "7-4"),
            span_record("engine.batch", "7-5", labels={"n": 24}),
            span_record("engine.batch", "7-6", labels={"n": "16"}),
            span_record("fleet.wave", "7-7", labels={"n": 10}),
            span_record("engine.evaluate", "7-8", labels={"kind": "probe"}),
        ])
        batching = summarize_trace(str(path))["batching"]
        assert batching["n_batch_spans"] == 2
        assert batching["n_wave_spans"] == 1
        assert batching["n_sched_tasks"] == 4
        assert batching["n_inline_evaluations"] == 1
        assert batching["batched_requests"] == 50
        assert batching["sched_tasks_per_batch"] == 2.0
        assert batching["requests_per_batch"] == round(50 / 3, 4)
        table = render_summary_table(summarize_trace(str(path)))
        assert "sched.task/engine.batch ratio 2.0" in table
        assert "settled 50 requests" in table

    def test_unbatched_trace_reports_off(self, tmp_path):
        from repro.obs.summarize import render_summary_table

        path = tmp_path / "t.jsonl"
        write_trace(path, [span_record("engine.evaluate", "7-1")])
        document = summarize_trace(str(path))
        assert document["batching"]["sched_tasks_per_batch"] is None
        assert document["batching"]["batched_requests"] == 0
        assert "no batched crossings" in render_summary_table(document)

    def test_batching_block_never_moves_the_digest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [span_record("engine.batch", "7-1", labels={"n": 5})])
        document = summarize_trace(str(path))
        assert document["digest"] == trace_digest(load_trace(str(path))[0])
