"""Tests for the legacy-telemetry → metrics-registry adapters."""

from repro.exec import EngineCounters
from repro.obs import (
    MetricsRegistry,
    bind_engine_counters,
    bind_service_stats,
    build_info,
    disable,
    enable,
)
from repro.service.stats import ServiceStats


class TestEngineCounterBinding:
    def test_counters_mirror_into_the_event_family(self):
        registry = MetricsRegistry()
        counters = EngineCounters()
        bind_engine_counters(counters, registry)
        counters.add(requests=5, cache_hits=2, backend_evaluations=3)
        text = registry.render()
        assert 'repro_engine_events_total{event="requests"} 5' in text
        assert 'repro_engine_events_total{event="cache_hits"} 2' in text
        assert 'repro_engine_events_total{event="backend_evaluations"} 3' in text

    def test_multiple_sources_are_summed_fleet_wide(self):
        registry = MetricsRegistry()
        first, second = EngineCounters(), EngineCounters()
        bind_engine_counters(first, registry)
        bind_engine_counters(second, registry)
        first.add(requests=1)
        second.add(requests=2)
        assert 'repro_engine_events_total{event="requests"} 3' in registry.render()

    def test_binding_the_same_source_twice_counts_once(self):
        registry = MetricsRegistry()
        counters = EngineCounters()
        bind_engine_counters(counters, registry)
        bind_engine_counters(counters, registry)
        counters.add(requests=4)
        assert 'repro_engine_events_total{event="requests"} 4' in registry.render()

    def test_no_registry_means_no_op(self):
        # The global registry is off: binding must neither fail nor leak.
        assert bind_engine_counters(EngineCounters()) is None

    def test_binds_to_the_enabled_global_registry(self):
        counters = EngineCounters()
        try:
            registry = enable()
            bind_engine_counters(counters)
            counters.add(requests=7)
            assert (
                'repro_engine_events_total{event="requests"} 7'
                in registry.render()
            )
        finally:
            disable()


class TestServiceStatsBinding:
    def test_requests_errors_and_occupancy_mirror(self):
        registry = MetricsRegistry()
        stats = ServiceStats()
        bind_service_stats(stats, registry)
        stats.record("/healthz", 0.001, ok=True)
        stats.record("/healthz", 0.002, ok=True)
        stats.record("/v1/guardband", 0.005, ok=False)
        text = registry.render()
        assert 'repro_requests_total{endpoint="/healthz"} 2' in text
        assert 'repro_request_errors_total{endpoint="/healthz"} 0' in text
        assert 'repro_request_errors_total{endpoint="/v1/guardband"} 1' in text
        assert 'repro_latency_ring_occupancy{endpoint="/healthz"} 2' in text
        assert "repro_service_uptime_seconds" in text


class TestBuildInfo:
    def test_version_label_with_value_one(self):
        registry = MetricsRegistry()
        build_info("1.2.3", registry)
        assert 'repro_build_info{version="1.2.3"} 1' in registry.render()
