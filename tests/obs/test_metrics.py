"""Tests for the metrics registry and its Prometheus text exposition."""

import math

import pytest

from repro.obs import (
    MetricsError,
    MetricsRegistry,
    active,
    disable,
    enable,
    get_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_unlabeled_counter_renders_bare(self, registry):
        counter = registry.counter("repro_widgets_total", "Widgets made.")
        counter.inc()
        counter.inc(2)
        text = registry.render()
        assert "# HELP repro_widgets_total Widgets made." in text
        assert "# TYPE repro_widgets_total counter" in text
        assert "repro_widgets_total 3" in text

    def test_labeled_counter_renders_sorted_label_pairs(self, registry):
        family = registry.counter("repro_events_total", "Events.", ("kind",))
        family.labels(kind="write").inc()
        family.labels(kind="read").inc(4)
        text = registry.render()
        assert 'repro_events_total{kind="read"} 4' in text
        assert 'repro_events_total{kind="write"} 1' in text

    def test_counter_rejects_negative_increment(self, registry):
        counter = registry.counter("repro_ticks_total", "Ticks.")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_label_values_are_escaped(self, registry):
        family = registry.counter("repro_paths_total", "Paths.", ("path",))
        family.labels(path='a"b\\c\nd').inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()


class TestGauges:
    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_depth", "Queue depth.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert "repro_depth 12" in registry.render()

    def test_non_finite_values_render_prometheus_spellings(self, registry):
        gauge = registry.gauge("repro_odd", "Odd values.")
        gauge.set(math.inf)
        assert "repro_odd +Inf" in registry.render()
        gauge.set(math.nan)
        assert "repro_odd NaN" in registry.render()


class TestHistograms:
    def test_buckets_are_cumulative_and_end_with_inf(self, registry):
        histogram = registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.0625, 0.5, 5.0):  # binary-exact, so the sum is too
            histogram.observe(value)
        text = registry.render()
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_sum 5.5625" in text

    def test_labeled_histogram_keeps_per_label_buckets(self, registry):
        family = registry.histogram(
            "repro_req_seconds", "Request latency.", ("endpoint",), buckets=(1.0,)
        )
        family.labels(endpoint="/a").observe(0.5)
        family.labels(endpoint="/b").observe(2.0)
        text = registry.render()
        assert 'repro_req_seconds_bucket{endpoint="/a",le="1"} 1' in text
        assert 'repro_req_seconds_bucket{endpoint="/b",le="1"} 0' in text


class TestRegistryContract:
    def test_invalid_metric_name_is_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("bad-name", "Nope.")

    def test_redefinition_with_different_shape_is_rejected(self, registry):
        registry.counter("repro_things_total", "Things.", ("kind",))
        with pytest.raises(MetricsError):
            registry.gauge("repro_things_total", "Things.", ("kind",))
        with pytest.raises(MetricsError):
            registry.counter("repro_things_total", "Things.", ("other",))

    def test_same_definition_returns_same_family(self, registry):
        first = registry.counter("repro_same_total", "Same.")
        second = registry.counter("repro_same_total", "Same.")
        assert first is second

    def test_render_is_sorted_by_family_and_terminated(self, registry):
        registry.counter("repro_zz_total", "Last.").inc()
        registry.counter("repro_aa_total", "First.").inc()
        text = registry.render()
        assert text.index("repro_aa_total") < text.index("repro_zz_total")
        assert text.endswith("\n")

    def test_callbacks_run_once_per_render_and_dedupe_by_key(self, registry):
        calls = []
        registry.register_callback(lambda: calls.append("a"), key="k")
        registry.register_callback(lambda: calls.append("b"), key="k")
        registry.render()
        assert calls == ["a"]


class TestGlobalRegistry:
    def test_off_by_default_and_toggle(self):
        assert not active()
        assert get_registry() is None
        try:
            registry = enable()
            assert active()
            assert get_registry() is registry
        finally:
            disable()
        assert get_registry() is None
