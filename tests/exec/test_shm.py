"""Zero-copy fault-table sharing: export, attach, compute, release.

The mmap export must be lossless (attached columns equal the built arrays
bit for bit), produce identical kernel results through an attached table,
and integrate with the backend's ``share_table`` worker-spec path so
process-scheduled batches answer without rebuilding cell populations.
"""

import numpy as np
import pytest

from repro.core.batch import cached_fault_field
from repro.exec import ExecutionEngine, REGION, EvalRequest, SimulatedBackend
from repro.exec.shm import SharedTableSpec, attach_table, export_table, release
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM


@pytest.fixture(scope="module")
def built():
    chip = FpgaChip.build("ZC702")
    field = cached_fault_field(chip)
    return chip, field, field.batch.table


def test_export_attach_roundtrip_is_lossless(built):
    _chip, _field, table = built
    spec = export_table(table)
    try:
        attached = attach_table(spec)
        assert attached.n_brams == table.n_brams
        assert attached.n_cells == table.n_cells
        for column in ("bram_ids", "cols", "thresholds_v", "one_to_zero"):
            original = np.asarray(getattr(table, column))
            mapped = np.asarray(getattr(attached, column))
            assert mapped.dtype == original.dtype
            assert np.array_equal(mapped, original)
    finally:
        release(spec)


def test_attached_table_answers_kernels_identically(built):
    _chip, field, table = built
    spec = export_table(table)
    try:
        attached = attach_table(spec)
        # An adopted mmap table must reproduce the in-memory kernel exactly.
        reference = field.batch.sorted_observable_thresholds(0xFFFF).copy()
        chip = FpgaChip.build("ZC702")
        other = cached_fault_field(chip)
        other.batch.adopt_table(attached)
        assert np.array_equal(
            other.batch.sorted_observable_thresholds(0xFFFF), reference
        )
    finally:
        release(spec)


def test_attach_rejects_wrong_cell_count(built):
    _chip, _field, table = built
    spec = export_table(table)
    try:
        corrupted = SharedTableSpec(
            directory=spec.directory, n_brams=spec.n_brams,
            n_cells=spec.n_cells + 1,
        )
        with pytest.raises(ValueError, match="cells"):
            attach_table(corrupted)
    finally:
        release(spec)


def test_release_removes_the_export(built):
    import pathlib

    _chip, _field, table = built
    spec = export_table(table)
    assert pathlib.Path(spec.directory).exists()
    release(spec)
    assert not pathlib.Path(spec.directory).exists()
    # Idempotent: releasing twice is harmless.
    release(spec)


def test_share_table_spec_travels_and_workers_answer_batches(built):
    """The full path process workers take: spec + shared table -> batch."""
    from repro.exec.engine import _evaluate_spec_batch

    backend = SimulatedBackend(chip=FpgaChip.build("ZC702"))
    requests = [
        EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=round(0.60 - 0.005 * i, 4),
                    temperature_c=50.0, pattern=0xFFFF, n_runs=2)
        for i in range(6)
    ]
    reference = [backend.evaluate(request) for request in requests]

    shared_spec = backend.share_table()
    assert shared_spec is not None
    assert any(isinstance(part, SharedTableSpec) for part in shared_spec)
    # Memoized: a second call exports nothing new.
    assert backend.share_table() == shared_spec
    # Simulate a worker: rebuild from the spec (attaching, not rebuilding
    # the cell population) and answer the whole batch in one crossing.
    assert _evaluate_spec_batch(shared_spec, tuple(requests)) == reference


def test_process_scheduled_batches_match_serial(built):
    requests = [
        EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=round(0.60 - 0.005 * i, 4),
                    temperature_c=50.0, pattern=0xFFFF, n_runs=2)
        for i in range(10)
    ]
    reference = ExecutionEngine(
        SimulatedBackend(chip=FpgaChip.build("ZC702")), batch=False
    ).evaluate_many(requests)
    engine = ExecutionEngine(
        SimulatedBackend(chip=FpgaChip.build("ZC702")),
        scheduler="process", jobs=2, batch=True,
    )
    assert engine.evaluate_many(requests) == reference
