"""Property tests for batched evaluation: one kernel crossing, same answers.

``evaluate_batch`` must be observationally indistinguishable from a
sequential ``evaluate`` loop.  Asserted over randomized batches:

* **backend equivalence** — ``SimulatedBackend.evaluate_batch`` returns the
  exact evaluation list of a per-request loop for any mix of kinds
  (probes included: they fall back to the inline probe path);
* **batch-flag invariance** — ``ExecutionEngine.evaluate_many`` produces
  identical results and identical cache/dedup telemetry with batching on
  and off, over cold and pre-warmed caches, duplicate-heavy batches and
  the serial/thread/process schedulers;
* **replay equivalence** — a :class:`~repro.exec.ReplayBackend` answers
  batches with the same points its per-request path serves, and misses
  raise the same error instead of silently recomputing;
* **telemetry** — batching only ever *reduces* ``n_backend_calls``; the
  golden-pinned counters (requests, hits, evaluations, dedup) are
  untouched.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exec import (
    FVM,
    PROBE,
    REGION,
    EvalRequest,
    ExecError,
    ExecutionEngine,
    ReplayBackend,
    SimulatedBackend,
)
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM
from repro.search import EvalCache

_BACKEND = None


def backend() -> SimulatedBackend:
    global _BACKEND
    if _BACKEND is None:
        _BACKEND = SimulatedBackend(chip=FpgaChip.build("ZC702"))
    return _BACKEND


def _request(kind, v, t, p, r):
    return EvalRequest(
        kind=kind, rail=VCCBRAM, voltage_v=v, temperature_c=t, pattern=p, n_runs=r
    )


def mixed_requests(min_size=1, max_size=12, voltages=None):
    """Random batches mixing region, FVM and probe requests."""
    voltage = st.sampled_from(voltages or [round(0.53 + 0.01 * i, 2) for i in range(10)])
    temperature = st.sampled_from([50.0, 60.0, 80.0])
    pattern = st.sampled_from([0xFFFF, 0xAAAA, "FFFF"])
    runs = st.integers(min_value=1, max_value=4)
    region = st.builds(lambda v, t, p, r: _request(REGION, v, t, p, r),
                       voltage, temperature, pattern, runs)
    fvm = st.builds(lambda v, t, p: _request(FVM, v, t, p, 0),
                    voltage, temperature, pattern)
    probe = st.builds(lambda v, t, p, r: _request(PROBE, v, t, p, r),
                      voltage, temperature, pattern, runs)
    return st.lists(st.one_of(region, fvm, probe), min_size=min_size, max_size=max_size)


class TestBackendBatchEquivalence:
    @given(requests=mixed_requests())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batch_matches_sequential_loop(self, requests):
        sequential = [backend().evaluate(request) for request in requests]
        batched = backend().evaluate_batch(list(requests))
        assert batched == sequential
        for a, b in zip(batched, sequential):
            assert a.counts == b.counts
            assert a.per_bram_counts == b.per_bram_counts

    @given(requests=mixed_requests(min_size=2))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batch_is_one_kernel_call_per_pure_group_set(self, requests):
        before = backend().n_kernel_batches
        backend().evaluate_batch(list(requests))
        assert backend().n_kernel_batches == before + 1


class TestEngineBatchFlagInvariance:
    @given(
        requests=mixed_requests(),
        scheduler=st.sampled_from(["serial", "thread"]),
        jobs=st.integers(min_value=1, max_value=4),
        warm=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batch_flag_changes_nothing_observable(self, requests, scheduler, jobs, warm):
        reference = ExecutionEngine(backend(), batch=False).evaluate_many(requests)

        outcomes = {}
        for batch in (False, True):
            cache = EvalCache(platform=backend().platform, serial=backend().serial)
            # Identical cache pre-warm on both sides: the first `warm`
            # requests are evaluated (and stored) before the measured batch.
            warm_engine = ExecutionEngine(backend(), cache=cache, batch=batch)
            for request in requests[:warm]:
                warm_engine.evaluate(request)
            engine = ExecutionEngine(
                backend(), scheduler=scheduler, jobs=jobs, cache=cache, batch=batch
            )
            before = engine.counters.snapshot()
            results = engine.evaluate_many(requests)
            outcomes[batch] = (results, engine.counters.since(before))

        # The invariance claim: with identical cache state, the batch flag
        # changes nothing observable.  (Equality with the cache-less
        # reference additionally requires a cold cache — a pre-warmed probe
        # can legitimately serve a later pure request at its operating
        # point, identically in both modes.)
        assert outcomes[True][0] == outcomes[False][0]
        if warm == 0:
            for batch, (results, _delta) in outcomes.items():
                assert results == reference, f"batch={batch} changed results"
        off, on = outcomes[False][1], outcomes[True][1]
        # The golden-pinned counters are batch-invariant ...
        assert on.n_requests == off.n_requests
        assert on.n_cache_hits == off.n_cache_hits
        assert on.n_backend_evaluations == off.n_backend_evaluations
        assert on.n_deduplicated == off.n_deduplicated
        # ... and batching can only reduce the Python-level crossings.
        assert on.n_backend_calls <= off.n_backend_calls

    @given(
        requests=mixed_requests(max_size=16, voltages=[0.55, 0.56, 0.57]),
        scheduler=st.sampled_from(["serial", "thread"]),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dedup_collisions_survive_batching(self, requests, scheduler):
        """Duplicate-heavy batches (3 voltages, up to 16 requests) dedup
        identically whether the miss set is batched or not."""
        reference = ExecutionEngine(backend(), batch=False).evaluate_many(requests)
        engine = ExecutionEngine(backend(), scheduler=scheduler, jobs=3, batch=True)
        before = engine.counters.snapshot()
        assert engine.evaluate_many(requests) == reference
        delta = engine.counters.since(before)
        unique = {(r.kind, r.rail, r.voltage_v, r.temperature_c, r.pattern_text, r.n_runs)
                  for r in requests}
        assert delta.n_deduplicated == len(requests) - len(unique)
        assert delta.n_backend_evaluations == len(unique)


class TestReplayBatchEquivalence:
    @given(requests=mixed_requests())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_replay_batches_serve_the_recording(self, requests):
        # A probe records the chip's *board* temperature (it ignores the
        # requested one), so replaying it is only a store hit at that
        # temperature — pin probe requests there.
        board_t = backend().chip.board_temperature_c
        requests = [
            request if request.kind != PROBE
            else _request(PROBE, request.voltage_v, board_t,
                          request.pattern, request.n_runs)
            for request in requests
        ]
        cache = EvalCache(platform=backend().platform, serial=backend().serial)
        recorded = ExecutionEngine(backend(), cache=cache).evaluate_many(requests)

        replay = ReplayBackend.from_cache(cache)
        assert replay.evaluate_batch(list(requests)) == recorded
        assert [replay.evaluate(request) for request in requests] == recorded
        replayed = ExecutionEngine(replay, batch=True).evaluate_many(requests)
        assert replayed == recorded

    def test_replay_batch_misses_raise_not_recompute(self):
        cache = EvalCache(platform=backend().platform, serial=backend().serial)
        recorded_request = _request(REGION, 0.56, 50.0, 0xFFFF, 2)
        ExecutionEngine(backend(), cache=cache).evaluate_many([recorded_request])
        replay = ReplayBackend.from_cache(cache)
        served_before = replay.n_served
        with pytest.raises(ExecError):
            replay.evaluate_batch(
                [recorded_request, _request(REGION, 0.61, 50.0, 0xFFFF, 2)]
            )
        assert replay.n_served == served_before


@pytest.mark.parametrize("scheduler,jobs", [("serial", 1), ("thread", 4), ("process", 2)])
def test_batch_flag_invariant_under_every_scheduler(scheduler, jobs):
    """A full pure ladder answers identically, batch on vs off, on every
    scheduling substrate (process workers attach the shared mmap table)."""
    ladder = [round(0.62 - 0.005 * i, 4) for i in range(20)]
    requests = [_request(REGION, v, 50.0, 0xFFFF, 3) for v in ladder] + [
        _request(FVM, v, 50.0, 0xFFFF, 0) for v in ladder[:6]
    ]
    reference = ExecutionEngine(backend(), batch=False).evaluate_many(requests)
    for batch in (False, True):
        chip = FpgaChip.build("ZC702")
        engine = ExecutionEngine(
            SimulatedBackend(chip=chip), scheduler=scheduler, jobs=jobs, batch=batch
        )
        assert engine.evaluate_many(requests) == reference


def test_batching_collapses_backend_calls():
    """Serial batched evaluation of n distinct pure misses is ONE crossing."""
    requests = [_request(REGION, round(0.62 - 0.005 * i, 4), 50.0, 0xFFFF, 2)
                for i in range(24)]
    on = ExecutionEngine(SimulatedBackend(chip=FpgaChip.build("ZC702")), batch=True)
    on.evaluate_many(requests)
    assert on.counters.n_backend_calls == 1
    assert on.counters.n_backend_evaluations == 24

    off = ExecutionEngine(SimulatedBackend(chip=FpgaChip.build("ZC702")), batch=False)
    off.evaluate_many(requests)
    assert off.counters.n_backend_calls == 24
    # The golden-facing JSON form never carries the new engine telemetry.
    assert set(on.counters.to_dict()) == {
        "n_requests", "n_cache_hits", "n_backend_evaluations", "n_deduplicated"
    }
