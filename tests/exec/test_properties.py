"""Property tests for the backend-equivalence half of the exec contract.

Two invariants, asserted over randomized operating points and scheduling
configurations:

* **backend equivalence** — a :class:`~repro.exec.ReplayBackend` replaying
  a store recorded by the :class:`~repro.exec.SimulatedBackend` returns
  identical fault counts for every request, whatever mix of kinds, runs,
  patterns and temperatures produced the recording;
* **scheduling invariance** — the engine returns the same results for the
  same request list under every scheduler, any job count, any queue depth
  and any submission order (results are keyed by request, not by arrival).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exec import (
    FVM,
    REGION,
    EvalRequest,
    ExecutionEngine,
    ReplayBackend,
    SimulatedBackend,
)
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM
from repro.search import EvalCache

_BACKEND = None


def backend() -> SimulatedBackend:
    global _BACKEND
    if _BACKEND is None:
        _BACKEND = SimulatedBackend(chip=FpgaChip.build("ZC702"))
    return _BACKEND


def requests_strategy():
    """Random lists of pure (region/fvm) requests on the ZC702 grid."""
    voltage = st.integers(min_value=53, max_value=62).map(lambda centi: centi / 100.0)
    temperature = st.sampled_from([50.0, 60.0, 80.0])
    pattern = st.sampled_from([0xFFFF, 0xAAAA, "FFFF", "0000"])
    region = st.builds(
        lambda v, t, p, r: EvalRequest(
            kind=REGION, rail=VCCBRAM, voltage_v=v, temperature_c=t,
            pattern=p, n_runs=r,
        ),
        voltage, temperature, pattern, st.integers(min_value=1, max_value=4),
    )
    fvm = st.builds(
        lambda v, t, p: EvalRequest(
            kind=FVM, rail=VCCBRAM, voltage_v=v, temperature_c=t,
            pattern=p, n_runs=0,
        ),
        voltage, temperature, pattern,
    )
    return st.lists(st.one_of(region, fvm), min_size=1, max_size=12)


class TestBackendEquivalence:
    @given(requests=requests_strategy())
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_replay_of_recorded_store_is_bit_identical(self, requests):
        simulated = backend()
        cache = EvalCache(platform=simulated.platform, serial=simulated.serial)
        recorded = ExecutionEngine(simulated, cache=cache).evaluate_many(requests)

        replay_engine = ExecutionEngine(ReplayBackend.from_cache(cache))
        replayed = replay_engine.evaluate_many(requests)
        assert replayed == recorded
        for recorded_point, replayed_point in zip(recorded, replayed):
            assert replayed_point.counts == recorded_point.counts
            assert replayed_point.per_bram_counts == recorded_point.per_bram_counts


class TestSchedulingInvariance:
    @given(
        requests=requests_strategy(),
        scheduler=st.sampled_from(["serial", "thread"]),
        jobs=st.integers(min_value=1, max_value=5),
        queue_depth=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    )
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_scheduling_never_changes_results(self, requests, scheduler, jobs, queue_depth):
        reference = ExecutionEngine(backend()).evaluate_many(requests)
        engine = ExecutionEngine(
            backend(), scheduler=scheduler, jobs=jobs, queue_depth=queue_depth
        )
        assert engine.evaluate_many(requests) == reference

    @given(
        order=st.permutations(list(range(8))),
        jobs=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_submission_order_never_changes_per_request_results(self, order, jobs):
        voltages = [round(0.61 - 0.01 * i, 4) for i in range(8)]

        def make(vs):
            return [
                EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=v,
                            temperature_c=50.0, pattern=0xFFFF, n_runs=2)
                for v in vs
            ]
        reference = {
            p.voltage_v: p
            for p in ExecutionEngine(backend()).evaluate_many(make(voltages))
        }
        shuffled = [voltages[i] for i in order]
        points = ExecutionEngine(backend(), scheduler="thread", jobs=jobs).evaluate_many(
            make(shuffled)
        )
        assert [p.voltage_v for p in points] == shuffled
        for point in points:
            assert point == reference[point.voltage_v]


@pytest.mark.parametrize("scheduler,jobs", [("serial", 1), ("thread", 4), ("process", 2)])
def test_sweep_driver_identical_under_every_scheduler(scheduler, jobs):
    """The real sweep driver (not just raw requests) is scheduler-invariant."""
    from repro.harness import UndervoltingExperiment

    reference = UndervoltingExperiment(
        FpgaChip.build("ZC702"), runs_per_step=3
    ).critical_region_sweep(n_runs=3)
    result = UndervoltingExperiment(
        FpgaChip.build("ZC702"), runs_per_step=3, scheduler=scheduler, jobs=jobs
    ).critical_region_sweep(n_runs=3)
    assert result.as_series() == reference.as_series()
