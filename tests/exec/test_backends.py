"""Backend contract tests: simulated answers, bit-identical replay."""

import json

import pytest

from repro.exec import (
    FVM,
    PROBE,
    REGION,
    EvalRequest,
    ExecError,
    ReplayBackend,
    SimulatedBackend,
    backend_from_spec,
    rail_thresholds,
)
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.search import EvalCache


@pytest.fixture(scope="module")
def backend() -> SimulatedBackend:
    return SimulatedBackend(chip=FpgaChip.build("ZC702"))


def region_request(voltage=0.58, runs=3, pattern=0xFFFF):
    return EvalRequest(
        kind=REGION, rail=VCCBRAM, voltage_v=voltage, temperature_c=50.0,
        pattern=pattern, n_runs=runs,
    )


class TestRequestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecError):
            EvalRequest(kind="mystery", rail=VCCBRAM, voltage_v=0.6,
                        temperature_c=50.0, pattern="FFFF", n_runs=1)

    def test_fvm_requires_no_run_axis(self):
        with pytest.raises(ExecError):
            EvalRequest(kind=FVM, rail=VCCBRAM, voltage_v=0.6,
                        temperature_c=50.0, pattern="FFFF", n_runs=3)

    def test_run_bearing_kinds_need_runs(self):
        for kind in (PROBE, REGION):
            with pytest.raises(ExecError):
                EvalRequest(kind=kind, rail=VCCBRAM, voltage_v=0.6,
                            temperature_c=50.0, pattern="FFFF", n_runs=0)

    def test_pattern_keeps_its_original_spelling(self):
        request = region_request(pattern=0xFFFF)
        assert request.pattern == 0xFFFF
        assert request.pattern_text == "65535"


class TestRailThresholds:
    def test_known_rails(self, backend):
        cal = backend.calibration
        assert rail_thresholds(cal, VCCBRAM) == (cal.vmin_bram_v, cal.vcrash_bram_v)
        assert rail_thresholds(cal, VCCINT) == (cal.vmin_int_v, cal.vcrash_int_v)

    def test_unknown_rail_rejected(self, backend):
        with pytest.raises(ExecError):
            rail_thresholds(backend.calibration, "VCCAUX")


class TestSimulatedBackend:
    def test_region_matches_batch_engine(self, backend):
        request = region_request(runs=4)
        point = backend.evaluate(request)
        from repro.core.batch import OperatingGrid

        grid = OperatingGrid.from_axes((request.voltage_v,), (50.0,), runs=4)
        expected = backend.fault_field.batch.chip_counts(grid, 0xFFFF)[0, 0, :]
        assert point.counts == tuple(int(c) for c in expected)
        assert point.operational and point.bram_power_w is not None

    def test_fvm_row_matches_batch_engine(self, backend):
        request = EvalRequest(kind=FVM, rail=VCCBRAM, voltage_v=0.56,
                              temperature_c=50.0, pattern=0xFFFF, n_runs=0)
        point = backend.evaluate(request)
        from repro.core.batch import OperatingGrid

        grid = OperatingGrid.from_axes((0.56,), (50.0,))
        expected = backend.fault_field.batch.per_bram_counts(grid, 0xFFFF)[0, 0, 0, :]
        assert point.per_bram_counts == tuple(int(c) for c in expected)
        assert point.n_runs == 0 and point.counts == ()

    def test_probe_below_vcrash_is_not_operational(self, backend):
        cal = backend.calibration
        request = EvalRequest(
            kind=PROBE, rail=VCCBRAM, voltage_v=round(cal.vcrash_bram_v - 0.02, 4),
            temperature_c=50.0, pattern=0xFFFF, n_runs=3,
        )
        point = backend.evaluate(request)
        assert not point.operational and point.counts == ()

    def test_region_rejects_vccint(self, backend):
        with pytest.raises(ExecError):
            backend.evaluate(
                EvalRequest(kind=REGION, rail=VCCINT, voltage_v=0.8,
                            temperature_c=50.0, pattern=0xFFFF, n_runs=2)
            )

    def test_spec_round_trip(self, backend):
        rebuilt = backend_from_spec(backend.spec())
        request = region_request(runs=2)
        assert rebuilt.evaluate(request) == backend.evaluate(request)

    def test_custom_backend_is_not_spec_buildable(self):
        chip = FpgaChip.build("ZC702")
        custom = SimulatedBackend(chip=chip, spec_buildable=False)
        assert custom.spec() is None
        with pytest.raises(ExecError):
            backend_from_spec(None)

    def test_negative_latency_rejected(self):
        with pytest.raises(ExecError):
            SimulatedBackend(chip=FpgaChip.build("ZC702"), latency_s=-1.0)


class TestReplayBackend:
    def make_recording(self, backend, voltages=(0.58, 0.57), runs=3):
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        for voltage in voltages:
            cache.store(backend.evaluate(region_request(voltage, runs)))
        return cache

    def test_replays_recorded_points_bit_identically(self, backend):
        cache = self.make_recording(backend)
        replay = ReplayBackend.from_cache(cache)
        for voltage in (0.58, 0.57):
            request = region_request(voltage)
            assert replay.evaluate(request) == backend.evaluate(request)
        assert replay.n_served == 2

    def test_missing_point_is_loud(self, backend):
        replay = ReplayBackend.from_cache(self.make_recording(backend))
        with pytest.raises(ExecError, match="no recorded evaluation"):
            replay.evaluate(region_request(0.55))

    def test_open_single_file(self, backend, tmp_path):
        cache = self.make_recording(backend)
        path = tmp_path / "store.json"
        path.write_text(json.dumps(cache.to_document()))
        replay = ReplayBackend.open(path)
        assert replay.platform == backend.platform
        assert len(replay) == len(cache)

    def test_open_rejects_wrong_die(self, backend, tmp_path):
        cache = self.make_recording(backend)
        path = tmp_path / "store.json"
        path.write_text(json.dumps(cache.to_document()))
        with pytest.raises(ExecError, match="not platform"):
            ReplayBackend.open(path, platform="VC707")

    def test_open_missing_and_corrupt_files(self, tmp_path):
        with pytest.raises(ExecError, match="no recorded evaluation store"):
            ReplayBackend.open(tmp_path / "ghost.json")
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{broken")
        with pytest.raises(ExecError, match="not valid JSON"):
            ReplayBackend.open(corrupt)
        not_a_cache = tmp_path / "other.json"
        not_a_cache.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ExecError, match="not an evaluation-cache"):
            ReplayBackend.open(not_a_cache)

    def test_open_malformed_entries_raise_exec_error(self, tmp_path):
        # Valid JSON, valid envelope, garbage evaluations: still one clean
        # ExecError (the CLI turns it into an exit-2 line), not a KeyError.
        from repro.search import CACHE_VERSION

        malformed = tmp_path / "malformed.json"
        malformed.write_text(json.dumps({
            "version": CACHE_VERSION, "platform": "ZC702", "serial": "x",
            "entries": [{"oops": 1}],
        }))
        with pytest.raises(ExecError, match="malformed evaluations"):
            ReplayBackend.open(malformed)

    def test_open_campaign_store_directory(self, backend, tmp_path):
        cache_dir = tmp_path / "campaign" / "cache"
        cache_dir.mkdir(parents=True)
        cache = self.make_recording(backend)
        (cache_dir / "die.json").write_text(json.dumps(cache.to_document()))
        replay = ReplayBackend.open(tmp_path / "campaign")
        assert replay.serial == backend.serial
        with pytest.raises(ExecError, match="no recorded die matching"):
            ReplayBackend.open(tmp_path / "campaign", platform="VC707")
