"""Execution-engine tests: scheduling, dedup, cache-behind-engine, telemetry."""

import pytest

from repro.exec import (
    FVM,
    REGION,
    EvalRequest,
    ExecError,
    ExecutionEngine,
    ReplayBackend,
    SimulatedBackend,
    WorkScheduler,
    chunked,
)
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM
from repro.search import EvalCache, PointEvaluation


@pytest.fixture(scope="module")
def backend() -> SimulatedBackend:
    return SimulatedBackend(chip=FpgaChip.build("ZC702"))


def region_requests(voltages, runs=3):
    return [
        EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=v, temperature_c=50.0,
                    pattern=0xFFFF, n_runs=runs)
        for v in voltages
    ]


VOLTAGES = [round(0.61 - 0.01 * i, 4) for i in range(8)]


def _double(x):
    return 2 * x


class TestScheduling:
    def test_results_identical_across_schedulers(self, backend):
        requests = region_requests(VOLTAGES)
        serial = ExecutionEngine(backend).evaluate_many(requests)
        threaded = ExecutionEngine(backend, scheduler="thread", jobs=4).evaluate_many(requests)
        process = ExecutionEngine(backend, scheduler="process", jobs=2).evaluate_many(requests)
        assert serial == threaded == process

    def test_result_order_follows_request_order(self, backend):
        shuffled = [VOLTAGES[i] for i in (3, 0, 5, 1, 7, 2, 6, 4)]
        points = ExecutionEngine(backend, scheduler="thread", jobs=4).evaluate_many(
            region_requests(shuffled)
        )
        assert [p.voltage_v for p in points] == shuffled

    def test_process_scheduler_requires_spec_buildable_backend(self):
        custom = SimulatedBackend(chip=FpgaChip.build("ZC702"), spec_buildable=False)
        engine = ExecutionEngine(custom, scheduler="process", jobs=2)
        with pytest.raises(ExecError, match="spec-buildable"):
            engine.evaluate_many(region_requests(VOLTAGES))

    def test_invalid_scheduler_and_jobs_rejected(self, backend):
        with pytest.raises(ExecError):
            ExecutionEngine(backend, scheduler="gpu")
        with pytest.raises(ExecError):
            ExecutionEngine(backend, jobs=0)
        with pytest.raises(ExecError):
            WorkScheduler(queue_depth=0)

    def test_bounded_queue_preserves_order(self, backend):
        engine = ExecutionEngine(backend, scheduler="thread", jobs=3, queue_depth=1)
        points = engine.evaluate_many(region_requests(VOLTAGES))
        assert [p.voltage_v for p in points] == VOLTAGES

    def test_managed_scheduler_reuses_one_pool_across_calls(self):
        tasks = [(i,) for i in range(6)]
        with WorkScheduler(scheduler="thread", jobs=2) as work:
            first = work.map_tasks(_double, tasks)
            pool = work._pool
            second = work.map_tasks(_double, tasks)
            assert work._pool is pool  # same pool, not one per call
        assert work._pool is None  # torn down on exit
        assert first == second == [2 * i for i in range(6)]
        # Outside a context manager no pool survives the call.
        work.map_tasks(_double, tasks)
        assert work._pool is None

    def test_chunked_is_contiguous_and_complete(self):
        items = list(range(11))
        chunks = chunked(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks)
        with pytest.raises(ExecError):
            chunked(items, 0)

    def test_chunked_empty_input_yields_no_chunks(self):
        # Regression: the docstring promises no chunk is ever empty, but
        # an empty input used to come back as [[]] — one empty chunk that
        # every caller then had to filter defensively.
        assert chunked([], 3) == []
        assert chunked([], 1) == []


class TestDeduplication:
    def test_in_flight_duplicates_collapse(self, backend):
        engine = ExecutionEngine(backend)
        requests = region_requests([0.58, 0.58, 0.57, 0.58])
        points = engine.evaluate_many(requests)
        assert points[0] == points[1] == points[3]
        assert engine.counters.n_deduplicated == 2
        assert engine.counters.n_backend_evaluations == 2

    def test_same_point_different_pattern_spelling_deduplicates(self, backend):
        # 0xFFFF and "65535" stringify to the same cache key; the engine
        # must treat them as one in-flight request.
        requests = [
            EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=0.58,
                        temperature_c=50.0, pattern=0xFFFF, n_runs=2),
            EvalRequest(kind=REGION, rail=VCCBRAM, voltage_v=0.58,
                        temperature_c=50.0, pattern="65535", n_runs=2),
        ]
        engine = ExecutionEngine(backend)
        points = engine.evaluate_many(requests)
        assert points[0] == points[1]
        assert engine.counters.n_deduplicated == 1


class TestCacheBehindEngine:
    def test_cache_hits_skip_the_backend(self, backend):
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        engine = ExecutionEngine(backend, cache=cache)
        first = engine.evaluate_many(region_requests(VOLTAGES))
        evaluated = engine.counters.n_backend_evaluations
        second = engine.evaluate_many(region_requests(VOLTAGES))
        assert second == first
        assert engine.counters.n_backend_evaluations == evaluated
        assert engine.counters.n_cache_hits == len(VOLTAGES)

    def test_cache_of_wrong_die_rejected(self, backend):
        with pytest.raises(ExecError, match="belongs to die"):
            ExecutionEngine(backend, cache=EvalCache(platform="VC707", serial="x"))

    def test_mismatched_run_count_is_a_miss(self, backend):
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        engine = ExecutionEngine(backend, cache=cache)
        engine.evaluate_many(region_requests([0.58], runs=3))
        before = engine.counters.n_backend_evaluations
        engine.evaluate_many(region_requests([0.58], runs=5))
        assert engine.counters.n_backend_evaluations == before + 1

    def test_fvm_request_rejects_runless_cache_entry_without_vector(self, backend):
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        # A poisoned entry: right key shape (n_runs=0) but no per-BRAM data.
        cache.store(PointEvaluation(
            voltage_v=0.58, temperature_c=50.0, rail=VCCBRAM, pattern="65535",
            n_runs=0, counts=(), operational=True,
        ))
        engine = ExecutionEngine(backend, cache=cache)
        request = EvalRequest(kind=FVM, rail=VCCBRAM, voltage_v=0.58,
                              temperature_c=50.0, pattern=0xFFFF, n_runs=0)
        point, from_cache = engine.evaluate(request)
        assert not from_cache
        assert point.per_bram_counts is not None

    def test_with_cache_shares_backend_and_counters(self, backend):
        engine = ExecutionEngine(backend, scheduler="thread", jobs=2)
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        variant = engine.with_cache(cache)
        assert variant.backend is engine.backend
        assert variant.counters is engine.counters
        assert variant.scheduler == "thread" and variant.jobs == 2
        assert engine.with_cache(engine.cache) is engine


class TestTelemetry:
    def test_counter_deltas(self, backend):
        engine = ExecutionEngine(backend)
        before = engine.counters.snapshot()
        engine.evaluate_many(region_requests(VOLTAGES[:3]))
        delta = engine.counters.since(before)
        assert delta.n_requests == 3
        assert delta.n_backend_evaluations == 3
        assert delta.n_batches == 1

    def test_describe_block_shape(self, backend):
        engine = ExecutionEngine(backend, scheduler="thread", jobs=4)
        block = engine.describe()
        assert set(block) == {"kind", "scheduler", "jobs", "source", "counters"}
        assert block["kind"] == "simulated"
        assert set(block["counters"]) == {
            "n_requests", "n_cache_hits", "n_backend_evaluations", "n_deduplicated",
        }


class TestReplayThroughEngine:
    def test_zero_fault_model_evaluations(self, backend):
        cache = EvalCache(platform=backend.platform, serial=backend.serial)
        recorder = ExecutionEngine(backend, cache=cache)
        recorded = recorder.evaluate_many(region_requests(VOLTAGES))

        replay = ReplayBackend.from_cache(cache)
        engine = ExecutionEngine(replay)
        replayed = engine.evaluate_many(region_requests(VOLTAGES))
        assert replayed == recorded
        assert replay.n_served == len(VOLTAGES)
        # The replay run never touched a simulated backend at all.
        assert engine.backend.kind == "replay"
