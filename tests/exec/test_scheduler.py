"""Scheduler and counter correctness under failure and concurrency.

Three exec-layer contracts hardened for service use:

* ``chunked`` never produces an empty chunk (``tests/exec/test_engine.py``
  keeps the shape properties; the empty-input regression lives there too);
* ``WorkScheduler.map_tasks`` cancels and drains in-flight work when a
  task raises, so a *managed* pool (``with WorkScheduler(...)``) survives
  a failed batch and serves the next one;
* ``EngineCounters`` increments are atomic — one counters object is shared
  by every cache-variant engine of an experiment and by every per-die
  engine of the fleet service, all incrementing from concurrent threads.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exec import (
    EngineCounters,
    EvalRequest,
    ExecutionEngine,
    REGION,
    SimulatedBackend,
    WorkScheduler,
)
from repro.fpga import FpgaChip


def _slow_identity(value):
    time.sleep(0.01)
    return value


def _poison(value):
    if value == 3:
        raise ValueError(f"poisoned task {value}")
    time.sleep(0.005)
    return value


class TestMapTasksFailure:
    @pytest.mark.parametrize("scheduler", ["thread", "process"])
    def test_poison_task_propagates_and_pool_stays_usable(self, scheduler):
        tasks = [(i,) for i in range(12)]
        with WorkScheduler(scheduler=scheduler, jobs=2, queue_depth=4) as work:
            with pytest.raises(ValueError, match="poisoned task 3"):
                work.map_tasks(_poison, tasks)
            # No orphaned futures: the managed pool is immediately reusable
            # and the next batch comes back complete and in order.
            clean = work.map_tasks(_slow_identity, [(i,) for i in range(8)])
            assert clean == list(range(8))

    def test_unmanaged_pool_also_drains(self):
        work = WorkScheduler(scheduler="thread", jobs=2)
        with pytest.raises(ValueError, match="poisoned task 3"):
            work.map_tasks(_poison, [(i,) for i in range(12)])
        assert work._pool is None  # nothing survives the call

    def test_on_result_failure_drains_too(self):
        def explode(_index, _result):
            raise RuntimeError("callback failure")

        with WorkScheduler(scheduler="thread", jobs=2) as work:
            with pytest.raises(RuntimeError, match="callback failure"):
                work.map_tasks(_slow_identity, [(i,) for i in range(8)], on_result=explode)
            assert work.map_tasks(_slow_identity, [(1,), (2,)]) == [1, 2]


class TestCountersAtomicity:
    def test_concurrent_add_is_exact(self):
        counters = EngineCounters()
        n_threads, n_increments = 8, 20_000

        def hammer():
            for _ in range(n_increments):
                counters.add(requests=1, backend_evaluations=2)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.n_requests == n_threads * n_increments
        assert counters.n_backend_evaluations == 2 * n_threads * n_increments

    def test_snapshot_and_since_are_consistent(self):
        counters = EngineCounters()
        counters.add(requests=5, cache_hits=2, batches=1)
        snap = counters.snapshot()
        counters.add(requests=3, backend_evaluations=3)
        delta = counters.since(snap)
        assert delta.n_requests == 3
        assert delta.n_backend_evaluations == 3
        assert delta.n_cache_hits == 0

    def test_shared_counters_exact_under_threaded_engines(self):
        # The fleet-service shape: several engines over one die family share
        # one counters object and evaluate from concurrent threads.  Every
        # request is distinct, so the exact totals are fully determined.
        chip = FpgaChip.build("ZC702")
        backend = SimulatedBackend(chip=chip)
        shared = EngineCounters()
        engines = [
            ExecutionEngine(backend, counters=shared) for _ in range(4)
        ]
        voltages = [round(0.55 + 0.0001 * i, 6) for i in range(200)]

        def drive(engine, offset):
            for index in range(50):
                voltage = voltages[offset * 50 + index]
                engine.evaluate(
                    EvalRequest(
                        kind=REGION,
                        rail="VCCBRAM",
                        voltage_v=voltage,
                        temperature_c=26.0,
                        pattern="FFFF",
                        n_runs=2,
                    )
                )

        threads = [
            threading.Thread(target=drive, args=(engine, offset))
            for offset, engine in enumerate(engines)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.n_requests == 200
        assert shared.n_backend_evaluations == 200
        assert shared.n_cache_hits == 0
