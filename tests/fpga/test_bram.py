"""Unit and property tests for the BRAM storage model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.bram import (
    Bram,
    BramError,
    BramPool,
    CascadedMemory,
    DEFAULT_COLS,
    DEFAULT_ROWS,
    data_pattern,
)


class TestDataPattern:
    def test_ffff_pattern_is_all_ones(self):
        image = data_pattern("FFFF")
        assert image.shape == (DEFAULT_ROWS, DEFAULT_COLS)
        assert image.sum() == DEFAULT_ROWS * DEFAULT_COLS

    def test_zero_pattern_is_all_zeros(self):
        assert data_pattern(0x0000).sum() == 0

    def test_aaaa_pattern_has_half_ones(self):
        image = data_pattern("AAAA")
        assert image.sum() == DEFAULT_ROWS * DEFAULT_COLS // 2
        # 0xAAAA = 1010...: even columns (bit 15, 13, ...) hold the ones.
        assert image[0, 0] == 1
        assert image[0, 1] == 0

    def test_5555_is_complement_of_aaaa(self):
        a = data_pattern("AAAA")
        b = data_pattern("5555")
        assert np.array_equal(a + b, np.ones_like(a))

    def test_random50_is_deterministic_and_half_dense(self):
        first = data_pattern("random50")
        second = data_pattern("random50")
        assert np.array_equal(first, second)
        density = first.mean()
        assert 0.45 < density < 0.55

    def test_hex_prefix_accepted(self):
        assert np.array_equal(data_pattern("0xFFFF"), data_pattern(0xFFFF))

    def test_unknown_pattern_rejected(self):
        with pytest.raises(BramError):
            data_pattern("not-a-pattern")

    def test_too_wide_word_rejected(self):
        with pytest.raises(BramError):
            data_pattern(0x10000)


class TestBram:
    def test_geometry_defaults_match_paper(self):
        bram = Bram(index=0)
        assert bram.rows == 1024
        assert bram.cols == 16
        assert bram.n_bits == 16 * 1024
        assert bram.size_kbits == 16.0

    def test_fill_and_dump_roundtrip(self):
        bram = Bram(index=0)
        bram.fill("AAAA")
        image = bram.dump()
        assert image.sum() == bram.n_bits // 2
        # dump returns a copy, not a view
        image[0, 0] = 1 - image[0, 0]
        assert bram.dump()[0, 0] != image[0, 0]

    def test_word_write_read_roundtrip(self):
        bram = Bram(index=0)
        bram.write_word(5, 0xBEEF)
        assert bram.read_word(5) == 0xBEEF

    def test_write_words_and_read_words(self):
        bram = Bram(index=0)
        words = [1, 2, 3, 0xFFFF]
        bram.write_words(words, start_row=10)
        assert bram.read_words(start_row=10, count=4) == words

    def test_write_words_overflow_rejected(self):
        bram = Bram(index=0, rows=4)
        with pytest.raises(BramError):
            bram.write_words([1, 2, 3], start_row=2)

    def test_bit_accessors(self):
        bram = Bram(index=0)
        bram.set_bit(3, 7, 1)
        assert bram.get_bit(3, 7) == 1
        bram.set_bit(3, 7, 0)
        assert bram.get_bit(3, 7) == 0

    def test_out_of_range_accesses_rejected(self):
        bram = Bram(index=0)
        with pytest.raises(BramError):
            bram.read_word(1024)
        with pytest.raises(BramError):
            bram.get_bit(0, 16)
        with pytest.raises(BramError):
            bram.write_word(0, 1 << 16)

    def test_count_ones_tracks_pattern(self):
        bram = Bram(index=0)
        bram.fill("FFFF")
        assert bram.count_ones() == bram.n_bits
        assert bram.ones_fraction() == 1.0
        bram.clear()
        assert bram.count_ones() == 0

    def test_diff_locates_flips(self):
        bram = Bram(index=0)
        bram.fill("FFFF")
        observed = bram.dump()
        observed[10, 3] = 0
        observed[100, 15] = 0
        diffs = bram.diff(observed)
        assert (10, 3, 1, 0) in diffs
        assert (100, 15, 1, 0) in diffs
        assert len(diffs) == 2

    def test_diff_shape_mismatch_rejected(self):
        bram = Bram(index=0)
        with pytest.raises(BramError):
            bram.diff(np.zeros((2, 2), dtype=np.uint8))

    @given(word=st.integers(min_value=0, max_value=0xFFFF), row=st.integers(min_value=0, max_value=1023))
    @settings(max_examples=50, deadline=None)
    def test_word_roundtrip_property(self, word, row):
        bram = Bram(index=0)
        bram.write_word(row, word)
        assert bram.read_word(row) == word


class TestBramPool:
    def test_pool_sizes(self):
        pool = BramPool(n_brams=10)
        assert len(pool) == 10
        assert pool.total_bits == 10 * 16 * 1024
        assert pool.total_mbits == pytest.approx(10 * 16384 / 1e6)

    def test_fill_all_and_count(self):
        pool = BramPool(n_brams=3)
        pool.fill_all("FFFF")
        assert pool.count_ones() == pool.total_bits
        pool.clear_all()
        assert pool.count_ones() == 0

    def test_indexing_and_subset(self):
        pool = BramPool(n_brams=5)
        assert pool[2].index == 2
        subset = pool.subset([4, 1])
        assert [b.index for b in subset] == [4, 1]
        with pytest.raises(BramError):
            pool[5]

    def test_iteration_covers_all_blocks(self):
        pool = BramPool(n_brams=7)
        assert sorted(b.index for b in pool) == list(range(7))


class TestCascadedMemory:
    def test_depth_and_width(self):
        blocks = [Bram(index=i, rows=8, cols=16) for i in range(3)]
        memory = CascadedMemory(name="weights", blocks=blocks)
        assert memory.depth == 24
        assert memory.width == 16

    def test_flat_addressing_spans_blocks(self):
        blocks = [Bram(index=i, rows=4, cols=16) for i in range(2)]
        memory = CascadedMemory(name="weights", blocks=blocks)
        memory.write_word(5, 0x1234)  # lands in the second block, row 1
        assert blocks[1].read_word(1) == 0x1234
        assert memory.read_word(5) == 0x1234

    def test_bulk_words_roundtrip(self):
        blocks = [Bram(index=i, rows=4, cols=16) for i in range(2)]
        memory = CascadedMemory(name="weights", blocks=blocks)
        words = list(range(8))
        memory.write_words(words)
        assert memory.read_words() == words

    def test_out_of_range_rejected(self):
        memory = CascadedMemory(name="w", blocks=[Bram(index=0, rows=4, cols=16)])
        with pytest.raises(BramError):
            memory.read_word(4)
        with pytest.raises(BramError):
            memory.write_words([1, 2, 3], start=2)

    def test_empty_cascade_rejected(self):
        with pytest.raises(BramError):
            CascadedMemory(name="w", blocks=[])
