"""Tests for platform specs (Table I) and chip instances."""

import pytest

from repro.fpga.platform import (
    ALL_PLATFORMS,
    FpgaChip,
    KC705_A,
    KC705_B,
    PlatformError,
    VC707,
    ZC702,
    chip_seed,
    fleet_serials,
    fleet_spec,
    get_platform,
    platform_names,
)


class TestTableOne:
    """The specs must reproduce the published Table I entries."""

    def test_four_platforms_studied(self):
        assert len(ALL_PLATFORMS) == 4
        assert platform_names() == ["VC707", "ZC702", "KC705-A", "KC705-B"]

    def test_bram_counts_match_table1(self):
        assert VC707.n_brams == 2060
        assert ZC702.n_brams == 280
        assert KC705_A.n_brams == 890
        assert KC705_B.n_brams == 890

    def test_all_platforms_are_28nm_1v(self):
        for spec in ALL_PLATFORMS:
            assert spec.process_nm == 28
            assert spec.nominal_vccbram == pytest.approx(1.0)
            assert spec.bram_rows == 1024
            assert spec.bram_cols == 16

    def test_chip_models_match_table1(self):
        assert VC707.chip_model.startswith("XC7VX485T")
        assert ZC702.chip_model.startswith("XC7Z020")
        assert KC705_A.chip_model == KC705_B.chip_model

    def test_kc705_samples_differ_only_by_serial(self):
        assert KC705_A.serial_number != KC705_B.serial_number
        assert KC705_A.device_family == KC705_B.device_family
        assert KC705_A.n_brams == KC705_B.n_brams

    def test_table_row_rendering(self):
        row = VC707.table_row()
        assert row["Number of BRAMs"] == "2060"
        assert row["Basic Size of Each BRAM"] == "1024*16-bits"
        assert row["Manufacturing Process Technology"] == "28nm"

    def test_total_bram_capacity(self):
        assert VC707.total_bram_mbits == pytest.approx(2060 * 16384 / 1e6)
        assert VC707.bram_kbits == pytest.approx(16.0)


class TestLookup:
    def test_get_platform_case_insensitive(self):
        assert get_platform("vc707") is VC707
        assert get_platform("kc705_a") is KC705_A

    def test_unknown_platform_rejected(self):
        with pytest.raises(PlatformError):
            get_platform("VC999")

    def test_chip_seed_differs_across_dies(self):
        assert chip_seed(KC705_A) != chip_seed(KC705_B)
        assert chip_seed(KC705_A) == chip_seed(KC705_A)


class TestFpgaChip:
    def test_build_from_name(self):
        chip = FpgaChip.build("ZC702")
        assert chip.name == "ZC702"
        assert len(chip.brams) == 280
        assert chip.floorplan.n_brams == 280

    def test_rail_accessors(self):
        chip = FpgaChip.build("ZC702")
        chip.set_vccbram(0.61)
        chip.set_vccint(0.9)
        assert chip.vccbram == pytest.approx(0.61)
        assert chip.vccint == pytest.approx(0.9)

    def test_temperature_limits(self):
        chip = FpgaChip.build("ZC702")
        chip.set_temperature(80.0)
        assert chip.board_temperature_c == 80.0
        with pytest.raises(PlatformError):
            chip.set_temperature(300.0)

    def test_soft_reset_preserves_content_and_setpoints(self):
        chip = FpgaChip.build("ZC702")
        chip.brams[0].write_word(0, 0xFFFF)
        chip.set_vccbram(0.6)
        chip.soft_reset()
        assert chip.brams[0].read_word(0) == 0xFFFF
        assert chip.vccbram == pytest.approx(0.6)

    def test_describe_mentions_platform(self):
        chip = FpgaChip.build("VC707")
        assert "VC707" in chip.describe()
        assert "2060" in chip.describe()

    def test_seed_is_stable(self):
        chip_a = FpgaChip.build("KC705-A")
        chip_b = FpgaChip.build("KC705-A")
        assert chip_a.seed == chip_b.seed


class TestFleet:
    """Fleet chips: same part number, different serial, different die."""

    def test_fleet_spec_changes_only_the_serial(self):
        spec = fleet_spec("ZC702", "LAB-0042")
        assert spec.serial_number == "LAB-0042"
        assert spec.chip_model == ZC702.chip_model
        assert spec.n_brams == ZC702.n_brams

    def test_stock_serial_returns_stock_spec(self):
        assert fleet_spec("ZC702", ZC702.serial_number) is ZC702

    def test_fleet_spec_rejects_empty_serial(self):
        with pytest.raises(PlatformError):
            fleet_spec("ZC702", "   ")

    def test_fleet_serials_anchor_on_the_stock_board(self):
        serials = fleet_serials("ZC702", 3)
        assert serials == (ZC702.serial_number, "SIM-ZC702-0001", "SIM-ZC702-0002")
        assert fleet_serials("ZC702", 2, include_stock=False) == (
            "SIM-ZC702-0001",
            "SIM-ZC702-0002",
        )

    def test_fleet_serials_require_at_least_one_chip(self):
        with pytest.raises(PlatformError):
            fleet_serials("ZC702", 0)

    def test_build_with_serial_yields_a_different_die(self):
        stock = FpgaChip.build("ZC702")
        sibling = FpgaChip.build("ZC702", serial="SIM-ZC702-0001")
        assert sibling.spec.chip_model == stock.spec.chip_model
        assert sibling.seed != stock.seed
        # Same serial, same die — the seed is a pure function of the spec.
        again = FpgaChip.build("ZC702", serial="SIM-ZC702-0001")
        assert again.seed == sibling.seed
