"""Tests for resource budgets and utilization accounting."""

import pytest

from repro.fpga.platform import VC707
from repro.fpga.resources import ResourceBudget, ResourceError, Utilization


class TestResourceBudget:
    def test_from_platform_uses_table_totals(self):
        budget = ResourceBudget.from_platform(VC707)
        assert budget.bram == 2060
        assert budget.dsp == 2800
        assert budget.as_dict()["LUT"] == 607_200

    def test_as_dict_has_all_kinds(self):
        budget = ResourceBudget(bram=10, dsp=20, ff=30, lut=40)
        assert set(budget.as_dict()) == {"BRAM", "DSP", "FF", "LUT"}


class TestUtilization:
    def test_require_and_percent(self):
        budget = ResourceBudget.from_platform(VC707)
        util = Utilization(budget=budget)
        util.require("BRAM", 1459)
        assert util.percent("BRAM") == pytest.approx(70.8, abs=0.1)
        util.require("DSP", 241)
        assert util.percent("DSP") == pytest.approx(8.6, abs=0.1)

    def test_overflow_rejected(self):
        util = Utilization(budget=ResourceBudget(bram=4, dsp=1, ff=1, lut=1))
        util.require("BRAM", 3)
        with pytest.raises(ResourceError):
            util.require("BRAM", 2)

    def test_release_returns_capacity(self):
        util = Utilization(budget=ResourceBudget(bram=4, dsp=1, ff=1, lut=1))
        util.require("BRAM", 3)
        util.release("BRAM", 2)
        assert util.remaining("BRAM") == 3
        with pytest.raises(ResourceError):
            util.release("BRAM", 5)

    def test_unknown_kind_rejected(self):
        util = Utilization(budget=ResourceBudget(bram=1, dsp=1, ff=1, lut=1))
        with pytest.raises(ResourceError):
            util.require("URAM", 1)

    def test_negative_amount_rejected(self):
        util = Utilization(budget=ResourceBudget(bram=1, dsp=1, ff=1, lut=1))
        with pytest.raises(ResourceError):
            util.require("BRAM", -1)

    def test_zero_budget_fraction_is_zero(self):
        util = Utilization(budget=ResourceBudget(bram=1, dsp=0, ff=1, lut=1))
        assert util.fraction("DSP") == 0.0

    def test_report_covers_all_kinds(self):
        util = Utilization(budget=ResourceBudget(bram=10, dsp=10, ff=10, lut=10))
        util.require("FF", 5)
        report = util.report()
        assert report["FF"] == pytest.approx(50.0)
        assert set(report) == {"BRAM", "DSP", "FF", "LUT"}
