"""Tests for the design/bitstream abstraction and crash behaviour."""

import pytest

from repro.fpga.bitstream import (
    ConfigurationError,
    ConfiguredDevice,
    CrashError,
    Design,
    compile_design,
)
from repro.fpga.platform import FpgaChip
from repro.fpga.resources import ResourceBudget, ResourceError


@pytest.fixture()
def chip() -> FpgaChip:
    return FpgaChip.build("ZC702")


class TestDesign:
    def test_add_brams_and_counts(self):
        design = Design(name="d")
        design.add_brams(["a", "b", "c"], group="layer0")
        assert design.n_brams == 3
        assert design.logical_brams[0].group == "layer0"

    def test_utilization_checks_budget(self, chip):
        design = Design(name="d", dsp_used=10, ff_used=100, lut_used=100)
        design.add_brams([f"b{i}" for i in range(5)])
        util = design.utilization_on(ResourceBudget.from_platform(chip.spec))
        assert util.used["BRAM"] == 5

    def test_over_budget_design_rejected(self, chip):
        design = Design(name="d", dsp_used=10_000)
        with pytest.raises(ResourceError):
            compile_design(design, chip)


class TestCompileDesign:
    def test_compile_produces_placement(self, chip):
        design = Design(name="d")
        design.add_brams([f"b{i}" for i in range(10)])
        bitstream = compile_design(design, chip, seed=1)
        assert len(bitstream.placement) == 10
        assert bitstream.name == "d"

    def test_different_seeds_differ(self, chip):
        design = Design(name="d")
        design.add_brams([f"b{i}" for i in range(10)])
        first = compile_design(design, chip, seed=1)
        second = compile_design(design, chip, seed=2)
        assert first.placement.assignment != second.placement.assignment


class TestConfiguredDevice:
    def test_requires_bitstream(self, chip):
        device = ConfiguredDevice(chip=chip)
        with pytest.raises(ConfigurationError):
            device.check_operational()
        assert not device.is_operational

    def test_done_pin_tracks_crash_voltage(self, chip):
        design = Design(name="d")
        bitstream = compile_design(design, chip)
        device = ConfiguredDevice(chip=chip, bitstream=None, crash_voltage_v=0.53)
        device.program(bitstream)
        chip.set_vccbram(0.54)
        assert device.is_operational
        chip.set_vccbram(0.52)
        with pytest.raises(CrashError):
            device.check_operational()
        assert device.done is False

    def test_recover_restores_operation(self, chip):
        design = Design(name="d")
        device = ConfiguredDevice(chip=chip, crash_voltage_v=0.53)
        device.program(compile_design(design, chip))
        chip.set_vccbram(0.50)
        assert not device.is_operational
        device.recover()
        assert device.is_operational
        assert chip.vccbram == pytest.approx(1.0)
