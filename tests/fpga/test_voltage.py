"""Tests for voltage rails and the regulator model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.voltage import (
    DEFAULT_STEP_V,
    VCCBRAM,
    VCCINT,
    VoltageError,
    VoltageRail,
    VoltageRegulator,
)


class TestVoltageRail:
    def test_defaults_to_nominal(self):
        rail = VoltageRail(name=VCCBRAM)
        assert rail.setpoint_v == pytest.approx(1.0)
        assert rail.guardband_fraction == pytest.approx(0.0)

    def test_set_quantizes_to_resolution(self):
        rail = VoltageRail(name=VCCBRAM, resolution_v=0.005)
        applied = rail.set(0.6124)
        assert applied == pytest.approx(0.610)

    def test_limits_enforced(self):
        rail = VoltageRail(name=VCCBRAM, min_v=0.5, max_v=1.05)
        with pytest.raises(VoltageError):
            rail.set(0.3)
        with pytest.raises(VoltageError):
            rail.set(1.2)

    def test_undervolt_by_accumulates(self):
        rail = VoltageRail(name=VCCBRAM)
        rail.undervolt_by(0.2)
        rail.undervolt_by(0.1)
        assert rail.setpoint_v == pytest.approx(0.7)
        assert rail.guardband_fraction == pytest.approx(0.3)

    def test_undervolt_by_negative_rejected(self):
        rail = VoltageRail(name=VCCBRAM)
        with pytest.raises(VoltageError):
            rail.undervolt_by(-0.1)

    def test_reset_returns_to_nominal(self):
        rail = VoltageRail(name=VCCBRAM)
        rail.set(0.62)
        rail.reset()
        assert rail.setpoint_v == pytest.approx(1.0)

    def test_read_is_close_to_setpoint_and_stable(self):
        rail = VoltageRail(name=VCCBRAM)
        rail.set(0.61)
        first, second = rail.read(), rail.read()
        assert first == second
        assert abs(first - 0.61) < 0.001

    def test_inconsistent_limits_rejected(self):
        with pytest.raises(VoltageError):
            VoltageRail(name=VCCBRAM, min_v=1.2, max_v=1.0)
        with pytest.raises(VoltageError):
            VoltageRail(name=VCCBRAM, nominal_v=2.0)

    @given(target=st.floats(min_value=0.41, max_value=1.09))
    @settings(max_examples=50, deadline=None)
    def test_set_always_lands_within_resolution(self, target):
        rail = VoltageRail(name=VCCBRAM)
        applied = rail.set(target)
        assert abs(applied - target) <= rail.resolution_v / 2 + 1e-9


class TestRailClamping:
    """Edge cases at the regulator's margining limits.

    The runtime governor leans on these guarantees: commands below the
    crash floor or above the margining ceiling must be *rejected* (PMBUS
    error on hardware), never silently clamped, and quantization can never
    carry a request across a limit.
    """

    def test_exact_limits_are_inclusive(self):
        rail = VoltageRail(name=VCCBRAM, min_v=0.40, max_v=1.10)
        assert rail.set(0.40) == pytest.approx(0.40)
        assert rail.set(1.10) == pytest.approx(1.10)

    def test_one_resolution_step_beyond_either_limit_is_rejected(self):
        rail = VoltageRail(name=VCCBRAM, min_v=0.40, max_v=1.10)
        rail.set(1.10)
        with pytest.raises(VoltageError):
            rail.set(0.40 - rail.resolution_v)
        with pytest.raises(VoltageError):
            rail.set(1.10 + rail.resolution_v)
        # Failed requests leave the setpoint untouched.
        assert rail.setpoint_v == pytest.approx(1.10)

    def test_quantization_cannot_tunnel_through_a_limit(self):
        # 0.3996 quantizes to 0.400 (inside); 0.3994 to 0.399 (outside).
        rail = VoltageRail(name=VCCBRAM, min_v=0.40)
        assert rail.set(0.3996) == pytest.approx(0.40)
        with pytest.raises(VoltageError):
            rail.set(0.3994)

    def test_undervolt_by_below_the_floor_is_rejected_and_state_kept(self):
        rail = VoltageRail(name=VCCBRAM, min_v=0.40)
        rail.set(0.41)
        with pytest.raises(VoltageError):
            rail.undervolt_by(0.02)
        assert rail.setpoint_v == pytest.approx(0.41)

    def test_nominal_at_a_limit_is_allowed(self):
        rail = VoltageRail(name=VCCBRAM, nominal_v=1.10, max_v=1.10)
        assert rail.setpoint_v == pytest.approx(1.10)


class TestVoltageRegulator:
    def test_for_platform_registers_standard_rails(self):
        regulator = VoltageRegulator.for_platform()
        assert set(regulator.rails) >= {VCCBRAM, VCCINT}

    def test_duplicate_rail_rejected(self):
        regulator = VoltageRegulator.for_platform()
        with pytest.raises(VoltageError):
            regulator.add_rail(VoltageRail(name=VCCBRAM))

    def test_unknown_rail_rejected(self):
        regulator = VoltageRegulator.for_platform()
        with pytest.raises(VoltageError):
            regulator.set_voltage("VCCXYZ", 0.9)

    def test_set_and_snapshot(self):
        regulator = VoltageRegulator.for_platform()
        regulator.set_voltage(VCCBRAM, 0.61)
        snapshot = regulator.snapshot()
        assert snapshot[VCCBRAM] == pytest.approx(0.61)
        assert snapshot[VCCINT] == pytest.approx(1.0)

    def test_reset_all(self):
        regulator = VoltageRegulator.for_platform()
        regulator.set_voltage(VCCBRAM, 0.61)
        regulator.reset_all()
        assert regulator.snapshot()[VCCBRAM] == pytest.approx(1.0)

    def test_sweep_points_include_both_endpoints(self):
        regulator = VoltageRegulator.for_platform()
        points = regulator.sweep_points(VCCBRAM, 0.61, 0.54, DEFAULT_STEP_V)
        assert points[0] == pytest.approx(0.61)
        assert points[-1] == pytest.approx(0.54)
        assert len(points) == 8

    def test_sweep_points_validate_direction_and_step(self):
        regulator = VoltageRegulator.for_platform()
        with pytest.raises(VoltageError):
            regulator.sweep_points(VCCBRAM, 0.5, 0.6)
        with pytest.raises(VoltageError):
            regulator.sweep_points(VCCBRAM, 0.6, 0.5, step_v=0.0)
