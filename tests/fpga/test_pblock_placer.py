"""Tests for Pblock constraints and the BRAM placer."""

import pytest

from repro.fpga.floorplan import Floorplan
from repro.fpga.pblock import ConstraintSet, Pblock, PblockError
from repro.fpga.placer import BramPlacer, LogicalBram, PlacementError


@pytest.fixture()
def floorplan() -> Floorplan:
    return Floorplan.regular(n_brams=60, n_columns=6)


class TestPblock:
    def test_from_sites_and_allows(self):
        pblock = Pblock.from_sites("safe", [1, 2, 3], ["blockA"])
        assert pblock.capacity == 3
        assert pblock.allows(2)
        assert not pblock.allows(9)

    def test_from_region_uses_floorplan(self, floorplan):
        pblock = Pblock.from_region("corner", floorplan, (0, 1), (0, 4))
        assert pblock.capacity > 0
        assert all(floorplan.coordinates(i)[0] <= 1 for i in pblock.allowed_sites)

    def test_empty_region_rejected(self, floorplan):
        with pytest.raises(PblockError):
            Pblock.from_sites("empty", [])

    def test_constrain_adds_blocks_immutably(self):
        pblock = Pblock.from_sites("safe", [1, 2])
        extended = pblock.constrain("blockA", "blockB")
        assert extended.constrained_blocks == ("blockA", "blockB")
        assert pblock.constrained_blocks == ()

    def test_unnamed_pblock_rejected(self):
        with pytest.raises(PblockError):
            Pblock(name="", allowed_sites=frozenset({1}))


class TestConstraintSet:
    def test_lookup_by_block(self):
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("safe", [1, 2], ["blockA"]))
        assert constraints.pblock_for("blockA").name == "safe"
        assert constraints.pblock_for("blockB") is None
        assert constraints.constrained_blocks() == {"blockA"}

    def test_duplicate_names_rejected(self):
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("safe", [1]))
        with pytest.raises(PblockError):
            constraints.add(Pblock.from_sites("safe", [2]))

    def test_double_constrained_block_rejected(self):
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("a", [1], ["blockA"]))
        with pytest.raises(PblockError):
            constraints.add(Pblock.from_sites("b", [2], ["blockA"]))

    def test_len_and_iter(self):
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("a", [1]))
        constraints.add(Pblock.from_sites("b", [2]))
        assert len(constraints) == 2
        assert {p.name for p in constraints} == {"a", "b"}


class TestPlacer:
    def test_default_placement_assigns_unique_sites(self, floorplan):
        placer = BramPlacer(floorplan=floorplan, seed=1)
        blocks = [LogicalBram(name=f"b{i}") for i in range(30)]
        placement = placer.place(blocks)
        sites = placement.used_sites()
        assert len(sites) == 30
        assert len(set(sites)) == 30
        assert all(0 <= s < floorplan.n_brams for s in sites)

    def test_placement_is_deterministic_per_seed(self, floorplan):
        blocks = [LogicalBram(name=f"b{i}") for i in range(20)]
        first = BramPlacer(floorplan=floorplan, seed=3).place(blocks)
        second = BramPlacer(floorplan=floorplan, seed=3).place(blocks)
        third = BramPlacer(floorplan=floorplan, seed=4).place(blocks)
        assert first.assignment == second.assignment
        assert first.assignment != third.assignment

    def test_constrained_blocks_land_in_pblock(self, floorplan):
        blocks = [LogicalBram(name=f"b{i}") for i in range(20)]
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("safe", [2, 3, 5], ["b7", "b9"]))
        placement = BramPlacer(floorplan=floorplan, seed=0).place(blocks, constraints)
        assert placement.site_of("b7") in {2, 3, 5}
        assert placement.site_of("b9") in {2, 3, 5}
        assert placement.site_of("b7") != placement.site_of("b9")

    def test_unconstrained_blocks_avoid_reserved_sites(self, floorplan):
        blocks = [LogicalBram(name=f"b{i}") for i in range(10)]
        placement = BramPlacer(floorplan=floorplan, seed=0).place(blocks, reserved_sites=[0, 1, 2])
        assert not set(placement.used_sites()) & {0, 1, 2}

    def test_pblock_overflow_detected(self, floorplan):
        blocks = [LogicalBram(name=f"b{i}") for i in range(4)]
        constraints = ConstraintSet()
        constraints.add(Pblock.from_sites("tiny", [1], ["b0", "b1"]))
        with pytest.raises(PlacementError):
            BramPlacer(floorplan=floorplan, seed=0).place(blocks, constraints)

    def test_design_bigger_than_device_rejected(self, floorplan):
        blocks = [LogicalBram(name=f"b{i}") for i in range(floorplan.n_brams + 1)]
        with pytest.raises(PlacementError):
            BramPlacer(floorplan=floorplan, seed=0).place(blocks)

    def test_duplicate_block_names_rejected(self, floorplan):
        blocks = [LogicalBram(name="same"), LogicalBram(name="same")]
        with pytest.raises(PlacementError):
            BramPlacer(floorplan=floorplan, seed=0).place(blocks)

    def test_invalid_reserved_site_rejected(self, floorplan):
        with pytest.raises(PlacementError):
            BramPlacer(floorplan=floorplan, seed=0).place(
                [LogicalBram(name="b0")], reserved_sites=[floorplan.n_brams]
            )

    def test_placement_lookup_helpers(self, floorplan):
        blocks = [LogicalBram(name="b0"), LogicalBram(name="b1")]
        placement = BramPlacer(floorplan=floorplan, seed=0).place(blocks)
        site = placement.site_of("b0")
        assert placement.block_at(site) == "b0"
        assert placement.block_at(9999) is None
        assert "b0" in placement
        assert len(placement) == 2
        with pytest.raises(PlacementError):
            placement.site_of("missing")

    def test_replace_compilation_changes_seed(self, floorplan):
        placer = BramPlacer(floorplan=floorplan, seed=0)
        other = placer.replace_compilation(9)
        assert other.seed == 9
        assert other.floorplan is floorplan
