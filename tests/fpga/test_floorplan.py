"""Tests for the physical floorplan model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.floorplan import Floorplan, FloorplanError


class TestConstruction:
    def test_regular_floorplan_covers_all_brams(self):
        plan = Floorplan.regular(n_brams=103, n_columns=10)
        assert plan.n_brams == 103
        assert plan.n_columns == 10
        # Ragged columns: three columns get 11 rows, the rest 10.
        assert sorted(plan.rows_per_column, reverse=True)[:3] == [11, 11, 11]

    def test_empty_sites_exist_when_columns_are_ragged(self):
        plan = Floorplan.regular(n_brams=103, n_columns=10)
        assert plan.n_sites > plan.n_brams
        empty = [site for site in plan.iter_sites() if site.is_empty]
        assert len(empty) == plan.n_sites - plan.n_brams

    def test_mismatched_heights_rejected(self):
        with pytest.raises(FloorplanError):
            Floorplan(n_columns=3, rows_per_column=[1, 2])

    def test_grid_height_must_cover_tallest_column(self):
        with pytest.raises(FloorplanError):
            Floorplan(n_columns=2, rows_per_column=[4, 6], grid_height=5)

    def test_invalid_counts_rejected(self):
        with pytest.raises(FloorplanError):
            Floorplan.regular(n_brams=0, n_columns=4)
        with pytest.raises(FloorplanError):
            Floorplan.regular(n_brams=10, n_columns=0)


class TestQueries:
    @pytest.fixture(scope="class")
    def plan(self) -> Floorplan:
        return Floorplan.regular(n_brams=95, n_columns=8)

    def test_coordinate_roundtrip(self, plan):
        for index in range(plan.n_brams):
            x, y = plan.coordinates(index)
            assert plan.index_at(x, y) == index

    def test_site_names_follow_vivado_style(self, plan):
        site = plan.site_of(0)
        assert site.name == f"RAMB18_X{site.x}Y{site.y}"

    def test_unknown_index_rejected(self, plan):
        with pytest.raises(FloorplanError):
            plan.site_of(plan.n_brams)
        with pytest.raises(FloorplanError):
            plan.site_at(plan.n_columns, 0)

    def test_brams_in_column(self, plan):
        column0 = plan.brams_in_column(0)
        assert column0 == sorted(column0)
        assert all(plan.column_of(i) == 0 for i in column0)
        with pytest.raises(FloorplanError):
            plan.brams_in_column(plan.n_columns)

    def test_region_query_is_inclusive(self, plan):
        full = plan.brams_in_region((0, plan.n_columns - 1), (0, plan.grid_height - 1))
        assert len(full) == plan.n_brams
        single = plan.brams_in_region((0, 0), (0, 0))
        assert single == [plan.index_at(0, 0)]

    def test_region_with_bad_bounds_rejected(self, plan):
        with pytest.raises(FloorplanError):
            plan.brams_in_region((3, 1), (0, 0))

    def test_manhattan_distance_symmetry(self, plan):
        assert plan.manhattan_distance(0, 10) == plan.manhattan_distance(10, 0)
        assert plan.manhattan_distance(5, 5) == 0

    def test_to_grid_shape(self, plan):
        grid = plan.to_grid()
        assert len(grid) == plan.n_columns
        assert all(len(column) == plan.grid_height for column in grid)

    def test_describe_mentions_counts(self, plan):
        text = plan.describe()
        assert str(plan.n_brams) in text
        assert str(plan.n_columns) in text

    def test_iter_brams_in_index_order(self, plan):
        indices = [site.bram_index for site in plan.iter_brams()]
        assert indices == list(range(plan.n_brams))


@given(n_brams=st.integers(min_value=1, max_value=600), n_columns=st.integers(min_value=1, max_value=25))
@settings(max_examples=40, deadline=None)
def test_regular_floorplan_properties(n_brams, n_columns):
    """Every BRAM gets exactly one site and coordinates round-trip."""
    plan = Floorplan.regular(n_brams=n_brams, n_columns=n_columns)
    assert plan.n_brams == n_brams
    seen = set()
    for site in plan.iter_brams():
        assert site.bram_index not in seen
        seen.add(site.bram_index)
        assert plan.index_at(site.x, site.y) == site.bram_index
    assert len(seen) == n_brams
