"""Tests for the fixed-point representation and per-layer precision."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.fixedpoint import (
    FixedPointError,
    FixedPointFormat,
    minimum_digit_bits,
    minimum_format_for,
    per_layer_formats,
    precision_table,
    zero_bit_fraction,
)
from repro.nn.model import DenseLayer, FullyConnectedNetwork


class TestFormat:
    def test_total_bits_and_scale(self):
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        assert fmt.total_bits == 16
        assert fmt.scale == pytest.approx(2**-15)
        assert fmt.max_magnitude == pytest.approx((2**15 - 1) * 2**-15)
        assert fmt.describe() == "s1.d0.f15"

    def test_encode_decode_roundtrip_scalar(self):
        fmt = FixedPointFormat(digit_bits=4, fraction_bits=11)
        for value in (0.0, 0.5, -0.5, 3.25, -7.125, 15.0):
            decoded = fmt.decode(fmt.encode(value))
            assert decoded == pytest.approx(value, abs=fmt.scale)

    def test_saturation_at_max_magnitude(self):
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        assert fmt.decode(fmt.encode(5.0)) == pytest.approx(fmt.max_magnitude)
        assert fmt.decode(fmt.encode(-5.0)) == pytest.approx(-fmt.max_magnitude)

    def test_sign_bit_is_msb(self):
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        word = fmt.encode(-0.5)
        assert (word >> 15) & 1 == 1
        assert (fmt.encode(0.5) >> 15) & 1 == 0

    def test_decode_rejects_out_of_range_words(self):
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        with pytest.raises(FixedPointError):
            fmt.decode(1 << 16)

    def test_invalid_formats_rejected(self):
        with pytest.raises(FixedPointError):
            FixedPointFormat(digit_bits=-1, fraction_bits=10)
        with pytest.raises(FixedPointError):
            FixedPointFormat(digit_bits=0, fraction_bits=10, sign_bits=2)
        with pytest.raises(FixedPointError):
            FixedPointFormat(digit_bits=30, fraction_bits=10)

    def test_array_roundtrip_matches_scalar(self):
        fmt = FixedPointFormat(digit_bits=2, fraction_bits=13)
        values = np.array([0.1, -0.7, 2.5, -3.99, 0.0])
        words = fmt.encode_array(values)
        scalars = np.array([fmt.encode(v) for v in values])
        assert np.array_equal(words, scalars)
        decoded = fmt.decode_array(words)
        assert np.allclose(decoded, fmt.quantize_array(values))

    def test_quantization_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        values = np.random.default_rng(0).uniform(-0.9, 0.9, size=200)
        assert fmt.quantization_error(values) <= fmt.scale / 2 + 1e-12

    @given(
        value=st.floats(min_value=-7.9, max_value=7.9, allow_nan=False),
        fraction=st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, value, fraction):
        fmt = FixedPointFormat(digit_bits=3, fraction_bits=fraction)
        assert fmt.decode(fmt.encode(value)) == pytest.approx(value, abs=fmt.scale)


class TestMinimumPrecision:
    def test_digit_bits_for_subunit_weights_is_zero(self):
        assert minimum_digit_bits(np.array([0.3, -0.99, 0.0])) == 0

    def test_digit_bits_grow_with_magnitude(self):
        assert minimum_digit_bits(np.array([1.2])) == 1
        assert minimum_digit_bits(np.array([-3.7])) == 2
        assert minimum_digit_bits(np.array([9.0])) == 4

    def test_minimum_format_uses_all_16_bits(self):
        fmt = minimum_format_for(np.array([0.4, -0.2]))
        assert fmt.total_bits == 16
        assert fmt.digit_bits == 0
        assert fmt.fraction_bits == 15

    def test_too_large_weights_rejected(self):
        with pytest.raises(FixedPointError):
            minimum_format_for(np.array([1e6]), total_bits=16)

    def test_per_layer_formats_reproduce_fig9_shape(self):
        """Hidden layers stay inside (-1, 1); only the last needs digit bits."""
        layers = [
            DenseLayer(index=0, weights=np.full((4, 4), 0.4), biases=np.zeros(4)),
            DenseLayer(index=1, weights=np.full((4, 4), 0.8), biases=np.zeros(4)),
            DenseLayer(index=2, weights=np.full((4, 2), 9.0), biases=np.zeros(2)),
        ]
        network = FullyConnectedNetwork(topology=(4, 4, 4, 2), layers=layers)
        formats = per_layer_formats(network)
        assert formats[0].digit_bits == 0
        assert formats[1].digit_bits == 0
        assert formats[2].digit_bits == 4
        table = precision_table(network)
        assert table[2]["digit_bits"] == 4
        assert all(row["sign_bits"] == 1 for row in table)


class TestZeroBitFraction:
    def test_all_zero_words(self):
        assert zero_bit_fraction(np.zeros(10, dtype=np.int64)) == 1.0

    def test_all_ones_words(self):
        assert zero_bit_fraction(np.full(10, 0xFFFF, dtype=np.int64)) == 0.0

    def test_small_weights_are_bit_sparse(self):
        """Small fixed-point weights have mostly-zero bits (paper: 76.3 %)."""
        fmt = FixedPointFormat(digit_bits=0, fraction_bits=15)
        weights = np.random.default_rng(1).normal(0.0, 0.02, size=5000)
        words = fmt.encode_array(weights)
        assert zero_bit_fraction(words) > 0.6

    def test_empty_input(self):
        assert zero_bit_fraction(np.array([], dtype=np.int64)) == 1.0
