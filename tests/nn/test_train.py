"""Tests for the training loop."""

import pytest

from repro.nn.train import TrainingConfig, TrainingError, classification_error, train_network


class TestTrainingConfigValidation:
    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(batch_size=0)
        with pytest.raises(TrainingError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(TrainingError):
            TrainingConfig(momentum=1.0)


class TestTraining:
    def test_training_learns_the_small_dataset(self, trained_small_network, small_dataset):
        result = trained_small_network
        assert result.test_error < 0.15
        assert result.train_errors[-1] < result.train_errors[0]
        # classification_error helper agrees with the stored test error
        recomputed = classification_error(
            result.network, small_dataset.test_inputs, small_dataset.test_labels
        )
        assert recomputed == pytest.approx(result.test_error)

    def test_training_is_deterministic(self, small_dataset):
        config = TrainingConfig(epochs=2, seed=3)
        first = train_network(small_dataset, topology=(54, 16, 7), config=config)
        second = train_network(small_dataset, topology=(54, 16, 7), config=config)
        assert first.train_errors == second.train_errors
        assert first.test_error == second.test_error

    def test_default_topology_derived_from_dataset(self, small_dataset):
        config = TrainingConfig(epochs=1, seed=1)
        result = train_network(small_dataset, config=config)
        assert result.network.topology[0] == small_dataset.n_features
        assert result.network.topology[-1] == small_dataset.n_classes

    def test_topology_mismatch_rejected(self, small_dataset):
        with pytest.raises(TrainingError):
            train_network(small_dataset, topology=(10, 5, 7))
        with pytest.raises(TrainingError):
            train_network(small_dataset, topology=(54, 5, 3))
