"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.nn.datasets import (
    BENCHMARKS,
    DatasetError,
    load_benchmark,
    one_hot_labels,
    synthetic_forest,
    synthetic_mnist,
    synthetic_reuters,
)


class TestShapes:
    def test_mnist_dimensions_match_original(self):
        dataset = synthetic_mnist(n_train=200, n_test=50)
        assert dataset.n_features == 784  # 28 x 28
        assert dataset.n_classes == 10
        assert dataset.train_inputs.shape == (200, 784)
        assert dataset.test_inputs.shape == (50, 784)

    def test_forest_dimensions_match_original(self):
        dataset = synthetic_forest(n_train=100, n_test=30)
        assert dataset.n_features == 54
        assert dataset.n_classes == 7

    def test_reuters_dimensions(self):
        dataset = synthetic_reuters(n_train=100, n_test=30)
        assert dataset.n_features == 1000
        assert dataset.n_classes == 8

    def test_summary_counts(self):
        dataset = synthetic_forest(n_train=100, n_test=30)
        summary = dataset.summary()
        assert summary == {"features": 54, "classes": 7, "train": 100, "test": 30}


class TestDeterminismAndRanges:
    def test_same_seed_same_data(self):
        first = synthetic_mnist(n_train=100, n_test=20, seed=4)
        second = synthetic_mnist(n_train=100, n_test=20, seed=4)
        assert np.array_equal(first.train_inputs, second.train_inputs)
        assert np.array_equal(first.test_labels, second.test_labels)

    def test_different_seed_different_data(self):
        first = synthetic_mnist(n_train=100, n_test=20, seed=4)
        second = synthetic_mnist(n_train=100, n_test=20, seed=5)
        assert not np.array_equal(first.train_inputs, second.train_inputs)

    def test_inputs_are_normalized(self):
        dataset = synthetic_mnist(n_train=100, n_test=20)
        assert dataset.train_inputs.min() >= 0.0
        assert dataset.train_inputs.max() <= 1.0

    def test_labels_in_range(self):
        dataset = synthetic_reuters(n_train=100, n_test=20)
        assert dataset.train_labels.min() >= 0
        assert dataset.train_labels.max() < dataset.n_classes

    def test_all_classes_present(self):
        dataset = synthetic_mnist(n_train=500, n_test=100)
        assert set(np.unique(dataset.train_labels)) == set(range(10))

    def test_invalid_counts_rejected(self):
        with pytest.raises(DatasetError):
            synthetic_mnist(n_train=0, n_test=10)


class TestRegistryAndLabels:
    def test_registry_names_match_paper(self):
        assert set(BENCHMARKS) == {"MNIST", "Forest", "Reuters"}

    def test_load_benchmark_by_name(self):
        dataset = load_benchmark("Forest", n_train=50, n_test=10)
        assert dataset.name.startswith("Forest")
        with pytest.raises(DatasetError):
            load_benchmark("ImageNet")

    def test_one_hot_labels(self):
        dataset = synthetic_forest(n_train=50, n_test=10)
        encoded = one_hot_labels(dataset, "train")
        assert encoded.shape == (50, 7)
        assert np.array_equal(encoded.sum(axis=1), np.ones(50))
        assert np.array_equal(encoded.argmax(axis=1), dataset.train_labels)
        with pytest.raises(DatasetError):
            one_hot_labels(dataset, "validation")
