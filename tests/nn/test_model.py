"""Tests for the fully-connected network container."""

import numpy as np
import pytest

from repro.nn.model import (
    DenseLayer,
    FullyConnectedNetwork,
    ModelError,
    PAPER_TOPOLOGY,
    SCALED_TOPOLOGY,
    logsig,
    logsig_derivative,
    softmax,
)


class TestActivations:
    def test_logsig_range_and_midpoint(self):
        x = np.linspace(-100, 100, 201)
        y = logsig(x)
        assert (y >= 0).all() and (y <= 1).all()
        assert logsig(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_logsig_derivative_peaks_at_half(self):
        assert logsig_derivative(np.array([0.5]))[0] == pytest.approx(0.25)
        assert logsig_derivative(np.array([0.0]))[0] == 0.0

    def test_softmax_rows_sum_to_one(self):
        x = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        y = softmax(x)
        assert np.allclose(y.sum(axis=1), 1.0)
        assert not np.isnan(y).any()


class TestTopology:
    def test_paper_topology_matches_table3(self):
        assert PAPER_TOPOLOGY == (784, 1024, 512, 256, 128, 10)
        network = FullyConnectedNetwork.initialize(PAPER_TOPOLOGY)
        assert network.n_weight_layers == 5
        assert network.n_neurons == 2714
        # Table III: ~1.5 million weights.
        assert network.n_weights == pytest.approx(1.5e6, rel=0.05)

    def test_scaled_topology_preserves_depth(self):
        assert len(SCALED_TOPOLOGY) == len(PAPER_TOPOLOGY)
        assert SCALED_TOPOLOGY[0] == 784 and SCALED_TOPOLOGY[-1] == 10

    def test_invalid_topologies_rejected(self):
        with pytest.raises(ModelError):
            FullyConnectedNetwork(topology=(10,))
        with pytest.raises(ModelError):
            FullyConnectedNetwork(topology=(10, 0, 5))


class TestNetworkBehaviour:
    def test_initialize_is_deterministic(self):
        first = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        second = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        assert np.array_equal(first.layers[0].weights, second.layers[0].weights)

    def test_forward_output_is_probability_distribution(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        out = network.forward(np.random.default_rng(0).random((5, 10)))
        assert out.shape == (5, 3)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_forward_accepts_single_sample(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        out = network.forward(np.zeros(10))
        assert out.shape == (1, 3)

    def test_forward_checks_input_width(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        with pytest.raises(ModelError):
            network.forward(np.zeros((2, 7)))

    def test_predict_returns_class_indices(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        predictions = network.predict(np.random.default_rng(0).random((5, 10)))
        assert predictions.shape == (5,)
        assert set(predictions.tolist()).issubset({0, 1, 2})

    def test_copy_is_independent(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        clone = network.copy()
        clone.layers[0].weights[0, 0] += 1.0
        assert network.layers[0].weights[0, 0] != clone.layers[0].weights[0, 0]

    def test_layer_accessor_and_ranges(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        layer = network.layer(1)
        assert layer.n_inputs == 8 and layer.n_outputs == 3
        low, high = layer.weight_range()
        assert low <= high
        with pytest.raises(ModelError):
            network.layer(5)

    def test_summary_mentions_logsig(self):
        network = FullyConnectedNetwork.initialize((10, 8, 3), seed=1)
        summary = network.summary()
        assert "Sigmoid" in summary["activation"]
        assert summary["n_weights"] == 10 * 8 + 8 * 3


class TestDenseLayerValidation:
    def test_bias_shape_checked(self):
        with pytest.raises(ModelError):
            DenseLayer(index=0, weights=np.zeros((3, 2)), biases=np.zeros(3))

    def test_weight_dimension_checked(self):
        with pytest.raises(ModelError):
            DenseLayer(index=0, weights=np.zeros(3), biases=np.zeros(3))

    def test_layer_shape_consistency_checked(self):
        layers = [DenseLayer(index=0, weights=np.zeros((4, 2)), biases=np.zeros(2))]
        with pytest.raises(ModelError):
            FullyConnectedNetwork(topology=(4, 3), layers=layers)
