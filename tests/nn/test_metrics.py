"""Tests for classification and sparsity metrics."""

import numpy as np
import pytest

from repro.nn.metrics import (
    AccuracyDelta,
    MetricsError,
    accuracy,
    classification_error,
    confusion_matrix,
    per_class_error,
    weight_value_sparsity,
)


class TestClassificationError:
    def test_basic_error_and_accuracy(self):
        predictions = np.array([0, 1, 2, 2])
        labels = np.array([0, 1, 1, 2])
        assert classification_error(predictions, labels) == pytest.approx(0.25)
        assert accuracy(predictions, labels) == pytest.approx(0.75)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            classification_error(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            classification_error(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_diagonal_counts_correct_predictions(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, 3)
        assert matrix[0, 0] == 1
        assert matrix[2, 1] == 1
        assert matrix.sum() == 4

    def test_out_of_range_class_rejected(self):
        with pytest.raises(MetricsError):
            confusion_matrix(np.array([5]), np.array([0]), 3)

    def test_per_class_error(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        errors = per_class_error(predictions, labels, 3)
        assert errors[0] == 0.0
        assert errors[2] == pytest.approx(0.5)
        # A class absent from the labels has zero error by convention.
        errors_with_gap = per_class_error(np.array([0]), np.array([0]), 3)
        assert errors_with_gap[1] == 0.0


class TestAccuracyDelta:
    def test_error_increase(self):
        delta = AccuracyDelta(baseline_error=0.0256, perturbed_error=0.0615)
        assert delta.error_increase == pytest.approx(0.0359)
        assert delta.relative_increase == pytest.approx(0.0359 / 0.0256)

    def test_zero_baseline(self):
        assert AccuracyDelta(0.0, 0.0).relative_increase == 0.0
        assert AccuracyDelta(0.0, 0.1).relative_increase == float("inf")


class TestWeightSparsity:
    def test_sparsity_counts_small_weights(self):
        weights = [np.array([0.0, 1e-5, 0.5]), np.array([1e-4, 2.0])]
        assert weight_value_sparsity(weights, threshold=1e-3) == pytest.approx(3 / 5)

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            weight_value_sparsity([])
