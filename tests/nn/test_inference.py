"""Tests for the quantized inference engine."""

import numpy as np
import pytest

from repro.nn.inference import InferenceError


class TestQuantization:
    def test_quantized_accuracy_close_to_float(self, trained_small_network, small_dataset, quantized_small_network):
        float_error = trained_small_network.test_error
        quant_error = quantized_small_network.classification_error(
            small_dataset.test_inputs, small_dataset.test_labels
        )
        assert abs(quant_error - float_error) < 0.02

    def test_structure_preserved(self, trained_small_network, quantized_small_network):
        network = trained_small_network.network
        quantized = quantized_small_network
        assert quantized.topology == network.topology
        assert quantized.n_weight_layers == network.n_weight_layers
        assert quantized.n_weights == network.n_weights

    def test_decoded_weights_close_to_float(self, trained_small_network, quantized_small_network):
        for float_layer, quant_layer in zip(
            trained_small_network.network.layers, quantized_small_network.layers
        ):
            decoded = quant_layer.decoded_weights()
            assert np.allclose(decoded, float_layer.weights, atol=2 * quant_layer.fmt.scale)

    def test_precision_summary_covers_all_layers(self, quantized_small_network):
        summary = quantized_small_network.precision_summary()
        assert len(summary) == quantized_small_network.n_weight_layers
        assert all(row["sign_bits"] == 1 for row in summary)

    def test_zero_bit_fraction_is_high(self, quantized_small_network):
        assert quantized_small_network.zero_bit_fraction() > 0.5


class TestWordManipulation:
    def test_flat_words_roundtrip(self, quantized_small_network):
        layer = quantized_small_network.copy().layer(0)
        flat = layer.flat_words()
        layer.set_flat_words(flat)
        assert np.array_equal(layer.flat_words(), flat)

    def test_set_flat_words_validates_size(self, quantized_small_network):
        layer = quantized_small_network.copy().layer(0)
        with pytest.raises(InferenceError):
            layer.set_flat_words(np.zeros(3, dtype=np.uint32))

    def test_word_corruption_changes_decoded_weight(self, quantized_small_network):
        network = quantized_small_network.copy()
        layer = network.layer(0)
        flat = layer.flat_words()
        # Set then clear the sign bit of the largest-magnitude word.
        target = int(np.argmax(flat & 0x7FFF))
        original = layer.decoded_weights().flatten()[target]
        flat[target] = flat[target] & np.uint32(0x7FFF ^ (flat[target] & 0x4000))
        layer.set_flat_words(flat)
        corrupted = layer.decoded_weights().flatten()[target]
        assert corrupted != pytest.approx(original)

    def test_copy_is_deep(self, quantized_small_network):
        clone = quantized_small_network.copy()
        flat = clone.layer(0).flat_words()
        flat[:] = 0
        clone.layer(0).set_flat_words(flat)
        assert quantized_small_network.layer(0).flat_words().sum() > 0


class TestForwardValidation:
    def test_forward_checks_input_width(self, quantized_small_network):
        with pytest.raises(InferenceError):
            quantized_small_network.forward(np.zeros((2, 3)))

    def test_forward_single_sample(self, quantized_small_network, small_dataset):
        out = quantized_small_network.forward(small_dataset.test_inputs[0])
        assert out.shape == (1, small_dataset.n_classes)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_layer_index_validated(self, quantized_small_network):
        with pytest.raises(InferenceError):
            quantized_small_network.layer(99)
