"""Documentation consistency: benchmark index sync and markdown link health.

These tests are the tier-1 guard for the documentation satellites: the
benchmarks README must match what ``benchmarks/gen_readme.py`` generates
from the module docstrings (so the index cannot drift), every benchmark
docstring must name its paper figure/table, and every relative markdown
link in README/docs must resolve to a file that exists.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_script(relative_path, name):
    """Import a repo script (outside ``src/``) as a module."""
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / relative_path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gen_readme():
    return load_script("benchmarks/gen_readme.py", "bench_gen_readme")


@pytest.fixture(scope="module")
def check_links():
    return load_script("tools/check_links.py", "docs_check_links")


class TestBenchmarkIndex:
    def test_readme_is_in_sync_with_docstrings(self, gen_readme):
        generated = gen_readme.generate()
        on_disk = (REPO_ROOT / "benchmarks" / "README.md").read_text()
        assert on_disk == generated, (
            "benchmarks/README.md is stale; run `python benchmarks/gen_readme.py`"
        )

    def test_every_benchmark_names_its_paper_anchor(self, gen_readme):
        modules = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))
        assert modules, "no benchmark modules found"
        for path in modules:
            summary = gen_readme.summary_of(path)
            # split_summary raises SystemExit with a precise message when the
            # docstring drifts from the '<anchor> — <description>' convention.
            anchor, description = gen_readme.split_summary(path, summary)
            assert anchor and description
            assert gen_readme.ANCHOR_PATTERN.search(summary)

    def test_index_covers_every_module(self, gen_readme):
        readme = (REPO_ROOT / "benchmarks" / "README.md").read_text()
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            assert f"`{path.name}`" in readme


class TestMarkdownLinks:
    def test_no_broken_relative_links(self, check_links):
        files = check_links.markdown_files(check_links.DEFAULT_TARGETS)
        assert files, "no markdown files found"
        assert check_links.broken_links(files) == []

    def test_checker_detects_breakage(self, check_links, tmp_path):
        markdown = tmp_path / "page.md"
        markdown.write_text(
            "[ok](page.md) [dead](missing.md) [ext](https://example.com) [anchor](#x)"
        )
        problems = check_links.broken_links([markdown])
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_docs_link_the_cli_reference(self):
        # The CLI reference must stay discoverable from both entry points.
        assert "docs/cli.md" in (REPO_ROOT / "README.md").read_text()
        assert re.search(r"\(cli\.md\)", (REPO_ROOT / "docs" / "intro.md").read_text())
