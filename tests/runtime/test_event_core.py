"""Property and edge-case suite for the discrete-event simulation core.

The event core's contract is *bit-identity*: for any fleet, trace and
policy, its telemetry document — voltages, temperatures, faults, serving
splits, energy, crashes — equals the stepped reference loop's exactly
(same digest), while doing work proportional to events instead of steps.
Hypothesis drives randomized traces (piecewise-constant and per-step
ambient, bursty and zero-request loads) through all four policies against
the stepped oracle, on both a healthy fleet and a doctored one whose
characterized Vmin sits *below* the true crash voltage, so crash/recovery
cycles interleave with every other event type.  The explicit edge cases
pin the couplings that property search finds rarely: recovery completing
exactly on a heat-chamber transient crossing, windows with every chip
crashed, zero-request epochs, and ambient programs the chamber's ramp
limit can never settle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.runtime import summarize_telemetry
from repro.core.calibration import get_calibration
from repro.fpga.platform import fleet_serials
from repro.runtime import (
    POLICY_NAMES,
    FleetSimulator,
    GovernorBundle,
    WorkloadTrace,
    sparse_diurnal_trace,
)
from repro.runtime.characterization import DieCharacterization
from repro.runtime.event_core import (
    chamber_temperature_path,
    die_timelines,
    merge_timelines,
    transient_steps,
)
from repro.runtime.governor import build_policy

def _trace(requests, ambient_c, step_seconds=60.0):
    return WorkloadTrace(
        kind="synthetic",
        seed=0,
        step_seconds=step_seconds,
        requests=np.asarray(requests, dtype=np.int64),
        ambient_c=np.asarray(ambient_c, dtype=float),
    )


@pytest.fixture(scope="module")
def simulator(small_bundle, small_network):
    """Healthy 2-die fleet on a short sparse-diurnal base trace."""
    return FleetSimulator(
        small_bundle,
        small_network,
        sparse_diurnal_trace(n_steps=48, epoch_steps=8, seed=3),
    )


@pytest.fixture(scope="module")
def crashy_simulator(small_bundle, small_network):
    """Fleet doctored so undervolting policies cross the true crash line.

    Each die's characterization is rewritten with ``Vmin`` slightly below
    the calibration's true crash voltage (and ``Vcrash`` far enough down
    that the clamp floor does not save it), so static-undervolt and
    reactive reboot-thrash and predictive crashes through cold windows —
    the crash/recovery interleavings the identity proof must cover.
    """
    bundle = GovernorBundle(source="doctored")
    for die in small_bundle:
        true_crash = get_calibration(die.platform).vcrash_bram_v
        bundle.add(DieCharacterization(
            platform=die.platform,
            serial=die.serial,
            vnom_v=die.vnom_v,
            vmin_v=round(true_crash - 0.005, 6),
            vcrash_v=round(true_crash - 0.040, 6),
            itd_v_per_degc=die.itd_v_per_degc,
            ripple_margin_v=die.ripple_margin_v,
        ))
    return FleetSimulator(
        bundle,
        small_network,
        sparse_diurnal_trace(n_steps=48, epoch_steps=8, seed=3),
    )


def assert_identity(simulator, trace, policy):
    """Digest and summary of the event core must equal the stepped oracle."""
    sim = simulator.with_trace(trace)
    event_log = sim.run_event(policy)
    stepped_log = sim.run_stepped(policy)
    assert event_log.digest() == stepped_log.digest(), (
        f"{policy}: event core diverged from the stepped reference"
    )
    event_summary = summarize_telemetry(event_log).to_dict()
    stepped_summary = summarize_telemetry(stepped_log).to_dict()
    assert event_summary == stepped_summary
    return event_log


# ----------------------------------------------------------------------
# Hypothesis: randomized traces against the stepped oracle
# ----------------------------------------------------------------------
@st.composite
def traces(draw):
    """Random workload traces: epoch ambient plateaus, spiky/zero loads."""
    n_steps = draw(st.integers(min_value=8, max_value=72))
    epoch = draw(st.integers(min_value=1, max_value=16))
    n_epochs = -(-n_steps // epoch)
    levels = draw(st.lists(
        st.integers(min_value=25, max_value=95),
        min_size=n_epochs, max_size=n_epochs,
    ))
    ambient = np.repeat(np.asarray(levels, dtype=float), epoch)[:n_steps]
    requests = np.asarray(draw(st.lists(
        st.sampled_from([0, 0, 40, 400, 9000, 60000]),
        min_size=n_steps, max_size=n_steps,
    )), dtype=np.int64)
    step_seconds = draw(st.sampled_from([30.0, 60.0, 120.0]))
    return _trace(requests, ambient, step_seconds)


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(trace=traces(), policy=st.sampled_from(POLICY_NAMES))
def test_event_core_matches_stepped_on_random_traces(
    simulator, trace, policy
):
    assert_identity(simulator, trace, policy)


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(trace=traces(), policy=st.sampled_from(POLICY_NAMES))
def test_event_core_matches_stepped_through_crash_cycles(
    crashy_simulator, trace, policy
):
    assert_identity(crashy_simulator, trace, policy)


# ----------------------------------------------------------------------
# Edge cases the property search finds rarely
# ----------------------------------------------------------------------
def test_zero_request_epochs(simulator):
    requests = np.zeros(36, dtype=np.int64)
    requests[12:24] = 50_000
    trace = _trace(requests, np.full(36, 50.0))
    for policy in POLICY_NAMES:
        log = assert_identity(simulator, trace, policy)
        summary = summarize_telemetry(log)
        assert summary.served <= int(requests.sum())


def test_all_chips_crashed_windows(crashy_simulator):
    trace = _trace(np.full(40, 5_000), np.full(40, 50.0))
    log = assert_identity(crashy_simulator, trace, "static-undervolt")
    summary = summarize_telemetry(log)
    # Both dies reboot-thrash through the whole trace: every step of every
    # chip is a crash step and nothing is served.
    assert summary.crash_steps == 2 * trace.n_steps
    assert summary.served == 0


def test_recovery_completing_exactly_on_transient_crossing(crashy_simulator):
    # Crash at step 0 spans steps 0..3 (recovery 3); the governor's next
    # evaluation lands on step 4 — exactly when the ambient program jumps,
    # so the recovery event and the transient crossing coincide and must
    # drain as one evaluation, not two.
    assert crashy_simulator.crash_recovery_steps == 3
    ambient = np.full(24, 50.0)
    ambient[4:] = 80.0
    trace = _trace(np.full(24, 2_000), ambient)
    for policy in POLICY_NAMES:
        assert_identity(crashy_simulator, trace, policy)


def test_ramp_limited_never_reached_setpoints(simulator):
    # Ambient alternates across the chamber's full span faster than its
    # 5 degC/step ramp can follow: the board temperature moves every step
    # and never reaches either setpoint, so the "sparse transient" model
    # degenerates to a dense one — the event core must stay exact.
    ambient = np.where(np.arange(30) % 2 == 0, 20.0, 110.0)
    trace = _trace(np.full(30, 10_000), ambient)
    temps = chamber_temperature_path(trace)
    assert transient_steps(temps).size == trace.n_steps - 1
    for policy in ("predictive", "reactive"):
        assert_identity(simulator, trace, policy)


# ----------------------------------------------------------------------
# Sharding and merge-order invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler,jobs", [("thread", 3), ("process", 2)])
def test_sharded_digest_identical(crashy_simulator, scheduler, jobs):
    for policy in ("static-undervolt", "reactive"):
        serial_log = crashy_simulator.run_event(policy)
        sharded_log = crashy_simulator.run_event(
            policy, scheduler=scheduler, jobs=jobs
        )
        assert sharded_log.digest() == serial_log.digest()


def test_merge_is_submission_order_independent(simulator):
    policy = build_policy("reactive")
    policy.reset()
    timelines, temps = die_timelines(simulator, policy)
    reference = merge_timelines(simulator, policy, timelines, temps=temps)
    shuffled = merge_timelines(
        simulator, policy, list(reversed(timelines)), temps=temps
    )
    assert shuffled.digest() == reference.digest()


def test_merge_rejects_incomplete_or_duplicate_timelines(simulator):
    policy = build_policy("predictive")
    policy.reset()
    timelines, temps = die_timelines(simulator, policy)
    with pytest.raises(ValueError):
        merge_timelines(simulator, policy, timelines[:-1], temps=temps)
    with pytest.raises(ValueError):
        merge_timelines(
            simulator, policy, [timelines[0], timelines[0]], temps=temps
        )
