"""Tests for the workload-trace generators."""

import numpy as np
import pytest

from repro.runtime import (
    TRACE_KINDS,
    TraceError,
    batch_trace,
    build_trace,
    burst_trace,
    diurnal_trace,
)


class TestGenerators:
    def test_every_kind_builds_and_validates(self):
        for kind in TRACE_KINDS:
            trace = build_trace(kind, n_steps=50, seed=3)
            assert trace.kind == kind
            assert trace.n_steps == 50
            assert trace.requests.dtype == np.int64
            assert np.all(trace.requests >= 0)
            assert np.all(trace.ambient_c >= 20.0)
            assert np.all(trace.ambient_c <= 110.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError):
            build_trace("sinusoidal")

    def test_same_seed_is_bit_identical(self):
        first = diurnal_trace(n_steps=100, seed=11)
        second = diurnal_trace(n_steps=100, seed=11)
        assert first.digest() == second.digest()
        assert np.array_equal(first.requests, second.requests)
        assert np.array_equal(first.ambient_c, second.ambient_c)

    def test_different_seed_changes_requests(self):
        assert diurnal_trace(seed=1).digest() != diurnal_trace(seed=2).digest()

    def test_diurnal_cycles_between_trough_and_peak(self):
        trace = diurnal_trace(
            n_steps=240, period_steps=240, base_rps=100, peak_rps=1000, jitter=0.0
        )
        assert trace.requests[0] == 100
        assert trace.requests[120] == 1000
        assert trace.ambient_c.min() == pytest.approx(30.0)
        assert trace.ambient_c.max() == pytest.approx(80.0)

    def test_diurnal_trough_sits_below_reference_temperature(self):
        # The cold-transient scenario the closed-loop policies exist for.
        assert diurnal_trace().ambient_c.min() < 50.0

    def test_burst_heat_lags_the_load(self):
        trace = burst_trace(n_steps=200, seed=5, n_bursts=2, burst_steps=10)
        burst_steps = np.flatnonzero(
            trace.requests > trace.requests.min()
        )
        assert burst_steps.size > 0
        first = int(burst_steps[0])
        # Ambient peaks after the burst starts (first-order thermal lag).
        assert int(np.argmax(trace.ambient_c[: first + 40])) > first

    def test_batch_ramps_to_sustained_load(self):
        trace = batch_trace(n_steps=100, rps=500, ramp_steps=10)
        assert trace.requests[-1] == 500
        assert trace.requests[0] < 500
        assert np.all(np.diff(trace.requests.astype(float)) >= 0)

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(TraceError):
            diurnal_trace(n_steps=0)
        with pytest.raises(TraceError):
            diurnal_trace(base_rps=100, peak_rps=50)
        with pytest.raises(TraceError):
            diurnal_trace(ambient_low_c=10.0)  # below the chamber range
        with pytest.raises(TraceError):
            batch_trace(step_seconds=0.0)

    def test_to_dict_carries_provenance(self):
        trace = burst_trace(n_steps=30, seed=9)
        document = trace.to_dict()
        assert document["kind"] == "burst"
        assert document["seed"] == 9
        assert document["n_steps"] == 30
        assert document["total_requests"] == trace.total_requests
        assert document["digest"] == trace.digest()
