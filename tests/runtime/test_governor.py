"""Tests for the voltage governor and its policies."""

import pytest

from repro.fpga.platform import FpgaChip
from repro.harness.pmbus import PmbusAdapter, VOUT_COMMAND
from repro.runtime import (
    DieCharacterization,
    GovernorBundle,
    GovernorError,
    GovernorObservation,
    POLICY_NAMES,
    VoltageGovernor,
    build_policy,
    ceil_to_resolution,
)


@pytest.fixture()
def die() -> DieCharacterization:
    return DieCharacterization(
        platform="ZC702",
        serial="TEST-0001",
        vnom_v=1.0,
        vmin_v=0.61,
        vcrash_v=0.53,
        itd_v_per_degc=2.0e-4,
        ripple_margin_v=0.004,
    )


def observe(temperature_c=50.0, faults=0, setpoint=1.0, step=0):
    return GovernorObservation(
        step=step,
        temperature_c=temperature_c,
        faults_last_step=faults,
        setpoint_v=setpoint,
    )


class TestCeilToResolution:
    def test_rounds_up_never_down(self):
        assert ceil_to_resolution(0.6101) == pytest.approx(0.611)
        assert ceil_to_resolution(0.610) == pytest.approx(0.610)
        assert ceil_to_resolution(0.60999999) == pytest.approx(0.610)


class TestPolicies:
    def test_registry_builds_every_policy(self):
        for name in POLICY_NAMES:
            assert build_policy(name).name == name
        with pytest.raises(GovernorError):
            build_policy("pid")

    def test_static_nominal_never_undervolts(self, die):
        policy = build_policy("static-nominal")
        assert policy.target_voltage(die, observe(30.0)) == die.vnom_v
        assert policy.target_voltage(die, observe(80.0)) == die.vnom_v

    def test_static_undervolt_parks_at_vmin(self, die):
        policy = build_policy("static-undervolt")
        assert policy.target_voltage(die, observe(30.0)) == pytest.approx(0.61)
        assert policy.target_voltage(die, observe(80.0)) == pytest.approx(0.61)

    def test_predictive_tracks_temperature_both_ways(self, die):
        policy = build_policy("predictive")
        cold = policy.target_voltage(die, observe(30.0))
        reference = policy.target_voltage(die, observe(50.0))
        hot = policy.target_voltage(die, observe(80.0))
        assert cold > reference > hot
        # Hot silicon lets the governor dip below the characterized Vmin.
        assert hot < die.vmin_v
        # The command always clears the compensated floor plus the margin.
        for temperature, target in ((30.0, cold), (50.0, reference), (80.0, hot)):
            floor = die.compensated_vmin_v(temperature)
            assert target >= floor + die.ripple_margin_v - 1e-9

    def test_predictive_never_commands_below_the_crash_floor(self, die):
        policy = build_policy("predictive")
        target = policy.target_voltage(die, observe(125.0))
        assert target >= die.vcrash_v + policy.floor_margin_v - 1e-9

    def test_reactive_backs_off_on_faults_and_creeps_down_when_clean(self, die):
        policy = build_policy("reactive", hold_steps=2, backoff_v=0.01, probe_v=0.001)
        start = policy.target_voltage(die, observe())
        assert start == pytest.approx(die.vmin_v)
        backed = policy.target_voltage(die, observe(faults=5))
        assert backed == pytest.approx(start + 0.01)
        # Two clean steps trigger one downward probe.
        policy.target_voltage(die, observe())
        crept = policy.target_voltage(die, observe())
        assert crept == pytest.approx(backed - 0.001)

    def test_reactive_state_is_per_die_and_resettable(self, die):
        import dataclasses

        other = dataclasses.replace(die, serial="TEST-0002")
        policy = build_policy("reactive")
        policy.target_voltage(die, observe(faults=3))
        assert policy.target_voltage(other, observe()) == pytest.approx(other.vmin_v)
        policy.reset()
        assert policy.target_voltage(die, observe()) == pytest.approx(die.vmin_v)

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(GovernorError):
            build_policy("reactive", backoff_v=0.0)
        with pytest.raises(GovernorError):
            build_policy("static-undervolt", margin_v=-0.01)
        with pytest.raises(GovernorError):
            build_policy("predictive", extra_margin_v=-1.0)


class TestVoltageGovernor:
    def test_actuates_through_pmbus_and_counts_writes(self):
        chip = FpgaChip.build("ZC702")
        adapter = PmbusAdapter(chip)
        bundle = GovernorBundle()
        bundle.add(
            DieCharacterization(
                platform=chip.spec.name,
                serial=chip.spec.serial_number,
                vnom_v=1.0,
                vmin_v=0.61,
                vcrash_v=0.53,
                itd_v_per_degc=2.0e-4,
                ripple_margin_v=0.004,
            )
        )
        governor = VoltageGovernor(policy=build_policy("static-undervolt"), bundle=bundle)
        applied = governor.step(adapter, step=0, faults_last_step=0)
        assert applied == pytest.approx(0.61)
        assert chip.vccbram == pytest.approx(0.61)
        writes = adapter.commands_issued(VOUT_COMMAND)
        assert len(writes) == 1 and writes[0].rail == "VCCBRAM"
        # A redundant step issues no second VOUT_COMMAND.
        governor.step(adapter, step=1, faults_last_step=0)
        assert len(adapter.commands_issued(VOUT_COMMAND)) == 1
        assert governor.n_actuations == 1

    def test_unknown_die_is_rejected(self):
        from repro.runtime import CharacterizationError

        chip = FpgaChip.build("ZC702")
        governor = VoltageGovernor(
            policy=build_policy("static-nominal"), bundle=GovernorBundle()
        )
        with pytest.raises(CharacterizationError):
            governor.step(PmbusAdapter(chip), step=0, faults_last_step=0)
