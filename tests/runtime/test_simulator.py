"""Tests for the fleet simulator, serving model and telemetry."""

import numpy as np
import pytest

from repro.accelerator.accelerator import NnAccelerator
from repro.analysis.runtime import (
    guardband_recovery_fraction,
    policy_comparison,
    summarize_telemetry,
)
from repro.core.batch import cached_fault_field
from repro.fpga.platform import FpgaChip
from repro.runtime import (
    FleetSimulator,
    ServingModel,
    SimulationError,
    TelemetryLog,
    diurnal_trace,
)


@pytest.fixture(scope="module")
def simulator(small_bundle, small_network) -> FleetSimulator:
    trace = diurnal_trace(n_steps=120, seed=7)
    return FleetSimulator(
        small_bundle, small_network, trace, capacity_rps=900.0
    )


class TestServingModel:
    def test_matches_corrupt_words_bit_for_bit(self, small_network):
        """The vectorized fault count equals summed corrupt_words flips."""
        chip = FpgaChip.build("ZC702")
        field = cached_fault_field(chip)
        accelerator = NnAccelerator(chip=chip, network=small_network, fault_field=field)
        serving = ServingModel.from_accelerator(accelerator)
        for voltage in (0.61, 0.58, 0.55, 0.54):
            flips = 0
            for layer in accelerator.network.layers:
                flat = layer.flat_words()
                for segment in accelerator.mapping.segments_of_layer(layer.index):
                    physical = accelerator.placement.site_of(segment.logical_name)
                    words = [int(w) for w in flat[segment.word_slice()]]
                    corrupted = field.corrupt_words(physical, words, voltage)
                    flips += sum(
                        bin(a ^ b).count("1") for a, b in zip(words, corrupted)
                    )
            effective = field.itd.effective_voltage(voltage, 50.0)
            assert serving.fault_bits(effective) == flips

    def test_array_queries_match_scalar_queries(self, small_network):
        chip = FpgaChip.build("ZC702")
        accelerator = NnAccelerator(
            chip=chip, network=small_network, fault_field=cached_fault_field(chip)
        )
        serving = ServingModel.from_accelerator(accelerator)
        voltages = np.array([0.62, 0.60, 0.57, 0.54])
        batched = serving.fault_bits(voltages)
        assert batched.tolist() == [serving.fault_bits(float(v)) for v in voltages]
        assert np.all(np.diff(batched) >= 0)  # monotone: lower V, more faults


class TestFleetSimulator:
    def test_validation(self, small_bundle, small_network):
        from repro.runtime import GovernorBundle

        trace = diurnal_trace(n_steps=10)
        with pytest.raises(SimulationError):
            FleetSimulator(GovernorBundle(), small_network, trace)
        with pytest.raises(SimulationError):
            FleetSimulator(small_bundle, small_network, trace, capacity_rps=0.0)

    def test_predictive_serves_zero_faulty_inferences(self, simulator):
        log = simulator.run("predictive")
        summary = summarize_telemetry(log)
        assert summary.faulty_inferences == 0
        assert summary.crash_steps == 0
        assert summary.served == summary.requests
        recovery = guardband_recovery_fraction(
            summary, simulator.nominal_energy_j(), simulator.guardband_floor_energy_j()
        )
        assert recovery >= 0.6

    def test_static_undervolt_faults_through_cold_transients(self, simulator):
        log = simulator.run("static-undervolt")
        summary = summarize_telemetry(log)
        assert summary.faulty_inferences > 0
        # Faults coincide with boards colder than the 50 degC reference.
        faulty = log.array("faulty") > 0
        temperatures = log.array("temperatures_c")
        assert temperatures[faulty].max() < 50.0

    def test_reactive_backs_off_and_beats_static_on_faults(self, simulator):
        reactive = summarize_telemetry(simulator.run("reactive"))
        static = summarize_telemetry(simulator.run("static-undervolt"))
        assert 0 < reactive.faulty_inferences < static.faulty_inferences
        assert reactive.n_actuations > 0

    def test_static_nominal_is_the_energy_ceiling(self, simulator):
        nominal = summarize_telemetry(simulator.run("static-nominal"))
        assert nominal.faulty_inferences == 0
        assert nominal.energy_j == pytest.approx(simulator.nominal_energy_j())
        assert nominal.mean_voltage_v == pytest.approx(1.0)

    def test_runs_are_bit_identical(self, simulator):
        assert (
            simulator.run("predictive").digest()
            == simulator.run("predictive").digest()
        )

    def test_temperature_transients_are_ramp_limited(self, simulator):
        log = simulator.run("static-nominal")
        temperatures = log.array("temperatures_c")
        steps = np.abs(np.diff(temperatures, axis=1))
        assert steps.max() <= 5.0 + 1e-9

    def test_overload_counts_slo_violations(self, small_bundle, small_network):
        trace = diurnal_trace(n_steps=40, seed=7, peak_rps=4000.0)
        tight = FleetSimulator(
            small_bundle, small_network, trace, capacity_rps=200.0
        )
        summary = summarize_telemetry(tight.run("static-nominal"))
        assert summary.slo_violations > 0
        assert summary.served + summary.slo_violations == summary.requests


class TestTelemetryRoundTrip:
    def test_document_round_trip_preserves_digest(self, simulator):
        log = simulator.run("reactive")
        clone = TelemetryLog.from_document(log.to_document())
        assert clone.digest() == log.digest()
        summary, cloned = summarize_telemetry(log).to_dict(), summarize_telemetry(clone).to_dict()
        for key, value in summary.items():
            if isinstance(value, str):
                assert cloned[key] == value
            else:
                # The document rounds floats to 9 decimals; the per-step
                # rounding errors accumulate in the sums, so compare loosely.
                assert cloned[key] == pytest.approx(value, abs=1e-6)

    def test_live_log_and_document_summarize_identically(self, simulator):
        log = simulator.run("predictive")
        live = summarize_telemetry(log)          # direct-array path
        saved = summarize_telemetry(log.to_document())  # document path
        for key, value in live.to_dict().items():
            if isinstance(value, str):
                assert saved.to_dict()[key] == value
            else:
                assert saved.to_dict()[key] == pytest.approx(value, abs=1e-6)

    def test_policy_comparison_rows(self, simulator):
        logs = {name: simulator.run(name) for name in ("static-nominal", "predictive")}
        summaries = {k: summarize_telemetry(v) for k, v in logs.items()}
        rows = policy_comparison(
            summaries,
            simulator.nominal_energy_j(),
            simulator.guardband_floor_energy_j(),
        )
        assert [row["policy"] for row in rows] == ["static-nominal", "predictive"]
        assert rows[0]["guardband_recovered_fraction"] == pytest.approx(0.0, abs=1e-9)
        assert rows[1]["guardband_recovered_fraction"] >= 0.6
