"""Shared fixtures for the runtime-governor test suite.

Characterizing dies and training the served network are the expensive
parts, so both are session-scoped; individual tests build cheap traces and
simulators on top.
"""

import pytest

from repro.fpga.platform import FpgaChip, fleet_serials
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_mnist,
    train_network,
)
from repro.runtime import GovernorBundle


@pytest.fixture(scope="session")
def small_bundle() -> GovernorBundle:
    """Two characterized ZC702 dies (the stock board plus one fleet die)."""
    chips = [
        FpgaChip.build("ZC702", serial=serial)
        for serial in fleet_serials("ZC702", 2)
    ]
    return GovernorBundle.from_chips(chips, runs_per_step=3)


@pytest.fixture(scope="session")
def small_network() -> QuantizedNetwork:
    """A quickly trained quantized network that fits the ZC702 BRAM pool."""
    dataset = synthetic_mnist(n_train=300, n_test=150)
    trained = train_network(
        dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
    )
    return QuantizedNetwork.from_network(trained.network)
