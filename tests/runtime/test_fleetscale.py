"""Tests for the population-scale synthetic-fleet simulation engine.

The engine's contract mirrors the identity core one level up: the
vectorized event engine must be bit-identical to its per-die-per-step
reference loop for every policy (digests over per-die and per-step
arrays), sharding over worker processes must not change a digest, and the
calibrated population draw must be deterministic and contain the drifted
and crash-first subpopulations that keep the crash machinery honest.
"""

import numpy as np
import pytest

from repro.runtime.fleetscale import (
    FleetScaleError,
    SyntheticFleet,
    SyntheticFleetSpec,
    guardband_floor_energy_j,
    merge_shards,
    nominal_energy_j,
    simulate_fleet,
    simulate_policies,
)
from repro.runtime.governor import GovernorError, POLICY_NAMES
from repro.runtime.workload import sparse_diurnal_trace


@pytest.fixture(scope="module")
def fleet():
    return SyntheticFleet.draw(SyntheticFleetSpec(n_dies=150, seed=11))


@pytest.fixture(scope="module")
def trace():
    return sparse_diurnal_trace(n_steps=180, epoch_steps=30, seed=5)


# ----------------------------------------------------------------------
# Population draw
# ----------------------------------------------------------------------
def test_draw_is_deterministic_and_calibrated(fleet):
    again = SyntheticFleet.draw(SyntheticFleetSpec(n_dies=150, seed=11))
    for name in ("vmin_v", "vcrash_v", "true_vcrash_v", "max_threshold_v"):
        assert np.array_equal(getattr(fleet, name), getattr(again, name))
    # Characterized facts keep the bundle invariant Vcrash < Vmin < Vnom.
    assert np.all(fleet.vcrash_v < fleet.vmin_v)
    assert np.all(fleet.vmin_v < 1.0)
    assert fleet.itd_v_per_degc > 0
    assert fleet.ripple_margin_v > 0


def test_draw_contains_crash_subpopulations(fleet):
    drifted = np.sum(fleet.true_vcrash_v > fleet.vmin_v)
    crash_first = np.sum(fleet.max_threshold_v < fleet.true_vcrash_v)
    assert drifted >= 1
    assert crash_first > drifted  # drifted dies are crash-first too
    # The healthy majority still faults before it crashes.
    assert crash_first < 0.2 * fleet.n_dies


def test_spec_validation():
    with pytest.raises(FleetScaleError):
        SyntheticFleetSpec(n_dies=0)
    with pytest.raises(FleetScaleError):
        SyntheticFleetSpec(n_dies=4, utilization=1.5)


# ----------------------------------------------------------------------
# Event engine vs stepped reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_event_engine_matches_stepped_reference(fleet, trace, policy):
    event = simulate_fleet(fleet, trace, policy, core="event")
    stepped = simulate_fleet(fleet, trace, policy, core="stepped")
    assert event.digest() == stepped.digest()
    assert event.totals() == stepped.totals()


def test_identity_holds_across_seeds_and_platforms(trace):
    for platform, seed in (("ZC702", 1), ("VC707", 9)):
        fleet = SyntheticFleet.draw(
            SyntheticFleetSpec(n_dies=80, platform=platform, seed=seed)
        )
        for policy in ("static-undervolt", "reactive"):
            event = simulate_fleet(fleet, trace, policy, core="event")
            stepped = simulate_fleet(fleet, trace, policy, core="stepped")
            assert event.digest() == stepped.digest()


def test_crash_machinery_is_live(fleet, trace):
    result = simulate_fleet(fleet, trace, "static-undervolt")
    totals = result.totals()
    assert totals["crash_steps"] > 0
    assert totals["n_actuations"] > 0
    # Drifted dies thrash every step of the trace.
    drifted = fleet.true_vcrash_v > fleet.vmin_v
    assert np.all(result.crashed_steps[drifted] == trace.n_steps)


def test_energy_anchors(fleet, trace):
    nominal = nominal_energy_j(fleet, trace)
    floor = guardband_floor_energy_j(fleet, trace)
    assert floor < nominal
    results = simulate_policies(fleet, trace)
    static_nominal = results["static-nominal"].totals()["energy_j"]
    assert static_nominal == pytest.approx(nominal, rel=1e-9)
    for name, result in results.items():
        assert result.totals()["energy_j"] <= nominal * (1 + 1e-9), name


# ----------------------------------------------------------------------
# Sharding and merge invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler,jobs", [("thread", 4), ("process", 3)])
def test_sharded_digest_identical(fleet, trace, scheduler, jobs):
    for policy in ("static-undervolt", "reactive"):
        serial = simulate_fleet(fleet, trace, policy)
        sharded = simulate_fleet(
            fleet, trace, policy, scheduler=scheduler, jobs=jobs
        )
        assert sharded.digest() == serial.digest()


def test_merge_shards_is_order_independent(fleet, trace):
    from repro.runtime.fleetscale import _simulate_scale_shard
    from repro.runtime.event_core import chamber_temperature_path, transient_steps

    temps = chamber_temperature_path(trace)
    windows = np.unique(np.concatenate(
        ([0], transient_steps(temps), [trace.n_steps])
    )).astype(np.int64)
    bounds = [(0, 50), (50, 110), (110, 150)]
    shards = [
        _simulate_scale_shard(
            fleet.slice(start, stop), start, trace, "reactive", 3,
            "event", temps, windows,
        )
        for start, stop in bounds
    ]
    forward = merge_shards(shards, "reactive", fleet, trace, 18_000, "event")
    backward = merge_shards(
        list(reversed(shards)), "reactive", fleet, trace, 18_000, "event"
    )
    assert backward.digest() == forward.digest()
    with pytest.raises(FleetScaleError):
        merge_shards(shards[:-1], "reactive", fleet, trace, 18_000, "event")
    with pytest.raises(FleetScaleError):
        merge_shards(
            [shards[0], shards[0], shards[2]],
            "reactive", fleet, trace, 18_000, "event",
        )


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
def test_simulate_fleet_validation(fleet, trace):
    with pytest.raises(GovernorError):
        simulate_fleet(fleet, trace, "ghost-policy")
    with pytest.raises(FleetScaleError):
        simulate_fleet(fleet, trace, "reactive", capacity_rps=0.0)
    with pytest.raises(FleetScaleError):
        simulate_fleet(fleet, trace, "reactive", crash_recovery_steps=0)


@pytest.mark.slow
def test_identity_at_fleet_scale(trace):
    fleet = SyntheticFleet.draw(SyntheticFleetSpec(n_dies=10_000, seed=3))
    for policy in ("static-undervolt", "predictive"):
        event = simulate_fleet(fleet, trace, policy, core="event")
        stepped = simulate_fleet(fleet, trace, policy, core="stepped")
        assert event.digest() == stepped.digest()
