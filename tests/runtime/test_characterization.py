"""Tests for die characterizations, bundles and the campaign spec knob."""

import dataclasses
import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, ChipGroup, run_campaign
from repro.campaign.spec import CampaignError
from repro.fpga.platform import FpgaChip, fleet_serials
from repro.runtime import (
    BUNDLE_FILENAME,
    CharacterizationError,
    DieCharacterization,
    GovernorBundle,
    bundle_path,
    characterize_die,
    write_governor_bundle,
)


class TestDieCharacterization:
    def test_validation(self):
        with pytest.raises(CharacterizationError):
            DieCharacterization(
                platform="ZC702", serial="X", vnom_v=1.0,
                vmin_v=0.5, vcrash_v=0.6,  # inverted
                itd_v_per_degc=1e-4, ripple_margin_v=0.004,
            )

    def test_compensated_vmin_follows_itd(self):
        die = DieCharacterization(
            platform="ZC702", serial="X", vnom_v=1.0, vmin_v=0.61,
            vcrash_v=0.53, itd_v_per_degc=2.0e-4, ripple_margin_v=0.004,
        )
        assert die.compensated_vmin_v(50.0) == pytest.approx(0.61)
        assert die.compensated_vmin_v(80.0) == pytest.approx(0.604)
        assert die.compensated_vmin_v(30.0) == pytest.approx(0.614)
        assert die.guardband_fraction == pytest.approx(0.39)

    def test_round_trip(self):
        die = DieCharacterization(
            platform="ZC702", serial="X", vnom_v=1.0, vmin_v=0.61,
            vcrash_v=0.53, itd_v_per_degc=2.0e-4, ripple_margin_v=0.004,
        )
        assert DieCharacterization.from_dict(die.to_dict()) == die

    def test_characterize_die_matches_the_calibrated_thresholds(self):
        chip = FpgaChip.build("ZC702")
        die = characterize_die(chip, runs_per_step=3)
        calibration_vmin = 0.61
        assert die.vmin_v == pytest.approx(calibration_vmin, abs=0.011)
        assert die.vcrash_v < die.vmin_v
        assert die.ripple_margin_v > 0


class TestGovernorBundle:
    def test_round_trip_and_lookup(self, tmp_path):
        chips = [
            FpgaChip.build("ZC702", serial=serial)
            for serial in fleet_serials("ZC702", 2)
        ]
        bundle = GovernorBundle.from_chips(chips, runs_per_step=2)
        assert len(bundle) == 2
        path = bundle.save(tmp_path / "bundle.json")
        loaded = GovernorBundle.load(path)
        assert loaded.chip_keys() == bundle.chip_keys()
        platform, serial = bundle.chip_keys()[0]
        assert loaded.get(platform, serial) == bundle.get(platform, serial)
        with pytest.raises(CharacterizationError):
            loaded.get("ZC702", "NOPE")

    def test_version_mismatch_is_loud(self, tmp_path):
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps({"version": 99, "dies": []}))
        with pytest.raises(CharacterizationError):
            GovernorBundle.load(path)

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(CharacterizationError):
            GovernorBundle.load(tmp_path / "ghost.json")


def _guardband_spec(name: str, governor_bundle: bool = False) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        groups=(ChipGroup(platform="ZC702", serials=fleet_serials("ZC702", 2)),),
        sweep="guardband",
        runs_per_step=2,
        governor_bundle=governor_bundle,
    )


class TestCampaignKnob:
    def test_knob_requires_guardband_sweep(self):
        with pytest.raises(CampaignError):
            CampaignSpec(
                name="bad",
                groups=(ChipGroup(platform="ZC702", serials=("A",)),),
                sweep="fvm",
                governor_bundle=True,
            )

    def test_knob_is_hash_compatible_when_off(self):
        plain = _guardband_spec("knob")
        assert "governor_bundle" not in plain.to_dict()
        assert plain.spec_hash == CampaignSpec.from_dict(plain.to_dict()).spec_hash
        enabled = dataclasses.replace(plain, governor_bundle=True)
        assert enabled.to_dict()["governor_bundle"] is True
        assert enabled.spec_hash != plain.spec_hash
        assert CampaignSpec.from_dict(enabled.to_dict()) == enabled

    def test_campaign_run_emits_the_bundle(self, tmp_path):
        spec = _guardband_spec("emit", governor_bundle=True)
        report = run_campaign(spec, root=tmp_path, use_processes=False)
        store = CampaignStore(spec.name, tmp_path)
        path = bundle_path(store)
        assert report.governor_bundle == str(path)
        assert path.name == BUNDLE_FILENAME
        bundle = GovernorBundle.load(path)
        assert len(bundle) == 2
        assert bundle.source == "emit"
        assert bundle.spec_hash == spec.spec_hash
        # The bundle matches what from_campaign reads back from the store.
        rebuilt = GovernorBundle.from_campaign(store)
        assert rebuilt.to_document()["dies"] == bundle.to_document()["dies"]

    def test_from_campaign_rejects_non_guardband_stores(self, tmp_path):
        spec = CampaignSpec(
            name="fvmstore",
            groups=(ChipGroup(platform="ZC702", serials=("630851561533-44019",)),),
            sweep="fvm",
            runs_per_step=2,
        )
        run_campaign(spec, root=tmp_path, use_processes=False)
        with pytest.raises(CharacterizationError):
            GovernorBundle.from_campaign(CampaignStore(spec.name, tmp_path))

    def test_write_governor_bundle_needs_completed_units(self, tmp_path):
        spec = _guardband_spec("empty")
        store = CampaignStore.open(spec, tmp_path)
        with pytest.raises(CharacterizationError):
            write_governor_bundle(store, spec)
