"""Tests for the ``repro-undervolt`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["guardband", "--platform", "VC999"])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.platform == "VC707"
        assert args.runs == 11
        assert args.pattern == "FFFF"


class TestGuardbandCommand:
    def test_json_output_contains_both_rails(self, capsys):
        assert main(["guardband", "--platform", "ZC702", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "ZC702"
        assert set(payload["rails"]) == {"VCCBRAM", "VCCINT"}
        assert payload["rails"]["VCCBRAM"]["vmin_v"] == pytest.approx(0.61, abs=0.011)

    def test_table_output_mentions_guardband(self, capsys):
        assert main(["guardband", "--platform", "ZC702"]) == 0
        output = capsys.readouterr().out
        assert "guardband" in output
        assert "VCCBRAM" in output and "VCCINT" in output


class TestSweepCommand:
    def test_json_points_cover_critical_region(self, capsys):
        assert main(["sweep", "--platform", "ZC702", "--runs", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        points = payload["points"]
        assert points[0]["faults_per_mbit"] == 0.0
        assert points[-1]["faults_per_mbit"] > 100
        assert points[0]["bram_power_w"] > points[-1]["bram_power_w"]

    def test_pattern_option_changes_rates(self, capsys):
        main(["sweep", "--platform", "ZC702", "--runs", "3", "--pattern", "0000", "--json"])
        sparse = json.loads(capsys.readouterr().out)
        main(["sweep", "--platform", "ZC702", "--runs", "3", "--pattern", "FFFF", "--json"])
        dense = json.loads(capsys.readouterr().out)
        assert sparse["points"][-1]["faults_per_mbit"] < dense["points"][-1]["faults_per_mbit"]


class TestCharacterizeCommand:
    def test_json_summary(self, capsys):
        assert main(["characterize", "--platform", "ZC702", "--runs", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pattern_rates_per_mbit"]["FFFF"] > payload["pattern_rates_per_mbit"]["0000"]
        assert payload["location_overlap"] > 0.9
        assert 0.3 < payload["variability"]["never_faulty_fraction"] < 0.7

    def test_table_output_has_three_sections(self, capsys):
        assert main(["characterize", "--platform", "ZC702", "--runs", "5"]) == 0
        output = capsys.readouterr().out
        assert "Data-pattern study" in output
        assert "Stability" in output
        assert "variability" in output
