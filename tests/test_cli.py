"""Tests for the ``repro-undervolt`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_json(capsys, argv):
    """Run the CLI and parse its JSON document."""
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


def strip_timing(payload):
    """Pop and validate the segregated ``timing`` block of a --json document.

    Every CLI --json document keeps its wall-clock (non-deterministic)
    measurements under the single ``timing`` key; stripping it leaves a
    document that is a pure function of inputs and seeds, which the golden
    structure and determinism tests assert exactly.
    """
    timing = payload.pop("timing")
    assert "wall_s" in timing
    assert timing["wall_s"] >= 0.0
    return payload


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["guardband", "--platform", "VC999"])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.platform == "VC707"
        assert args.runs == 11
        assert args.pattern == "FFFF"


class TestGuardbandCommand:
    def test_json_output_contains_both_rails(self, capsys):
        assert main(["guardband", "--platform", "ZC702", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["platform"] == "ZC702"
        assert set(payload["rails"]) == {"VCCBRAM", "VCCINT"}
        assert payload["rails"]["VCCBRAM"]["vmin_v"] == pytest.approx(0.61, abs=0.011)

    def test_table_output_mentions_guardband(self, capsys):
        assert main(["guardband", "--platform", "ZC702"]) == 0
        output = capsys.readouterr().out
        assert "guardband" in output
        assert "VCCBRAM" in output and "VCCINT" in output


class TestSweepCommand:
    def test_json_points_cover_critical_region(self, capsys):
        assert main(["sweep", "--platform", "ZC702", "--runs", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        points = payload["points"]
        assert points[0]["faults_per_mbit"] == 0.0
        assert points[-1]["faults_per_mbit"] > 100
        assert points[0]["bram_power_w"] > points[-1]["bram_power_w"]

    def test_pattern_option_changes_rates(self, capsys):
        main(["sweep", "--platform", "ZC702", "--runs", "3", "--pattern", "0000", "--json"])
        sparse = json.loads(capsys.readouterr().out)
        main(["sweep", "--platform", "ZC702", "--runs", "3", "--pattern", "FFFF", "--json"])
        dense = json.loads(capsys.readouterr().out)
        assert sparse["points"][-1]["faults_per_mbit"] < dense["points"][-1]["faults_per_mbit"]


class TestJsonGoldenStructure:
    """The ``--json`` documents must keep the keys docs/cli.md documents.

    These are structure tests, not value tests: every key here is part of
    the machine-readable contract and renaming one is a breaking change
    that must update ``docs/cli.md`` in the same commit.
    """

    RAIL_KEYS = {
        "vnom_v", "vmin_v", "vcrash_v", "guardband_fraction",
        "power_reduction_factor_at_vmin",
    }

    SEARCH_KEYS = {"mode", "n_evaluations", "n_cache_hits", "n_exhaustive_equivalent"}

    BACKEND_KEYS = {"kind", "scheduler", "jobs", "source", "counters"}

    COUNTER_KEYS = {
        "n_requests", "n_cache_hits", "n_backend_evaluations", "n_deduplicated",
    }

    def test_guardband_schema(self, capsys):
        payload = strip_timing(
            run_json(capsys, ["guardband", "--platform", "ZC702", "--json"])
        )
        assert set(payload) == {"platform", "rails", "search", "backend"}
        assert set(payload["rails"]) == {"VCCBRAM", "VCCINT"}
        for rail in payload["rails"].values():
            assert set(rail) == self.RAIL_KEYS
        assert set(payload["search"]) == self.SEARCH_KEYS
        assert set(payload["backend"]) == self.BACKEND_KEYS
        assert payload["backend"]["kind"] == "simulated"
        assert set(payload["backend"]["counters"]) == self.COUNTER_KEYS

    def test_sweep_schema(self, capsys):
        payload = strip_timing(
            run_json(capsys, ["sweep", "--platform", "ZC702", "--runs", "2", "--json"])
        )
        assert set(payload) == {"platform", "pattern", "search", "points", "backend"}
        assert payload["points"]
        for point in payload["points"]:
            assert set(point) == {"vccbram_v", "faults_per_mbit", "bram_power_w"}
        assert set(payload["search"]) == self.SEARCH_KEYS
        assert set(payload["backend"]) == self.BACKEND_KEYS

    def test_characterize_schema(self, capsys):
        payload = strip_timing(run_json(
            capsys, ["characterize", "--platform", "ZC702", "--runs", "5", "--json"]
        ))
        assert set(payload) == {
            "platform", "vcrash_v", "pattern_rates_per_mbit", "stability",
            "location_overlap", "variability",
        }
        assert set(payload["stability"]) == {
            "AVERAGE fault rate", "MINIMUM fault rate", "MAXIMUM fault rate",
            "STD. DEV of fault rates",
        }
        assert set(payload["variability"]) == {
            "max_percent", "mean_percent", "never_faulty_fraction",
        }

    def test_icbp_schema(self, capsys):
        payload = strip_timing(run_json(
            capsys,
            ["icbp", "--platform", "ZC702", "--train-samples", "300", "--seeds", "1", "--json"],
        ))
        assert set(payload) == {
            "platform", "voltage_v", "baseline_error", "default_placement",
            "icbp", "power_savings_vs_vmin",
        }
        assert set(payload["default_placement"]) == {"error", "accuracy_loss"}
        assert set(payload["icbp"]) == {"error", "accuracy_loss", "protected_layers"}

    def test_campaign_schemas(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-golden",
            "chips": [{"platform": "ZC702", "n_chips": 2}],
            "sweep": "guardband",
            "runs_per_step": 3,
        }))
        root = str(tmp_path / "campaigns")

        run = strip_timing(run_json(capsys, [
            "campaign", "run", "--spec", str(spec_path), "--root", root, "--json",
        ]))
        assert set(run) == {
            "name", "spec_hash", "n_units", "n_executed", "n_skipped",
            "n_workers", "search", "backend", "store", "evaluations",
            "executed_unit_ids", "governor_bundle",
        }
        assert set(run["backend"]) == self.BACKEND_KEYS
        assert run["backend"]["kind"] == "simulated"
        assert run["store"] == {"version": 1}
        assert run["n_executed"] == 2
        assert run["governor_bundle"] is None
        assert {
            "n_units", "n_evaluations", "n_cache_hits", "n_exhaustive_equivalent",
            "evaluations_saved", "saved_fraction", "speedup_factor",
        } == set(run["evaluations"])

        status = strip_timing(run_json(capsys, [
            "campaign", "status", "--name", "cli-golden", "--root", root, "--json",
        ]))
        assert set(status) == {
            "name", "spec_hash", "sweep", "n_units", "n_completed",
            "n_pending", "complete", "store", "pending_unit_ids",
        }
        assert status["complete"] is True
        assert status["store"] == {"version": 1}

        report = strip_timing(run_json(capsys, [
            "campaign", "report", "--name", "cli-golden", "--root", root, "--json",
        ]))
        assert set(report) == {
            "name", "sweep", "spec_hash", "n_units", "n_completed",
            "complete", "search", "store", "evaluations", "units", "population",
        }
        assert report["store"] == {"version": 1}
        assert set(report["population"]) == {"fleet", "by_platform"}
        for row in report["units"]:
            assert {"unit_id", "platform", "serial", "temperature_c", "pattern"} <= set(row)
        for dist in report["population"]["fleet"].values():
            assert {"mean", "median", "min", "max", "std", "n", "p5", "p95",
                    "spread_fraction"} <= set(dist)


class TestStoreVersionGoldens:
    """The same campaign through a v1 and a v2 store yields byte-identical
    ``--json`` documents (modulo the ``store`` block), pinned as goldens."""

    def documents(self, capsys, tmp_path, version):
        root = str(tmp_path / f"v{version}")
        run_json(capsys, [
            "campaign", "run", "--preset", "fleet16-fast", "--root", root,
            "--store-version", str(version), "--json",
        ])
        report = strip_timing(run_json(capsys, [
            "campaign", "report", "--name", "fleet16-fast", "--root", root,
            "--json",
        ]))
        runtime = strip_timing(run_json(capsys, [
            "runtime", "run", "--campaign", "fleet16-fast", "--root", root,
            "--json",
        ]))
        return report, runtime

    def test_v2_documents_match_the_v1_goldens(self, capsys, tmp_path, golden):
        report_v1, runtime_v1 = self.documents(capsys, tmp_path, 1)
        report_v2, runtime_v2 = self.documents(capsys, tmp_path, 2)
        assert report_v1.pop("store") == {"version": 1}
        store_block = report_v2.pop("store")
        assert store_block["version"] == 2 and store_block["n_segments"] >= 1
        assert json.dumps(report_v2, sort_keys=True) == json.dumps(
            report_v1, sort_keys=True
        )
        assert json.dumps(runtime_v2, sort_keys=True) == json.dumps(
            runtime_v1, sort_keys=True
        )
        golden("campaign_report_fleet16_fast", report_v1)
        golden("runtime_run_campaign_fleet16_fast", runtime_v1)


class TestTimingSegregation:
    """Wall-clock values live only under ``timing``; the rest is exact."""

    def test_every_json_document_carries_a_timing_block(self, capsys):
        for argv in (
            ["guardband", "--platform", "ZC702", "--json"],
            ["sweep", "--platform", "ZC702", "--runs", "2", "--json"],
            ["characterize", "--platform", "ZC702", "--runs", "5", "--json"],
        ):
            payload = run_json(capsys, argv)
            assert "timing" in payload
            assert payload["timing"]["wall_s"] >= 0.0

    def test_documents_are_bit_identical_once_timing_is_stripped(self, capsys):
        argv = ["guardband", "--platform", "ZC702", "--json"]
        first = strip_timing(run_json(capsys, argv))
        second = strip_timing(run_json(capsys, argv))
        assert first == second


class TestRuntimeCommand:
    RUN_ARGS = [
        "runtime", "run", "--platform", "ZC702", "--chips", "2",
        "--steps", "40", "--capacity-rps", "900", "--train-samples", "200",
    ]

    def test_run_json_schema_and_acceptance_shape(self, capsys):
        payload = strip_timing(run_json(capsys, self.RUN_ARGS + ["--json"]))
        assert set(payload) == {"fleet", "trace", "backend", "baselines", "policies"}
        assert payload["fleet"] == {"n_chips": 2, "source": "inline", "icbp": True}
        assert payload["backend"] == {
            "kind": "simulated", "scheduler": "serial", "jobs": 1,
            "source": None, "counters": None,
        }
        assert set(payload["baselines"]) == {
            "nominal_energy_j", "guardband_floor_energy_j",
        }
        assert set(payload["policies"]) == {
            "static-nominal", "static-undervolt", "reactive", "predictive",
        }
        for row in payload["policies"].values():
            assert {
                "policy", "energy_j", "faulty_inferences", "slo_violations",
                "crash_steps", "guardband_recovered_fraction", "served",
                "requests", "mean_voltage_v",
            } <= set(row)
        predictive = payload["policies"]["predictive"]
        assert predictive["faulty_inferences"] == 0
        assert predictive["guardband_recovered_fraction"] > 0.6

    def test_single_policy_and_table_output(self, capsys):
        assert main(self.RUN_ARGS + ["--policy", "predictive"]) == 0
        out = capsys.readouterr().out
        assert "predictive" in out and "guardband recovered" in out
        assert "static-nominal" not in out

    def test_save_and_report_round_trip(self, capsys, tmp_path):
        saved = tmp_path / "telemetry.json"
        run_json(capsys, self.RUN_ARGS + ["--save", str(saved), "--json"])
        report = strip_timing(run_json(capsys, [
            "runtime", "report", "--telemetry", str(saved), "--json",
        ]))
        assert set(report) == {"telemetry", "trace", "baselines", "policies"}
        assert set(report["policies"]) == {
            "static-nominal", "static-undervolt", "reactive", "predictive",
        }
        # The report recovers the run's own numbers exactly.
        assert report["policies"]["predictive"]["faulty_inferences"] == 0
        assert main(["runtime", "report", "--telemetry", str(saved)]) == 0
        assert "Runtime telemetry report" in capsys.readouterr().out

    def test_missing_telemetry_fails_cleanly(self, capsys, tmp_path):
        assert main([
            "runtime", "report", "--telemetry", str(tmp_path / "ghost.json"),
        ]) == 2
        assert "no telemetry document" in capsys.readouterr().err

    def test_corrupt_telemetry_fails_cleanly(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert main(["runtime", "report", "--telemetry", str(corrupt)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_invalid_fleet_size_fails_cleanly(self, capsys):
        assert main(["runtime", "run", "--platform", "ZC702", "--chips", "0"]) == 2
        assert "at least one chip" in capsys.readouterr().err

    def test_unknown_campaign_fails_cleanly(self, capsys, tmp_path):
        assert main([
            "runtime", "run", "--campaign", "ghost", "--root", str(tmp_path),
        ]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    def test_sim_core_stepped_matches_event_payload(self, capsys):
        """Both simulation cores yield byte-identical --json documents."""
        event = strip_timing(run_json(capsys, self.RUN_ARGS + ["--json"]))
        stepped = strip_timing(run_json(
            capsys, self.RUN_ARGS + ["--sim-core", "stepped", "--json"],
        ))
        assert json.dumps(stepped, sort_keys=True) == json.dumps(
            event, sort_keys=True
        )

    def test_sim_jobs_sharding_is_deterministic(self, capsys):
        serial = strip_timing(run_json(capsys, self.RUN_ARGS + ["--json"]))
        sharded = strip_timing(run_json(
            capsys, self.RUN_ARGS + ["--sim-jobs", "2", "--json"],
        ))
        assert json.dumps(sharded, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_invalid_sim_jobs_fails_cleanly(self, capsys):
        assert main(self.RUN_ARGS + ["--sim-jobs", "0"]) == 2
        assert "--sim-jobs" in capsys.readouterr().err


class TestRuntimeScaleCommand:
    """``runtime scale``: the synthetic-population governor comparison."""

    SCALE_ARGS = [
        "runtime", "scale", "--platform", "ZC702", "--dies", "64",
        "--steps", "48", "--fleet-seed", "4",
    ]

    def test_scale_json_schema_and_golden(self, capsys, golden):
        payload = strip_timing(run_json(capsys, self.SCALE_ARGS + ["--json"]))
        assert set(payload) == {
            "fleet", "trace", "backend", "core", "device_seconds",
            "baselines", "policies",
        }
        assert payload["core"] == "event"
        assert payload["fleet"]["n_dies"] == 64
        assert payload["fleet"]["drifted_dies"] >= 0
        assert payload["trace"]["load_scale"] == 4.0
        assert set(payload["policies"]) == {
            "static-nominal", "static-undervolt", "reactive", "predictive",
        }
        for row in payload["policies"].values():
            assert {
                "energy_j", "served", "faulty_inferences", "slo_violations",
                "crash_steps", "n_actuations",
                "guardband_recovered_fraction", "digest",
            } <= set(row)
        assert payload["policies"]["static-nominal"][
            "guardband_recovered_fraction"
        ] == 0.0
        golden("runtime_scale_small", payload)

    def test_scale_cores_agree_on_digests(self, capsys):
        event = strip_timing(run_json(capsys, self.SCALE_ARGS + ["--json"]))
        stepped = strip_timing(run_json(
            capsys, self.SCALE_ARGS + ["--sim-core", "stepped", "--json"],
        ))
        for name, row in event["policies"].items():
            assert stepped["policies"][name]["digest"] == row["digest"], name

    def test_scale_sharded_backend_is_deterministic(self, capsys):
        serial = strip_timing(run_json(capsys, self.SCALE_ARGS + ["--json"]))
        sharded = strip_timing(run_json(
            capsys,
            self.SCALE_ARGS + ["--backend", "process", "--jobs", "3", "--json"],
        ))
        assert sharded["backend"]["scheduler"] == "process"
        for name, row in serial["policies"].items():
            assert sharded["policies"][name]["digest"] == row["digest"], name

    def test_scale_table_output(self, capsys):
        assert main(self.SCALE_ARGS + ["--policy", "predictive"]) == 0
        out = capsys.readouterr().out
        assert "Population governor comparison" in out
        assert "predictive" in out and "static-nominal" not in out

    def test_invalid_load_scale_fails_cleanly(self, capsys):
        assert main(self.SCALE_ARGS + ["--load-scale", "0"]) == 2
        assert "--load-scale" in capsys.readouterr().err


class TestSearchFlag:
    """The --search knob: provably identical answers, different cost."""

    def test_guardband_modes_agree_bit_for_bit(self, capsys):
        adaptive = run_json(
            capsys, ["guardband", "--platform", "ZC702", "--search", "adaptive", "--json"]
        )
        exhaustive = run_json(
            capsys, ["guardband", "--platform", "ZC702", "--search", "exhaustive", "--json"]
        )
        assert adaptive["rails"] == exhaustive["rails"]
        assert adaptive["search"]["mode"] == "adaptive"
        assert exhaustive["search"]["mode"] == "exhaustive"
        assert (
            adaptive["search"]["n_evaluations"]
            < exhaustive["search"]["n_evaluations"]
        )
        assert (
            adaptive["search"]["n_exhaustive_equivalent"]
            == exhaustive["search"]["n_evaluations"]
        )

    def test_sweep_modes_agree(self, capsys):
        adaptive = run_json(
            capsys,
            ["sweep", "--platform", "ZC702", "--runs", "2", "--search", "adaptive", "--json"],
        )
        exhaustive = run_json(
            capsys,
            ["sweep", "--platform", "ZC702", "--runs", "2", "--search", "exhaustive", "--json"],
        )
        assert adaptive["points"] == exhaustive["points"]

    def test_campaign_run_search_override_changes_identity(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-search",
            "chips": [{"platform": "ZC702", "n_chips": 1}],
            "sweep": "guardband",
            "runs_per_step": 2,
        }))
        root = str(tmp_path / "campaigns")
        adaptive = run_json(capsys, [
            "campaign", "run", "--spec", str(spec_path), "--root", root, "--json",
        ])
        assert adaptive["search"] == "adaptive"
        # Overriding the knob is a different campaign under the same name:
        # the store refuses to mix the two.
        assert main([
            "campaign", "run", "--spec", str(spec_path), "--root", root,
            "--search", "exhaustive", "--json",
        ]) == 2
        assert "does not match" in capsys.readouterr().err


class TestCampaignCommand:
    def test_run_resume_and_tables(self, capsys, tmp_path):
        root = str(tmp_path / "campaigns")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-flow",
            "chips": [{"platform": "ZC702", "n_chips": 2}],
            "sweep": "fvm",
        }))
        assert main(["campaign", "run", "--spec", str(spec_path), "--root", root]) == 0
        out = capsys.readouterr().out
        assert "units executed" in out and "cli-flow" in out

        # Resume executes nothing.
        assert main(["campaign", "run", "--spec", str(spec_path), "--root", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_executed"] == 0 and payload["n_skipped"] == 2

        assert main(["campaign", "report", "--name", "cli-flow", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "population statistics" in out
        assert "FVM similarity" in out

    def test_requires_exactly_one_spec_source(self, capsys, tmp_path):
        assert main(["campaign", "run", "--root", str(tmp_path)]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "campaign", "status", "--name", "x", "--preset", "fleet16",
            "--root", str(tmp_path),
        ]) == 2

    def test_unknown_preset_and_missing_spec_fail_cleanly(self, capsys, tmp_path):
        assert main(["campaign", "run", "--preset", "nope", "--root", str(tmp_path)]) == 2
        assert "unknown preset" in capsys.readouterr().err
        assert main([
            "campaign", "run", "--spec", str(tmp_path / "missing.json"),
            "--root", str(tmp_path),
        ]) == 2

    def test_status_of_unknown_campaign_fails_cleanly(self, capsys, tmp_path):
        assert main(["campaign", "status", "--name", "ghost", "--root", str(tmp_path)]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    def test_malformed_spec_fails_cleanly_not_with_a_traceback(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({
            "name": "bad", "chips": [{"platform": "NOPE", "n_chips": 2}],
        }))
        assert main(["campaign", "run", "--spec", str(spec_path),
                     "--root", str(tmp_path)]) == 2
        assert "unknown platform" in capsys.readouterr().err


class TestBackendFlag:
    """--backend/--jobs: identical answers, different execution substrate."""

    def test_guardband_thread_backend_bit_identical(self, capsys):
        serial = run_json(capsys, ["guardband", "--platform", "ZC702", "--json"])
        threaded = run_json(capsys, [
            "guardband", "--platform", "ZC702",
            "--backend", "thread", "--jobs", "4", "--json",
        ])
        assert threaded["rails"] == serial["rails"]
        assert threaded["backend"]["scheduler"] == "thread"
        assert threaded["backend"]["jobs"] == 4

    def test_parallel_backend_defaults_jobs_to_cpu_count(self, capsys):
        import os

        payload = run_json(capsys, [
            "sweep", "--platform", "ZC702", "--runs", "2",
            "--backend", "thread", "--json",
        ])
        assert payload["backend"]["jobs"] == (os.cpu_count() or 1)
        assert main([
            "sweep", "--platform", "ZC702", "--backend", "thread", "--jobs", "0",
        ]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_backends_bit_identical(self, capsys):
        serial = run_json(
            capsys, ["sweep", "--platform", "ZC702", "--runs", "3", "--json"]
        )
        for backend in ("thread", "process"):
            parallel = run_json(capsys, [
                "sweep", "--platform", "ZC702", "--runs", "3",
                "--backend", backend, "--jobs", "2", "--json",
            ])
            assert parallel["points"] == serial["points"]
            assert parallel["backend"]["scheduler"] == backend

    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        store = tmp_path / "zc702-sweep.json"
        recorded = run_json(capsys, [
            "sweep", "--platform", "ZC702", "--runs", "3",
            "--record-store", str(store), "--json",
        ])
        assert store.exists()
        replayed = run_json(capsys, [
            "sweep", "--platform", "ZC702", "--runs", "3",
            "--backend", "replay", "--replay-store", str(store), "--json",
        ])
        assert replayed["points"] == recorded["points"]
        assert replayed["backend"]["kind"] == "replay"
        assert str(store) in replayed["backend"]["source"]

    def test_record_requires_adaptive_search(self, capsys, tmp_path):
        assert main([
            "sweep", "--platform", "ZC702", "--runs", "2",
            "--search", "exhaustive", "--record-store", str(tmp_path / "s.json"),
        ]) == 2
        assert "adaptive" in capsys.readouterr().err

    def test_guardband_replays_from_a_campaign_store(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-replay-src",
            "chips": [{"platform": "ZC702", "n_chips": 1}],
            "sweep": "guardband",
            "runs_per_step": 3,
        }))
        root = tmp_path / "campaigns"
        run_json(capsys, [
            "campaign", "run", "--spec", str(spec_path), "--root", str(root), "--json",
        ])
        live = run_json(capsys, [
            "guardband", "--platform", "ZC702", "--runs", "3", "--json",
        ])
        replayed = run_json(capsys, [
            "guardband", "--platform", "ZC702", "--runs", "3",
            "--backend", "replay",
            "--replay-store", str(root / "cli-replay-src"), "--json",
        ])
        assert replayed["rails"] == live["rails"]
        assert replayed["backend"]["kind"] == "replay"

    def test_replay_without_store_fails_cleanly(self, capsys):
        assert main(["guardband", "--platform", "ZC702", "--backend", "replay"]) == 2
        assert "--replay-store" in capsys.readouterr().err

    def test_replay_of_missing_store_fails_cleanly(self, capsys, tmp_path):
        assert main([
            "guardband", "--platform", "ZC702", "--backend", "replay",
            "--replay-store", str(tmp_path / "ghost.json"),
        ]) == 2
        assert "no recorded evaluation store" in capsys.readouterr().err

    def test_replay_of_incomplete_store_fails_cleanly(self, capsys, tmp_path):
        # A sweep recording lacks the guardband walk's probe evaluations.
        store = tmp_path / "sweep-only.json"
        run_json(capsys, [
            "sweep", "--platform", "ZC702", "--runs", "2",
            "--record-store", str(store), "--json",
        ])
        assert main([
            "guardband", "--platform", "ZC702", "--backend", "replay",
            "--replay-store", str(store),
        ]) == 2
        assert "no recorded evaluation" in capsys.readouterr().err

    def test_campaign_run_thread_backend_matches_process(self, capsys, tmp_path):
        def spec_for(name):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps({
                "name": name,
                "chips": [{"platform": "ZC702", "n_chips": 2}],
                "sweep": "guardband",
                "runs_per_step": 2,
            }))
            return path

        by_backend = {}
        for backend in ("thread", "process", "serial"):
            name = f"cli-backend-{backend}"
            root = str(tmp_path / backend)
            run_json(capsys, [
                "campaign", "run", "--spec", str(spec_for(name)),
                "--root", root, "--backend", backend, "--jobs", "2", "--json",
            ])
            report = run_json(capsys, [
                "campaign", "report", "--name", name, "--root", root, "--json",
            ])
            # Unit ids digest only the unit descriptor (not the campaign
            # name), so the per-unit metric rows are directly comparable.
            by_backend[backend] = {
                unit["unit_id"]: unit for unit in report["units"]
            }
        assert by_backend["thread"] == by_backend["process"] == by_backend["serial"]


class TestCorruptCampaignStore:
    """Missing/corrupt campaign directories exit non-zero with one line."""

    @staticmethod
    def corrupt_store(tmp_path):
        store_dir = tmp_path / "broken"
        store_dir.mkdir()
        (store_dir / "manifest.json").write_text("{not json at all")
        return store_dir

    def test_status_of_corrupt_manifest_fails_cleanly(self, capsys, tmp_path):
        self.corrupt_store(tmp_path)
        assert main([
            "campaign", "status", "--name", "broken", "--root", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "corrupt" in err and "Traceback" not in err

    def test_report_of_corrupt_manifest_fails_cleanly(self, capsys, tmp_path):
        self.corrupt_store(tmp_path)
        assert main([
            "campaign", "report", "--name", "broken", "--root", str(tmp_path),
        ]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_report_of_non_manifest_document_fails_cleanly(self, capsys, tmp_path):
        store_dir = tmp_path / "odd"
        store_dir.mkdir()
        (store_dir / "manifest.json").write_text(json.dumps({"spec": []}))
        assert main([
            "campaign", "report", "--name", "odd", "--root", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_runtime_run_with_corrupt_campaign_fails_cleanly(self, capsys, tmp_path):
        self.corrupt_store(tmp_path)
        assert main([
            "runtime", "run", "--campaign", "broken", "--root", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "corrupt" in err and "Traceback" not in err


class TestCharacterizeCommand:
    def test_json_summary(self, capsys):
        assert main(["characterize", "--platform", "ZC702", "--runs", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pattern_rates_per_mbit"]["FFFF"] > payload["pattern_rates_per_mbit"]["0000"]
        assert payload["location_overlap"] > 0.9
        assert 0.3 < payload["variability"]["never_faulty_fraction"] < 0.7

    def test_table_output_has_three_sections(self, capsys):
        assert main(["characterize", "--platform", "ZC702", "--runs", "5"]) == 0
        output = capsys.readouterr().out
        assert "Data-pattern study" in output
        assert "Stability" in output
        assert "variability" in output


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-undervolt {__version__}"


class TestObservabilityFlags:
    """--obs-trace/--obs-metrics: off is free, on writes the artifacts."""

    def test_guardband_json_is_identical_with_obs_on(self, capsys, tmp_path):
        plain = strip_timing(
            run_json(capsys, ["guardband", "--platform", "ZC702", "--json"])
        )
        traced = strip_timing(run_json(capsys, [
            "guardband", "--platform", "ZC702", "--json",
            "--obs-trace", str(tmp_path / "t.jsonl"),
            "--obs-metrics", str(tmp_path / "m.prom"),
        ]))
        assert traced == plain

    def test_obs_trace_writes_engine_and_search_spans(self, capsys, tmp_path):
        from repro.obs import summarize_trace

        trace_path = tmp_path / "t.jsonl"
        run_json(capsys, [
            "guardband", "--platform", "ZC702", "--json",
            "--obs-trace", str(trace_path),
        ])
        document = summarize_trace(str(trace_path))
        phases = {row["phase"] for row in document["phases"]}
        assert {"engine.evaluate", "search.bisect"} <= phases
        assert document["warnings"] == []

    def test_obs_metrics_writes_prometheus_text_with_build_info(
        self, capsys, tmp_path
    ):
        from repro import __version__

        metrics_path = tmp_path / "m.prom"
        run_json(capsys, [
            "guardband", "--platform", "ZC702", "--json",
            "--obs-metrics", str(metrics_path),
        ])
        text = metrics_path.read_text()
        assert f'repro_build_info{{version="{__version__}"}} 1' in text
        assert 'repro_engine_events_total{event="backend_evaluations"}' in text
        assert text.endswith("\n")

    def test_obs_state_is_reset_after_the_command(self, capsys, tmp_path):
        from repro.obs import NULL_RECORDER, get_recorder, get_registry

        run_json(capsys, [
            "guardband", "--platform", "ZC702", "--json",
            "--obs-trace", str(tmp_path / "t.jsonl"),
            "--obs-metrics", str(tmp_path / "m.prom"),
        ])
        assert get_recorder() is NULL_RECORDER
        assert get_registry() is None

    def test_campaign_run_trace_covers_campaign_phases(self, capsys, tmp_path):
        from repro.obs import summarize_trace

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-obs",
            # Three chips: the warm wave then holds two shards, which is
            # what makes the process scheduler actually fork workers.
            "chips": [{"platform": "ZC702", "n_chips": 3}],
            "sweep": "guardband",
            "runs_per_step": 3,
        }))
        trace_path = tmp_path / "t.jsonl"
        run_json(capsys, [
            "campaign", "run", "--spec", str(spec_path),
            "--root", str(tmp_path / "campaigns"), "--backend", "process",
            "--jobs", "2", "--json", "--obs-trace", str(trace_path),
        ])
        document = summarize_trace(str(trace_path))
        phases = {row["phase"] for row in document["phases"]}
        assert {"campaign.run", "campaign.wave", "campaign.shard",
                "campaign.unit", "sched.task"} <= phases
        assert document["n_processes"] >= 2


class TestTraceSummarizeCommand:
    def make_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        run_json(capsys, [
            "guardband", "--platform", "ZC702", "--json",
            "--obs-trace", str(trace_path),
        ])
        return trace_path

    def test_table_output(self, capsys, tmp_path):
        trace_path = self.make_trace(tmp_path, capsys)
        assert main(["trace", "summarize", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "digest:" in output
        assert "engine.evaluate" in output
        assert "wall_s" in output and "self_s" in output

    def test_json_document_schema(self, capsys, tmp_path):
        trace_path = self.make_trace(tmp_path, capsys)
        payload = strip_timing(run_json(capsys, [
            "trace", "summarize", str(trace_path), "--json",
        ]))
        assert set(payload) == {
            "trace", "n_records", "n_spans", "n_events", "n_processes",
            "digest", "batching", "phases", "warnings",
        }
        for row in payload["phases"]:
            assert set(row) == {"phase", "n_spans", "wall_s", "self_s", "mean_ms"}

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_corrupt_trace_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('garbage\n{"kind":"span","name":"a"}\n')
        assert main(["trace", "summarize", str(path)]) == 2
        assert "malformed record" in capsys.readouterr().err


class TestNoBatchFlag:
    """``--no-batch`` changes crossing counts, never a single answer."""

    def test_parser_defaults_batch_on(self):
        assert build_parser().parse_args(["guardband"]).batch is True
        assert build_parser().parse_args(["sweep", "--no-batch"]).batch is False
        assert build_parser().parse_args(
            ["serve", "--bundle", "x.json", "--no-batch"]
        ).batch is False

    def test_sweep_documents_identical_batch_on_and_off(self, capsys):
        batched = strip_timing(run_json(
            capsys, ["sweep", "--platform", "ZC702", "--runs", "2", "--json"]
        ))
        unbatched = strip_timing(run_json(
            capsys,
            ["sweep", "--platform", "ZC702", "--runs", "2", "--json", "--no-batch"],
        ))
        assert batched == unbatched

    def test_guardband_documents_identical_batch_on_and_off(self, capsys):
        batched = strip_timing(run_json(
            capsys, ["guardband", "--platform", "ZC702", "--runs", "2", "--json"]
        ))
        unbatched = strip_timing(run_json(
            capsys,
            ["guardband", "--platform", "ZC702", "--runs", "2", "--json", "--no-batch"],
        ))
        assert batched == unbatched
