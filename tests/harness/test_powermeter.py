"""Tests for the power meter and XPE-style breakdown."""

import pytest

from repro.fpga.platform import FpgaChip
from repro.harness.powermeter import PowerMeter, PowerMeterError, XpePowerEstimate


@pytest.fixture()
def chip() -> FpgaChip:
    return FpgaChip.build("KC705-A")


class TestPowerMeter:
    def test_reads_track_rail_setpoint(self, chip):
        meter = PowerMeter(chip)
        nominal = meter.read_bram_power_w()
        chip.set_vccbram(0.60)
        undervolted = meter.read_bram_power_w()
        assert undervolted < nominal / 10

    def test_explicit_voltage_overrides_setpoint(self, chip):
        meter = PowerMeter(chip)
        assert meter.read_bram_power_w(0.61) < meter.read_bram_power_w(1.0)

    def test_total_includes_vccint(self, chip):
        meter = PowerMeter(chip, vccint_nominal_w=2.0)
        assert meter.read_total_power_w() > meter.read_bram_power_w()

    def test_reduction_factor_exceeds_10x_at_vmin(self, chip):
        meter = PowerMeter(chip)
        cal = meter.calibration
        assert meter.bram_reduction_factor(cal.vnom_v, cal.vmin_bram_v) > 10

    def test_invalid_utilization_rejected(self, chip):
        with pytest.raises(PowerMeterError):
            PowerMeter(chip, bram_utilization=1.5)

    def test_utilization_scales_power(self, chip):
        full = PowerMeter(chip, bram_utilization=1.0).read_bram_power_w(1.0)
        partial = PowerMeter(chip, bram_utilization=0.5).read_bram_power_w(1.0)
        assert partial < full


class TestXpeEstimate:
    def test_percentages_sum_to_100(self):
        estimate = XpePowerEstimate(components_w={"bram": 2.0, "rest": 6.0})
        percentages = estimate.as_percentages()
        assert sum(percentages.values()) == pytest.approx(100.0)
        assert estimate.fraction("bram") == pytest.approx(0.25)
        assert estimate.total_w == pytest.approx(8.0)

    def test_empty_estimate_degenerates_gracefully(self):
        estimate = XpePowerEstimate()
        assert estimate.total_w == 0.0
        assert estimate.fraction("bram") == 0.0
