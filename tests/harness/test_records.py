"""Tests for the experiment record dataclasses."""

import pytest

from repro.harness.records import (
    GuardbandMeasurement,
    RecordError,
    RunObservation,
    SweepResult,
    VoltageStepResult,
)


def make_step(voltage, counts, operational=True, power=None, mbits=4.0):
    return VoltageStepResult(
        voltage_v=voltage,
        temperature_c=50.0,
        runs=[RunObservation(run_index=i, fault_count=c) for i, c in enumerate(counts)],
        bram_power_w=power,
        operational=operational,
        total_mbits=mbits,
    )


class TestVoltageStepResult:
    def test_median_and_std(self):
        step = make_step(0.55, [10, 12, 14, 100])
        assert step.median_fault_count == pytest.approx(13.0)
        assert step.median_fault_rate_per_mbit == pytest.approx(13.0 / 4.0)
        assert step.fault_rate_std_per_mbit > 0

    def test_fault_free_detection(self):
        assert make_step(0.7, [0, 0, 0]).is_fault_free()
        assert not make_step(0.55, [0, 1]).is_fault_free()
        assert not make_step(0.5, [0], operational=False).is_fault_free()

    def test_empty_runs_have_zero_median(self):
        step = make_step(0.55, [])
        assert step.median_fault_count == 0.0
        assert step.fault_rate_std_per_mbit == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(RecordError):
            RunObservation(run_index=0, fault_count=-1)


class TestSweepResult:
    def build(self):
        sweep = SweepResult(platform="ZC702", rail="VCCBRAM", pattern="FFFF")
        sweep.steps = [
            make_step(0.61, [0, 0], power=0.012),
            make_step(0.58, [5, 6], power=0.010),
            make_step(0.55, [50, 52], power=0.008),
            make_step(0.53, [0], operational=False),
        ]
        return sweep

    def test_series_accessors(self):
        sweep = self.build()
        assert sweep.voltages() == [0.61, 0.58, 0.55, 0.53]
        assert len(sweep.operational_steps()) == 3
        assert sweep.fault_rates_per_mbit()[0] == 0.0
        assert sweep.powers_w()[0] == pytest.approx(0.012)
        assert len(sweep.as_series()) == 4

    def test_threshold_helpers(self):
        sweep = self.build()
        assert sweep.last_operational_voltage() == pytest.approx(0.55)
        assert sweep.first_faulty_voltage() == pytest.approx(0.58)
        assert sweep.step_at(0.58).median_fault_count == pytest.approx(5.5)
        with pytest.raises(RecordError):
            sweep.step_at(0.99)

    def test_no_operational_steps_rejected(self):
        sweep = SweepResult(platform="X", rail="VCCBRAM", pattern="FFFF")
        sweep.steps = [make_step(0.5, [0], operational=False)]
        with pytest.raises(RecordError):
            sweep.last_operational_voltage()
        assert sweep.first_faulty_voltage() is None


class TestGuardbandMeasurement:
    def test_guardband_fraction(self):
        measurement = GuardbandMeasurement(
            platform="VC707",
            rail="VCCBRAM",
            nominal_v=1.0,
            vmin_v=0.61,
            vcrash_v=0.54,
            power_reduction_factor_at_vmin=17.0,
        )
        assert measurement.guardband_fraction == pytest.approx(0.39)
