"""Tests for the sweep drivers (guardband discovery, Listing 1, FVM, temperature)."""

import numpy as np
import pytest

from repro.core.batch import BatchError, BatchGridResult, OperatingGrid
from repro.core.temperature import STUDY_TEMPERATURES_C
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness.sweep import SweepError, UndervoltingExperiment


@pytest.fixture(scope="module")
def experiment() -> UndervoltingExperiment:
    return UndervoltingExperiment(FpgaChip.build("ZC702"), runs_per_step=5)


class TestGuardbandDiscovery:
    def test_vccbram_guardband_matches_calibration(self, experiment):
        cal = experiment.calibration
        measurement, sweep = experiment.discover_guardband(rail=VCCBRAM)
        assert measurement.vmin_v == pytest.approx(cal.vmin_bram_v, abs=0.011)
        assert measurement.vcrash_v == pytest.approx(cal.vcrash_bram_v, abs=0.011)
        assert measurement.guardband_fraction == pytest.approx(
            cal.guardband_bram_fraction, abs=0.015
        )
        assert measurement.power_reduction_factor_at_vmin > 10
        assert sweep.crashed_at_v is not None
        assert sweep.crashed_at_v < cal.vcrash_bram_v

    def test_vccint_guardband_measured(self, experiment):
        cal = experiment.calibration
        measurement, _ = experiment.discover_guardband(rail=VCCINT)
        assert measurement.vmin_v == pytest.approx(cal.vmin_int_v, abs=0.011)
        assert measurement.rail == VCCINT

    def test_unknown_rail_rejected(self, experiment):
        with pytest.raises(SweepError):
            experiment.discover_guardband(rail="VCCAUX")

    def test_board_left_at_nominal_after_discovery(self, experiment):
        experiment.discover_guardband()
        assert experiment.chip.vccbram == pytest.approx(1.0)


class TestCriticalRegionSweep:
    def test_listing1_sweep_shape(self, experiment):
        cal = experiment.calibration
        result = experiment.critical_region_sweep(n_runs=5)
        voltages = result.voltages()
        assert voltages[0] == pytest.approx(cal.vmin_bram_v)
        assert voltages[-1] == pytest.approx(cal.vcrash_bram_v, abs=0.011)
        rates = result.fault_rates_per_mbit()
        assert rates[0] == 0.0
        assert rates[-1] == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=0.15)
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        powers = result.powers_w()
        assert all(b < a for a, b in zip(powers, powers[1:]))

    def test_per_bram_collection_optional(self, experiment):
        result = experiment.critical_region_sweep(n_runs=2, collect_per_bram=True)
        assert result.steps[-1].per_bram_counts is not None
        assert sum(result.steps[-1].per_bram_counts) > 0

    def test_upward_sweep_rejected(self, experiment):
        with pytest.raises(SweepError):
            experiment.critical_region_sweep(start_v=0.55, stop_v=0.60)

    def test_invalid_runs_rejected(self, experiment):
        with pytest.raises(SweepError):
            experiment.critical_region_sweep(n_runs=0)
        with pytest.raises(SweepError):
            UndervoltingExperiment(FpgaChip.build("ZC702"), runs_per_step=0)


class TestFvmExtraction:
    def test_fvm_covers_critical_region(self, experiment):
        fvm = experiment.extract_fvm()
        cal = experiment.calibration
        assert max(fvm.voltages_v) == pytest.approx(cal.vmin_bram_v)
        assert min(fvm.voltages_v) == pytest.approx(cal.vcrash_bram_v, abs=0.011)
        assert fvm.n_brams == experiment.chip.spec.n_brams
        assert 0.3 < fvm.never_faulty_fraction() < 0.7


class TestGridSweep:
    def test_default_grid_covers_critical_region(self, experiment):
        cal = experiment.calibration
        result = experiment.grid_sweep(n_runs=4)
        n_voltages = len(result.grid.voltages_v)
        assert result.chip_counts.shape == (n_voltages, 1, 4)
        assert result.grid.voltages_v[0] == pytest.approx(cal.vmin_bram_v)
        assert result.grid.voltages_v[-1] == pytest.approx(cal.vcrash_bram_v, abs=0.011)

    def test_counts_and_rates_match_legacy_sweep(self, experiment):
        legacy = experiment.critical_region_sweep(n_runs=3)
        batched = experiment.grid_sweep(n_runs=3)
        assert [
            float(r) for r in batched.median_rates_per_mbit()[:, 0]
        ] == pytest.approx(legacy.fault_rates_per_mbit())
        assert [float(p) for p in batched.bram_power_w] == pytest.approx(
            [p for p in legacy.powers_w()]
        )
        assert np.array_equal(
            batched.rates_per_mbit(), batched.chip_counts / batched.total_mbits
        )

    def test_temperature_axis_reduces_rates(self, experiment):
        cal = experiment.calibration
        result = experiment.grid_sweep(
            voltages_v=[cal.vcrash_bram_v], temperatures_c=[50.0, 80.0], n_runs=2
        )
        medians = result.median_counts()
        assert medians.shape == (1, 2)
        assert medians[0, 1] < medians[0, 0]
        assert result.run_std_per_mbit().shape == (1, 2)

    def test_chip_rates_per_mbit_consistent(self, experiment):
        cal = experiment.calibration
        grid = OperatingGrid.from_axes([cal.vcrash_bram_v], runs=5)
        field = experiment.fault_field
        rates = field.batch.chip_rates_per_mbit(grid)
        counts = field.batch.chip_counts(grid)
        assert np.array_equal(rates, counts / experiment.chip.brams.total_mbits)

    def test_result_shape_validated(self, experiment):
        grid = OperatingGrid.from_axes([0.55], runs=2)
        with pytest.raises(BatchError):
            BatchGridResult(grid=grid, chip_counts=np.zeros((2, 1, 1)), total_mbits=1.0)
        with pytest.raises(BatchError):
            BatchGridResult(grid=grid, chip_counts=np.zeros((1, 1, 2)), total_mbits=0.0)


class TestTemperatureSweep:
    def test_itd_reduces_rates(self, experiment):
        results = experiment.temperature_sweep([50.0, 80.0], n_runs=2)
        rate_50 = results[50.0].fault_rates_per_mbit()[-1]
        rate_80 = results[80.0].fault_rates_per_mbit()[-1]
        assert rate_80 < rate_50
        # board returned to the reference temperature afterwards
        assert experiment.chip.board_temperature_c == pytest.approx(50.0)

    def test_requires_temperatures(self, experiment):
        with pytest.raises(SweepError):
            experiment.temperature_sweep([])

    def test_study_temperatures_constant(self):
        assert STUDY_TEMPERATURES_C == (50.0, 60.0, 70.0, 80.0)
