"""Tests for the heat chamber and temperature monitor."""

import pytest

from repro.fpga.platform import FpgaChip
from repro.harness.environment import EnvironmentError_, HeatChamber, TemperatureMonitor
from repro.harness.pmbus import PmbusAdapter


@pytest.fixture()
def chip() -> FpgaChip:
    return FpgaChip.build("ZC702")


class TestHeatChamber:
    def test_go_to_reaches_setpoint(self, chip):
        chamber = HeatChamber(chip)
        final = chamber.go_to(80.0)
        assert final == pytest.approx(80.0)
        assert chip.board_temperature_c == pytest.approx(80.0)

    def test_ramp_is_gradual(self, chip):
        chamber = HeatChamber(chip, ramp_step_c=5.0)
        chamber.go_to(80.0)
        deltas = [
            abs(b - a) for a, b in zip(chamber.history_c, chamber.history_c[1:])
        ]
        assert max(deltas) <= 5.0 + 1e-9
        assert len(chamber.history_c) >= 7  # 50 -> 80 in 5 degC steps

    def test_out_of_range_setpoint_rejected(self, chip):
        chamber = HeatChamber(chip)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(200.0)

    def test_cooling_also_works(self, chip):
        chamber = HeatChamber(chip)
        chamber.go_to(80.0)
        chamber.go_to(50.0)
        assert chip.board_temperature_c == pytest.approx(50.0)


class TestChamberEdgeCases:
    """Unreachable setpoints and ramp-limited settling.

    The fleet simulator calls ``settle(max_steps=1)`` every simulation step,
    so the chamber's partial-progress behaviour is load-bearing: a bounded
    settle must move at most ``ramp_step_c`` per step and later calls must
    finish the job.
    """

    def test_setpoint_below_chamber_floor_rejected(self, chip):
        chamber = HeatChamber(chip, min_c=20.0, max_c=110.0)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(19.9)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(-40.0)

    def test_setpoint_above_chamber_ceiling_rejected(self, chip):
        chamber = HeatChamber(chip)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(110.1)
        # A rejected setpoint leaves the previous one in force.
        chamber.set_temperature(60.0)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(200.0)
        assert chamber.setpoint_c == pytest.approx(60.0)

    def test_boundary_setpoints_are_reachable(self, chip):
        chamber = HeatChamber(chip, min_c=20.0, max_c=110.0)
        assert chamber.go_to(110.0) == pytest.approx(110.0)
        assert chamber.go_to(20.0) == pytest.approx(20.0)

    def test_bounded_settle_makes_ramp_limited_partial_progress(self, chip):
        chamber = HeatChamber(chip, ramp_step_c=5.0)  # board starts at 50
        chamber.set_temperature(80.0)
        assert chamber.settle(max_steps=1) == pytest.approx(55.0)
        assert chamber.settle(max_steps=2) == pytest.approx(65.0)
        # A later unbounded settle completes the ramp exactly.
        assert chamber.settle() == pytest.approx(80.0)

    def test_final_ramp_step_is_partial_not_overshooting(self, chip):
        chamber = HeatChamber(chip, ramp_step_c=7.0)
        chamber.set_temperature(53.0)  # 3 degC away, under one ramp step
        assert chamber.settle(max_steps=1) == pytest.approx(53.0)

    def test_settle_without_a_commanded_setpoint_is_a_no_op(self, chip):
        chamber = HeatChamber(chip)
        chamber.setpoint_c = None
        assert chamber.settle() == pytest.approx(chip.board_temperature_c)

    def test_settle_at_setpoint_appends_no_history(self, chip):
        chamber = HeatChamber(chip)
        chamber.set_temperature(chip.board_temperature_c)
        before = len(chamber.history_c)
        chamber.settle()
        assert len(chamber.history_c) == before


class TestTemperatureMonitor:
    def test_reads_through_pmbus(self, chip):
        monitor = TemperatureMonitor(PmbusAdapter(chip))
        chip.set_temperature(62.0)
        assert monitor.read_c() == 62.0
        assert monitor.is_within(62.5, tolerance_c=1.0)
        assert not monitor.is_within(70.0, tolerance_c=1.0)
