"""Tests for the heat chamber and temperature monitor."""

import pytest

from repro.fpga.platform import FpgaChip
from repro.harness.environment import EnvironmentError_, HeatChamber, TemperatureMonitor
from repro.harness.pmbus import PmbusAdapter


@pytest.fixture()
def chip() -> FpgaChip:
    return FpgaChip.build("ZC702")


class TestHeatChamber:
    def test_go_to_reaches_setpoint(self, chip):
        chamber = HeatChamber(chip)
        final = chamber.go_to(80.0)
        assert final == pytest.approx(80.0)
        assert chip.board_temperature_c == pytest.approx(80.0)

    def test_ramp_is_gradual(self, chip):
        chamber = HeatChamber(chip, ramp_step_c=5.0)
        chamber.go_to(80.0)
        deltas = [
            abs(b - a) for a, b in zip(chamber.history_c, chamber.history_c[1:])
        ]
        assert max(deltas) <= 5.0 + 1e-9
        assert len(chamber.history_c) >= 7  # 50 -> 80 in 5 degC steps

    def test_out_of_range_setpoint_rejected(self, chip):
        chamber = HeatChamber(chip)
        with pytest.raises(EnvironmentError_):
            chamber.set_temperature(200.0)

    def test_cooling_also_works(self, chip):
        chamber = HeatChamber(chip)
        chamber.go_to(80.0)
        chamber.go_to(50.0)
        assert chip.board_temperature_c == pytest.approx(50.0)


class TestTemperatureMonitor:
    def test_reads_through_pmbus(self, chip):
        monitor = TemperatureMonitor(PmbusAdapter(chip))
        chip.set_temperature(62.0)
        assert monitor.read_c() == 62.0
        assert monitor.is_within(62.5, tolerance_c=1.0)
        assert not monitor.is_within(70.0, tolerance_c=1.0)
