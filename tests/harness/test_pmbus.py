"""Tests for the PMBUS adapter."""

import pytest

from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness.pmbus import (
    PmbusAdapter,
    PmbusError,
    READ_TEMPERATURE,
    READ_VOUT,
    VOUT_COMMAND,
)


@pytest.fixture()
def adapter() -> PmbusAdapter:
    return PmbusAdapter(FpgaChip.build("ZC702"))


class TestCommands:
    def test_vout_command_drives_rail(self, adapter):
        applied = adapter.vout_command(VCCBRAM, 0.61)
        assert applied == pytest.approx(0.61)
        assert adapter.chip.vccbram == pytest.approx(0.61)

    def test_read_vout_close_to_setpoint(self, adapter):
        adapter.vout_command(VCCINT, 0.9)
        assert abs(adapter.read_vout(VCCINT) - 0.9) < 0.001

    def test_read_temperature_reports_board_state(self, adapter):
        adapter.chip.set_temperature(70.0)
        assert adapter.read_temperature() == 70.0

    def test_out_of_range_request_raises_and_is_logged(self, adapter):
        with pytest.raises(PmbusError):
            adapter.vout_command(VCCBRAM, 0.1)
        failed = adapter.commands_issued(VOUT_COMMAND)[-1]
        assert failed.response is None

    def test_commands_rejected_when_powered_off(self, adapter):
        adapter.operation_soft_off()
        with pytest.raises(PmbusError):
            adapter.vout_command(VCCBRAM, 0.8)
        adapter.operation_on()
        assert adapter.vout_command(VCCBRAM, 0.8) == pytest.approx(0.8)


class TestLog:
    def test_every_transaction_logged(self, adapter):
        adapter.vout_command(VCCBRAM, 0.7)
        adapter.read_vout(VCCBRAM)
        adapter.read_temperature()
        commands = [entry.command for entry in adapter.commands_issued()]
        assert commands == [VOUT_COMMAND, READ_VOUT, READ_TEMPERATURE]

    def test_last_setpoint_lookup(self, adapter):
        adapter.vout_command(VCCBRAM, 0.7)
        adapter.vout_command(VCCBRAM, 0.65)
        adapter.vout_command(VCCINT, 0.9)
        assert adapter.last_setpoint(VCCBRAM) == pytest.approx(0.65)
        assert adapter.last_setpoint("VCCAUX") is None

    def test_clear_log(self, adapter):
        adapter.read_temperature()
        adapter.clear_log()
        assert adapter.commands_issued() == []
