"""Tests for the host controller (BRAM init, read-back, fault analysis)."""

import numpy as np
import pytest

from repro.fpga.bitstream import CrashError
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM
from repro.harness.host import HostController
from repro.harness.pmbus import VOUT_COMMAND


@pytest.fixture()
def host() -> HostController:
    return HostController(FpgaChip.build("ZC702"))


class TestRailControl:
    def test_set_vccbram_goes_through_pmbus(self, host):
        host.set_vccbram(0.61)
        assert host.chip.vccbram == pytest.approx(0.61)
        assert host.adapter.commands_issued(VOUT_COMMAND)[-1].rail == VCCBRAM

    def test_undervolt_step_default_10mv(self, host):
        host.set_vccbram(0.61)
        host.undervolt_step()
        assert host.chip.vccbram == pytest.approx(0.60)


class TestReadback:
    def test_safe_region_readback_is_clean(self, host):
        host.initialize_brams("FFFF")
        observed = host.read_bram(0)
        assert observed.sum() == observed.size
        assert host.count_chip_faults() == 0

    def test_critical_region_readback_has_faults(self, host):
        cal = host.fault_field.calibration
        host.initialize_brams("FFFF")
        host.set_vccbram(cal.vcrash_bram_v)
        assert host.count_chip_faults() > 0

    def test_analyze_bram_matches_fault_field(self, host):
        cal = host.fault_field.calibration
        host.initialize_brams("FFFF")
        host.set_vccbram(cal.vcrash_bram_v)
        per_bram = host.per_bram_fault_counts()
        busiest = int(np.argmax(per_bram))
        records = host.analyze_bram(busiest)
        assert len(records) == per_bram[busiest]
        assert all(r.expected_bit == 1 and r.observed_bit == 0 for r in records)

    def test_per_bram_counts_sum_matches_total(self, host):
        cal = host.fault_field.calibration
        host.initialize_brams("FFFF")
        host.set_vccbram(cal.vcrash_bram_v)
        assert host.per_bram_fault_counts().sum() == host.count_chip_faults()

    def test_pattern_affects_counts(self, host):
        cal = host.fault_field.calibration
        host.set_vccbram(cal.vcrash_bram_v)
        host.initialize_brams("FFFF")
        full = host.count_chip_faults()
        host.initialize_brams(0x0000)
        sparse = host.count_chip_faults()
        assert sparse < full


class TestCrashBehaviour:
    def test_reads_below_vcrash_raise(self, host):
        cal = host.fault_field.calibration
        host.initialize_brams("FFFF")
        host.set_vccbram(cal.vcrash_bram_v - 0.02)
        assert not host.is_operational()
        with pytest.raises(CrashError):
            host.count_chip_faults()
        with pytest.raises(CrashError):
            host.read_bram(0)

    def test_recovery_restores_operation(self, host):
        cal = host.fault_field.calibration
        host.initialize_brams("FFFF")
        host.set_vccbram(cal.vcrash_bram_v - 0.02)
        host.recover_from_crash()
        assert host.is_operational()
        assert host.count_chip_faults() == 0  # back at nominal voltage
