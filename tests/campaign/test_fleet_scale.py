"""Fleet-scale campaign tests (marker ``slow``: opt-in locally, always in CI).

These run the full 16-chip ``fleet16`` preset — the same workload as the
acceptance benchmark — inside the test suite, so CI exercises the adaptive
fleet path end to end on every push.  Locally they are skipped unless
``--run-slow`` is given (each run characterizes 16 dies twice).

Every comparison here is *cross-store-version*: one side of each pair runs
against the v1 per-unit layout and the other against the v2 segmented
columnar layout, so the equivalence claims (adaptive == exhaustive,
parallel == serial) simultaneously prove the two layouts interchangeable
at fleet scale without doubling the number of campaign runs.
"""

import dataclasses
import time

import pytest

from repro.campaign import build_report, open_store, preset_spec, run_campaign

pytestmark = pytest.mark.slow


class TestFleet16AdaptivePath:
    @pytest.mark.parametrize(
        "adaptive_version,exhaustive_version", [(1, 2), (2, 1)]
    )
    def test_adaptive_fleet_matches_exhaustive_and_saves_5x(
        self, tmp_path, adaptive_version, exhaustive_version
    ):
        adaptive_spec = preset_spec("fleet16")
        exhaustive_spec = dataclasses.replace(
            adaptive_spec, name="fleet16-ex", search="exhaustive"
        )
        adaptive = run_campaign(
            adaptive_spec, root=tmp_path, max_workers=2,
            store_version=adaptive_version,
        )
        exhaustive = run_campaign(
            exhaustive_spec, root=tmp_path, max_workers=2,
            store_version=exhaustive_version,
        )
        assert adaptive.store_version == adaptive_version
        assert exhaustive.store_version == exhaustive_version

        adaptive_rails = {
            r.unit.chip_key: r.summary["rails"]
            for r in open_store(adaptive_spec.name, tmp_path).results(
                adaptive_spec, with_arrays=False
            )
        }
        exhaustive_rails = {
            r.unit.chip_key: r.summary["rails"]
            for r in open_store(exhaustive_spec.name, tmp_path).results(
                exhaustive_spec, with_arrays=False
            )
        }
        assert adaptive_rails == exhaustive_rails
        speedup = (
            exhaustive.evaluations["n_evaluations"]
            / adaptive.evaluations["n_evaluations"]
        )
        assert speedup >= 5.0

    @pytest.mark.parametrize(
        "parallel_version,serial_version", [(1, 2), (2, 1)]
    )
    def test_parallel_and_serial_adaptive_runs_agree(
        self, tmp_path, parallel_version, serial_version
    ):
        """Scalars AND persisted arrays are independent of scheduling.

        The probed-point *set* of an adaptive search depends on warm-start
        state, which differs between serial and process-parallel execution;
        the stored payload keeps only the certificate-decisive points, so
        the on-disk results must be bit-identical regardless — whichever
        store layout each run lands in.
        """
        import numpy as np

        parallel_spec = preset_spec("fleet16")
        serial_spec = dataclasses.replace(parallel_spec, name="fleet16-serial")
        run_campaign(
            parallel_spec, root=tmp_path, max_workers=4,
            store_version=parallel_version,
        )
        run_campaign(
            serial_spec, root=tmp_path, use_processes=False,
            store_version=serial_version,
        )
        parallel = {
            r.unit.chip_key: r
            for r in open_store(parallel_spec.name, tmp_path).results(parallel_spec)
        }
        serial = {
            r.unit.chip_key: r
            for r in open_store(serial_spec.name, tmp_path).results(serial_spec)
        }
        assert set(parallel) == set(serial)
        for chip_key, parallel_result in parallel.items():
            serial_result = serial[chip_key]
            assert parallel_result.summary["rails"] == serial_result.summary["rails"]
            assert set(parallel_result.arrays) == set(serial_result.arrays)
            for name, array in parallel_result.arrays.items():
                assert np.array_equal(
                    array, serial_result.arrays[name], equal_nan=True
                ), (chip_key, name)


class TestStreamingReportScale:
    def test_streaming_report_over_10k_synthetic_dies(self, tmp_path, monkeypatch):
        """The v2 report path aggregates 10k dies without per-die objects.

        Synthetic (schema-correct, fabricated) results isolate store-layer
        cost from the fault model.  Materialization is policed directly: a
        poisoned ``UnitResult`` constructor fails the test if the streaming
        path ever builds one.
        """
        from repro.campaign import store_v2 as store_v2_module
        from repro.campaign.store_v2 import CampaignStoreV2
        from repro.campaign.synthetic import (
            synthetic_fleet_spec,
            synthetic_result_batches,
        )

        spec = synthetic_fleet_spec(10_000, "stream10k")
        store = CampaignStoreV2.open(spec, tmp_path)
        for batch in synthetic_result_batches(spec, batch_rows=4_000):
            store.save_many(batch)
        store.compact()

        def poisoned(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "streaming report materialized a per-die UnitResult"
            )

        monkeypatch.setattr(store_v2_module, "UnitResult", poisoned)
        fresh = open_store(spec.name, tmp_path)
        start = time.perf_counter()
        report = build_report(fresh, spec)
        elapsed = time.perf_counter() - start

        assert report.n_completed == 10_000
        assert report.store["version"] == 2
        assert report.fleet["vccbram_vmin_v"].as_dict()["n"] == 10_000
        # Sub-second at 10x this scale is the bench target; at 10k dies the
        # streaming path has two orders of magnitude of headroom, so even a
        # loaded CI worker holds a generous bound.
        assert elapsed < 5.0
        # Rows stream out of the ordered columns on demand — spot-check the
        # first row is the first unit of the expansion without iterating all.
        assert report.units[0]["unit_id"] == spec.expand()[0].unit_id
