"""Fleet-scale campaign tests (marker ``slow``: opt-in locally, always in CI).

These run the full 16-chip ``fleet16`` preset — the same workload as the
acceptance benchmark — inside the test suite, so CI exercises the adaptive
fleet path end to end on every push.  Locally they are skipped unless
``--run-slow`` is given (each run characterizes 16 dies twice).
"""

import dataclasses

import pytest

from repro.campaign import CampaignStore, preset_spec, run_campaign

pytestmark = pytest.mark.slow


class TestFleet16AdaptivePath:
    def test_adaptive_fleet_matches_exhaustive_and_saves_5x(self, tmp_path):
        adaptive_spec = preset_spec("fleet16")
        exhaustive_spec = dataclasses.replace(
            adaptive_spec, name="fleet16-ex", search="exhaustive"
        )
        adaptive = run_campaign(adaptive_spec, root=tmp_path, max_workers=2)
        exhaustive = run_campaign(exhaustive_spec, root=tmp_path, max_workers=2)

        adaptive_rails = {
            r.unit.chip_key: r.summary["rails"]
            for r in CampaignStore(adaptive_spec.name, tmp_path).results(
                adaptive_spec, with_arrays=False
            )
        }
        exhaustive_rails = {
            r.unit.chip_key: r.summary["rails"]
            for r in CampaignStore(exhaustive_spec.name, tmp_path).results(
                exhaustive_spec, with_arrays=False
            )
        }
        assert adaptive_rails == exhaustive_rails
        speedup = (
            exhaustive.evaluations["n_evaluations"]
            / adaptive.evaluations["n_evaluations"]
        )
        assert speedup >= 5.0

    def test_parallel_and_serial_adaptive_runs_agree(self, tmp_path):
        """Scalars AND persisted arrays are independent of scheduling.

        The probed-point *set* of an adaptive search depends on warm-start
        state, which differs between serial and process-parallel execution;
        the stored payload keeps only the certificate-decisive points, so
        the on-disk results must be bit-identical regardless.
        """
        import numpy as np

        parallel_spec = preset_spec("fleet16")
        serial_spec = dataclasses.replace(parallel_spec, name="fleet16-serial")
        run_campaign(parallel_spec, root=tmp_path, max_workers=4)
        run_campaign(serial_spec, root=tmp_path, use_processes=False)
        parallel = {
            r.unit.chip_key: r
            for r in CampaignStore(parallel_spec.name, tmp_path).results(parallel_spec)
        }
        serial = {
            r.unit.chip_key: r
            for r in CampaignStore(serial_spec.name, tmp_path).results(serial_spec)
        }
        assert set(parallel) == set(serial)
        for chip_key, parallel_result in parallel.items():
            serial_result = serial[chip_key]
            assert parallel_result.summary["rails"] == serial_result.summary["rails"]
            assert set(parallel_result.arrays) == set(serial_result.arrays)
            for name, array in parallel_result.arrays.items():
                assert np.array_equal(
                    array, serial_result.arrays[name], equal_nan=True
                ), (chip_key, name)
