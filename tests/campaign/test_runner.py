"""Tests for campaign execution: sharding, resume, equivalence, reporting."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    ChipGroup,
    WorkUnit,
    build_report,
    execute_unit,
    fvm_from_result,
    run_campaign,
)
from repro.campaign.runner import _shards
from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness import UndervoltingExperiment

ZC702_STOCK_SERIAL = "630851561533-44019"


def two_chip_spec(sweep="guardband", **overrides):
    base = dict(
        name=f"runner-{sweep}",
        groups=(
            ChipGroup(platform="ZC702", serials=(ZC702_STOCK_SERIAL, "SIM-ZC702-0001")),
        ),
        sweep=sweep,
        runs_per_step=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSharding:
    def test_one_shard_per_chip_preserving_order(self):
        spec = two_chip_spec(temperatures_c=(50.0, 60.0))
        shards = _shards(spec.expand())
        assert len(shards) == 2
        for shard in shards:
            assert len(set(u.chip_key for u in shard)) == 1
            assert len(shard) == 2


class TestExecuteUnit:
    def test_guardband_unit_matches_single_chip_experiment_bit_for_bit(self):
        unit = WorkUnit(
            platform="ZC702", serial=ZC702_STOCK_SERIAL, sweep="guardband", runs_per_step=3
        )
        result = execute_unit(unit)
        chip = FpgaChip.build("ZC702")
        experiment = UndervoltingExperiment(chip, runs_per_step=3)
        for rail in (VCCBRAM, VCCINT):
            measurement, _ = experiment.discover_guardband(rail=rail)
            stored = result.summary["rails"][rail]
            assert stored["vmin_v"] == measurement.vmin_v
            assert stored["vcrash_v"] == measurement.vcrash_v
            assert stored["guardband_fraction"] == measurement.guardband_fraction
            assert (
                stored["power_reduction_factor_at_vmin"]
                == measurement.power_reduction_factor_at_vmin
            )

    def test_sweep_unit_matches_critical_region_sweep(self):
        unit = WorkUnit(
            platform="ZC702", serial=ZC702_STOCK_SERIAL, sweep="sweep", runs_per_step=3
        )
        result = execute_unit(unit)
        chip = FpgaChip.build("ZC702")
        experiment = UndervoltingExperiment(chip, runs_per_step=3)
        reference = experiment.critical_region_sweep(n_runs=3)
        np.testing.assert_array_equal(result.arrays["voltages_v"], reference.voltages())
        np.testing.assert_array_equal(
            result.arrays["median_rates_per_mbit"], reference.fault_rates_per_mbit()
        )

    def test_fvm_unit_roundtrips_to_a_fault_variation_map(self):
        unit = WorkUnit(platform="ZC702", serial="SIM-ZC702-0001", sweep="fvm")
        result = execute_unit(unit)
        fvm = fvm_from_result(result)
        assert fvm.n_brams == 280
        assert fvm.statistics()["never_faulty_fraction"] == pytest.approx(
            result.summary["never_faulty_fraction"]
        )

    def test_distinct_serials_get_distinct_fault_maps(self):
        a = execute_unit(WorkUnit(platform="ZC702", serial="SIM-ZC702-0001", sweep="fvm"))
        b = execute_unit(WorkUnit(platform="ZC702", serial="SIM-ZC702-0002", sweep="fvm"))
        assert not np.array_equal(a.arrays["counts"], b.arrays["counts"])

    def test_temperature_lowers_fault_rates(self):
        cold = execute_unit(
            WorkUnit(platform="ZC702", serial=ZC702_STOCK_SERIAL, sweep="sweep",
                     temperature_c=50.0, runs_per_step=3)
        )
        hot = execute_unit(
            WorkUnit(platform="ZC702", serial=ZC702_STOCK_SERIAL, sweep="sweep",
                     temperature_c=80.0, runs_per_step=3)
        )
        assert (
            hot.arrays["median_rates_per_mbit"][-1]
            < cold.arrays["median_rates_per_mbit"][-1]
        )


class TestRunCampaign:
    def test_serial_run_completes_and_resumes(self, tmp_path):
        spec = two_chip_spec()
        report = run_campaign(spec, root=tmp_path, max_workers=1)
        assert len(report.executed) == 2 and report.skipped == ()
        assert CampaignStore(spec.name, tmp_path).status(spec).is_complete

        resumed = run_campaign(spec, root=tmp_path, max_workers=1)
        assert resumed.executed == ()
        assert len(resumed.skipped) == 2

    def test_interrupted_campaign_only_runs_missing_units(self, tmp_path):
        spec = two_chip_spec(sweep="fvm")
        run_campaign(spec, root=tmp_path, max_workers=1)
        store = CampaignStore(spec.name, tmp_path)
        units = spec.expand()
        # Simulate an interruption: drop one unit's commit marker.
        store._json_path(units[0].unit_id).unlink()
        report = run_campaign(spec, root=tmp_path, max_workers=1)
        assert report.executed == (units[0].unit_id,)
        assert set(report.skipped) == {units[1].unit_id}
        assert store.status(spec).is_complete

    def test_process_parallel_matches_serial_results(self, tmp_path):
        spec = two_chip_spec(name="runner-parallel")
        serial_spec = two_chip_spec(name="runner-serial")
        run_campaign(spec, root=tmp_path, max_workers=2, use_processes=True)
        run_campaign(serial_spec, root=tmp_path, max_workers=1)
        parallel_store = CampaignStore(spec.name, tmp_path)
        serial_store = CampaignStore(serial_spec.name, tmp_path)
        for unit, reference in zip(spec.expand(), serial_spec.expand()):
            assert (
                parallel_store.load(unit).summary == serial_store.load(reference).summary
            )

    def test_progress_callback_fires_per_unit(self, tmp_path):
        spec = two_chip_spec(name="runner-progress")
        seen = []
        run_campaign(
            spec, root=tmp_path, max_workers=1,
            progress=lambda unit_id, done, total: seen.append((unit_id, done, total)),
        )
        assert [(done, total) for _, done, total in seen] == [(1, 2), (2, 2)]

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(two_chip_spec(name="runner-bad"), root=tmp_path, max_workers=0)


class TestBuildReport:
    def test_report_aggregates_fleet_and_platform_distributions(self, tmp_path):
        spec = two_chip_spec(name="runner-report")
        run_campaign(spec, root=tmp_path, max_workers=1)
        report = build_report(CampaignStore(spec.name, tmp_path), spec)
        payload = report.to_dict()
        assert payload["complete"] and payload["n_completed"] == 2
        assert len(payload["units"]) == 2
        fleet = payload["population"]["fleet"]
        assert fleet["vccbram_guardband_fraction"]["n"] == 2
        assert set(payload["population"]["by_platform"]) == {"ZC702"}

    def test_fvm_report_contains_pairwise_similarity(self, tmp_path):
        spec = two_chip_spec(name="runner-report-fvm", sweep="fvm")
        run_campaign(spec, root=tmp_path, max_workers=1)
        report = build_report(CampaignStore(spec.name, tmp_path), spec)
        payload = report.to_dict()
        pairs = payload["fvm_similarity"]["pairs"]
        assert len(pairs) == 1
        assert pairs[0]["platform"] == "ZC702"
        assert payload["fvm_similarity"]["extremes"]["n_pairs"] == 1

    def test_empty_store_raises(self, tmp_path):
        spec = two_chip_spec(name="runner-empty")
        CampaignStore.open(spec, tmp_path)
        with pytest.raises(CampaignError, match="no completed units"):
            build_report(CampaignStore(spec.name, tmp_path), spec)
