"""Tests for the on-disk campaign store and its resume semantics."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    ChipGroup,
    UnitResult,
)


@pytest.fixture
def spec():
    return CampaignSpec(
        name="store-test",
        groups=(ChipGroup(platform="ZC702", serials=("s1", "s2")),),
        sweep="sweep",
    )


def fake_result(unit):
    return UnitResult(
        unit=unit,
        summary={"vmin_v": 0.61, "nested": {"ok": True}},
        arrays={"voltages_v": np.array([0.61, 0.60]), "counts": np.arange(4)},
    )


class TestManifest:
    def test_open_writes_manifest_and_reopen_is_idempotent(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        assert store.manifest_path.exists()
        again = CampaignStore.open(spec, tmp_path)
        assert again.load_manifest() == spec

    def test_open_rejects_different_spec_under_same_name(self, spec, tmp_path):
        CampaignStore.open(spec, tmp_path)
        other = CampaignSpec(
            name="store-test",
            groups=(ChipGroup(platform="ZC702", serials=("s1",)),),
            sweep="fvm",
        )
        with pytest.raises(CampaignError, match="does not match"):
            CampaignStore.open(other, tmp_path)

    def test_load_manifest_requires_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            CampaignStore("missing", tmp_path).load_manifest()

    def test_corrupt_manifest_hash_is_detected(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        document = json.loads(store.manifest_path.read_text())
        document["spec_hash"] = "0" * 16
        store.manifest_path.write_text(json.dumps(document))
        with pytest.raises(CampaignError, match="does not match its own spec"):
            store.load_manifest()


class TestUnitPersistence:
    def test_save_load_roundtrip(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(fake_result(unit))
        loaded = store.load(unit)
        assert loaded.unit == unit
        assert loaded.summary == {"vmin_v": 0.61, "nested": {"ok": True}}
        np.testing.assert_array_equal(loaded.arrays["voltages_v"], [0.61, 0.60])
        np.testing.assert_array_equal(loaded.arrays["counts"], np.arange(4))

    def test_json_marker_defines_completion(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        assert not store.is_complete(unit)
        # A dangling npz (crash mid-unit) does not count as complete.
        store._npz_path(unit.unit_id).write_bytes(b"torn")
        assert not store.is_complete(unit)
        store.save(fake_result(unit))
        assert store.is_complete(unit)
        assert store.is_complete(unit.unit_id)

    def test_load_incomplete_unit_raises(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        with pytest.raises(CampaignError, match="has not completed"):
            store.load(spec.expand()[0])

    def test_arrayless_result_writes_no_npz(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(UnitResult(unit=unit, summary={"x": 1}))
        assert not store._npz_path(unit.unit_id).exists()
        assert store.load(unit).arrays == {}


class TestSpecLevelViews:
    def test_pending_and_status_track_completion(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        units = spec.expand()
        assert store.pending_units(spec) == units
        store.save(fake_result(units[0]))
        status = store.status(spec)
        assert status.n_completed == 1
        assert status.n_pending == len(units) - 1
        assert not status.is_complete
        assert units[0].unit_id in status.completed
        for unit in units[1:]:
            store.save(fake_result(unit))
        assert store.status(spec).is_complete
        assert store.pending_units(spec) == ()

    def test_results_follow_expansion_order(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        units = spec.expand()
        for unit in reversed(units):
            store.save(fake_result(unit))
        assert [r.unit for r in store.results(spec)] == list(units)

    def test_views_reject_a_spec_mismatching_the_manifest(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        other = CampaignSpec(
            name="store-test",
            groups=(ChipGroup(platform="ZC702", serials=("s9",)),),
            sweep="fvm",
        )
        with pytest.raises(CampaignError, match="does not match"):
            store.status(other)
        with pytest.raises(CampaignError, match="does not match"):
            store.results(other)

    def test_views_accept_a_spec_before_the_store_exists(self, spec, tmp_path):
        # "Not started yet" is a valid state for status with an explicit spec.
        status = CampaignStore(spec.name, tmp_path).status(spec)
        assert status.n_completed == 0 and status.n_pending == spec.n_units

    def test_summary_only_load_skips_arrays(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(fake_result(unit))
        light = store.load(unit, with_arrays=False)
        assert light.arrays == {}
        assert light.summary["vmin_v"] == 0.61

    def test_status_json_shape(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        payload = store.status(spec).to_dict()
        assert set(payload) == {
            "name", "spec_hash", "sweep", "n_units", "n_completed",
            "n_pending", "complete", "pending_unit_ids",
        }
        assert payload["n_units"] == len(payload["pending_unit_ids"])
