"""Tests for the on-disk campaign store and its resume semantics."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    CampaignStoreV2,
    ChipGroup,
    UnitResult,
)
from repro.cli import main


@pytest.fixture
def spec():
    return CampaignSpec(
        name="store-test",
        groups=(ChipGroup(platform="ZC702", serials=("s1", "s2")),),
        sweep="sweep",
    )


def fake_result(unit):
    return UnitResult(
        unit=unit,
        summary={"vmin_v": 0.61, "nested": {"ok": True}},
        arrays={"voltages_v": np.array([0.61, 0.60]), "counts": np.arange(4)},
    )


class TestManifest:
    def test_open_writes_manifest_and_reopen_is_idempotent(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        assert store.manifest_path.exists()
        again = CampaignStore.open(spec, tmp_path)
        assert again.load_manifest() == spec

    def test_open_rejects_different_spec_under_same_name(self, spec, tmp_path):
        CampaignStore.open(spec, tmp_path)
        other = CampaignSpec(
            name="store-test",
            groups=(ChipGroup(platform="ZC702", serials=("s1",)),),
            sweep="fvm",
        )
        with pytest.raises(CampaignError, match="does not match"):
            CampaignStore.open(other, tmp_path)

    def test_load_manifest_requires_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            CampaignStore("missing", tmp_path).load_manifest()

    def test_corrupt_manifest_hash_is_detected(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        document = json.loads(store.manifest_path.read_text())
        document["spec_hash"] = "0" * 16
        store.manifest_path.write_text(json.dumps(document))
        with pytest.raises(CampaignError, match="does not match its own spec"):
            store.load_manifest()


class TestUnitPersistence:
    def test_save_load_roundtrip(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(fake_result(unit))
        loaded = store.load(unit)
        assert loaded.unit == unit
        assert loaded.summary == {"vmin_v": 0.61, "nested": {"ok": True}}
        np.testing.assert_array_equal(loaded.arrays["voltages_v"], [0.61, 0.60])
        np.testing.assert_array_equal(loaded.arrays["counts"], np.arange(4))

    def test_json_marker_defines_completion(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        assert not store.is_complete(unit)
        # A dangling npz (crash mid-unit) does not count as complete.
        store._npz_path(unit.unit_id).write_bytes(b"torn")
        assert not store.is_complete(unit)
        store.save(fake_result(unit))
        assert store.is_complete(unit)
        assert store.is_complete(unit.unit_id)

    def test_load_incomplete_unit_raises(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        with pytest.raises(CampaignError, match="has not completed"):
            store.load(spec.expand()[0])

    def test_arrayless_result_writes_no_npz(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(UnitResult(unit=unit, summary={"x": 1}))
        assert not store._npz_path(unit.unit_id).exists()
        assert store.load(unit).arrays == {}


class TestSpecLevelViews:
    def test_pending_and_status_track_completion(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        units = spec.expand()
        assert store.pending_units(spec) == units
        store.save(fake_result(units[0]))
        status = store.status(spec)
        assert status.n_completed == 1
        assert status.n_pending == len(units) - 1
        assert not status.is_complete
        assert units[0].unit_id in status.completed
        for unit in units[1:]:
            store.save(fake_result(unit))
        assert store.status(spec).is_complete
        assert store.pending_units(spec) == ()

    def test_results_follow_expansion_order(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        units = spec.expand()
        for unit in reversed(units):
            store.save(fake_result(unit))
        assert [r.unit for r in store.results(spec)] == list(units)

    def test_views_reject_a_spec_mismatching_the_manifest(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        other = CampaignSpec(
            name="store-test",
            groups=(ChipGroup(platform="ZC702", serials=("s9",)),),
            sweep="fvm",
        )
        with pytest.raises(CampaignError, match="does not match"):
            store.status(other)
        with pytest.raises(CampaignError, match="does not match"):
            store.results(other)

    def test_views_accept_a_spec_before_the_store_exists(self, spec, tmp_path):
        # "Not started yet" is a valid state for status with an explicit spec.
        status = CampaignStore(spec.name, tmp_path).status(spec)
        assert status.n_completed == 0 and status.n_pending == spec.n_units

    def test_summary_only_load_skips_arrays(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(fake_result(unit))
        light = store.load(unit, with_arrays=False)
        assert light.arrays == {}
        assert light.summary["vmin_v"] == 0.61

    def test_status_json_shape(self, spec, tmp_path):
        store = CampaignStore.open(spec, tmp_path)
        payload = store.status(spec).to_dict()
        assert set(payload) == {
            "name", "spec_hash", "sweep", "n_units", "n_completed",
            "n_pending", "complete", "store", "pending_unit_ids",
        }
        assert payload["store"] == {"version": 1}
        assert payload["n_units"] == len(payload["pending_unit_ids"])


class TestCorruptV2Store:
    """Damaged v2 layouts must exit 2 with one one-line error, never crash."""

    @pytest.fixture
    def v2_store(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        store.save_many(fake_result(unit) for unit in spec.expand())
        return store

    def assert_cli_fails(self, capsys, tmp_path, name, *commands):
        for command in commands:
            argv = ["campaign", command, "--name", name, "--root", str(tmp_path)]
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert err.startswith("error: ")
            assert err.count("\n") == 1  # one line, no traceback

    def test_truncated_segment_column(self, v2_store, capsys, tmp_path):
        segment = v2_store._segments()[0]
        column = v2_store.segments_dir / segment.name / "unit_id.npy"
        column.write_bytes(column.read_bytes()[:24])
        v2_store._segment_cache.clear()
        v2_store._live_cache = None
        v2_store.index_path.unlink()  # force the column scan
        with pytest.raises(CampaignError, match="corrupt, truncated or missing"):
            v2_store.completed_ids()
        self.assert_cli_fails(capsys, tmp_path, "store-test", "status", "report")

    def test_marker_row_count_mismatch(self, v2_store, capsys, tmp_path):
        segment = v2_store._segments()[0]
        marker_path = v2_store.segments_dir / f"{segment.name}.json"
        marker = json.loads(marker_path.read_text())
        marker["n_rows"] += 1
        marker_path.write_text(json.dumps(marker))
        v2_store._segment_cache.clear()
        v2_store._live_cache = None
        v2_store.index_path.unlink()  # force the column scan
        with pytest.raises(CampaignError, match="rows"):
            v2_store.completed_ids()
        self.assert_cli_fails(capsys, tmp_path, "store-test", "status", "report")

    def test_mixed_version_directory(self, v2_store, capsys, tmp_path, spec):
        # A v2 manifest over leftover v1 units/ markers: a botched migration.
        v2_store.units_dir.mkdir(exist_ok=True)
        (v2_store.units_dir / "deadbeef.json").write_text("{}")
        with pytest.raises(CampaignError, match="mixes store layouts"):
            v2_store.completed_ids()
        self.assert_cli_fails(
            capsys, tmp_path, "store-test", "status", "report", "migrate"
        )

    def test_v1_manifest_over_v2_segments(self, spec, tmp_path, capsys):
        store = CampaignStore.open(spec, tmp_path)
        store.save(fake_result(spec.expand()[0]))
        segments = store.directory / "segments"
        segments.mkdir()
        (segments / "seg-00000000-feed.json").write_text("{}")
        self.assert_cli_fails(
            capsys, tmp_path, "store-test", "status", "report", "migrate"
        )
