"""Property tests for the v2 segmented columnar store, against the v1 oracle.

The v1 store's behaviour is the specification: any history of saves, batch
saves, torn writes (a crash before the commit marker lands), process
restarts and compactions must leave a v2 store that reads back exactly what
the same history leaves in a v1 store — same completed set, bit-identical
unit payloads, identical status and report documents (modulo the ``store``
block, which intentionally differs).  A second property drives the v1→v2
migration tool over random partial campaigns and requires the round trip to
be invisible to every reader.
"""

import json
import tempfile
from pathlib import Path

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    CampaignStoreV2,
    ChipGroup,
    UnitResult,
    build_report,
    migrate_store,
    open_store,
    open_store_for_spec,
    store_digest,
)

N_UNITS = 6  # 3 serials x 2 temperatures x 1 pattern


def make_spec(name="prop-v2"):
    return CampaignSpec(
        name=name,
        groups=(ChipGroup(platform="ZC702", serials=("s1", "s2", "s3")),),
        sweep="sweep",
        temperatures_c=(25.0, 50.0),
    )


def fake_result(unit, index, salt=0):
    """Deterministic per-unit payload covering the sweep metric columns.

    The array *signature* varies with the index (an extra int column every
    third unit, a 2-D block every fourth) so batch saves exercise the
    signature partitioning, and ``salt`` lets a re-save carry a visibly
    different payload.
    """
    rng = np.random.default_rng(1000 * salt + index)
    arrays = {"voltages_v": rng.random(3 + index % 2)}
    if index % 3 == 0:
        arrays["counts"] = np.arange(index + 2, dtype=np.int64)
    if index % 4 == 0:
        arrays["grid"] = rng.random((2, index % 3 + 1))
    return UnitResult(
        unit=unit,
        summary={
            "rate_at_vcrash_per_mbit": 10.0 + index + salt,
            "power_at_vmin_w": 2.0 - 0.01 * index,
            "power_at_vcrash_w": 1.5 - 0.01 * index,
            "nested": {"index": index, "salt": salt},
        },
        arrays=arrays,
    )


def assert_stores_equivalent(spec, store1, store2):
    """Every read path of ``store2`` (v2) agrees with ``store1`` (v1)."""
    assert store2.completed_ids() == store1.completed_ids()
    for unit in spec.expand():
        assert store2.is_complete(unit) == store1.is_complete(unit)
        if not store1.is_complete(unit):
            continue
        a, b = store1.load(unit), store2.load(unit)
        assert b.unit == a.unit
        assert b.summary == a.summary
        assert sorted(b.arrays) == sorted(a.arrays)
        for name, array in a.arrays.items():
            assert b.arrays[name].dtype == array.dtype
            np.testing.assert_array_equal(b.arrays[name], array)
    status1, status2 = store1.status(spec).to_dict(), store2.status(spec).to_dict()
    assert status1.pop("store") == {"version": 1}
    assert status2.pop("store")["version"] == 2
    assert status2 == status1
    if store1.completed_ids():
        report1, report2 = (
            build_report(store1, spec).to_dict(),
            build_report(store2, spec).to_dict(),
        )
        assert report1.pop("store") == {"version": 1}
        assert report2.pop("store")["version"] == 2
        assert json.dumps(report2, sort_keys=True) == json.dumps(
            report1, sort_keys=True
        )


def torn_write(store1, store2, unit, index):
    """Crash the same logical write on both stores, before either commits.

    v1: a dangling ``.npz`` with no JSON marker.  v2: segment data on disk
    with the commit marker removed.  Neither may change what is complete,
    and a previously committed payload for the unit must survive untouched.
    """
    if not store1.is_complete(unit):
        store1._npz_path(unit.unit_id).write_bytes(b"torn")
    store2.save(fake_result(unit, index, salt=99))
    victim = store2._segments()[-1]  # the newest sequence: the save above
    (store2.segments_dir / f"{victim.name}.json").unlink()
    store2._live_cache = None


_INDEX = st.integers(min_value=0, max_value=N_UNITS - 1)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("save"), _INDEX),
        st.tuples(
            st.just("save_many"),
            st.lists(_INDEX, min_size=1, max_size=N_UNITS, unique=True),
        ),
        st.tuples(st.just("torn"), _INDEX),
        st.tuples(st.just("compact")),
        st.tuples(st.just("reopen")),
    ),
    min_size=1,
    max_size=10,
)


class TestV1Oracle:
    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_random_histories_read_back_identically(self, ops):
        spec = make_spec()
        units = spec.expand()
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            store1 = CampaignStore.open(spec, scratch / "v1")
            store2 = CampaignStoreV2.open(spec, scratch / "v2")
            for op in ops:
                if op[0] == "save":
                    index = op[1]
                    store1.save(fake_result(units[index], index))
                    store2.save(fake_result(units[index], index))
                elif op[0] == "save_many":
                    for index in op[1]:
                        store1.save(fake_result(units[index], index))
                    store2.save_many(
                        [fake_result(units[index], index) for index in op[1]]
                    )
                elif op[0] == "torn":
                    torn_write(store1, store2, units[op[1]], op[1])
                elif op[0] == "compact":
                    store2.compact()  # pure consolidation: invisible to v1
                elif op[0] == "reopen":
                    store1 = open_store(spec.name, scratch / "v1")
                    store2 = open_store(spec.name, scratch / "v2")
                    assert isinstance(store2, CampaignStoreV2)
                assert store2.completed_ids() == store1.completed_ids()
            assert_stores_equivalent(spec, store1, store2)

    @settings(max_examples=20, deadline=None)
    @given(
        subset=st.lists(_INDEX, min_size=1, max_size=N_UNITS, unique=True),
        batched=st.booleans(),
    )
    def test_migration_round_trip_is_invisible(self, subset, batched):
        spec = make_spec("prop-migrate")
        units = spec.expand()
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            store1 = CampaignStore.open(spec, scratch)
            results = [fake_result(units[index], index) for index in subset]
            for result in results:
                store1.save(result)
            digest = store_digest(store1, spec)
            report_before = build_report(store1, spec).to_dict()
            report_before.pop("store")

            migration = migrate_store(
                spec.name, scratch, batch_rows=2 if batched else 4096
            )
            assert migration.from_version == 1 and migration.to_version == 2
            assert migration.n_units == len(subset)
            assert migration.digest == digest

            store2 = open_store(spec.name, scratch)
            assert isinstance(store2, CampaignStoreV2)
            assert store_digest(store2, spec) == digest
            report_after = build_report(store2, spec).to_dict()
            assert report_after.pop("store")["version"] == 2
            assert json.dumps(report_after, sort_keys=True) == json.dumps(
                report_before, sort_keys=True
            )
            # Idempotent: a second migrate is a no-op, not an error.
            assert migrate_store(spec.name, scratch).already_v2


class TestSegmentMechanics:
    @pytest.fixture
    def spec(self):
        return make_spec("mech-v2")

    def test_save_many_partitions_by_array_signature(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        units = spec.expand()
        store.save_many(fake_result(unit, i) for i, unit in enumerate(units))
        # Signatures along indices 0..5 change at 1, 3, 4, 5 -> 5 runs.
        assert len(store._segments()) == 5
        assert store.completed_ids() == tuple(sorted(u.unit_id for u in units))

    def test_save_many_rejects_mixed_sweeps(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        other = CampaignSpec(
            name="mech-v2-other",
            groups=(ChipGroup(platform="ZC702", serials=("s1",)),),
            sweep="fvm",
        )
        with pytest.raises(CampaignError, match="cannot mix sweep kinds"):
            store.save_many(
                [
                    fake_result(spec.expand()[0], 0),
                    fake_result(other.expand()[0], 0),
                ]
            )

    def test_resave_supersedes_and_survives_compaction(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        unit = spec.expand()[0]
        store.save(fake_result(unit, 0, salt=1))
        store.save(fake_result(unit, 0, salt=2))
        assert store.load(unit).summary["nested"]["salt"] == 2
        counts = store.compact()
        assert counts["n_segments_before"] == 2
        assert counts["n_rows"] == 1
        assert store.load(unit).summary["nested"]["salt"] == 2

    def test_corrupt_or_stale_index_is_rebuilt_silently(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        units = spec.expand()
        store.save_many([fake_result(units[0], 0), fake_result(units[1], 1)])
        completed = store.completed_ids()
        store.index_path.write_text("{not json")
        assert open_store(spec.name, tmp_path).completed_ids() == completed
        # save() appends without refreshing the index: now stale, still cheap
        # to detect, and never trusted.
        store.save(fake_result(units[2], 2))
        reopened = open_store(spec.name, tmp_path)
        assert len(reopened.completed_ids()) == 3
        reopened.write_index()
        assert json.loads(store.index_path.read_text())["store_version"] == 2

    def test_compact_preserves_the_report(self, spec, tmp_path):
        store = CampaignStoreV2.open(spec, tmp_path)
        for index, unit in enumerate(spec.expand()):
            store.save(fake_result(unit, index))
        before = build_report(store, spec).to_dict()
        counts = store.compact()
        assert counts["n_segments_before"] == len(spec.expand())
        assert counts["n_segments_after"] < counts["n_segments_before"]
        after = build_report(open_store(spec.name, tmp_path), spec).to_dict()
        assert before.pop("store")["n_segments"] != after.pop("store")["n_segments"]
        assert json.dumps(after, sort_keys=True) == json.dumps(
            before, sort_keys=True
        )


class TestVersionDispatch:
    def test_open_store_dispatches_on_manifest(self, tmp_path):
        spec1, spec2 = make_spec("disp-v1"), make_spec("disp-v2")
        CampaignStore.open(spec1, tmp_path)
        CampaignStoreV2.open(spec2, tmp_path)
        assert open_store("disp-v1", tmp_path).store_version == 1
        assert open_store("disp-v2", tmp_path).store_version == 2
        with pytest.raises(CampaignError, match="no campaign manifest"):
            open_store("missing", tmp_path)
        probe = open_store("missing", tmp_path, must_exist=False)
        assert probe.store_version == 1  # the "not started" view

    def test_open_store_for_spec_pins_the_existing_version(self, tmp_path):
        spec = make_spec("disp-pin")
        open_store_for_spec(spec, tmp_path, store_version=1)
        assert open_store_for_spec(spec, tmp_path).store_version == 1
        with pytest.raises(CampaignError, match="already uses store version"):
            open_store_for_spec(spec, tmp_path, store_version=2)
        with pytest.raises(CampaignError, match="unknown store version"):
            open_store_for_spec(spec, tmp_path, store_version=3)

    def test_fresh_campaign_honours_requested_version(self, tmp_path):
        spec = make_spec("disp-fresh")
        store = open_store_for_spec(spec, tmp_path, store_version=2)
        assert isinstance(store, CampaignStoreV2)
        assert open_store(spec.name, tmp_path).store_version == 2
