"""Tests for campaign specs, chip groups and work-unit expansion."""

import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    ChipGroup,
    SWEEP_KINDS,
    WorkUnit,
    preset_spec,
)


def small_spec(**overrides):
    base = dict(
        name="unit-test",
        groups=(
            ChipGroup(platform="ZC702", serials=("630851561533-44019", "SIM-ZC702-0001")),
            ChipGroup(platform="KC705-A", serials=("SIM-KC705-A-0001",)),
        ),
        sweep="guardband",
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestChipGroup:
    def test_explicit_serials(self):
        group = ChipGroup.from_dict({"platform": "ZC702", "serials": ["a", "b"]})
        assert group.serials == ("a", "b")

    def test_generated_serials_include_stock_first(self):
        group = ChipGroup.from_dict({"platform": "ZC702", "n_chips": 3})
        assert group.serials[0] == "630851561533-44019"
        assert group.serials[1:] == ("SIM-ZC702-0001", "SIM-ZC702-0002")

    def test_generated_serials_without_stock(self):
        group = ChipGroup.from_dict(
            {"platform": "ZC702", "n_chips": 2, "serial_base": "LAB", "include_stock": False}
        )
        assert group.serials == ("LAB-ZC702-0001", "LAB-ZC702-0002")

    def test_rejects_unknown_platform_as_campaign_error(self):
        with pytest.raises(CampaignError, match="unknown platform"):
            ChipGroup(platform="VC999", serials=("x",))

    def test_rejects_empty_fleet_as_campaign_error(self):
        with pytest.raises(CampaignError, match="at least one chip"):
            ChipGroup.from_dict({"platform": "ZC702", "n_chips": 0})

    @pytest.mark.parametrize(
        "document",
        [
            {"platform": "ZC702"},
            {"platform": "ZC702", "serials": ["a"], "n_chips": 2},
            {"platform": "ZC702", "serials": []},
            {"platform": "ZC702", "serials": ["a", "a"]},
            {"platform": "ZC702", "n_chips": 2, "bogus": 1},
        ],
    )
    def test_rejects_malformed_documents(self, document):
        with pytest.raises(CampaignError):
            ChipGroup.from_dict(document)


class TestWorkUnit:
    def test_roundtrip(self):
        unit = WorkUnit(platform="ZC702", serial="s1", sweep="fvm", pattern="AAAA",
                        temperature_c=60.0, runs_per_step=7)
        assert WorkUnit.from_dict(unit.to_dict()) == unit

    def test_unit_id_deterministic_and_distinct(self):
        a = WorkUnit(platform="ZC702", serial="s1", sweep="guardband")
        b = WorkUnit(platform="ZC702", serial="s1", sweep="guardband")
        c = WorkUnit(platform="ZC702", serial="s2", sweep="guardband")
        assert a.unit_id == b.unit_id
        assert a.unit_id != c.unit_id

    def test_rejects_unknown_sweep(self):
        with pytest.raises(CampaignError):
            WorkUnit(platform="ZC702", serial="s1", sweep="teleport")


class TestCampaignSpec:
    def test_json_roundtrip_preserves_hash(self):
        spec = small_spec()
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_hash_changes_with_spec(self):
        assert small_spec().spec_hash != small_spec(sweep="fvm").spec_hash

    def test_search_defaults_to_adaptive_and_reaches_every_unit(self):
        spec = small_spec()
        assert spec.search == "adaptive"
        assert all(unit.search == "adaptive" for unit in spec.expand())
        exhaustive = small_spec(search="exhaustive")
        assert all(unit.search == "exhaustive" for unit in exhaustive.expand())

    def test_search_mode_is_part_of_the_identity(self):
        adaptive, exhaustive = small_spec(), small_spec(search="exhaustive")
        assert adaptive.spec_hash != exhaustive.spec_hash
        assert adaptive.expand()[0].unit_id != exhaustive.expand()[0].unit_id

    def test_default_search_keeps_pre_knob_store_identity(self):
        """Stores written before the search knob existed must stay openable.

        The default mode is omitted from the canonical documents, so the
        spec hash and unit ids of an adaptive (default) campaign equal what
        older versions recorded.
        """
        spec = small_spec()
        assert "search" not in spec.to_dict()
        assert "search" not in spec.expand()[0].to_dict()
        assert "search" in small_spec(search="exhaustive").to_dict()
        # The fleet16 preset's hash is pinned in docs/cli.md examples and,
        # more importantly, in every pre-existing fleet16 store manifest.
        assert preset_spec("fleet16").spec_hash == "3fd705be18d7c6a1"

    def test_search_round_trips_and_rejects_unknown(self):
        spec = small_spec(search="exhaustive")
        assert CampaignSpec.from_json(spec.to_json()) == spec
        # Documents without the key (pre-adaptive stores) default to adaptive.
        document = spec.to_dict()
        del document["search"]
        assert CampaignSpec.from_dict(document).search == "adaptive"
        with pytest.raises(CampaignError, match="unknown search mode"):
            small_spec(search="psychic")
        with pytest.raises(CampaignError, match="unknown search mode"):
            WorkUnit(
                platform="ZC702", serial="s", sweep="guardband", search="psychic"
            )

    def test_expansion_is_chips_x_temperatures_x_patterns(self):
        spec = small_spec(temperatures_c=(50.0, 70.0), patterns=("FFFF", "0000"))
        units = spec.expand()
        assert len(units) == spec.n_units == 3 * 2 * 2
        # Units of one chip are adjacent (the runner's sharding relies on it).
        keys = [u.chip_key for u in units]
        assert keys == sorted(keys, key=lambda k: keys.index(k))
        assert len(set(u.unit_id for u in units)) == len(units)

    def test_expansion_is_deterministic(self):
        assert small_spec().expand() == small_spec().expand()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": "has space"},
            {"name": "has/slash"},
            {"name": ".."},
            {"name": ".hidden"},
            {"name": ""},
            {"groups": ()},
            {"sweep": "bogus"},
            {"temperatures_c": ()},
            {"temperatures_c": (50.0, 50.0)},
            {"temperatures_c": (300.0,)},
            {"patterns": ()},
            {"patterns": ("FFFF", "FFFF")},
            {"patterns": ("ZZZZ",)},
            {"runs_per_step": 0},
        ],
    )
    def test_rejects_invalid_specs(self, overrides):
        with pytest.raises(CampaignError):
            small_spec(**overrides)

    def test_rejects_duplicate_chips_across_groups(self):
        with pytest.raises(CampaignError):
            small_spec(
                groups=(
                    ChipGroup(platform="ZC702", serials=("x",)),
                    ChipGroup(platform="ZC702", serials=("x",)),
                )
            )

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict({"name": "x", "chips": [], "surprise": 1})

    def test_from_json_rejects_non_objects(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_json(json.dumps([1, 2]))


class TestPresets:
    @pytest.mark.parametrize("name,sweep", [
        ("fleet16", "guardband"), ("fleet16-fvm", "fvm"), ("fleet16-sweep", "sweep"),
    ])
    def test_fleet16_family(self, name, sweep):
        spec = preset_spec(name)
        assert spec.sweep == sweep
        assert len(spec.chips()) == 16
        assert len(spec.groups) == 2
        assert spec.sweep in SWEEP_KINDS

    def test_unknown_preset(self):
        with pytest.raises(CampaignError):
            preset_spec("fleet9000")
