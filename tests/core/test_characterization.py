"""Tests for the Section II-C characterization studies."""

import pytest

from repro.core.characterization import (
    CharacterizationError,
    STUDY_PATTERNS,
    flip_direction_study,
    pattern_study,
    stability_study,
    variability_study,
)


class TestPatternStudy:
    def test_studies_default_patterns(self, zc702_field):
        cal = zc702_field.calibration
        result = pattern_study(zc702_field, cal.vcrash_bram_v)
        assert set(result.rates_per_mbit) == set(STUDY_PATTERNS)

    def test_ffff_double_aaaa_and_zero_near_zero(self, zc702_field):
        cal = zc702_field.calibration
        result = pattern_study(zc702_field, cal.vcrash_bram_v)
        assert result.ratio("FFFF", "AAAA") == pytest.approx(2.0, rel=0.2)
        assert result.rate("0000") < 0.01 * result.rate("FFFF")

    def test_same_density_patterns_similar(self, zc702_field):
        cal = zc702_field.calibration
        result = pattern_study(zc702_field, cal.vcrash_bram_v)
        assert result.ratio("AAAA", "5555") == pytest.approx(1.0, abs=0.3)
        assert result.ratio("random50", "AAAA") == pytest.approx(1.0, abs=0.35)

    def test_unknown_pattern_lookup_rejected(self, zc702_field):
        result = pattern_study(zc702_field, 0.55, patterns=("FFFF",))
        with pytest.raises(CharacterizationError):
            result.rate("AAAA")

    def test_empty_pattern_list_rejected(self, zc702_field):
        with pytest.raises(CharacterizationError):
            pattern_study(zc702_field, 0.55, patterns=())

    def test_ratio_against_zero_rate(self, zc702_field):
        result = pattern_study(zc702_field, 1.0, patterns=("FFFF", "0000"))
        assert result.ratio("FFFF", "0000") == 1.0  # both zero in the SAFE region


class TestStabilityStudy:
    def test_table2_shape(self, zc702_field):
        cal = zc702_field.calibration
        result = stability_study(zc702_field, cal.vcrash_bram_v, n_runs=60)
        assert result.minimum <= result.average <= result.maximum
        assert result.std_dev < 0.05 * result.average
        assert result.average == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=0.1)
        row = result.as_table_row()
        assert set(row) == {
            "AVERAGE fault rate",
            "MINIMUM fault rate",
            "MAXIMUM fault rate",
            "STD. DEV of fault rates",
        }

    def test_locations_stable_over_runs(self, zc702_field):
        cal = zc702_field.calibration
        result = stability_study(zc702_field, cal.vcrash_bram_v, n_runs=20)
        assert result.location_overlap > 0.9

    def test_requires_at_least_two_runs(self, zc702_field):
        with pytest.raises(CharacterizationError):
            stability_study(zc702_field, 0.55, n_runs=1)


class TestVariabilityStudy:
    def test_fig5_shape(self, zc702_field):
        cal = zc702_field.calibration
        result = variability_study(zc702_field, cal.vcrash_bram_v)
        assert result.min_percent == 0.0
        assert result.max_percent > 10 * result.mean_percent
        assert 0.3 < result.never_faulty_fraction < 0.7
        assert result.gini_coefficient() > 0.6

    def test_variability_shrinks_in_safe_region(self, zc702_field):
        result = variability_study(zc702_field, 1.0)
        assert result.max_percent == 0.0
        assert result.never_faulty_fraction == 1.0
        assert result.gini_coefficient() == 0.0


class TestFlipDirection:
    def test_vast_majority_one_to_zero(self, zc702_field):
        cal = zc702_field.calibration
        result = flip_direction_study(zc702_field, cal.vcrash_bram_v)
        assert result.one_to_zero + result.zero_to_one > 0
        assert result.one_to_zero_fraction > 0.98

    def test_no_faults_means_fraction_one(self, zc702_field):
        result = flip_direction_study(zc702_field, 1.0)
        assert result.one_to_zero_fraction == 1.0
