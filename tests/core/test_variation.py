"""Tests for the process-variation field."""

import numpy as np
import pytest

from repro.core.variation import ProcessVariationField, VariationConfig, VariationError
from repro.fpga.floorplan import Floorplan


@pytest.fixture(scope="module")
def floorplan() -> Floorplan:
    return Floorplan.regular(n_brams=300, n_columns=10)


class TestVariationConfig:
    def test_invalid_fractions_rejected(self):
        with pytest.raises(VariationError):
            VariationConfig(never_faulty_fraction=1.0)
        with pytest.raises(VariationError):
            VariationConfig(lognormal_sigma=-1.0)
        with pytest.raises(VariationError):
            VariationConfig(spatial_strength=1.5)
        with pytest.raises(VariationError):
            VariationConfig(spatial_components=-1)


class TestField:
    def test_weights_normalized_and_nonnegative(self, floorplan):
        field = ProcessVariationField(floorplan, seed=1)
        weights = field.weights
        assert len(weights) == floorplan.n_brams
        assert (weights >= 0).all()
        assert weights.sum() == pytest.approx(1.0)

    def test_never_faulty_fraction_respected(self, floorplan):
        config = VariationConfig(never_faulty_fraction=0.4)
        field = ProcessVariationField(floorplan, seed=1, config=config)
        assert field.never_faulty_fraction() == pytest.approx(0.4, abs=0.01)
        assert len(field.never_faulty_indices()) == int(round(0.4 * floorplan.n_brams))

    def test_deterministic_per_seed(self, floorplan):
        first = ProcessVariationField(floorplan, seed=7).weights
        second = ProcessVariationField(floorplan, seed=7).weights
        assert np.array_equal(first, second)

    def test_different_seeds_give_uncorrelated_maps(self, floorplan):
        field_a = ProcessVariationField(floorplan, seed=1)
        field_b = ProcessVariationField(floorplan, seed=2)
        assert abs(field_a.correlation_with(field_b)) < 0.3
        assert field_a.correlation_with(field_a) == pytest.approx(1.0)

    def test_heavy_tail_present(self, floorplan):
        field = ProcessVariationField(floorplan, seed=3)
        weights = field.weights
        positive = weights[weights > 0]
        # The largest BRAM weight should dominate the median vulnerable BRAM,
        # reproducing the paper's max 2.84 % versus mean 0.04 % skew.
        assert positive.max() / np.median(positive) > 5.0

    def test_expected_cell_counts_scale(self, floorplan):
        field = ProcessVariationField(floorplan, seed=3)
        counts = field.expected_cell_counts(1000.0)
        assert counts.sum() == pytest.approx(1000.0)
        with pytest.raises(VariationError):
            field.expected_cell_counts(-1.0)

    def test_correlation_requires_same_size(self, floorplan):
        field = ProcessVariationField(floorplan, seed=1)
        other = ProcessVariationField(Floorplan.regular(100, 5), seed=1)
        with pytest.raises(VariationError):
            field.correlation_with(other)

    def test_spatial_disabled_still_normalizes(self, floorplan):
        config = VariationConfig(spatial_strength=0.0, spatial_components=0)
        field = ProcessVariationField(floorplan, seed=5, config=config)
        assert field.weights.sum() == pytest.approx(1.0)
