"""Tests for the Inverse Thermal Dependence model."""

import math

import pytest

from repro.core.temperature import (
    ItdModel,
    REFERENCE_TEMPERATURE_C,
    STUDY_TEMPERATURES_C,
    TemperatureError,
)


class TestItdModel:
    def test_reference_temperature_is_50c(self):
        assert REFERENCE_TEMPERATURE_C == 50.0
        assert STUDY_TEMPERATURES_C == (50.0, 60.0, 70.0, 80.0)

    def test_shift_is_zero_at_reference(self):
        model = ItdModel(v_per_degc=4.7e-4)
        assert model.voltage_shift(50.0) == pytest.approx(0.0)

    def test_hotter_means_higher_effective_voltage(self):
        model = ItdModel(v_per_degc=4.7e-4)
        assert model.effective_voltage(0.56, 80.0) > 0.56
        assert model.effective_voltage(0.56, 30.0) < 0.56

    def test_rate_scaling_matches_exponential(self):
        model = ItdModel(v_per_degc=4.7e-4)
        slope = 82.0
        factor = model.rate_scaling(slope, 80.0)
        assert factor == pytest.approx(math.exp(-slope * 4.7e-4 * 30.0))
        assert factor < 1.0

    def test_zero_coefficient_disables_effect(self):
        model = ItdModel(v_per_degc=0.0)
        assert model.effective_voltage(0.56, 80.0) == pytest.approx(0.56)
        assert model.rate_scaling(80.0, 80.0) == pytest.approx(1.0)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(TemperatureError):
            ItdModel(v_per_degc=-1e-4)
