"""Equivalence and property tests for the vectorized batch engine.

The batch engine's contract is *bit-identical* agreement with the scalar
fault-model API — not statistical closeness.  The reference implementation
used here is the per-BRAM boolean firing-mask path
(:meth:`FaultField.count_bram_faults`), which shares no code with the
sorted-threshold/searchsorted evaluation under test.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    BatchError,
    OperatingGrid,
    cached_fault_field,
    clear_fault_field_cache,
    power_curve,
)
from repro.core.faultmodel import FaultField, FaultModelConfig, FaultModelError
from repro.core.fvm import FaultVariationMap
from repro.core.power import bram_power_model
from repro.fpga.platform import FpgaChip

PATTERNS = ["FFFF", "AAAA", "5555", 0x0000, "random50"]

ABLATION_CONFIGS = [
    FaultModelConfig(),
    FaultModelConfig(temperature_enabled=False),
    FaultModelConfig(ripple_enabled=False),
    FaultModelConfig(die_to_die_enabled=False),
    FaultModelConfig(spatial_variation_enabled=False),
]


def scalar_chip_count(field, voltage, temperature=50.0, run=None, pattern=0xFFFF):
    """Chip count via the per-BRAM boolean-mask reference path."""
    return sum(
        field.count_bram_faults(
            index, voltage, temperature_c=temperature, run_index=run, pattern=pattern
        )
        for index in range(field.chip.spec.n_brams)
    )


def scalar_per_bram(field, voltage, temperature=50.0, run=None, pattern=0xFFFF):
    """Per-BRAM counts via the boolean-mask reference path."""
    return np.array(
        [
            field.count_bram_faults(
                index, voltage, temperature_c=temperature, run_index=run, pattern=pattern
            )
            for index in range(field.chip.spec.n_brams)
        ],
        dtype=np.int64,
    )


class TestOperatingGrid:
    def test_shape_and_size(self):
        grid = OperatingGrid.from_axes([0.55, 0.56], [50.0, 80.0], runs=3)
        assert grid.shape == (2, 2, 3)
        assert grid.n_points == 12
        assert grid.run_indices == (0, 1, 2)

    def test_runless_grid_has_unit_run_axis(self):
        grid = OperatingGrid.from_axes([0.55])
        assert grid.shape == (1, 1, 1)
        assert grid.run_indices is None

    def test_single_matches_scalar_point(self):
        grid = OperatingGrid.single(0.55, 60.0, run_index=4)
        assert grid.voltages_v == (0.55,)
        assert grid.temperatures_c == (60.0,)
        assert grid.run_indices == (4,)

    def test_empty_axes_rejected(self):
        with pytest.raises(BatchError):
            OperatingGrid(voltages_v=())
        with pytest.raises(BatchError):
            OperatingGrid(voltages_v=(0.55,), temperatures_c=())
        with pytest.raises(BatchError):
            OperatingGrid(voltages_v=(0.55,), run_indices=())

    def test_zero_run_count_rejected(self):
        with pytest.raises(BatchError):
            OperatingGrid.from_axes([0.55], runs=0)

    def test_negative_run_index_matches_scalar(self, zc702_field):
        """Negative run indices are valid ripple seeds, as in the scalar API."""
        cal = zc702_field.calibration
        grid = OperatingGrid.single(cal.vcrash_bram_v, run_index=-1)
        batched = int(zc702_field.batch.chip_counts(grid)[0, 0, 0])
        assert batched == scalar_chip_count(zc702_field, cal.vcrash_bram_v, run=-1)


class TestChipCountEquivalence:
    """Batched chip-level counts == scalar reference, bit for bit."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_voltage_run_grid_matches_scalar(self, zc702_field, pattern):
        cal = zc702_field.calibration
        voltages = [round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(9)]
        runs = (0, 2, 5)
        grid = OperatingGrid(tuple(voltages), run_indices=runs)
        batched = zc702_field.batch.chip_counts(grid, pattern)
        for iv, voltage in enumerate(voltages):
            for ir, run in enumerate(runs):
                assert batched[iv, 0, ir] == scalar_chip_count(
                    zc702_field, voltage, run=run, pattern=pattern
                )

    def test_temperature_axis_matches_scalar(self, zc702_field):
        cal = zc702_field.calibration
        temps = (50.0, 62.5, 80.0)
        grid = OperatingGrid((cal.vcrash_bram_v, cal.vmin_bram_v), temps)
        batched = zc702_field.batch.chip_counts(grid)
        for iv, voltage in enumerate((cal.vcrash_bram_v, cal.vmin_bram_v)):
            for it, temp in enumerate(temps):
                assert batched[iv, it, 0] == scalar_chip_count(zc702_field, voltage, temp)

    @pytest.mark.parametrize("config", ABLATION_CONFIGS, ids=lambda c: str(c))
    def test_ablation_configs_match_scalar(self, zc702_chip, config):
        field = FaultField(zc702_chip, config=config)
        cal = field.calibration
        voltages = (cal.vcrash_bram_v, round(cal.vcrash_bram_v + 0.03, 3))
        grid = OperatingGrid(voltages, (50.0, 75.0), (0, 1))
        batched = field.batch.chip_counts(grid)
        for iv, voltage in enumerate(voltages):
            for it, temp in enumerate((50.0, 75.0)):
                for ir, run in enumerate((0, 1)):
                    assert batched[iv, it, ir] == scalar_chip_count(
                        field, voltage, temp, run
                    )

    @given(
        voltage=st.floats(min_value=0.50, max_value=0.70),
        temperature=st.floats(min_value=40.0, max_value=90.0),
        run=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_operating_point_matches_scalar(self, zc702_field, voltage, temperature, run):
        grid = OperatingGrid.single(voltage, temperature, run)
        batched = int(zc702_field.batch.chip_counts(grid)[0, 0, 0])
        assert batched == scalar_chip_count(zc702_field, voltage, temperature, run)
        assert batched == zc702_field.chip_fault_count(
            voltage, temperature_c=temperature, run_index=run
        )

    def test_counts_over_runs_matches_per_run_scalar(self, zc702_field):
        cal = zc702_field.calibration
        counts = zc702_field.counts_over_runs(cal.vcrash_bram_v, 12)
        expected = [
            scalar_chip_count(zc702_field, cal.vcrash_bram_v, run=r) for r in range(12)
        ]
        assert counts.tolist() == expected

    def test_counts_over_runs_still_validates(self, zc702_field):
        with pytest.raises(FaultModelError):
            zc702_field.counts_over_runs(0.55, 0)

    def test_no_pattern_matches_scalar_convention(self, zc702_field):
        """``pattern=None`` keeps only 1->0 cells, exactly like _firing_mask."""
        cal = zc702_field.calibration
        grid = OperatingGrid.single(cal.vcrash_bram_v)
        batched = int(zc702_field.batch.chip_counts(grid, None)[0, 0, 0])
        assert batched == scalar_chip_count(zc702_field, cal.vcrash_bram_v, pattern=None)

    def test_bram_indices_out_of_range_rejected(self, zc702_field):
        with pytest.raises(FaultModelError):
            zc702_field.per_bram_counts(0.55, bram_indices=[-1])
        with pytest.raises(FaultModelError):
            zc702_field.per_bram_counts(0.55, bram_indices=[zc702_field.chip.spec.n_brams])


class TestPerBramEquivalence:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_per_bram_grid_matches_scalar(self, zc702_field, pattern):
        cal = zc702_field.calibration
        voltages = (cal.vcrash_bram_v, round(cal.vcrash_bram_v + 0.04, 3))
        grid = OperatingGrid(voltages)
        batched = zc702_field.batch.per_bram_counts(grid, pattern)
        for iv, voltage in enumerate(voltages):
            reference = scalar_per_bram(zc702_field, voltage, pattern=pattern)
            assert np.array_equal(batched[iv, 0, 0], reference)

    def test_per_bram_with_ripple_matches_scalar(self, zc702_field):
        cal = zc702_field.calibration
        grid = OperatingGrid((cal.vcrash_bram_v,), run_indices=(7,))
        batched = zc702_field.batch.per_bram_counts(grid)[0, 0, 0]
        assert np.array_equal(batched, scalar_per_bram(zc702_field, cal.vcrash_bram_v, run=7))

    def test_per_bram_sums_equal_chip_counts(self, zc702_field):
        cal = zc702_field.calibration
        voltages = tuple(round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(9))
        grid = OperatingGrid(voltages, (50.0, 70.0), (0, 1, 2))
        per_bram = zc702_field.batch.per_bram_counts(grid)
        chip = zc702_field.batch.chip_counts(grid)
        assert np.array_equal(per_bram.sum(axis=-1), chip)

    def test_grid_order_does_not_matter(self, zc702_field):
        """Shuffled voltage axes come back in the order they were given."""
        cal = zc702_field.calibration
        ladder = [round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(8)]
        shuffled = ladder[::-1][1:] + [ladder[0]]
        a = zc702_field.batch.per_bram_counts(OperatingGrid(tuple(ladder)))
        b = zc702_field.batch.per_bram_counts(OperatingGrid(tuple(shuffled)))
        for iv, voltage in enumerate(shuffled):
            assert np.array_equal(b[iv, 0, 0], a[ladder.index(voltage), 0, 0])


class TestFlatTable:
    def test_table_covers_every_profile(self, zc702_field):
        table = zc702_field.batch.table
        assert table.n_brams == zc702_field.chip.spec.n_brams
        sizes = table.cells_per_bram()
        for index in range(table.n_brams):
            assert sizes[index] == zc702_field.profile(index).n_vulnerable

    def test_summary_fractions_match_profile_loop(self, zc702_field):
        n = zc702_field.chip.spec.n_brams
        empty = sum(1 for i in range(n) if zc702_field.profile(i).is_empty())
        assert zc702_field.never_faulty_fraction() == pytest.approx(empty / n)
        ones = sum(int(zc702_field.profile(i).one_to_zero.sum()) for i in range(n))
        total = sum(zc702_field.profile(i).n_vulnerable for i in range(n))
        assert zc702_field.one_to_zero_fraction() == pytest.approx(ones / total)


class TestFieldCache:
    def test_same_chip_same_field(self, zc702_chip):
        clear_fault_field_cache()
        assert cached_fault_field(zc702_chip) is cached_fault_field(zc702_chip)

    def test_different_config_different_field(self, zc702_chip):
        default = cached_fault_field(zc702_chip)
        ablated = cached_fault_field(
            zc702_chip, config=FaultModelConfig(ripple_enabled=False)
        )
        assert default is not ablated
        assert ablated.config.ripple_enabled is False

    def test_different_chip_different_field(self, zc702_chip):
        other = FpgaChip.build("ZC702")
        assert cached_fault_field(zc702_chip) is not cached_fault_field(other)

    def test_clear_resets_cache(self, zc702_chip):
        before = cached_fault_field(zc702_chip)
        clear_fault_field_cache()
        assert cached_fault_field(zc702_chip) is not before

    def test_cached_field_counts_match_fresh_field(self, zc702_chip, zc702_field):
        cal = zc702_field.calibration
        cached = cached_fault_field(zc702_chip)
        assert np.array_equal(
            cached.per_bram_counts(cal.vcrash_bram_v),
            zc702_field.per_bram_counts(cal.vcrash_bram_v),
        )


class TestPowerCurve:
    def test_matches_scalar_model(self, zc702_field):
        model = bram_power_model(zc702_field.calibration)
        voltages = [1.0, 0.8, 0.61, 0.54]
        curve = power_curve(model, voltages, utilization=0.7)
        for voltage, power in zip(voltages, curve):
            assert power == pytest.approx(model.power_w(voltage, utilization=0.7), rel=1e-12)

    def test_rejects_bad_inputs(self, zc702_field):
        from repro.core.power import PowerModelError

        model = bram_power_model(zc702_field.calibration)
        with pytest.raises(PowerModelError):
            power_curve(model, [0.0])
        with pytest.raises(PowerModelError):
            power_curve(model, [0.6], utilization=1.5)


class TestFvmFromMatrix:
    def test_matches_from_counts(self, zc702_chip, zc702_field):
        cal = zc702_field.calibration
        voltages = [cal.vmin_bram_v, cal.vcrash_bram_v]
        matrix = zc702_field.batch.per_bram_counts(OperatingGrid(tuple(voltages)))[:, 0, 0, :]
        via_matrix = FaultVariationMap.from_matrix(
            "ZC702", zc702_chip.floorplan, voltages, matrix
        )
        via_lists = FaultVariationMap.from_counts(
            "ZC702", zc702_chip.floorplan, voltages, [list(row) for row in matrix]
        )
        assert via_matrix.entries == via_lists.entries
        assert np.array_equal(via_matrix.counts_matrix(), matrix)

    def test_shape_validated(self, zc702_chip):
        with pytest.raises(Exception):
            FaultVariationMap.from_matrix(
                "ZC702", zc702_chip.floorplan, [0.55], np.zeros((2, 3), dtype=int)
            )
