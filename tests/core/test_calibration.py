"""Tests for the published calibration constants."""

import math

import pytest

from repro.core.calibration import (
    CALIBRATIONS,
    CalibrationError,
    PlatformCalibration,
    average_guardband,
    get_calibration,
    voltage_regions,
)


class TestPublishedAnchors:
    """The calibration must encode the numbers the paper publishes."""

    def test_all_four_platforms_calibrated(self):
        assert set(CALIBRATIONS) == {"VC707", "ZC702", "KC705-A", "KC705-B"}

    def test_crash_fault_rates_match_fig3(self):
        assert CALIBRATIONS["VC707"].fault_rate_at_vcrash_per_mbit == 652
        assert CALIBRATIONS["ZC702"].fault_rate_at_vcrash_per_mbit == 153
        assert CALIBRATIONS["KC705-A"].fault_rate_at_vcrash_per_mbit == 254
        assert CALIBRATIONS["KC705-B"].fault_rate_at_vcrash_per_mbit == 60

    def test_kc705_die_to_die_ratio_is_about_4x(self):
        ratio = (
            CALIBRATIONS["KC705-A"].fault_rate_at_vcrash_per_mbit
            / CALIBRATIONS["KC705-B"].fault_rate_at_vcrash_per_mbit
        )
        assert ratio == pytest.approx(4.1, abs=0.3)

    def test_vc707_critical_region_matches_section2(self):
        cal = CALIBRATIONS["VC707"]
        assert cal.vmin_bram_v == pytest.approx(0.61)
        assert cal.vcrash_bram_v == pytest.approx(0.54)

    def test_average_guardbands_match_fig1(self):
        assert average_guardband("VCCBRAM") == pytest.approx(0.39, abs=0.005)
        assert average_guardband("VCCINT") == pytest.approx(0.34, abs=0.005)

    def test_run_std_matches_table2(self):
        assert CALIBRATIONS["VC707"].run_std_per_mbit == pytest.approx(7.3)
        assert CALIBRATIONS["KC705-B"].run_std_per_mbit == pytest.approx(1.8)

    def test_one_to_zero_fraction_is_999_permille(self):
        for cal in CALIBRATIONS.values():
            assert cal.one_to_zero_fraction == pytest.approx(0.999)

    def test_unknown_rail_rejected(self):
        with pytest.raises(CalibrationError):
            average_guardband("VCCAUX")


class TestDerivedQuantities:
    def test_exponential_slope_reaches_crash_rate(self):
        cal = get_calibration("VC707")
        k = cal.exponential_slope_per_v
        predicted = cal.onset_rate_per_mbit * math.exp(k * cal.critical_window_v)
        assert predicted == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=1e-6)

    def test_rate_curve_zero_in_safe_region(self):
        cal = get_calibration("VC707")
        assert cal.rate_per_mbit(1.0) == 0.0
        assert cal.rate_per_mbit(cal.vmin_bram_v) == 0.0

    def test_rate_curve_monotone_in_critical_region(self):
        cal = get_calibration("KC705-A")
        voltages = [cal.vmin_bram_v - 0.01 * i for i in range(1, 8)]
        rates = [cal.rate_per_mbit(v) for v in voltages]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_rate_curve_hits_published_rate_at_vcrash(self):
        for cal in CALIBRATIONS.values():
            rate = cal.rate_per_mbit(cal.vcrash_bram_v)
            assert rate == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=0.1)

    def test_temperature_reduces_rate(self):
        cal = get_calibration("VC707")
        cold = cal.rate_per_mbit(cal.vcrash_bram_v, temperature_c=50)
        hot = cal.rate_per_mbit(cal.vcrash_bram_v, temperature_c=80)
        assert hot < cold
        assert cold / hot > 3.0  # paper: more than 3x on VC707

    def test_ripple_sigma_reproduces_table2_spread(self):
        cal = get_calibration("VC707")
        expected_std = cal.ripple_sigma_v * cal.exponential_slope_per_v * cal.fault_rate_at_vcrash_per_mbit
        assert expected_std == pytest.approx(cal.run_std_per_mbit, rel=1e-6)

    def test_guardband_fractions(self):
        cal = get_calibration("VC707")
        assert cal.guardband_bram_fraction == pytest.approx(0.39)
        assert cal.guardband_int_fraction == pytest.approx(0.35)

    def test_voltage_regions_partition(self):
        cal = get_calibration("ZC702")
        regions = voltage_regions(cal)
        assert regions["SAFE"][0] == pytest.approx(cal.vmin_bram_v)
        assert regions["CRITICAL"] == (cal.vcrash_bram_v, cal.vmin_bram_v)
        assert regions["CRASH"][1] == pytest.approx(cal.vcrash_bram_v)
        with pytest.raises(CalibrationError):
            voltage_regions(cal, rail="VCCO")


class TestValidation:
    def test_inverted_thresholds_rejected(self):
        with pytest.raises(CalibrationError):
            PlatformCalibration(platform="X", vmin_bram_v=0.5, vcrash_bram_v=0.6)

    def test_bad_onset_rate_rejected(self):
        with pytest.raises(CalibrationError):
            PlatformCalibration(platform="X", onset_rate_per_mbit=0.0)

    def test_bad_never_faulty_fraction_rejected(self):
        with pytest.raises(CalibrationError):
            PlatformCalibration(platform="X", never_faulty_fraction=1.0)

    def test_get_calibration_by_spec(self):
        from repro.fpga.platform import ZC702

        assert get_calibration(ZC702).platform == "ZC702"
