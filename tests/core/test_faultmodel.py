"""Tests for the bitcell-level fault model — the centre of the reproduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import get_calibration
from repro.core.faultmodel import FaultField, FaultModelConfig, FaultModelError
from repro.fpga.bram import data_pattern
from repro.fpga.platform import FpgaChip


class TestCalibratedRates:
    """Chip-level rates must reproduce the paper's Fig. 3 anchors."""

    def test_no_faults_in_safe_region(self, zc702_field):
        cal = zc702_field.calibration
        assert zc702_field.chip_fault_count(1.0) == 0
        assert zc702_field.chip_fault_count(cal.vmin_bram_v) == 0

    def test_rate_at_vcrash_matches_calibration(self, zc702_field):
        cal = zc702_field.calibration
        rate = zc702_field.chip_fault_rate_per_mbit(cal.vcrash_bram_v)
        assert rate == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=0.10)

    def test_vc707_rate_at_vcrash(self, vc707_field):
        rate = vc707_field.chip_fault_rate_per_mbit(0.54)
        assert rate == pytest.approx(652, rel=0.08)

    def test_rate_monotone_with_voltage(self, zc702_field):
        cal = zc702_field.calibration
        voltages = np.arange(cal.vmin_bram_v, cal.vcrash_bram_v - 1e-9, -0.01)
        counts = [zc702_field.chip_fault_count(round(float(v), 3)) for v in voltages]
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] > counts[0]

    def test_rate_roughly_exponential(self, zc702_field):
        from repro.analysis.stats import fit_exponential_rate

        cal = zc702_field.calibration
        voltages = [round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(1, 9)]
        rates = [zc702_field.chip_fault_rate_per_mbit(v) for v in voltages]
        slope, r_squared = fit_exponential_rate(voltages, rates)
        assert slope > 0
        assert r_squared > 0.95

    def test_analytic_rate_matches_measured(self, zc702_field):
        cal = zc702_field.calibration
        voltage = cal.vcrash_bram_v + 0.02
        analytic = zc702_field.analytic_rate_per_mbit(voltage)
        measured = zc702_field.chip_fault_rate_per_mbit(voltage)
        assert measured == pytest.approx(analytic, rel=0.25)


class TestDeterminism:
    """Faults must be deterministic and location-stable (Section II-C-2)."""

    def test_same_chip_same_faults(self):
        chip_a = FpgaChip.build("ZC702")
        chip_b = FpgaChip.build("ZC702")
        field_a, field_b = FaultField(chip_a), FaultField(chip_b)
        cal = field_a.calibration
        counts_a = field_a.per_bram_counts(cal.vcrash_bram_v)
        counts_b = field_b.per_bram_counts(cal.vcrash_bram_v)
        assert np.array_equal(counts_a, counts_b)

    def test_fault_locations_identical_across_rebuilds(self, zc702_chip):
        cal = get_calibration("ZC702")
        records_a = FaultField(zc702_chip).fault_sites(0, cal.vcrash_bram_v)
        records_b = FaultField(zc702_chip).fault_sites(0, cal.vcrash_bram_v)
        assert [(r.row, r.col) for r in records_a] == [(r.row, r.col) for r in records_b]

    def test_faults_nested_in_voltage(self, zc702_field):
        """Cells faulty at a higher voltage stay faulty at any lower voltage."""
        cal = zc702_field.calibration
        hi_v = cal.vmin_bram_v - 0.03
        lo_v = cal.vcrash_bram_v
        per_bram_hi = zc702_field.per_bram_counts(hi_v)
        busiest = int(np.argmax(per_bram_hi))
        high = {(r.row, r.col) for r in zc702_field.fault_sites(busiest, hi_v)}
        low = {(r.row, r.col) for r in zc702_field.fault_sites(busiest, lo_v)}
        assert high.issubset(low)

    def test_die_to_die_maps_differ(self):
        field_a = FaultField(FpgaChip.build("KC705-A"))
        field_b = FaultField(FpgaChip.build("KC705-B"))
        counts_a = field_a.per_bram_counts(0.55)
        counts_b = field_b.per_bram_counts(0.55)
        # Same part number, different dies: different totals and different maps.
        assert counts_a.sum() != counts_b.sum()
        busiest_a = set(np.argsort(counts_a)[-20:].tolist())
        busiest_b = set(np.argsort(counts_b)[-20:].tolist())
        assert busiest_a != busiest_b


class TestFlipDirectionAndPattern:
    def test_vast_majority_one_to_zero(self, zc702_field):
        fraction = zc702_field.one_to_zero_fraction()
        assert fraction > 0.99

    def test_ffff_roughly_double_aaaa(self, zc702_field):
        cal = zc702_field.calibration
        ffff = zc702_field.chip_fault_rate_per_mbit(cal.vcrash_bram_v, pattern="FFFF")
        aaaa = zc702_field.chip_fault_rate_per_mbit(cal.vcrash_bram_v, pattern="AAAA")
        assert ffff / aaaa == pytest.approx(2.0, rel=0.2)

    def test_all_zero_pattern_has_few_faults(self, zc702_field):
        cal = zc702_field.calibration
        ffff = zc702_field.chip_fault_count(cal.vcrash_bram_v, pattern="FFFF")
        zeros = zc702_field.chip_fault_count(cal.vcrash_bram_v, pattern=0x0000)
        assert zeros < 0.01 * ffff

    def test_permutations_of_same_density_similar(self, zc702_field):
        cal = zc702_field.calibration
        aaaa = zc702_field.chip_fault_count(cal.vcrash_bram_v, pattern="AAAA")
        f5555 = zc702_field.chip_fault_count(cal.vcrash_bram_v, pattern="5555")
        assert f5555 == pytest.approx(aaaa, rel=0.25)


class TestTemperatureAndRipple:
    def test_higher_temperature_reduces_faults(self, vc707_field):
        cold = vc707_field.chip_fault_count(0.54, temperature_c=50.0)
        hot = vc707_field.chip_fault_count(0.54, temperature_c=80.0)
        assert cold / hot > 3.0  # paper: >3x reduction on VC707

    def test_temperature_disabled_by_config(self, zc702_chip):
        field = FaultField(zc702_chip, config=FaultModelConfig(temperature_enabled=False))
        cal = field.calibration
        cold = field.chip_fault_count(cal.vcrash_bram_v, temperature_c=50.0)
        hot = field.chip_fault_count(cal.vcrash_bram_v, temperature_c=80.0)
        assert cold == hot

    def test_run_to_run_spread_matches_table2(self, zc702_field):
        cal = zc702_field.calibration
        counts = zc702_field.counts_over_runs(cal.vcrash_bram_v, 100)
        rates = counts / zc702_field.chip.brams.total_mbits
        assert rates.mean() == pytest.approx(cal.fault_rate_at_vcrash_per_mbit, rel=0.1)
        assert rates.std() == pytest.approx(cal.run_std_per_mbit, rel=0.6)
        assert rates.std() < 0.05 * rates.mean()

    def test_ripple_disabled_makes_runs_identical(self, zc702_chip):
        field = FaultField(zc702_chip, config=FaultModelConfig(ripple_enabled=False))
        cal = field.calibration
        counts = field.counts_over_runs(cal.vcrash_bram_v, 10)
        assert len(set(counts.tolist())) == 1

    def test_counts_over_runs_validates_input(self, zc702_field):
        with pytest.raises(FaultModelError):
            zc702_field.counts_over_runs(0.55, 0)


class TestPerBramDistribution:
    def test_never_faulty_fraction_close_to_calibration(self, zc702_field):
        cal = zc702_field.calibration
        fraction = zc702_field.never_faulty_fraction()
        assert fraction == pytest.approx(cal.never_faulty_fraction, abs=0.12)
        assert fraction > 0.3

    def test_distribution_heavily_skewed(self, zc702_field):
        cal = zc702_field.calibration
        counts = zc702_field.per_bram_counts(cal.vcrash_bram_v)
        assert counts.max() > 5 * max(counts.mean(), 1.0)
        assert (counts == 0).mean() > 0.3

    def test_per_bram_counts_sum_to_chip_count(self, zc702_field):
        cal = zc702_field.calibration
        per_bram = zc702_field.per_bram_counts(cal.vcrash_bram_v)
        assert per_bram.sum() == zc702_field.chip_fault_count(cal.vcrash_bram_v)

    def test_subset_of_bram_indices(self, zc702_field):
        cal = zc702_field.calibration
        subset = zc702_field.per_bram_counts(cal.vcrash_bram_v, bram_indices=[0, 1, 2])
        assert len(subset) == 3


class TestReadbackCorruption:
    def test_observed_image_matches_fault_sites(self, zc702_field):
        cal = zc702_field.calibration
        counts = zc702_field.per_bram_counts(cal.vcrash_bram_v)
        busiest = int(np.argmax(counts))
        stored = data_pattern("FFFF")
        observed = zc702_field.observed_image(busiest, stored, cal.vcrash_bram_v)
        flipped = {(int(r), int(c)) for r, c in zip(*np.nonzero(stored != observed))}
        expected = {
            (r.row, r.col)
            for r in zc702_field.fault_sites(busiest, cal.vcrash_bram_v, pattern="FFFF")
        }
        assert flipped == expected

    def test_observed_image_identity_in_safe_region(self, zc702_field):
        stored = data_pattern("FFFF")
        observed = zc702_field.observed_image(0, stored, 1.0)
        assert np.array_equal(stored, observed)

    def test_observed_image_shape_checked(self, zc702_field):
        with pytest.raises(FaultModelError):
            zc702_field.observed_image(0, np.zeros((4, 4), dtype=np.uint8), 0.55)

    def test_corrupt_words_consistent_with_profile(self, zc702_field):
        cal = zc702_field.calibration
        counts = zc702_field.per_bram_counts(cal.vcrash_bram_v)
        busiest = int(np.argmax(counts))
        words = [0xFFFF] * zc702_field.chip.spec.bram_rows
        corrupted = zc702_field.corrupt_words(busiest, words, cal.vcrash_bram_v)
        changed_rows = {i for i, (a, b) in enumerate(zip(words, corrupted)) if a != b}
        expected_rows = {
            r.row for r in zc702_field.fault_sites(busiest, cal.vcrash_bram_v, pattern="FFFF")
        }
        assert changed_rows == expected_rows
        # 1 -> 0 flips can only clear bits in an all-ones word.
        assert all(b <= 0xFFFF and bin(b).count("1") <= 16 for b in corrupted)

    def test_corrupt_words_outside_range_untouched(self, zc702_field):
        cal = zc702_field.calibration
        words = [0xFFFF] * 4
        corrupted = zc702_field.corrupt_words(0, words, cal.vcrash_bram_v, start_row=2000)
        assert corrupted == words

    def test_fault_records_direction(self, zc702_field):
        cal = zc702_field.calibration
        for bram_index in range(20):
            for record in zc702_field.fault_sites(bram_index, cal.vcrash_bram_v, pattern="FFFF"):
                assert record.expected_bit == 1
                assert record.observed_bit == 0
                assert record.is_one_to_zero


class TestConfigurationAblation:
    def test_die_to_die_disabled_makes_kc705_samples_identical(self):
        from repro.core.variation import VariationConfig

        config = FaultModelConfig(die_to_die_enabled=False)
        shared_variation = VariationConfig(never_faulty_fraction=0.45, lognormal_sigma=1.4)
        field_a = FaultField(
            FpgaChip.build("KC705-A"), config=config, variation_config=shared_variation
        )
        field_b = FaultField(
            FpgaChip.build("KC705-B"), config=config, variation_config=shared_variation
        )
        # Same part number and no die-to-die term: identical variation maps.
        assert np.array_equal(field_a.variation.weights, field_b.variation.weights)

    def test_die_to_die_enabled_differs_even_with_shared_config(self):
        from repro.core.variation import VariationConfig

        shared_variation = VariationConfig(never_faulty_fraction=0.45, lognormal_sigma=1.4)
        field_a = FaultField(FpgaChip.build("KC705-A"), variation_config=shared_variation)
        field_b = FaultField(FpgaChip.build("KC705-B"), variation_config=shared_variation)
        assert not np.array_equal(field_a.variation.weights, field_b.variation.weights)

    def test_invalid_bram_index_rejected(self, zc702_field):
        with pytest.raises(FaultModelError):
            zc702_field.profile(zc702_field.chip.spec.n_brams)

    @given(voltage=st.floats(min_value=0.53, max_value=0.70))
    @settings(max_examples=25, deadline=None)
    def test_counts_never_negative_property(self, zc702_field, voltage):
        count = zc702_field.chip_fault_count(round(voltage, 3))
        assert count >= 0
