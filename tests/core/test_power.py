"""Tests for the rail power models."""

import pytest

from repro.core.calibration import get_calibration
from repro.core.power import (
    PowerModelError,
    RailPowerModel,
    bram_power_model,
    power_sweep,
    summarize_savings,
    vccint_power_model,
)


class TestRailPowerModel:
    def test_nominal_power_at_nominal_voltage(self):
        model = RailPowerModel(nominal_power_w=2.0)
        assert model.power_w(1.0) == pytest.approx(2.0)

    def test_power_decreases_with_voltage(self):
        model = RailPowerModel(nominal_power_w=2.0)
        voltages = [1.0, 0.9, 0.8, 0.7, 0.6]
        powers = [model.power_w(v) for v in voltages]
        assert all(b < a for a, b in zip(powers, powers[1:]))

    def test_dynamic_and_static_sum_to_total(self):
        model = RailPowerModel(nominal_power_w=2.0, static_fraction=0.35)
        voltage = 0.7
        total = model.power_w(voltage, utilization=0.6)
        split = model.dynamic_power_w(voltage, 0.6) + model.static_power_w(voltage)
        assert total == pytest.approx(split)

    def test_utilization_scales_dynamic_only(self):
        model = RailPowerModel(nominal_power_w=2.0, static_fraction=0.5)
        full = model.power_w(1.0, utilization=1.0)
        idle = model.power_w(1.0, utilization=0.0)
        assert idle == pytest.approx(1.0)
        assert full == pytest.approx(2.0)

    def test_savings_and_reduction_consistent(self):
        model = RailPowerModel(nominal_power_w=2.0)
        savings = model.savings_fraction(1.0, 0.61)
        factor = model.reduction_factor(1.0, 0.61)
        assert savings == pytest.approx(1.0 - 1.0 / factor)

    def test_invalid_inputs_rejected(self):
        model = RailPowerModel(nominal_power_w=2.0)
        with pytest.raises(PowerModelError):
            model.power_w(0.0)
        with pytest.raises(PowerModelError):
            model.power_w(1.0, utilization=1.5)
        with pytest.raises(PowerModelError):
            RailPowerModel(nominal_power_w=-1.0)
        with pytest.raises(PowerModelError):
            RailPowerModel(nominal_power_w=1.0, gamma_per_v=0.0)


class TestCalibratedBramPower:
    """The calibrated models must reproduce the paper's headline power claims."""

    @pytest.mark.parametrize("platform", ["VC707", "ZC702", "KC705-A", "KC705-B"])
    def test_order_of_magnitude_saving_at_vmin(self, platform):
        cal = get_calibration(platform)
        model = bram_power_model(cal)
        factor = model.reduction_factor(cal.vnom_v, cal.vmin_bram_v)
        assert factor > 10.0  # "more than an order of magnitude"

    def test_roughly_40_percent_more_between_vmin_and_vcrash(self):
        cal = get_calibration("VC707")
        model = bram_power_model(cal)
        savings = model.savings_fraction(cal.vmin_bram_v, cal.vcrash_bram_v)
        assert savings == pytest.approx(0.40, abs=0.08)

    def test_summarize_savings_keys(self):
        cal = get_calibration("VC707")
        model = bram_power_model(cal)
        summary = summarize_savings(model, cal.vnom_v, cal.vmin_bram_v, cal.vcrash_bram_v)
        assert summary["nominal_to_vmin_factor"] > 10
        assert 0 < summary["vmin_to_vcrash_savings"] < 1
        assert summary["nominal_to_vcrash_savings"] > summary["vmin_to_vcrash_savings"]

    def test_zc702_absolute_power_is_milliwatt_scale(self):
        cal = get_calibration("ZC702")
        model = bram_power_model(cal)
        assert model.power_w(1.0) < 0.5  # reported in mW in the paper

    def test_vccint_model_shares_slope(self):
        cal = get_calibration("VC707")
        model = vccint_power_model(cal, nominal_power_w=3.0)
        assert model.gamma_per_v == cal.power_gamma_per_v
        assert model.power_w(1.0) == pytest.approx(3.0)


class TestPowerSweep:
    def test_sweep_points_match_model(self):
        cal = get_calibration("KC705-A")
        model = bram_power_model(cal)
        voltages = [1.0, 0.8, 0.6]
        points = power_sweep(model, voltages)
        assert [p.voltage_v for p in points] == voltages
        assert points[0].power_w > points[-1].power_w
        assert points[0].as_tuple() == (1.0, pytest.approx(model.power_w(1.0)))
