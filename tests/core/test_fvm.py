"""Tests for the Fault Variation Map."""

import numpy as np
import pytest

from repro.core.faultmodel import FaultField
from repro.core.fvm import FaultVariationMap, FvmError
from repro.fpga.floorplan import Floorplan
from repro.fpga.platform import FpgaChip


def build_fvm(field: FaultField, voltages=None) -> FaultVariationMap:
    cal = field.calibration
    if voltages is None:
        voltages = [round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(0, 8)]
        voltages = [v for v in voltages if v >= cal.vcrash_bram_v - 1e-9]
    counts = [[int(c) for c in field.per_bram_counts(v)] for v in voltages]
    return FaultVariationMap.from_counts(
        platform=field.chip.name,
        floorplan=field.chip.floorplan,
        voltages_v=voltages,
        counts_by_voltage=counts,
    )


@pytest.fixture(scope="module")
def zc702_fvm(zc702_field) -> FaultVariationMap:
    return build_fvm(zc702_field)


class TestConstruction:
    def test_from_counts_covers_all_brams(self, zc702_fvm, zc702_chip):
        assert zc702_fvm.n_brams == zc702_chip.spec.n_brams

    def test_mismatched_vectors_rejected(self):
        plan = Floorplan.regular(10, 2)
        with pytest.raises(FvmError):
            FaultVariationMap.from_counts("X", plan, [0.6, 0.55], [[0] * 10])
        with pytest.raises(FvmError):
            FaultVariationMap.from_counts("X", plan, [0.6], [[0] * 5])


class TestStatistics:
    def test_statistics_match_paper_shape(self, zc702_fvm):
        stats = zc702_fvm.statistics()
        assert stats["min_percent"] == 0.0
        assert stats["max_percent"] > 10 * stats["mean_percent"]
        assert 0.3 < stats["never_faulty_fraction"] < 0.7

    def test_counts_at_lowest_voltage_consistent(self, zc702_fvm, zc702_field):
        lowest = min(zc702_fvm.voltages_v)
        expected = zc702_field.per_bram_counts(lowest)
        assert np.array_equal(zc702_fvm.counts_at_lowest_voltage(), expected)

    def test_vulnerability_rank_sorted(self, zc702_fvm):
        rank = zc702_fvm.vulnerability_rank()
        counts = zc702_fvm.counts_at_lowest_voltage()
        ranked_counts = [counts[i] for i in rank]
        assert ranked_counts == sorted(ranked_counts)
        assert len(rank) == zc702_fvm.n_brams

    def test_fault_free_brams_have_zero_counts(self, zc702_fvm):
        counts = zc702_fvm.counts_at_lowest_voltage()
        for index in zc702_fvm.fault_free_brams():
            assert counts[index] == 0


class TestClassification:
    def test_clustering_cached_and_majority_low(self, zc702_fvm):
        first = zc702_fvm.clustering()
        second = zc702_fvm.clustering()
        assert first is second
        assert first.fraction("low") > 0.6

    def test_low_and_high_sets_disjoint(self, zc702_fvm):
        low = set(zc702_fvm.low_vulnerable_brams())
        high = set(zc702_fvm.high_vulnerable_brams())
        assert not low & high


class TestRenderingAndComparison:
    def test_grid_rendering_marks_empty_sites(self, zc702_fvm, zc702_chip):
        grid = zc702_fvm.to_grid(zc702_chip.floorplan)
        assert grid.shape == (zc702_chip.floorplan.n_columns, zc702_chip.floorplan.grid_height)
        assert (grid >= -1).all()

    def test_ascii_map_has_one_row_per_grid_row(self, zc702_fvm, zc702_chip):
        text = zc702_fvm.ascii_map(zc702_chip.floorplan)
        assert len(text.splitlines()) == zc702_chip.floorplan.grid_height

    def test_die_to_die_comparison(self):
        """Two KC705 samples: ~4x rate ratio, unrelated maps (Fig. 7).

        As in the paper, each die's FVM is extracted at its own Vcrash.
        """
        field_a = FaultField(FpgaChip.build("KC705-A"))
        field_b = FaultField(FpgaChip.build("KC705-B"))
        fvm_a = build_fvm(field_a, voltages=[field_a.calibration.vcrash_bram_v])
        fvm_b = build_fvm(field_b, voltages=[field_b.calibration.vcrash_bram_v])
        comparison = fvm_a.compare(fvm_b)
        assert comparison["rate_ratio"] == pytest.approx(4.1, rel=0.2)
        assert abs(comparison["count_correlation"]) < 0.3
        assert comparison["high_class_jaccard"] < 0.3

    def test_compare_requires_same_size(self, zc702_fvm):
        other = build_fvm(FaultField(FpgaChip.build("KC705-B")), voltages=[0.55])
        with pytest.raises(FvmError):
            zc702_fvm.compare(other)
