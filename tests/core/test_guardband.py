"""Tests for guardband detection from sweep observations."""

import pytest

from repro.core.guardband import (
    GuardbandError,
    GuardbandResult,
    SweepObservation,
    average_guardband_fraction,
    detect_guardband,
    power_saving_summary,
)


def build_sweep(vmin=0.61, vcrash=0.54, nominal=1.0, step=0.01):
    """Synthesize a downward sweep: fault-free above vmin, faulty to vcrash."""
    observations = []
    voltage = nominal
    while voltage >= vcrash - 1e-9:
        faults = 0 if voltage >= vmin else int(10 * (vmin - voltage) * 1000)
        observations.append(
            SweepObservation(voltage_v=round(voltage, 3), fault_count=faults, operational=True)
        )
        voltage -= step
    observations.append(
        SweepObservation(voltage_v=round(vcrash - step, 3), fault_count=0, operational=False)
    )
    return observations


class TestDetectGuardband:
    def test_detects_published_thresholds(self):
        result = detect_guardband(build_sweep())
        assert result.vmin_v == pytest.approx(0.61)
        assert result.vcrash_v == pytest.approx(0.54)
        assert result.guardband_fraction == pytest.approx(0.39)
        assert result.critical_window_v == pytest.approx(0.07)

    def test_order_of_observations_does_not_matter(self):
        observations = build_sweep()
        result = detect_guardband(list(reversed(observations)))
        assert result.vmin_v == pytest.approx(0.61)

    def test_empty_sweep_rejected(self):
        with pytest.raises(GuardbandError):
            detect_guardband([])

    def test_never_operational_rejected(self):
        observations = [SweepObservation(1.0, 0, operational=False)]
        with pytest.raises(GuardbandError):
            detect_guardband(observations)

    def test_no_fault_free_point_rejected(self):
        observations = [SweepObservation(0.6, 5, operational=True)]
        with pytest.raises(GuardbandError):
            detect_guardband(observations)

    def test_sweep_that_never_faults_has_vcrash_equal_vmin(self):
        observations = [
            SweepObservation(1.0, 0, True),
            SweepObservation(0.9, 0, True),
            SweepObservation(0.8, 0, False),
        ]
        result = detect_guardband(observations)
        assert result.vmin_v == pytest.approx(0.9)
        assert result.vcrash_v == pytest.approx(0.9)

    def test_negative_fault_count_rejected(self):
        with pytest.raises(GuardbandError):
            SweepObservation(0.6, -1, True)


class TestGuardbandResult:
    def test_region_classification(self):
        result = GuardbandResult(nominal_v=1.0, vmin_v=0.61, vcrash_v=0.54)
        assert result.classify(0.8) == "SAFE"
        assert result.classify(0.58) == "CRITICAL"
        assert result.classify(0.5) == "CRASH"
        regions = result.regions()
        assert regions["SAFE"] == (0.61, 1.0)
        assert regions["CRASH"][1] == 0.54

    def test_average_guardband_fraction(self):
        results = [
            GuardbandResult(1.0, 0.61, 0.54),
            GuardbandResult(1.0, 0.63, 0.55),
        ]
        assert average_guardband_fraction(results) == pytest.approx(0.38)
        with pytest.raises(GuardbandError):
            average_guardband_fraction([])

    def test_power_saving_summary(self):
        results = {"VC707": GuardbandResult(1.0, 0.61, 0.54)}
        rows = power_saving_summary(results, {"VC707": 17.0})
        assert rows[0][0] == "VC707"
        assert rows[0][2] == 17.0
        with pytest.raises(GuardbandError):
            power_saving_summary(results, {})
