"""Tests for the k-means vulnerability clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    ClusteringError,
    cluster_bram_vulnerability,
    low_vulnerable_indices,
)


def synthetic_counts(n_low=850, n_mid=120, n_high=30, seed=3):
    """A skewed per-BRAM count vector shaped like the paper's Fig. 5 data."""
    rng = np.random.default_rng(seed)
    low = rng.integers(0, 6, size=n_low)
    mid = rng.integers(40, 90, size=n_mid)
    high = rng.integers(250, 500, size=n_high)
    counts = np.concatenate([low, mid, high])
    rng.shuffle(counts)
    return counts


class TestClustering:
    def test_three_classes_with_ordered_centroids(self):
        result = cluster_bram_vulnerability(synthetic_counts())
        assert [c.name for c in result.clusters] == ["low", "mid", "high"]
        centroids = [c.centroid for c in result.clusters]
        assert centroids[0] < centroids[1] < centroids[2]

    def test_majority_is_low_vulnerable(self):
        result = cluster_bram_vulnerability(synthetic_counts())
        assert result.fraction("low") > 0.7  # paper: 88.6 % on VC707
        assert result.fraction("high") < 0.1

    def test_labels_cover_every_bram(self):
        counts = synthetic_counts()
        result = cluster_bram_vulnerability(counts)
        assert len(result.labels) == len(counts)
        total = sum(cluster.size for cluster in result.clusters)
        assert total == len(counts)

    def test_label_lookup_and_indices(self):
        counts = synthetic_counts()
        result = cluster_bram_vulnerability(counts)
        high_indices = result.indices_of("high")
        assert all(result.label_of(i) == "high" for i in high_indices)
        # Every BRAM in the high class must have more faults than the low-class mean.
        low_mean = result.cluster("low").mean_fault_rate
        for index in high_indices:
            assert counts[index] / (16 * 1024) > low_mean

    def test_low_vulnerable_helper(self):
        counts = synthetic_counts()
        result = cluster_bram_vulnerability(counts)
        assert low_vulnerable_indices(result) == result.indices_of("low")

    def test_summary_fractions_sum_to_one(self):
        result = cluster_bram_vulnerability(synthetic_counts())
        summary = result.summary()
        assert sum(entry["fraction"] for entry in summary.values()) == pytest.approx(1.0)

    def test_all_zero_map_does_not_crash(self):
        result = cluster_bram_vulnerability(np.zeros(100, dtype=int))
        assert result.fraction("low") + result.fraction("mid") + result.fraction("high") == pytest.approx(1.0)

    def test_deterministic(self):
        counts = synthetic_counts()
        first = cluster_bram_vulnerability(counts)
        second = cluster_bram_vulnerability(counts)
        assert first.labels == second.labels

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ClusteringError):
            cluster_bram_vulnerability([])
        with pytest.raises(ClusteringError):
            cluster_bram_vulnerability([-1, 2, 3])
        with pytest.raises(ClusteringError):
            cluster_bram_vulnerability([1, 2, 3], k=5)
        with pytest.raises(ClusteringError):
            cluster_bram_vulnerability(synthetic_counts()).cluster("extreme")
        with pytest.raises(ClusteringError):
            cluster_bram_vulnerability(synthetic_counts()).label_of(10_000)

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=500), min_size=5, max_size=200)
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_property(self, counts):
        """Every BRAM lands in exactly one class regardless of the input shape."""
        result = cluster_bram_vulnerability(counts)
        all_indices = sorted(
            index for cluster in result.clusters for index in cluster.bram_indices
        )
        assert all_indices == list(range(len(counts)))
