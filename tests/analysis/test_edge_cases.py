"""Edge-case coverage for the reporting layer and campaign aggregation.

The cases the fleet reports meet in the wild: empty campaigns, single-chip
fleets (every percentile collapses onto one value), NaN temperature/power
rows from non-operational steps, and the evaluation accounting with
mixed/missing search records.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    ExperimentReport,
    FleetDistribution,
    ReportError,
    Section,
    TableError,
    evaluation_totals,
    format_value,
    population_summary,
    render_kv,
    render_table,
)
from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    ChipGroup,
    build_report,
    run_campaign,
)


def one_chip_spec(name, sweep="guardband"):
    return CampaignSpec(
        name=name,
        groups=(ChipGroup(platform="ZC702", serials=("SIM-ZC702-0001",)),),
        sweep=sweep,
        runs_per_step=2,
    )


class TestTablesEdgeCases:
    def test_nan_cells_render_as_nan_text(self):
        text = render_table(["t (degC)", "power"], [(float("nan"), 0.5), (50.0, float("nan"))])
        assert text.count("nan") == 2

    def test_numpy_nan_and_inf_rows(self):
        row = [np.nan, np.inf, -np.inf]
        text = render_table(["a", "b", "c"], [row])
        assert "nan" in text
        assert "inf" in text

    def test_empty_rows_render_header_and_separator_only(self):
        text = render_table(["alpha", "beta"], [])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha")
        assert set(lines[1]) <= {"-", "+"}

    def test_zero_width_column_padding(self):
        text = render_table(["x"], [[""]])
        assert text.splitlines()[0] == "x"

    def test_format_value_large_and_bool(self):
        assert format_value(1234567.8) == "1,234,567.8"
        assert format_value(True) == "yes"
        assert format_value(float("nan")) == "nan"

    def test_render_kv_rejects_wrong_shape(self):
        with pytest.raises(TableError):
            render_kv("bad", [("only-one-cell",)])


class TestExperimentReportEdgeCases:
    def test_notes_without_rows(self):
        report = ExperimentReport("exp", "edge")
        section = report.new_section("empty", ["a"])
        section.add_note("nothing measured")
        text = report.render()
        assert "nothing measured" in text
        assert report.to_dict()["sections"][0]["rows"] == []

    def test_nan_cells_survive_json(self):
        report = ExperimentReport("exp", "nan")
        section = report.new_section("s", ["temperature_c"])
        section.add_row(float("nan"))
        # default=str keeps the dump well-formed even for exotic cells.
        assert "NaN" in report.to_json() or "nan" in report.to_json()

    def test_column_count_enforced_per_section(self):
        section = Section(title="s", headers=["a", "b"])
        with pytest.raises(ReportError):
            section.add_row(1)


class TestSingleChipFleet:
    def test_percentiles_collapse_to_the_single_value(self):
        distribution = FleetDistribution.from_values("vmin_v", [0.61])
        assert distribution.summary.n == 1
        assert set(distribution.percentiles.values()) == {0.61}
        assert distribution.spread_fraction == 0.0

    def test_population_summary_single_chip(self):
        summary = population_summary({"vmin_v": [0.61], "vcrash_v": [0.54]})
        assert summary["vmin_v"].summary.mean == 0.61
        assert summary["vcrash_v"].summary.std_dev == 0.0

    def test_single_chip_campaign_report(self, tmp_path):
        spec = one_chip_spec("edge-single")
        run_campaign(spec, root=tmp_path, use_processes=False)
        report = build_report(CampaignStore(spec.name, tmp_path), spec)
        assert report.n_completed == 1
        payload = report.to_dict()
        for distribution in payload["population"]["fleet"].values():
            assert distribution["n"] == 1
            assert distribution["min"] == distribution["max"]
        assert payload["evaluations"]["n_units"] == 1

    def test_single_chip_fvm_campaign_has_no_similarity_block(self, tmp_path):
        spec = one_chip_spec("edge-single-fvm", sweep="fvm")
        run_campaign(spec, root=tmp_path, use_processes=False)
        payload = build_report(CampaignStore(spec.name, tmp_path), spec).to_dict()
        assert "fvm_similarity" not in payload


class TestEmptyCampaign:
    def test_report_on_empty_store_raises_helpfully(self, tmp_path):
        spec = one_chip_spec("edge-empty")
        store = CampaignStore.open(spec, tmp_path)
        with pytest.raises(CampaignError, match="no completed units"):
            build_report(store, spec)

    def test_status_of_empty_store_is_all_pending(self, tmp_path):
        spec = one_chip_spec("edge-empty-status")
        store = CampaignStore.open(spec, tmp_path)
        status = store.status(spec)
        assert status.n_completed == 0
        assert status.n_pending == spec.n_units
        assert not status.is_complete


class TestNanTemperatureRows:
    def test_fleet_distribution_propagates_nan(self):
        distribution = FleetDistribution.from_values("t", [50.0, float("nan")])
        assert math.isnan(distribution.summary.mean)

    def test_nan_power_rows_render(self):
        # Non-operational sweep steps store NaN power; tables must not crash.
        rows = [(0.54, float("nan")), (0.61, 0.013)]
        text = render_table(["V", "W"], rows)
        assert "nan" in text


class TestEvaluationTotals:
    def test_empty_iterable(self):
        totals = evaluation_totals([])
        assert totals["n_units"] == 0
        assert totals["speedup_factor"] == 0.0
        assert totals["saved_fraction"] == 0.0

    def test_missing_and_empty_records_are_skipped(self):
        totals = evaluation_totals([
            {},
            {"n_evaluations": 10, "n_exhaustive_equivalent": 50},
            {"n_evaluations": 10, "n_cache_hits": 3, "n_exhaustive_equivalent": 50},
        ])
        assert totals["n_units"] == 2
        assert totals["n_evaluations"] == 20
        assert totals["n_cache_hits"] == 3
        assert totals["evaluations_saved"] == 80
        assert totals["speedup_factor"] == 5.0

    def test_zero_evaluations_means_infinite_speedup_reported_as_zero(self):
        totals = evaluation_totals([{"n_evaluations": 0, "n_exhaustive_equivalent": 10}])
        assert totals["speedup_factor"] == 0.0
        assert totals["saved_fraction"] == 1.0
