"""Tests for the analysis helpers: stats, tables, reports."""

import json

import numpy as np
import pytest

from repro.analysis.report import ExperimentReport, ReportError
from repro.analysis.stats import (
    StatsError,
    fit_exponential_rate,
    geometric_mean,
    relative_change,
    summarize,
)
from repro.analysis.tables import TableError, format_value, render_kv, render_table


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.n == 4
        assert set(summary.as_dict()) == {"mean", "median", "min", "max", "std", "n"}

    def test_summarize_empty_rejected(self):
        with pytest.raises(StatsError):
            summarize([])

    def test_relative_change(self):
        assert relative_change(652.0, 600.0) == pytest.approx(52 / 600)
        with pytest.raises(StatsError):
            relative_change(1.0, 0.0)

    def test_fit_exponential_recovers_slope(self):
        k_true = 80.0
        voltages = np.linspace(0.54, 0.61, 8)
        rates = 600 * np.exp(-k_true * (voltages - 0.54))
        k_fit, r2 = fit_exponential_rate(voltages, rates)
        assert k_fit == pytest.approx(k_true, rel=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_fit_requires_enough_points(self):
        with pytest.raises(StatsError):
            fit_exponential_rate([0.6, 0.59], [1.0, 2.0])

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(StatsError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(StatsError):
            geometric_mean([])


class TestTables:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(1234.5678) == "1,234.6"
        assert format_value(0.123456) == "0.123"
        assert format_value(float("nan")) == "nan"
        assert format_value("text") == "text"

    def test_render_table_alignment_and_separator(self):
        text = render_table(["a", "bb"], [[1, 2.0], [3, 40.5]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(TableError):
            render_table(["a"], [[1, 2]])

    def test_render_kv(self):
        text = render_kv("metrics", [["guardband", 0.39]])
        assert "guardband" in text and "0.390" in text


class TestReports:
    def test_sections_render_and_serialize(self):
        report = ExperimentReport("fig03", "fault rate and power vs voltage")
        section = report.new_section("VC707", ["voltage", "rate"])
        section.add_row(0.61, 0.0)
        section.add_row(0.54, 652.0)
        section.add_note("pattern 0xFFFF")
        text = report.render()
        assert "fig03" in text and "VC707" in text and "652" in text
        payload = json.loads(report.to_json())
        assert payload["experiment_id"] == "fig03"
        assert payload["sections"][0]["rows"][1][1] == 652.0

    def test_column_mismatch_rejected(self):
        report = ExperimentReport("x", "y")
        section = report.new_section("s", ["a", "b"])
        with pytest.raises(ReportError):
            section.add_row(1)

    def test_empty_report_renders_header_only(self):
        report = ExperimentReport("x", "y")
        assert report.render().startswith("== x: y ==")
