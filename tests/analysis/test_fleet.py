"""Tests for the fleet population statistics helpers."""

import pytest

from repro.analysis import (
    FleetDistribution,
    StatsError,
    fleet_percentiles,
    fvm_similarity,
    population_summary,
    similarity_extremes,
)
from repro.core.fvm import FaultVariationMap
from repro.fpga.floorplan import Floorplan


class TestFleetPercentiles:
    def test_named_points(self):
        values = list(range(101))
        points = fleet_percentiles(values)
        assert points["p5"] == 5.0
        assert points["p50"] == 50.0
        assert points["p95"] == 95.0

    def test_custom_percentiles(self):
        assert fleet_percentiles([1, 2, 3], (50,)) == {"p50": 2.0}

    def test_empty_fleet_raises(self):
        with pytest.raises(StatsError):
            fleet_percentiles([])


class TestFleetDistribution:
    def test_from_values(self):
        dist = FleetDistribution.from_values("vmin_v", [0.60, 0.61, 0.62])
        assert dist.metric == "vmin_v"
        assert dist.summary.mean == pytest.approx(0.61)
        assert dist.spread_fraction == pytest.approx(0.02 / 0.61)
        payload = dist.as_dict()
        assert {"mean", "min", "max", "p5", "p95", "spread_fraction"} <= set(payload)

    def test_population_summary_keys(self):
        dists = population_summary({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert set(dists) == {"a", "b"}
        assert dists["b"].summary.maximum == 4.0


def map_from_counts(counts):
    floorplan = Floorplan.regular(n_brams=len(counts), n_columns=2)
    return FaultVariationMap.from_counts(
        platform="ZC702",
        floorplan=floorplan,
        voltages_v=[0.55],
        counts_by_voltage=[counts],
    )


class TestFvmSimilarity:
    def test_pairwise_over_sorted_serials(self):
        maps = {
            "s2": map_from_counts([10, 0, 0, 0]),
            "s1": map_from_counts([0, 0, 0, 40]),
            "s3": map_from_counts([0, 20, 0, 0]),
        }
        pairs = fvm_similarity(maps, "ZC702")
        assert [(p.serial_a, p.serial_b) for p in pairs] == [
            ("s1", "s2"), ("s1", "s3"), ("s2", "s3"),
        ]
        assert all(p.platform == "ZC702" for p in pairs)

    def test_rate_ratio_normalized_above_one(self):
        maps = {"weak": map_from_counts([10, 0, 0, 0]), "strong": map_from_counts([40, 0, 0, 0])}
        (pair,) = fvm_similarity(maps, "ZC702")
        assert pair.rate_ratio == pytest.approx(4.0)

    def test_fault_free_die_gives_infinite_ratio_either_way_around(self):
        clean = map_from_counts([0, 0, 0, 0])
        dirty = map_from_counts([40, 0, 0, 0])
        (a,) = fvm_similarity({"a-clean": clean, "b-dirty": dirty}, "ZC702")
        (b,) = fvm_similarity({"a-dirty": dirty, "b-clean": clean}, "ZC702")
        assert a.rate_ratio == b.rate_ratio == float("inf")

    def test_extremes_summary(self):
        maps = {
            "a": map_from_counts([10, 0, 0, 0]),
            "b": map_from_counts([0, 0, 0, 40]),
        }
        extremes = similarity_extremes(fvm_similarity(maps, "ZC702"))
        assert extremes["n_pairs"] == 1
        assert extremes["max_rate_ratio"] == pytest.approx(4.0)
        assert -1.0 <= extremes["max_abs_correlation"] <= 1.0

    def test_extremes_of_nothing_raise(self):
        with pytest.raises(StatsError):
            similarity_extremes([])
