"""Shared fixtures for the test suite.

Heavy objects (chips, fault fields, trained networks) are session-scoped so
the suite stays fast; every fixture is fully deterministic (seeded), so tests
can assert on concrete numbers where the paper publishes them.
"""

from __future__ import annotations

import pytest

from repro.core import FaultField
from repro.fpga import FpgaChip
from repro.nn import (
    QuantizedNetwork,
    TrainingConfig,
    synthetic_forest,
    synthetic_mnist,
    train_network,
)


@pytest.fixture(scope="session")
def zc702_chip() -> FpgaChip:
    """The smallest studied board (280 BRAMs) — the default test chip."""
    return FpgaChip.build("ZC702")


@pytest.fixture(scope="session")
def zc702_field(zc702_chip: FpgaChip) -> FaultField:
    """Calibrated fault field of the ZC702 test chip."""
    return FaultField(zc702_chip)


@pytest.fixture(scope="session")
def vc707_chip() -> FpgaChip:
    """The performance-optimized board used for most of the paper's figures."""
    return FpgaChip.build("VC707")


@pytest.fixture(scope="session")
def vc707_field(vc707_chip: FpgaChip) -> FaultField:
    """Calibrated fault field of the VC707."""
    return FaultField(vc707_chip)


@pytest.fixture(scope="session")
def small_dataset():
    """A small Forest-like dataset: 54 features, 7 classes, quick to train on."""
    return synthetic_forest(n_train=1200, n_test=400, seed=5)


@pytest.fixture(scope="session")
def mnist_dataset():
    """A reduced MNIST-like dataset used by the accelerator tests."""
    return synthetic_mnist(n_train=1500, n_test=500, seed=9)


@pytest.fixture(scope="session")
def trained_small_network(small_dataset):
    """A trained float network on the small dataset (4 weight layers)."""
    result = train_network(
        small_dataset,
        topology=(54, 32, 24, 16, 7),
        config=TrainingConfig(epochs=10, seed=2, learning_rate=0.3),
    )
    return result


@pytest.fixture(scope="session")
def quantized_small_network(trained_small_network) -> QuantizedNetwork:
    """The quantized (16-bit fixed-point) version of the small trained network."""
    return QuantizedNetwork.from_network(trained_small_network.network)
