"""Shared fixtures for the test suite.

Heavy objects (chips, fault fields, trained networks) are session-scoped so
the suite stays fast; every fixture is fully deterministic (seeded), so tests
can assert on concrete numbers where the paper publishes them.

Two suite-level switches live here as well:

* ``--run-slow`` opts into the fleet-scale tests (marker ``slow``) locally;
  CI always runs them (the ``CI`` environment variable is set on GitHub
  Actions runners);
* ``--update-goldens`` rewrites the committed golden snapshots under
  ``tests/golden/`` instead of comparing against them (see
  ``tests/test_goldens.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run the fleet-scale tests marked 'slow' (CI always runs them)",
    )
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots instead of asserting them",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("CI"):
        return
    skip_slow = pytest.mark.skip(
        reason="fleet-scale test; opt in with --run-slow (CI always runs it)"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture()
def golden(request):
    """Compare-or-update access to one committed golden JSON snapshot.

    Usage: ``golden("name", payload)`` — with ``--update-goldens`` the
    payload is written to ``tests/golden/name.json``; otherwise it is
    compared (to 9 significant digits for floats, exactly for everything
    else) against the committed snapshot.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, payload):
        path = GOLDEN_DIR / f"{name}.json"
        normalized = json.loads(json.dumps(payload))
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"golden snapshot {path.name} missing; create it with "
            f"`pytest {request.node.nodeid} --update-goldens`"
        )
        expected = json.loads(path.read_text())
        _assert_close(expected, normalized, name)

    def _assert_close(expected, actual, where):
        if isinstance(expected, dict):
            assert isinstance(actual, dict) and set(expected) == set(actual), (
                f"{where}: key mismatch {sorted(expected)} vs "
                f"{sorted(actual) if isinstance(actual, dict) else type(actual)}"
            )
            for key in expected:
                _assert_close(expected[key], actual[key], f"{where}.{key}")
        elif isinstance(expected, list):
            assert isinstance(actual, list) and len(expected) == len(actual), (
                f"{where}: length mismatch"
            )
            for i, (e, a) in enumerate(zip(expected, actual)):
                _assert_close(e, a, f"{where}[{i}]")
        elif isinstance(expected, float) and not isinstance(expected, bool):
            assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), (
                f"{where}: {actual} != golden {expected}; if the change is "
                "intentional, refresh with --update-goldens"
            )
        else:
            assert expected == actual, f"{where}: {actual!r} != golden {expected!r}"

    return check

from repro.core import FaultField
from repro.fpga import FpgaChip
from repro.nn import (
    QuantizedNetwork,
    TrainingConfig,
    synthetic_forest,
    synthetic_mnist,
    train_network,
)


@pytest.fixture(scope="session")
def zc702_chip() -> FpgaChip:
    """The smallest studied board (280 BRAMs) — the default test chip."""
    return FpgaChip.build("ZC702")


@pytest.fixture(scope="session")
def zc702_field(zc702_chip: FpgaChip) -> FaultField:
    """Calibrated fault field of the ZC702 test chip."""
    return FaultField(zc702_chip)


@pytest.fixture(scope="session")
def vc707_chip() -> FpgaChip:
    """The performance-optimized board used for most of the paper's figures."""
    return FpgaChip.build("VC707")


@pytest.fixture(scope="session")
def vc707_field(vc707_chip: FpgaChip) -> FaultField:
    """Calibrated fault field of the VC707."""
    return FaultField(vc707_chip)


@pytest.fixture(scope="session")
def small_dataset():
    """A small Forest-like dataset: 54 features, 7 classes, quick to train on."""
    return synthetic_forest(n_train=1200, n_test=400, seed=5)


@pytest.fixture(scope="session")
def mnist_dataset():
    """A reduced MNIST-like dataset used by the accelerator tests."""
    return synthetic_mnist(n_train=1500, n_test=500, seed=9)


@pytest.fixture(scope="session")
def trained_small_network(small_dataset):
    """A trained float network on the small dataset (4 weight layers)."""
    result = train_network(
        small_dataset,
        topology=(54, 32, 24, 16, 7),
        config=TrainingConfig(epochs=10, seed=2, learning_rate=0.3),
    )
    return result


@pytest.fixture(scope="session")
def quantized_small_network(trained_small_network) -> QuantizedNetwork:
    """The quantized (16-bit fixed-point) version of the small trained network."""
    return QuantizedNetwork.from_network(trained_small_network.network)
