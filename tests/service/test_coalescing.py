"""The coalescing property: N identical concurrent queries, one computation.

The engine-backed endpoints are the expensive ones (a full critical-region
sweep per die), so the service promises that identical concurrent requests
ride one in-flight computation and that repeats after it are cache hits.
``/stats`` exposes the shared engine counters, which makes the property
directly testable: fire a burst, then assert the backend did exactly one
sweep's worth of evaluations.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.batch import voltage_ladder
from repro.core.calibration import get_calibration
from repro.fpga import FpgaChip
from repro.fpga.voltage import DEFAULT_STEP_V
from repro.runtime.characterization import DieCharacterization, GovernorBundle
from repro.service import BackgroundServer, FleetService, ServiceApp, ServiceClient

PLATFORM = "ZC702"
SERIAL_A, SERIAL_B = "CO-A", "CO-B"
BURST = 32


def sweep_rungs() -> int:
    """Backend evaluations one FVM sweep costs on this platform."""
    calibration = get_calibration(FpgaChip.build(PLATFORM).spec)
    return len(
        voltage_ladder(calibration.vmin_bram_v, calibration.vcrash_bram_v, DEFAULT_STEP_V)
    )


@pytest.fixture()
def server():
    bundle = GovernorBundle(source="coalesce-fleet")
    for serial, vmin_v in ((SERIAL_A, 0.59), (SERIAL_B, 0.60)):
        bundle.add(DieCharacterization(
            platform=PLATFORM, serial=serial, vnom_v=1.0, vmin_v=vmin_v,
            vcrash_v=0.54, itd_v_per_degc=0.0006, ripple_margin_v=0.003,
        ))
    app = ServiceApp(FleetService(bundle, engine_workers=4))
    with BackgroundServer(app) as running:
        yield running


async def _burst(server, target: str, n_clients: int):
    """``n_clients`` separate connections all issuing ``target`` at once."""
    clients = [ServiceClient(server.host, server.port) for _ in range(n_clients)]
    await asyncio.gather(*(client.connect() for client in clients))
    try:
        # A barrier-ish start: every request is created before any is awaited,
        # so they are all in flight inside one event-loop tick window.
        return await asyncio.gather(*(client.get(target) for client in clients))
    finally:
        await asyncio.gather(*(client.close() for client in clients))


def _backend_counters(server) -> dict:
    async def fetch():
        async with ServiceClient(server.host, server.port) as client:
            _, document = await client.get("/stats")
            return document["backend"]["counters"]

    return asyncio.run(fetch())


class TestCoalescing:
    def test_identical_concurrent_fvm_queries_hit_backend_once(self, server):
        target = f"/v1/fvm?platform={PLATFORM}&serial={SERIAL_A}"
        responses = asyncio.run(_burst(server, target, BURST))
        assert all(status == 200 for status, _ in responses)
        documents = [document for _, document in responses]
        assert all(document == documents[0] for document in documents)

        counters = _backend_counters(server)
        # All 32 clients rode one sweep: exactly one ladder's worth of
        # backend evaluations, not 32 of them.
        assert counters["n_backend_evaluations"] == sweep_rungs()

    def test_repeat_after_burst_is_served_from_cache(self, server):
        target = f"/v1/fvm?platform={PLATFORM}&serial={SERIAL_A}"
        asyncio.run(_burst(server, target, 8))
        before = _backend_counters(server)["n_backend_evaluations"]
        status, document = asyncio.run(_burst(server, target, 1))[0]
        assert status == 200
        after = _backend_counters(server)["n_backend_evaluations"]
        assert after == before  # the FVM object cache answered

    def test_concurrent_similarity_queries_sweep_each_die_once(self, server):
        target = (
            f"/v1/fvm-similarity?platform={PLATFORM}"
            f"&serial_a={SERIAL_A}&serial_b={SERIAL_B}"
        )
        responses = asyncio.run(_burst(server, target, BURST))
        assert all(status == 200 for status, _ in responses)
        counters = _backend_counters(server)
        assert counters["n_backend_evaluations"] == 2 * sweep_rungs()

    def test_stats_show_requests_far_exceed_evaluations(self, server):
        target = f"/v1/fvm?platform={PLATFORM}&serial={SERIAL_A}"
        asyncio.run(_burst(server, target, BURST))

        async def fetch_stats():
            async with ServiceClient(server.host, server.port) as client:
                _, document = await client.get("/stats")
                return document

        document = asyncio.run(fetch_stats())
        fvm_requests = document["service"]["endpoints"]["/v1/fvm"]["n_requests"]
        evaluations = document["backend"]["counters"]["n_backend_evaluations"]
        assert fvm_requests == BURST
        assert evaluations < fvm_requests
