"""Endpoint behavior of the characterization service.

One background server per module (a synthetic two-die bundle — no campaign
run needed), exercised through the package's own keep-alive client plus a
raw socket for the protocol-error cases.  Covers every endpoint's happy
path, the structured JSON error contract (unknown platform/serial → 404,
missing/invalid parameters → 400, wrong method → 405, unknown route → 404,
malformed request line → 400), and the ``/stats`` document shape.
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.runtime.characterization import DieCharacterization, GovernorBundle
from repro.runtime.governor import GovernorObservation, build_policy
from repro.service import BackgroundServer, FleetService, ServiceApp, fetch_json

PLATFORM = "ZC702"
SERIAL_A, SERIAL_B = "SVC-A", "SVC-B"


def make_bundle() -> GovernorBundle:
    bundle = GovernorBundle(source="test-fleet")
    bundle.add(DieCharacterization(
        platform=PLATFORM, serial=SERIAL_A, vnom_v=1.0, vmin_v=0.59,
        vcrash_v=0.54, itd_v_per_degc=0.0006, ripple_margin_v=0.003,
    ))
    bundle.add(DieCharacterization(
        platform=PLATFORM, serial=SERIAL_B, vnom_v=1.0, vmin_v=0.60,
        vcrash_v=0.54, itd_v_per_degc=0.0006, ripple_margin_v=0.003,
    ))
    return bundle


@pytest.fixture(scope="module")
def server():
    app = ServiceApp(FleetService(make_bundle(), engine_workers=2))
    with BackgroundServer(app) as running:
        yield running


def get(server, target):
    return asyncio.run(fetch_json(server.host, server.port, target))


class TestHappyPaths:
    def test_healthz(self, server):
        from repro import __version__

        status, document = get(server, "/healthz")
        assert status == 200
        assert document == {"status": "ok", "n_dies": 2, "version": __version__}

    def test_dies_roster(self, server):
        status, document = get(server, "/v1/dies")
        assert status == 200
        assert document["n_dies"] == 2
        assert {"platform": PLATFORM, "serial": SERIAL_A} in document["dies"]

    def test_guardband_lookup(self, server):
        status, document = get(
            server, f"/v1/guardband?platform={PLATFORM}&serial={SERIAL_A}"
        )
        assert status == 200
        assert document["vmin_v"] == 0.59
        assert document["vcrash_v"] == 0.54
        assert document["guardband_fraction"] == pytest.approx((1.0 - 0.59) / 1.0)

    def test_bundle_whole_fleet_and_single_die(self, server):
        status, document = get(server, "/v1/bundle")
        assert status == 200
        assert document["version"] == 1
        assert len(document["dies"]) == 2
        status, entry = get(
            server, f"/v1/bundle?platform={PLATFORM}&serial={SERIAL_B}"
        )
        assert status == 200
        assert entry["vmin_v"] == 0.60

    def test_safe_vmin_matches_predictive_policy(self, server):
        # The endpoint must command exactly what the in-process governor
        # would: same ITD compensation, ripple margin, rounding and clamp.
        die = make_bundle().get(PLATFORM, SERIAL_A)
        policy = build_policy("predictive")
        for temperature_c in (20.0, 50.0, 80.0):
            expected = policy.target_voltage(
                die,
                GovernorObservation(
                    step=0, temperature_c=temperature_c,
                    faults_last_step=0, setpoint_v=die.vnom_v,
                ),
            )
            status, document = get(
                server,
                f"/v1/safe-vmin?platform={PLATFORM}&serial={SERIAL_A}"
                f"&temperature_c={temperature_c}",
            )
            assert status == 200
            assert document["safe_vmin_v"] == pytest.approx(expected)
            assert document["undervolt_fraction"] == pytest.approx(
                (die.vnom_v - expected) / die.vnom_v
            )

    def test_fvm_statistics(self, server):
        status, document = get(
            server, f"/v1/fvm?platform={PLATFORM}&serial={SERIAL_A}"
        )
        assert status == 200
        assert document["n_brams"] > 0
        stats = document["statistics"]
        assert set(stats) == {
            "max_percent", "min_percent", "mean_percent", "never_faulty_fraction",
        }
        assert stats["max_percent"] >= stats["mean_percent"] >= 0.0

    def test_fvm_similarity_pair(self, server):
        status, document = get(
            server,
            f"/v1/fvm-similarity?platform={PLATFORM}"
            f"&serial_a={SERIAL_A}&serial_b={SERIAL_B}",
        )
        assert status == 200
        assert document["platform"] == PLATFORM
        assert {document["serial_a"], document["serial_b"]} == {SERIAL_A, SERIAL_B}
        assert document["rate_ratio"] is None or document["rate_ratio"] >= 1.0
        assert -1.0 <= document["count_correlation"] <= 1.0

    def test_stats_document_shape(self, server):
        status, document = get(server, "/stats")
        assert status == 200
        assert set(document) == {"service", "backend", "bundle"}
        backend = document["backend"]
        # Mirrors the CLI's ``backend`` blocks, with live counters.
        assert backend["kind"] == "simulated"
        assert set(backend["counters"]) == {
            "n_requests", "n_cache_hits", "n_backend_evaluations", "n_deduplicated",
        }
        service = document["service"]
        assert service["n_requests"] >= 1
        endpoint = service["endpoints"]["/healthz"]
        assert {"n_requests", "n_errors", "qps", "mean_ms", "p50_ms", "p95_ms",
                "p99_ms", "ring_occupancy"} <= set(endpoint)
        assert endpoint["ring_occupancy"] >= 1
        assert document["bundle"]["n_dies"] == 2

    def test_metrics_exposition(self, server):
        from repro.service import PROMETHEUS_CONTENT_TYPE, ServiceClient

        get(server, "/healthz")  # at least one request precedes the scrape

        async def scrape():
            async with ServiceClient(server.host, server.port) as client:
                return await client.get_text("/metrics")

        status, text = asyncio.run(scrape())
        assert status == 200
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert 'repro_requests_total{endpoint="/healthz"}' in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_request_latency_seconds_bucket{endpoint="/healthz",le="+Inf"}' in text
        assert 'repro_engine_events_total{event="requests"}' in text
        assert 'repro_build_info{version="' in text
        assert "repro_service_uptime_seconds" in text
        # Exposition sanity: every non-comment line is "name{labels} value".
        for line in text.strip().split("\n"):
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part and value
            float(value) if value not in ("+Inf", "-Inf", "NaN") else None

    def test_scraping_metrics_counts_itself(self, server):
        from repro.service import ServiceClient

        async def scrape_twice():
            async with ServiceClient(server.host, server.port) as client:
                await client.get_text("/metrics")
                return await client.get_text("/metrics")

        _, text = asyncio.run(scrape_twice())
        for line in text.split("\n"):
            if line.startswith('repro_requests_total{endpoint="/metrics"}'):
                assert float(line.rpartition(" ")[-1]) >= 1
                break
        else:
            raise AssertionError("/metrics requests were not counted")


class TestErrorContract:
    def test_unknown_platform_is_404(self, server):
        status, document = get(server, f"/v1/guardband?platform=NOPE&serial={SERIAL_A}")
        assert status == 404
        assert document["error"]["code"] == "unknown-platform"
        assert document["error"]["status"] == 404

    def test_unknown_serial_is_404(self, server):
        status, document = get(server, f"/v1/guardband?platform={PLATFORM}&serial=GHOST")
        assert status == 404
        assert document["error"]["code"] == "unknown-serial"
        assert "GHOST" in document["error"]["message"]

    def test_missing_parameter_is_400(self, server):
        status, document = get(server, f"/v1/guardband?platform={PLATFORM}")
        assert status == 400
        assert document["error"]["code"] == "missing-parameter"

    def test_non_numeric_temperature_is_400(self, server):
        status, document = get(
            server,
            f"/v1/safe-vmin?platform={PLATFORM}&serial={SERIAL_A}&temperature_c=warm",
        )
        assert status == 400
        assert document["error"]["code"] == "invalid-parameter"

    def test_similarity_of_die_with_itself_is_400(self, server):
        status, document = get(
            server,
            f"/v1/fvm-similarity?platform={PLATFORM}"
            f"&serial_a={SERIAL_A}&serial_b={SERIAL_A}",
        )
        assert status == 400
        assert document["error"]["code"] == "invalid-parameter"

    def test_unknown_route_is_404(self, server):
        status, document = get(server, "/v1/nope")
        assert status == 404
        assert document["error"]["code"] == "unknown-route"

    def test_non_get_method_is_405(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/dies HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            response = _read_http_response(sock)
        assert response["status"] == 405
        assert response["document"]["error"]["code"] == "method-not-allowed"

    def test_malformed_request_line_is_400(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"NOT-EVEN-HTTP\r\n\r\n")
            response = _read_http_response(sock)
        assert response["status"] == 400
        assert response["document"]["error"]["code"] == "malformed-request-line"

    def test_malformed_content_length_is_400(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
            response = _read_http_response(sock)
        assert response["status"] == 400
        assert response["document"]["error"]["code"] == "malformed-body"

    def test_errors_count_in_stats(self, server):
        get(server, "/v1/guardband?platform=NOPE&serial=x")
        status, document = get(server, "/stats")
        assert status == 200
        guardband = document["service"]["endpoints"]["/v1/guardband"]
        assert guardband["n_errors"] >= 1


class TestConnectionBehavior:
    def test_keep_alive_serves_many_requests_on_one_connection(self, server):
        async def drive():
            from repro.service import ServiceClient

            async with ServiceClient(server.host, server.port) as client:
                return [await client.get("/healthz") for _ in range(5)]

        responses = asyncio.run(drive())
        assert all(status == 200 for status, _ in responses)
        assert all(doc["status"] == "ok" for _, doc in responses)

    def test_connection_close_is_honored(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            response = _read_http_response(sock)
            assert response["status"] == 200
            # The server closes its side: the next read sees EOF.
            sock.settimeout(10)
            assert sock.recv(1) == b""


def _read_http_response(sock: socket.socket) -> dict:
    """Read one Content-Length-framed response off a raw socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            raise AssertionError(f"connection closed before headers: {data!r}")
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        body += chunk
    return {"status": status, "document": json.loads(body.decode("utf-8"))}
