"""Regression tests for per-endpoint stats: percentile edge cases.

The ``/stats`` document used to report ``0.0`` percentiles for endpoints
that had never recorded a latency sample, indistinguishable from a
genuinely sub-millisecond endpoint.  Empty rings now report explicit
``null``s, and ``ring_occupancy`` tells warm-up from steady state.
"""

import pytest

from repro.service.stats import LATENCY_RING_SIZE, EndpointStats, ServiceStats


class TestEmptyRing:
    def test_zero_samples_report_null_latencies(self):
        stats = EndpointStats()
        document = stats.to_dict(uptime_s=10.0)
        assert document["n_requests"] == 0
        assert document["n_errors"] == 0
        assert document["mean_ms"] is None
        assert document["p50_ms"] is None
        assert document["p95_ms"] is None
        assert document["p99_ms"] is None
        assert document["ring_occupancy"] == 0
        assert document["qps"] == 0.0

    def test_zero_uptime_reports_zero_qps(self):
        assert EndpointStats().to_dict(uptime_s=0.0)["qps"] == 0.0


class TestSingleSample:
    def test_one_sample_defines_every_percentile(self):
        stats = EndpointStats()
        stats.record(0.004, ok=True)
        document = stats.to_dict(uptime_s=2.0)
        assert document["n_requests"] == 1
        assert document["mean_ms"] == pytest.approx(4.0)
        assert document["p50_ms"] == pytest.approx(4.0)
        assert document["p95_ms"] == pytest.approx(4.0)
        assert document["p99_ms"] == pytest.approx(4.0)
        assert document["ring_occupancy"] == 1
        assert document["qps"] == pytest.approx(0.5)


class TestRingOverflow:
    def test_ring_size_plus_one_samples_evict_the_oldest(self):
        stats = EndpointStats()
        # One huge outlier first, then a full ring of 1 ms samples: the
        # outlier must be evicted, so every percentile collapses to 1 ms —
        # while the totals still count every request.
        stats.record(9.0, ok=True)
        for _ in range(LATENCY_RING_SIZE):
            stats.record(0.001, ok=True)
        document = stats.to_dict(uptime_s=1.0)
        assert document["n_requests"] == LATENCY_RING_SIZE + 1
        assert document["ring_occupancy"] == LATENCY_RING_SIZE
        assert document["p50_ms"] == pytest.approx(1.0)
        assert document["p99_ms"] == pytest.approx(1.0)
        # The mean uses the unbounded total, so the outlier still shows.
        assert document["mean_ms"] > 1.0


class TestServiceStats:
    def test_routes_aggregate_and_sort(self):
        service = ServiceStats()
        service.record("/b", 0.001, ok=True)
        service.record("/a", 0.002, ok=False)
        document = service.to_dict()
        assert document["n_requests"] == 2
        assert document["n_errors"] == 1
        assert list(document["endpoints"]) == ["/a", "/b"]
        assert document["endpoints"]["/a"]["ring_occupancy"] == 1
