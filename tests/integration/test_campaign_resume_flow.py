"""End-to-end campaign lifecycle in a tmpdir, driven through the CLI.

The scenario the store's resume semantics exist for: a fleet campaign is
started, killed mid-flight, resumed from the command line, and reported.
The interruption is simulated by raising out of the runner's progress
callback after a few units — exactly the state a SIGKILL between two unit
commits leaves behind (completed units committed, the rest absent).  The
resumed adaptive run must skip the committed units, re-evaluate nothing
that the per-die caches already hold, and the final ``report --json`` must
aggregate all chips.
"""

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.cli import main


class InterruptedMidCampaign(RuntimeError):
    pass


@pytest.fixture()
def spec_file(tmp_path):
    document = {
        "name": "e2e-resume",
        "chips": [{"platform": "ZC702", "n_chips": 6}],
        "sweep": "guardband",
        "runs_per_step": 2,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(document))
    return path


def run_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


class TestInterruptedCampaignResume:
    INTERRUPT_AFTER = 3

    def test_run_interrupt_resume_report(self, capsys, tmp_path, spec_file):
        root = tmp_path / "campaigns"
        spec = CampaignSpec.from_json(spec_file.read_text())

        # --- first run, killed after a few units -------------------------
        def die_after_some(unit_id, done, total):
            if done >= self.INTERRUPT_AFTER:
                raise InterruptedMidCampaign(unit_id)

        with pytest.raises(InterruptedMidCampaign):
            run_campaign(
                spec, root=root, use_processes=False, progress=die_after_some
            )

        store = CampaignStore(spec.name, root)
        committed = store.completed_ids()
        assert 0 < len(committed) < spec.n_units, "partially completed on disk"

        status = run_json(capsys, [
            "campaign", "status", "--name", spec.name, "--root", str(root), "--json",
        ])
        assert status["n_completed"] == len(committed)
        assert status["complete"] is False

        # --- resume through the CLI --------------------------------------
        resumed = run_json(capsys, [
            "campaign", "run", "--spec", str(spec_file), "--root", str(root),
            "--no-processes", "--json",
        ])
        assert resumed["n_skipped"] == len(committed)
        assert resumed["n_executed"] == spec.n_units - len(committed)
        # The interrupted units' probes were cached per die, so any unit the
        # interrupt killed *after its probes but before its commit* replays
        # from disk; either way the resumed run never repeats a committed
        # unit's evaluations.
        assert resumed["evaluations"]["n_exhaustive_equivalent"] > 0

        # --- a second resume is a no-op with zero evaluations ------------
        noop = run_json(capsys, [
            "campaign", "run", "--spec", str(spec_file), "--root", str(root),
            "--no-processes", "--json",
        ])
        assert noop["n_executed"] == 0
        assert noop["n_skipped"] == spec.n_units
        assert noop["evaluations"]["n_evaluations"] == 0

        # --- the report sees the whole fleet ------------------------------
        report = run_json(capsys, [
            "campaign", "report", "--name", spec.name, "--root", str(root), "--json",
        ])
        assert report["complete"] is True
        assert report["n_completed"] == spec.n_units
        assert len(report["units"]) == spec.n_units
        assert report["search"] == "adaptive"
        assert report["evaluations"]["n_units"] == spec.n_units
        assert report["evaluations"]["n_evaluations"] > 0
        vmin = report["population"]["fleet"]["vccbram_vmin_v"]
        assert vmin["n"] == spec.n_units
        assert 0.55 <= vmin["min"] <= vmin["max"] <= 0.65

    def test_interrupted_units_resume_from_their_caches(self, tmp_path, spec_file):
        """A unit killed after probing but before committing costs nothing."""
        root = tmp_path / "campaigns"
        spec = CampaignSpec.from_json(spec_file.read_text())
        report = run_campaign(spec, root=root, use_processes=False)
        assert report.evaluations["n_evaluations"] > 0

        # Simulate the worst interruption: every commit marker lost, caches
        # intact (markers are committed *after* the cache is saved).
        store = CampaignStore(spec.name, root)
        for marker in store.units_dir.glob("*.json"):
            marker.unlink()

        rerun = run_campaign(spec, root=root, use_processes=False)
        assert len(rerun.executed) == spec.n_units
        assert rerun.evaluations["n_evaluations"] == 0
        assert rerun.evaluations["n_cache_hits"] > 0
