"""Cross-cutting checks of the published anchors the reproduction is calibrated to.

These tests are the executable form of EXPERIMENTS.md: each asserts that a
headline number or qualitative shape from the paper holds when measured
through the library's public API (not read back from the calibration table).
"""

import pytest

from repro.core import FaultField, average_guardband, bram_power_model, get_calibration
from repro.core.characterization import pattern_study, stability_study, variability_study
from repro.fpga import FpgaChip


class TestHeadlineGuardbandAndPower:
    def test_average_bram_guardband_is_39_percent(self):
        assert average_guardband("VCCBRAM") == pytest.approx(0.39, abs=0.005)

    def test_average_int_guardband_is_34_percent(self):
        assert average_guardband("VCCINT") == pytest.approx(0.34, abs=0.005)

    @pytest.mark.parametrize("platform", ["VC707", "ZC702", "KC705-A", "KC705-B"])
    def test_more_than_order_of_magnitude_power_saving(self, platform):
        cal = get_calibration(platform)
        model = bram_power_model(cal)
        assert model.reduction_factor(cal.vnom_v, cal.vmin_bram_v) > 10


class TestFaultRateAnchors:
    @pytest.mark.parametrize(
        "platform,published_rate",
        [("ZC702", 153.0), ("KC705-A", 254.0), ("KC705-B", 60.0)],
    )
    def test_crash_rates_reproduced(self, platform, published_rate):
        field = FaultField(FpgaChip.build(platform))
        cal = field.calibration
        measured = field.chip_fault_rate_per_mbit(cal.vcrash_bram_v)
        assert measured == pytest.approx(published_rate, rel=0.1)

    def test_vc707_crash_rate_reproduced(self, vc707_field):
        measured = vc707_field.chip_fault_rate_per_mbit(0.54)
        assert measured == pytest.approx(652.0, rel=0.08)

    def test_kc705_die_to_die_factor(self):
        field_a = FaultField(FpgaChip.build("KC705-A"))
        field_b = FaultField(FpgaChip.build("KC705-B"))
        rate_a = field_a.chip_fault_rate_per_mbit(field_a.calibration.vcrash_bram_v)
        rate_b = field_b.chip_fault_rate_per_mbit(field_b.calibration.vcrash_bram_v)
        assert rate_a / rate_b == pytest.approx(4.1, rel=0.2)


class TestCharacterizationAnchors:
    def test_one_to_zero_fraction(self, zc702_field):
        assert zc702_field.one_to_zero_fraction() == pytest.approx(0.999, abs=0.003)

    def test_pattern_proportionality(self, zc702_field):
        cal = zc702_field.calibration
        study = pattern_study(zc702_field, cal.vcrash_bram_v)
        assert study.ratio("FFFF", "AAAA") == pytest.approx(2.0, rel=0.2)

    def test_run_to_run_stability(self, zc702_field):
        cal = zc702_field.calibration
        study = stability_study(zc702_field, cal.vcrash_bram_v, n_runs=50)
        assert study.std_dev / study.average < 0.05
        assert study.location_overlap > 0.9

    def test_vc707_never_faulty_fraction(self, vc707_field):
        """Fig. 5: 38.9 % of VC707 BRAMs never fault even at Vcrash."""
        study = variability_study(vc707_field, 0.54)
        assert study.never_faulty_fraction == pytest.approx(0.389, abs=0.06)

    def test_vc707_temperature_reduction_exceeds_3x(self, vc707_field):
        cold = vc707_field.chip_fault_count(0.54, temperature_c=50.0)
        hot = vc707_field.chip_fault_count(0.54, temperature_c=80.0)
        assert cold / hot > 3.0

    def test_vc707_reduces_faster_than_kc705a_with_heat(self, vc707_field):
        """Fig. 8: VC707's rate falls more steeply with temperature than KC705-A's."""
        field_a = FaultField(FpgaChip.build("KC705-A"))
        vc707_ratio = vc707_field.chip_fault_count(0.54, temperature_c=50.0) / max(
            1, vc707_field.chip_fault_count(0.54, temperature_c=80.0)
        )
        kc705_ratio = field_a.chip_fault_count(0.53, temperature_c=50.0) / max(
            1, field_a.chip_fault_count(0.53, temperature_c=80.0)
        )
        assert vc707_ratio > kc705_ratio
