"""End-to-end integration tests spanning the harness, core models and case study."""

import pytest

from repro.accelerator import IcbpFlow, NnAccelerator, PlacementPolicy
from repro.core import FaultField, cluster_bram_vulnerability, detect_guardband
from repro.core.guardband import SweepObservation
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment
from repro.nn import QuantizedNetwork, TrainingConfig, synthetic_forest, train_network


class TestCharacterizationPipeline:
    """Section II, end to end: discover the guardband, characterize, cluster."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return UndervoltingExperiment(FpgaChip.build("ZC702"), runs_per_step=5)

    def test_guardband_then_characterization(self, experiment):
        cal = experiment.calibration
        measurement, sweep = experiment.discover_guardband()
        assert measurement.guardband_fraction == pytest.approx(
            cal.guardband_bram_fraction, abs=0.015
        )

        # The detected thresholds drive the critical-region sweep of Listing 1.
        critical = experiment.critical_region_sweep(
            start_v=measurement.vmin_v, stop_v=measurement.vcrash_v, n_runs=5
        )
        rates = critical.fault_rates_per_mbit()
        assert rates[0] == 0.0
        assert rates[-1] > 50

        # Per-BRAM counts at Vcrash cluster into a dominant low class.
        fvm = experiment.extract_fvm()
        clustering = cluster_bram_vulnerability(fvm.counts_at_lowest_voltage())
        assert clustering.fraction("low") > 0.6

    def test_guardband_detection_from_sweep_records(self, experiment):
        _, sweep = experiment.discover_guardband()
        observations = [
            SweepObservation(
                voltage_v=step.voltage_v,
                fault_count=int(step.median_fault_count),
                operational=step.operational,
            )
            for step in sweep.steps
        ]
        result = detect_guardband(observations)
        assert result.vmin_v == pytest.approx(experiment.calibration.vmin_bram_v, abs=0.011)


class TestCaseStudyPipeline:
    """Section III, end to end: train, quantize, accelerate, mitigate."""

    def test_train_quantize_accelerate_and_mitigate(self):
        dataset = synthetic_forest(n_train=1600, n_test=300, seed=11)
        result = train_network(
            dataset,
            topology=(54, 32, 24, 16, 7),
            config=TrainingConfig(epochs=15, seed=4),
        )
        quantized = QuantizedNetwork.from_network(result.network)
        baseline = quantized.classification_error(dataset.test_inputs, dataset.test_labels)
        assert baseline < 0.2

        chip = FpgaChip.build("ZC702")
        field = FaultField(chip)
        cal = field.calibration

        accelerator = NnAccelerator(chip=chip, network=quantized, fault_field=field)
        points = accelerator.evaluate_on(dataset, [cal.vmin_bram_v, cal.vcrash_bram_v])
        assert points[0].classification_error == pytest.approx(baseline)
        assert points[1].weight_faults > 0

        flow = IcbpFlow(
            chip=chip,
            network=quantized,
            dataset=dataset,
            fault_field=field,
            max_eval_samples=300,
        )
        comparison = flow.compare_policies(compile_seeds=(0, 1))
        default = comparison[PlacementPolicy.DEFAULT]
        icbp = comparison[PlacementPolicy.LAST_LAYER]
        assert icbp.accuracy_loss <= default.accuracy_loss + 1e-9
        assert icbp.power_savings_vs_vmin == pytest.approx(0.4, abs=0.1)

    def test_placement_determines_which_weights_get_hit(self, quantized_small_network, small_dataset):
        """Different compile seeds corrupt different weights of the same network."""
        chip = FpgaChip.build("ZC702")
        field = FaultField(chip)
        cal = field.calibration
        acc_a = NnAccelerator(chip=chip, network=quantized_small_network, fault_field=field, compile_seed=0)
        acc_b = NnAccelerator(chip=chip, network=quantized_small_network, fault_field=field, compile_seed=5)
        faults_a = acc_a.count_weight_faults(cal.vcrash_bram_v)
        faults_b = acc_b.count_weight_faults(cal.vcrash_bram_v)
        assert faults_a != faults_b or acc_a.placement.assignment != acc_b.placement.assignment
