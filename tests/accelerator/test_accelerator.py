"""Tests for the NN accelerator under undervolted BRAMs."""

import numpy as np
import pytest

from repro.accelerator.accelerator import AcceleratorError, NnAccelerator, mean_error_sweep
from repro.core.faultmodel import FaultField
from repro.fpga.platform import FpgaChip
from repro.nn.inference import QuantizedNetwork
from repro.nn.model import FullyConnectedNetwork


@pytest.fixture(scope="module")
def accelerator(quantized_small_network) -> NnAccelerator:
    chip = FpgaChip.build("ZC702")
    return NnAccelerator(chip=chip, network=quantized_small_network, compile_seed=1)


class TestConstruction:
    def test_placement_covers_all_segments(self, accelerator):
        assert len(accelerator.placement) == accelerator.mapping.n_logical_brams
        sites = accelerator.placement.used_sites()
        assert len(sites) == len(set(sites))

    def test_layer_physical_brams(self, accelerator, quantized_small_network):
        for layer in quantized_small_network.layers:
            brams = accelerator.layer_physical_brams(layer.index)
            assert len(brams) == len(accelerator.mapping.segments_of_layer(layer.index))

    def test_utilization_reports_all_resources(self, accelerator):
        util = accelerator.utilization()
        assert util.percent("BRAM") > 0
        assert util.percent("DSP") > 0

    def test_oversized_network_rejected(self):
        huge = FullyConnectedNetwork.initialize((2048, 2048, 2048, 10), seed=0)
        quantized = QuantizedNetwork.from_network(huge)
        with pytest.raises(AcceleratorError):
            NnAccelerator(chip=FpgaChip.build("ZC702"), network=quantized)


class TestFaultInjection:
    def test_safe_region_network_is_identical(self, accelerator, quantized_small_network):
        clean = accelerator.faulty_network(1.0)
        for original, observed in zip(quantized_small_network.layers, clean.layers):
            assert np.array_equal(original.weight_words, observed.weight_words)

    def test_vcrash_network_has_cleared_bits_only(self, accelerator, quantized_small_network):
        cal = accelerator.calibration
        faulty = accelerator.faulty_network(cal.vcrash_bram_v)
        any_difference = False
        for original, observed in zip(quantized_small_network.layers, faulty.layers):
            cleared = original.weight_words & ~observed.weight_words
            introduced = observed.weight_words & ~original.weight_words
            if (cleared > 0).any():
                any_difference = True
            # 1 -> 0 flips dominate: essentially no bits may be introduced.
            assert int((introduced > 0).sum()) <= max(1, int((cleared > 0).sum()) // 100)
        assert any_difference

    def test_count_weight_faults_matches_word_diff(self, accelerator, quantized_small_network):
        cal = accelerator.calibration
        per_layer = accelerator.count_weight_faults(cal.vcrash_bram_v)
        faulty = accelerator.faulty_network(cal.vcrash_bram_v)
        recount = 0
        for original, observed in zip(quantized_small_network.layers, faulty.layers):
            diff = original.weight_words ^ observed.weight_words
            recount += sum(int(((diff >> b) & 1).sum()) for b in range(16))
        assert sum(per_layer.values()) == recount

    def test_deterministic_injection(self, accelerator):
        cal = accelerator.calibration
        first = accelerator.count_weight_faults(cal.vcrash_bram_v)
        second = accelerator.count_weight_faults(cal.vcrash_bram_v)
        assert first == second


class TestAccuracy:
    def test_baseline_matches_quantized_network(self, accelerator, small_dataset, quantized_small_network):
        baseline = accelerator.baseline_error(small_dataset.test_inputs, small_dataset.test_labels)
        direct = quantized_small_network.classification_error(
            small_dataset.test_inputs, small_dataset.test_labels
        )
        assert baseline == pytest.approx(direct)

    def test_error_sweep_structure(self, accelerator, small_dataset):
        cal = accelerator.calibration
        voltages = [cal.vmin_bram_v, cal.vcrash_bram_v]
        points = accelerator.evaluate_on(small_dataset, voltages)
        assert [p.voltage_v for p in points] == voltages
        assert points[0].weight_faults == 0
        assert points[1].weight_faults > 0
        assert points[1].classification_error >= 0

    def test_error_never_below_zero_nor_above_one(self, accelerator, small_dataset):
        cal = accelerator.calibration
        error = accelerator.classification_error_at(
            cal.vcrash_bram_v, small_dataset.test_inputs, small_dataset.test_labels
        )
        assert 0.0 <= error <= 1.0


class TestMeanErrorSweep:
    def test_averages_over_seeds(self, small_dataset, quantized_small_network):
        chip = FpgaChip.build("ZC702")
        field = FaultField(chip)
        cal = field.calibration
        points = mean_error_sweep(
            chip,
            quantized_small_network,
            small_dataset,
            [cal.vmin_bram_v, cal.vcrash_bram_v],
            compile_seeds=(0, 1),
            fault_field=field,
            max_samples=200,
        )
        assert len(points) == 2
        assert points[0].classification_error <= points[1].classification_error + 0.05

    def test_requires_seeds(self, small_dataset, quantized_small_network):
        chip = FpgaChip.build("ZC702")
        with pytest.raises(AcceleratorError):
            mean_error_sweep(chip, quantized_small_network, small_dataset, [0.6], compile_seeds=())
