"""Tests for weight-to-BRAM mapping."""

import math

import numpy as np
import pytest

from repro.accelerator.mapping import MappingError, WeightMapping, layer_group
from repro.nn.inference import QuantizedNetwork
from repro.nn.model import FullyConnectedNetwork, PAPER_TOPOLOGY


@pytest.fixture(scope="module")
def mapping(quantized_small_network) -> WeightMapping:
    return WeightMapping(quantized_small_network)


class TestSegments:
    def test_every_layer_fully_covered(self, mapping, quantized_small_network):
        for layer in quantized_small_network.layers:
            segments = mapping.segments_of_layer(layer.index)
            covered = sum(seg.n_words for seg in segments)
            assert covered == layer.n_weights
            offsets = [seg.word_offset for seg in segments]
            assert offsets == sorted(offsets)

    def test_segments_respect_bram_depth(self, mapping):
        assert all(seg.n_words <= mapping.words_per_bram for seg in mapping.segments)
        assert all(seg.n_words > 0 for seg in mapping.segments)

    def test_logical_names_unique_and_grouped(self, mapping):
        names = [seg.logical_name for seg in mapping.segments]
        assert len(names) == len(set(names))
        seg = mapping.segments[0]
        assert seg.logical_name.startswith(f"layer{seg.layer_index}_")
        assert layer_group(3) == "layer3"

    def test_brams_per_layer_matches_ceil_division(self, mapping, quantized_small_network):
        per_layer = mapping.brams_per_layer()
        for layer in quantized_small_network.layers:
            expected = max(1, math.ceil(layer.n_weights / mapping.words_per_bram))
            assert per_layer[layer.index] == expected

    def test_segment_lookup_and_words(self, mapping, quantized_small_network):
        seg = mapping.segments_of_layer(0)[0]
        words = mapping.words_for_segment(seg)
        layer_words = quantized_small_network.layer(0).flat_words()
        assert np.array_equal(words, layer_words[: seg.n_words])
        assert mapping.segment_by_name(seg.logical_name) == seg
        with pytest.raises(MappingError):
            mapping.segment_by_name("nonexistent")

    def test_invalid_words_per_bram_rejected(self, quantized_small_network):
        with pytest.raises(MappingError):
            WeightMapping(quantized_small_network, words_per_bram=0)


class TestDesignAndUtilization:
    def test_design_contains_all_segments(self, mapping):
        design = mapping.build_design()
        assert design.n_brams == mapping.n_logical_brams
        groups = {block.group for block in design.logical_brams}
        assert groups == {layer_group(i) for i in range(len(mapping.network.layers))}

    def test_utilization_fraction(self, mapping):
        fraction = mapping.bram_utilization_fraction(2060)
        assert 0 < fraction < 1
        with pytest.raises(MappingError):
            mapping.bram_utilization_fraction(0)
        with pytest.raises(MappingError):
            mapping.bram_utilization_fraction(mapping.n_logical_brams - 1)

    def test_paper_topology_uses_about_70_percent_of_vc707(self):
        """Table III: the 1.5M-weight network fills 70.8 % of VC707's BRAMs."""
        network = FullyConnectedNetwork.initialize(PAPER_TOPOLOGY, seed=0)
        quantized = QuantizedNetwork.from_network(network)
        mapping = WeightMapping(quantized)
        fraction = mapping.bram_utilization_fraction(2060)
        assert fraction == pytest.approx(0.708, abs=0.02)
