"""Tests for the ICBP mitigation flow."""

import pytest

from repro.accelerator.icbp import IcbpError, IcbpFlow, PlacementPolicy
from repro.core.faultmodel import FaultField
from repro.fpga.platform import FpgaChip


@pytest.fixture(scope="module")
def flow(quantized_small_network, small_dataset) -> IcbpFlow:
    chip = FpgaChip.build("ZC702")
    return IcbpFlow(
        chip=chip,
        network=quantized_small_network,
        dataset=small_dataset,
        fault_field=FaultField(chip),
        max_eval_samples=300,
    )


class TestPreprocessing:
    def test_fvm_extracted_once_and_cached(self, flow):
        first = flow.extract_fvm()
        second = flow.extract_fvm()
        assert first is second
        assert first.n_brams == flow.chip.spec.n_brams

    def test_vulnerability_report_cached(self, flow):
        first = flow.analyze_vulnerability()
        second = flow.analyze_vulnerability()
        assert first is second


class TestConstraints:
    def test_default_policy_has_no_constraints(self, flow):
        constraints, protected = flow.build_constraints(PlacementPolicy.DEFAULT)
        assert constraints is None
        assert protected == ()

    def test_last_layer_policy_constrains_only_last_layer(self, flow, quantized_small_network):
        constraints, protected = flow.build_constraints(PlacementPolicy.LAST_LAYER)
        last = quantized_small_network.n_weight_layers - 1
        assert protected == (last,)
        constrained = constraints.constrained_blocks()
        assert all(name.startswith(f"layer{last}_") for name in constrained)

    def test_constrained_sites_are_low_vulnerable(self, flow):
        constraints, _ = flow.build_constraints(PlacementPolicy.LAST_LAYER)
        fvm = flow.extract_fvm()
        allowed = set(fvm.low_vulnerable_brams()) | set(fvm.fault_free_brams())
        for pblock in constraints:
            assert pblock.allowed_sites <= allowed

    def test_vulnerability_ordered_policy_protects_more_layers(self, flow):
        _, protected_last = flow.build_constraints(PlacementPolicy.LAST_LAYER)
        _, protected_ordered = flow.build_constraints(PlacementPolicy.VULNERABILITY_ORDERED)
        assert len(protected_ordered) >= len(protected_last)


class TestEvaluation:
    def test_icbp_never_worse_than_default(self, flow):
        comparison = flow.compare_policies(compile_seeds=(0, 1, 2))
        default = comparison[PlacementPolicy.DEFAULT]
        icbp = comparison[PlacementPolicy.LAST_LAYER]
        assert icbp.accuracy_loss <= default.accuracy_loss + 1e-9
        # Power savings are placement-independent: same voltage, same rail.
        assert icbp.power_savings_vs_vmin == pytest.approx(default.power_savings_vs_vmin)
        assert default.power_savings_vs_vmin > 0.2

    def test_icbp_loss_is_small(self, flow):
        evaluation = flow.evaluate(PlacementPolicy.LAST_LAYER, compile_seeds=(0, 1))
        assert evaluation.accuracy_loss < 0.03

    def test_max_aggregate_at_least_mean(self, flow):
        mean_eval = flow.evaluate(PlacementPolicy.DEFAULT, compile_seeds=(0, 1, 2), aggregate="mean")
        max_eval = flow.evaluate(PlacementPolicy.DEFAULT, compile_seeds=(0, 1, 2), aggregate="max")
        assert max_eval.classification_error >= mean_eval.classification_error - 1e-9

    def test_safe_voltage_has_no_loss_for_any_policy(self, flow):
        cal = flow.fault_field.calibration
        evaluation = flow.evaluate(PlacementPolicy.DEFAULT, voltage_v=cal.vmin_bram_v)
        assert evaluation.accuracy_loss == pytest.approx(0.0)

    def test_invalid_arguments_rejected(self, flow):
        with pytest.raises(IcbpError):
            flow.evaluate(PlacementPolicy.DEFAULT, compile_seeds=())
        with pytest.raises(IcbpError):
            flow.evaluate(PlacementPolicy.DEFAULT, aggregate="median")
