"""Tests for the accelerator on-chip power breakdown (Fig. 10)."""

import pytest

from repro.accelerator.power import AcceleratorPowerError, AcceleratorPowerModel
from repro.fpga.platform import FpgaChip


@pytest.fixture(scope="module")
def power_model() -> AcceleratorPowerModel:
    return AcceleratorPowerModel(chip=FpgaChip.build("VC707"), bram_utilization=0.708)


class TestFig10Anchors:
    def test_total_reduction_at_vmin_is_about_24_percent(self, power_model):
        cal = power_model.calibration
        reduction = power_model.total_reduction_fraction(cal.vmin_bram_v)
        assert reduction == pytest.approx(0.241, abs=0.02)

    def test_bram_power_drops_an_order_of_magnitude_at_vmin(self, power_model):
        cal = power_model.calibration
        assert power_model.bram_reduction_factor(cal.vmin_bram_v) > 10

    def test_further_40_percent_between_vmin_and_vcrash(self, power_model):
        cal = power_model.calibration
        savings = power_model.bram_savings_between(cal.vmin_bram_v, cal.vcrash_bram_v)
        assert savings == pytest.approx(0.40, abs=0.08)

    def test_breakdown_components(self, power_model):
        cal = power_model.calibration
        breakdown = power_model.breakdown_w(cal.vnom_v)
        assert set(breakdown) == {"clocking", "dsp", "logic_routing", "io_other", "bram"}
        assert breakdown["bram"] / sum(breakdown.values()) == pytest.approx(0.262, abs=0.01)

    def test_rest_power_unaffected_by_vccbram(self, power_model):
        cal = power_model.calibration
        nominal = power_model.breakdown_w(cal.vnom_v)
        undervolted = power_model.breakdown_w(cal.vcrash_bram_v)
        for component in ("clocking", "dsp", "logic_routing", "io_other"):
            assert undervolted[component] == pytest.approx(nominal[component])
        assert undervolted["bram"] < nominal["bram"]

    def test_figure10_rows_cover_three_operating_points(self, power_model):
        rows = power_model.figure10_rows()
        assert set(rows) == {"Vnom", "Vmin", "Vcrash"}
        assert sum(rows["Vcrash"].values()) < sum(rows["Vnom"].values())

    def test_total_monotone_in_voltage(self, power_model):
        totals = [power_model.total_w(v) for v in (1.0, 0.8, 0.61, 0.54)]
        assert all(b < a for a, b in zip(totals, totals[1:]))


class TestValidation:
    def test_invalid_configuration_rejected(self):
        chip = FpgaChip.build("VC707")
        with pytest.raises(AcceleratorPowerError):
            AcceleratorPowerModel(chip=chip, bram_share_at_nominal=0.0)
        with pytest.raises(AcceleratorPowerError):
            AcceleratorPowerModel(chip=chip, bram_utilization=0.0)
        with pytest.raises(AcceleratorPowerError):
            AcceleratorPowerModel(chip=chip, total_on_chip_nominal_w=-1.0)
        with pytest.raises(AcceleratorPowerError):
            AcceleratorPowerModel(chip=chip, rest_split={"clocking": 0.5})
