"""Adaptive drivers must reproduce the exhaustive answers bit for bit."""

import numpy as np
import pytest

from repro.fpga import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT
from repro.harness import UndervoltingExperiment
from repro.search import EvalCache, WarmStartModel


def fresh_experiment(platform="ZC702", serial=None, runs=3):
    chip = FpgaChip.build(platform, serial=serial)
    return UndervoltingExperiment(chip, runs_per_step=runs)


class TestGuardbandEquivalence:
    @pytest.mark.parametrize("rail", [VCCBRAM, VCCINT])
    @pytest.mark.parametrize("platform", ["ZC702", "KC705-A"])
    def test_measurement_bit_identical(self, platform, rail):
        experiment = fresh_experiment(platform)
        exhaustive, _ = experiment.discover_guardband(rail=rail)
        adaptive = experiment.discover_guardband_adaptive(rail=rail).measurement
        assert adaptive == exhaustive  # dataclass equality: float for float

    @pytest.mark.parametrize("pattern", ["FFFF", "AAAA", "0000"])
    def test_identical_across_patterns(self, pattern):
        experiment = fresh_experiment()
        exhaustive, _ = experiment.discover_guardband(pattern=pattern)
        adaptive = experiment.discover_guardband_adaptive(pattern=pattern).measurement
        assert adaptive == exhaustive

    def test_adaptive_pays_fewer_evaluations(self):
        experiment = fresh_experiment()
        experiment.discover_guardband()
        exhaustive_cost = experiment.last_search_report.n_evaluations
        outcome = experiment.discover_guardband_adaptive()
        assert outcome.report.n_evaluations < exhaustive_cost / 2
        assert outcome.report.n_exhaustive_equivalent == exhaustive_cost

    def test_certificates_verify_and_name_the_thresholds(self):
        experiment = fresh_experiment()
        outcome = experiment.discover_guardband_adaptive()
        assert outcome.report.verify_certificates()
        by_quantity = {c.quantity: c for c in outcome.report.certificates}
        assert set(by_quantity) == {"vmin", "vcrash"}
        assert by_quantity["vmin"].boundary_voltage_above == outcome.measurement.vmin_v
        assert by_quantity["vcrash"].boundary_voltage_above == outcome.measurement.vcrash_v

    def test_sparse_sweep_is_descending_and_crash_recorded(self):
        experiment = fresh_experiment()
        outcome = experiment.discover_guardband_adaptive()
        voltages = outcome.sweep.voltages()
        assert voltages == sorted(voltages, reverse=True)
        assert outcome.sweep.crashed_at_v is not None
        assert outcome.sweep.crashed_at_v < outcome.measurement.vcrash_v

    def test_shared_cache_makes_second_discovery_free(self):
        experiment = fresh_experiment()
        cache = EvalCache(
            platform=experiment.chip.name,
            serial=experiment.chip.spec.serial_number,
        )
        first = experiment.discover_guardband_adaptive(cache=cache)
        second = experiment.discover_guardband_adaptive(cache=cache)
        assert second.report.n_evaluations == 0
        assert second.measurement == first.measurement

    def test_warm_start_reduces_cost_without_changing_answer(self):
        scout = fresh_experiment(serial=None)
        warm = WarmStartModel(step_v=scout.step_v)
        outcome = scout.discover_guardband_adaptive()
        warm.add(
            scout.chip.name, VCCBRAM, outcome.measurement.vmin_v,
            outcome.measurement.vcrash_v,
        )

        sibling = fresh_experiment(serial="SIM-ZC702-0001")
        exhaustive, _ = sibling.discover_guardband()
        cold = sibling.discover_guardband_adaptive()
        warmed = sibling.discover_guardband_adaptive(warm=warm)
        assert warmed.measurement == exhaustive
        assert warmed.report.n_evaluations <= cold.report.n_evaluations
        assert warmed.report.verify_certificates()

    def test_board_left_in_sane_state(self):
        experiment = fresh_experiment()
        experiment.discover_guardband_adaptive()
        cal = experiment.calibration
        assert experiment.chip.vccbram == cal.vnom_v
        assert experiment.host.is_operational()


class TestRegionSweepCaching:
    def test_critical_region_sweep_cache_identical_and_free_on_replay(self):
        experiment = fresh_experiment()
        baseline = experiment.critical_region_sweep(n_runs=3)
        cache = EvalCache(
            platform=experiment.chip.name,
            serial=experiment.chip.spec.serial_number,
        )
        first = experiment.critical_region_sweep(n_runs=3, cache=cache)
        assert first.as_series() == baseline.as_series()
        assert experiment.last_search_report.n_evaluations == len(baseline.steps)

        second = experiment.critical_region_sweep(n_runs=3, cache=cache)
        assert second.as_series() == baseline.as_series()
        assert experiment.last_search_report.n_evaluations == 0
        assert experiment.last_search_report.n_cache_hits == len(baseline.steps)

    def test_partial_cache_evaluates_only_missing_subset(self):
        experiment = fresh_experiment()
        cal = experiment.calibration
        cache = EvalCache(
            platform=experiment.chip.name,
            serial=experiment.chip.spec.serial_number,
        )
        # Warm the upper half of the region only.
        experiment.critical_region_sweep(
            n_runs=3, stop_v=round(cal.vmin_bram_v - 0.03, 4), cache=cache
        )
        warmed = experiment.last_search_report.n_evaluations
        experiment.critical_region_sweep(n_runs=3, cache=cache)
        assert warmed == 4
        # Second call paid only for the lower remainder of the region.

    def test_extract_fvm_cache_identical_and_free_on_replay(self):
        experiment = fresh_experiment()
        baseline = experiment.extract_fvm()
        cache = EvalCache(
            platform=experiment.chip.name,
            serial=experiment.chip.spec.serial_number,
        )
        first = experiment.extract_fvm(cache=cache)
        assert np.array_equal(first.counts_matrix(), baseline.counts_matrix())
        assert experiment.last_search_report.n_evaluations > 0

        second = experiment.extract_fvm(cache=cache)
        assert np.array_equal(second.counts_matrix(), baseline.counts_matrix())
        assert experiment.last_search_report.n_evaluations == 0

    def test_run_count_mismatch_does_not_poison_the_cache(self):
        experiment = fresh_experiment()
        cache = EvalCache(
            platform=experiment.chip.name,
            serial=experiment.chip.spec.serial_number,
        )
        three = experiment.critical_region_sweep(n_runs=3, cache=cache)
        five = experiment.critical_region_sweep(n_runs=5, cache=cache)
        assert experiment.last_search_report.n_evaluations == len(five.steps)
        baseline = experiment.critical_region_sweep(n_runs=5)
        assert five.as_series() == baseline.as_series()
        assert len(three.steps) == len(five.steps)
