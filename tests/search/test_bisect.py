"""Unit tests for certified bracketing + bisection."""

import pytest

from repro.search import (
    BisectionCertificate,
    BracketHint,
    CertificateEntry,
    SearchError,
    ThresholdBisector,
    exhaustive_first_false,
)


def ladder_of(n, start=1.0, step=0.01):
    return tuple(round(start - step * i, 4) for i in range(n))


def counting_probe(boundary):
    """A monotone predicate probe that counts its fresh evaluations."""
    calls = []

    def probe(index):
        calls.append(index)
        return index < boundary, False

    return probe, calls


class TestBisector:
    @pytest.mark.parametrize("boundary", [1, 2, 17, 39, 46, 47])
    def test_finds_every_boundary_cold(self, boundary):
        ladder = ladder_of(47)
        probe, calls = counting_probe(boundary)
        certificate = ThresholdBisector(ladder, probe).find_first_false("vmin")
        assert certificate.boundary_index == boundary
        assert certificate.boundary_index == exhaustive_first_false(
            ladder, lambda i: i < boundary
        )
        assert certificate.verify()

    def test_logarithmic_evaluation_count(self):
        ladder = ladder_of(64)
        probe, calls = counting_probe(40)
        ThresholdBisector(ladder, probe).find_first_false("vmin")
        # Galloping + bisection: far below the 41 evaluations a walk pays.
        assert len(calls) <= 16

    def test_predicate_false_everywhere_certifies_boundary_zero(self):
        ladder = ladder_of(10)
        probe, _ = counting_probe(0)
        certificate = ThresholdBisector(ladder, probe).find_first_false("vmin")
        assert certificate.boundary_index == 0
        assert certificate.boundary_voltage_above is None
        assert certificate.verify()

    def test_predicate_true_everywhere_certifies_grid_exhausted(self):
        ladder = ladder_of(10)
        probe, _ = counting_probe(10)
        certificate = ThresholdBisector(ladder, probe).find_first_false("vmin")
        assert certificate.boundary_index == 10
        assert certificate.boundary_voltage_below is None
        assert certificate.boundary_voltage_above == ladder[-1]
        assert certificate.verify()

    def test_each_index_probed_at_most_once(self):
        ladder = ladder_of(50)
        probe, calls = counting_probe(23)
        ThresholdBisector(ladder, probe).find_first_false("vmin")
        assert len(calls) == len(set(calls))

    @pytest.mark.parametrize("above,below", [(0.80, 0.74), (0.95, 0.40), (0.78, 0.77)])
    def test_correct_hint_shrinks_the_search(self, above, below):
        ladder = ladder_of(60)
        boundary = 23  # first false at 0.77
        probe, calls = counting_probe(boundary)
        certificate = ThresholdBisector(ladder, probe).find_first_false(
            "vmin", hint=BracketHint(above_v=above, below_v=below)
        )
        assert certificate.boundary_index == boundary
        assert certificate.verify()

    @pytest.mark.parametrize(
        "hint",
        [
            BracketHint(above_v=0.50, below_v=0.45),  # entirely below the boundary
            BracketHint(above_v=0.99, below_v=0.97),  # entirely above
            BracketHint(above_v=2.0, below_v=-1.0),   # off the grid both ways
            BracketHint(above_v=0.77),                # half-open, wrong side
            BracketHint(below_v=0.90),
        ],
    )
    def test_wrong_hints_never_change_the_answer(self, hint):
        ladder = ladder_of(60)
        boundary = 23
        probe, _ = counting_probe(boundary)
        certificate = ThresholdBisector(ladder, probe).find_first_false(
            "vmin", hint=hint
        )
        assert certificate.boundary_index == boundary
        assert certificate.verify()

    def test_single_point_ladder(self):
        for boundary in (0, 1):
            probe, _ = counting_probe(boundary)
            certificate = ThresholdBisector((0.61,), probe).find_first_false("vmin")
            assert certificate.boundary_index == boundary

    def test_rejects_empty_and_non_descending_ladders(self):
        probe, _ = counting_probe(1)
        with pytest.raises(SearchError):
            ThresholdBisector((), probe)
        with pytest.raises(SearchError):
            ThresholdBisector((0.5, 0.6), probe)
        with pytest.raises(SearchError):
            ThresholdBisector((0.5, 0.5), probe)

    def test_cache_flag_is_recorded_in_entries(self):
        ladder = ladder_of(20)

        def probe(index):
            return index < 7, index % 2 == 0  # even probes "came from cache"

        certificate = ThresholdBisector(ladder, probe).find_first_false("vmin")
        fresh = {e.index for e in certificate.entries if not e.from_cache}
        hits = {e.index for e in certificate.entries if e.from_cache}
        assert all(i % 2 == 1 for i in fresh)
        assert all(i % 2 == 0 for i in hits)
        assert certificate.n_evaluations == len(fresh)
        assert certificate.n_cache_hits == len(hits)


class TestCertificateVerification:
    LADDER = ladder_of(20)

    def entries(self, pairs):
        return tuple(
            CertificateEntry(index=i, voltage_v=self.LADDER[i], predicate=p)
            for i, p in pairs
        )

    def test_valid_certificate_passes(self):
        certificate = BisectionCertificate(
            quantity="vmin",
            ladder=self.LADDER,
            boundary_index=5,
            entries=self.entries([(0, True), (4, True), (5, False), (9, False)]),
        )
        assert certificate.verify()

    def test_rejects_non_adjacent_bracket(self):
        certificate = BisectionCertificate(
            quantity="vmin",
            ladder=self.LADDER,
            boundary_index=5,
            entries=self.entries([(0, True), (5, False)]),  # index 4 missing
        )
        with pytest.raises(SearchError, match="not adjacent"):
            certificate.verify()

    def test_rejects_evidence_inconsistent_with_monotonicity(self):
        certificate = BisectionCertificate(
            quantity="vmin",
            ladder=self.LADDER,
            boundary_index=5,
            entries=self.entries([(3, False), (4, True), (5, False)]),
        )
        with pytest.raises(SearchError, match="inconsistent"):
            certificate.verify()

    def test_rejects_wrong_ladder_voltage(self):
        entries = (
            CertificateEntry(index=4, voltage_v=0.123, predicate=True),
            CertificateEntry(index=5, voltage_v=self.LADDER[5], predicate=False),
        )
        certificate = BisectionCertificate(
            quantity="vmin", ladder=self.LADDER, boundary_index=5, entries=entries
        )
        with pytest.raises(SearchError, match="does not match"):
            certificate.verify()

    def test_rejects_out_of_range_boundary(self):
        certificate = BisectionCertificate(
            quantity="vmin", ladder=self.LADDER, boundary_index=99, entries=()
        )
        with pytest.raises(SearchError, match="outside grid"):
            certificate.verify()

    def test_to_dict_is_json_shaped(self):
        certificate = BisectionCertificate(
            quantity="vcrash",
            ladder=self.LADDER,
            boundary_index=5,
            entries=self.entries([(4, True), (5, False)]),
        )
        document = certificate.to_dict()
        assert document["quantity"] == "vcrash"
        assert document["boundary_index"] == 5
        assert document["boundary_voltage_above"] == self.LADDER[4]
        assert document["boundary_voltage_below"] == self.LADDER[5]
        assert document["evaluated_indices"] == [4, 5]
