"""Unit tests for the evaluation cache and its store persistence."""

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, ChipGroup
from repro.search import CACHE_VERSION, EvalCache, PointEvaluation, SearchError, point_key


def evaluation(voltage=0.61, rail="VCCBRAM", n_runs=3, **overrides):
    fields = dict(
        voltage_v=voltage,
        temperature_c=50.0,
        rail=rail,
        pattern="FFFF",
        n_runs=n_runs,
        counts=(1, 2, 3)[:n_runs],
        operational=True,
        bram_power_w=0.013,
    )
    fields.update(overrides)
    return PointEvaluation(**fields)


class TestPointEvaluation:
    def test_median_matches_numpy_int_convention(self):
        import numpy as np

        for counts in [(5,), (1, 2), (3, 1, 2), (4, 4, 1, 9), ()]:
            point = evaluation(counts=counts, n_runs=len(counts))
            expected = int(np.median(counts)) if counts else 0
            assert point.median_fault_count == expected

    def test_fault_free_requires_operational_and_zero_median(self):
        assert evaluation(counts=(0, 0, 0)).fault_free
        assert not evaluation(counts=(0, 1, 1)).fault_free
        assert not evaluation(counts=(), operational=False).fault_free

    def test_rejects_negative_counts(self):
        with pytest.raises(SearchError):
            evaluation(counts=(1, -2, 3))

    def test_dict_round_trip(self):
        point = evaluation(per_bram_counts=(0, 4, 2), n_runs=0, counts=())
        assert PointEvaluation.from_dict(point.to_dict()) == point

    def test_dict_round_trip_through_json(self):
        point = evaluation()
        again = PointEvaluation.from_dict(json.loads(json.dumps(point.to_dict())))
        assert again == point


class TestPointKey:
    def test_voltage_quantization_survives_float_noise(self):
        a = point_key("ZC702", "S1", "VCCBRAM", 0.61, 50.0, "FFFF", 3)
        b = point_key("ZC702", "S1", "VCCBRAM", 0.6099999999999999, 50.0, "FFFF", 3)
        assert a == b

    def test_distinct_rails_and_runs_get_distinct_keys(self):
        base = ("ZC702", "S1", "VCCBRAM", 0.61, 50.0, "FFFF", 3)
        assert point_key(*base) != point_key("ZC702", "S1", "VCCINT", 0.61, 50.0, "FFFF", 3)
        assert point_key(*base) != point_key("ZC702", "S1", "VCCBRAM", 0.61, 50.0, "FFFF", 5)
        assert point_key(*base) != point_key("ZC702", "S1", "VCCBRAM", 0.60, 50.0, "FFFF", 3)
        assert point_key(*base) != point_key("ZC702", "S1", "VCCBRAM", 0.61, 80.0, "FFFF", 3)
        assert point_key(*base) != point_key("ZC702", "S1", "VCCBRAM", 0.61, 50.0, "AAAA", 3)


class TestEvalCache:
    def test_lookup_counts_hits_and_misses(self):
        cache = EvalCache(platform="ZC702", serial="S1")
        assert cache.lookup("VCCBRAM", 0.61, 50.0, "FFFF", 3) is None
        cache.store(evaluation())
        assert cache.lookup("VCCBRAM", 0.61, 50.0, "FFFF", 3) == evaluation()
        assert (cache.n_hits, cache.n_misses) == (1, 1)

    def test_store_is_idempotent(self):
        cache = EvalCache(platform="ZC702", serial="S1")
        cache.store(evaluation())
        cache.store(evaluation())
        assert len(cache) == 1

    def test_document_round_trip(self):
        cache = EvalCache(platform="ZC702", serial="S1")
        cache.store(evaluation(voltage=0.61))
        cache.store(evaluation(voltage=0.60, counts=(9, 9, 9)))
        cache.store(evaluation(rail="VCCINT", counts=(2, 2, 2)))
        again = EvalCache.from_document(json.loads(json.dumps(cache.to_document())))
        assert again.entries == cache.entries
        assert (again.platform, again.serial) == ("ZC702", "S1")

    def test_stale_version_degrades_to_empty(self):
        document = EvalCache(platform="ZC702", serial="S1").to_document()
        document["version"] = CACHE_VERSION + 1
        document["entries"] = [evaluation().to_dict()]
        assert len(EvalCache.from_document(document)) == 0


class TestStorePersistence:
    def spec(self, name):
        return CampaignSpec(
            name=name,
            groups=(ChipGroup(platform="ZC702", serials=("S1",)),),
            runs_per_step=2,
        )

    def test_save_load_round_trip(self, tmp_path):
        store = CampaignStore.open(self.spec("cache-rt"), tmp_path)
        cache = EvalCache(platform="ZC702", serial="S1")
        cache.store(evaluation())
        cache.store(evaluation(voltage=0.55, operational=False, counts=()))
        store.save_eval_cache(cache)
        loaded = store.load_eval_cache("ZC702", "S1")
        assert loaded.entries == cache.entries

    def test_missing_cache_is_empty(self, tmp_path):
        store = CampaignStore.open(self.spec("cache-miss"), tmp_path)
        assert len(store.load_eval_cache("ZC702", "nope")) == 0

    def test_corrupt_cache_degrades_to_empty(self, tmp_path):
        store = CampaignStore.open(self.spec("cache-bad"), tmp_path)
        cache = EvalCache(platform="ZC702", serial="S1")
        cache.store(evaluation())
        store.save_eval_cache(cache)
        path = store._cache_path("ZC702", "S1")
        path.write_text("{not json")
        assert len(store.load_eval_cache("ZC702", "S1")) == 0

    def test_weird_serials_map_to_safe_filenames(self, tmp_path):
        store = CampaignStore.open(self.spec("cache-names"), tmp_path)
        cache = EvalCache(platform="KC705-A", serial="../../evil serial")
        cache.store(evaluation())
        store.save_eval_cache(cache)
        files = list(store.cache_dir.iterdir())
        assert len(files) == 1
        assert files[0].parent == store.cache_dir
        assert "/" not in files[0].name and " " not in files[0].name
        assert store.load_eval_cache("KC705-A", "../../evil serial").entries == cache.entries


class TestHoistedKeyBuilders:
    """The per-die prefix hoist and the probe-loop keyer are pure
    refactors: every key they build is tuple-identical to point_key, so
    hit behaviour cannot change."""

    def test_internal_key_equals_point_key(self):
        cache = EvalCache(platform="KC705-A", serial="S-17")
        for voltage, temperature in [(0.5675, 42.5), (0.54, 80.0), (0.40001, 0.0)]:
            assert cache._key(
                "VCCBRAM", voltage, temperature, "65535", 3
            ) == point_key("KC705-A", "S-17", "VCCBRAM", voltage, temperature, "65535", 3)

    def test_probe_keyer_builds_point_key_tuples(self):
        cache = EvalCache(platform="ZC702", serial="B000")
        keyer = cache.probe_keyer("VCCBRAM", "65535", 3)
        for voltage in [0.53, 0.5425, 0.61]:
            for temperature in [26.0, 42.5, 80.0]:
                assert keyer(voltage, temperature) == point_key(
                    "ZC702", "B000", "VCCBRAM", voltage, temperature, "65535", 3
                )

    def test_probe_keyer_hit_behaviour_identical_to_lookup(self):
        cache = EvalCache(platform="ZC702", serial="B000")
        stored = evaluation(voltage=0.5550)
        cache.store(stored)
        keyer = cache.probe_keyer(stored.rail, stored.pattern, stored.n_runs)
        # A keyer-built key indexes the same entry a lookup would serve ...
        assert cache.entries[keyer(0.5550, stored.temperature_c)] is stored
        assert cache.lookup(
            stored.rail, 0.5550, stored.temperature_c, stored.pattern, stored.n_runs
        ) is stored
        # ... including across the float round-trips the quantization absorbs.
        assert keyer(0.55499999999, stored.temperature_c) == keyer(
            0.5550000001, stored.temperature_c
        )
        assert keyer(0.5550, stored.temperature_c) not in (
            keyer(0.5551, stored.temperature_c),
            keyer(0.5550, stored.temperature_c + 0.001),
        )
