"""Lockstep fleet bisection: waves advance every search, answers unchanged.

Three layers, bottom up:

* ``search_steps`` is the generator form of ``find_first_false`` — driving
  it by hand (answer each yielded index immediately) yields the identical
  certificate for random boundaries and random (possibly wrong) hints;
* :class:`~repro.search.FleetBisector` advancing many searches in lockstep
  waves produces, per die, exactly the sequential certificate, while the
  wave count stays logarithmic; dropped answers are an error, not a stall;
* :func:`~repro.harness.discover_guardband_fleet` (the full harness path:
  padded threshold stack, vectorized bisect, per-die caches) returns
  measurement- and certificate-identical results to die-by-die
  ``discover_guardband_adaptive``, and a second pass over warm caches is
  served entirely from them.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.search import (
    BracketHint,
    FleetBisector,
    SearchError,
    ThresholdBisector,
)


def _ladder(n):
    return tuple(round(1.0 - 0.01 * i, 4) for i in range(n))


@st.composite
def boundary_cases(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    boundary = draw(st.integers(min_value=0, max_value=n))
    hint_above = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    hint_below = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    return n, boundary, hint_above, hint_below


def _hint(ladder, above_index, below_index):
    return BracketHint(
        above_v=None if above_index is None else ladder[above_index],
        below_v=None if below_index is None else ladder[below_index],
    )


class TestSearchStepsGenerator:
    @given(case=boundary_cases())
    @settings(max_examples=200, deadline=None)
    def test_hand_driven_generator_equals_sequential_driver(self, case):
        n, boundary, hint_above, hint_below = case
        ladder = _ladder(n)

        def probe(index):
            return index < boundary, False

        hint = _hint(ladder, hint_above, hint_below)
        sequential = ThresholdBisector(ladder, probe).find_first_false("vmin", hint)

        steps = ThresholdBisector(ladder).search_steps("vmin", hint)
        try:
            index = next(steps)
            while True:
                index = steps.send(probe(index))
        except StopIteration as stop:
            generated = stop.value
        assert generated == sequential
        assert generated.boundary_index == boundary
        assert generated.verify()


class TestFleetBisector:
    @given(
        boundaries=st.lists(st.integers(min_value=0, max_value=40),
                            min_size=1, max_size=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_lockstep_certificates_equal_sequential(self, boundaries):
        ladder = _ladder(40)
        plans = {
            die: ThresholdBisector(ladder).search_steps("vmin")
            for die in range(len(boundaries))
        }
        fleet = FleetBisector(plans)

        def evaluate_wave(pending):
            return {die: (index < boundaries[die], False)
                    for die, index in pending.items()}

        certificates = fleet.run(evaluate_wave)
        for die, boundary in enumerate(boundaries):
            sequential = ThresholdBisector(
                ladder, lambda i, b=boundary: (i < b, False)
            ).find_first_false("vmin")
            assert certificates[die] == sequential
            assert certificates[die].boundary_index == boundary
        # Lockstep pays the same total probes, but in logarithmic waves.
        assert fleet.n_steps == sum(
            len(certificates[die].entries) for die in certificates
        )
        assert fleet.n_waves <= max(
            len(certificates[die].entries) for die in certificates
        )

    def test_dropped_answer_is_an_error_not_a_stall(self):
        ladder = _ladder(10)
        fleet = FleetBisector({
            "a": ThresholdBisector(ladder).search_steps("vmin"),
            "b": ThresholdBisector(ladder).search_steps("vmin"),
        })

        def forgetful_wave(pending):
            die = sorted(pending)[0]
            return {die: (True, False)}

        with pytest.raises(SearchError, match="answered no request"):
            fleet.run(forgetful_wave)

    def test_degenerate_plan_with_no_probes(self):
        def immediate():
            return "done"
            yield  # pragma: no cover

        fleet = FleetBisector({"a": immediate()})
        assert fleet.run(lambda pending: {}) == {"a": "done"}
        assert fleet.n_waves == 0


class TestFleetHarnessIdentity:
    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.fpga import FpgaChip
        from repro.harness import UndervoltingExperiment

        def build():
            return {
                (platform, serial): UndervoltingExperiment(
                    FpgaChip.build(platform, serial=serial), runs_per_step=2
                )
                for platform, serial in [
                    ("ZC702", "ZC702-T000"),
                    ("KC705-A", "KC705-A-T000"),
                    ("VC707", "VC707-T000"),
                ]
            }

        return build

    def test_fleet_discovery_bit_identical_to_sequential(self, fleet):
        from repro.harness import discover_guardband_fleet

        sequential = {
            key: experiment.discover_guardband_adaptive(probe_runs=2)
            for key, experiment in fleet().items()
        }
        discovery = discover_guardband_fleet(fleet(), probe_runs=2)
        assert discovery.stats.n_dies == 3
        assert discovery.stats.n_fresh == discovery.stats.n_probes
        assert discovery.stats.n_waves < discovery.stats.n_probes
        for key, reference in sequential.items():
            result = discovery.results[key]
            assert result.measurement == reference.measurement
            assert result.sweep == reference.sweep
            assert result.report.to_dict() == reference.report.to_dict()

    def test_second_pass_over_warm_caches_is_all_hits(self, fleet):
        from repro.harness import discover_guardband_fleet
        from repro.search import EvalCache

        experiments = fleet()
        caches = {
            key: EvalCache(
                platform=experiment.chip.name,
                serial=experiment.chip.spec.serial_number,
            )
            for key, experiment in experiments.items()
        }
        cold = discover_guardband_fleet(experiments, probe_runs=2, caches=caches)
        assert cold.stats.n_cache_hits == 0
        assert cold.stats.n_fresh == cold.stats.n_probes

        rerun = fleet()
        warm = discover_guardband_fleet(rerun, probe_runs=2, caches=caches)
        assert warm.stats.n_fresh == 0
        assert warm.stats.n_cache_hits == warm.stats.n_probes
        for key in experiments:
            assert warm.results[key].measurement == cold.results[key].measurement
            assert warm.results[key].sweep == cold.results[key].sweep

    def test_fleet_kernel_rejects_vccint_and_empty_fleets(self, fleet):
        from repro.fpga.voltage import VCCINT
        from repro.harness import discover_guardband_fleet
        from repro.harness.fleet import FleetProbeKernel
        from repro.harness.sweep import SweepError

        with pytest.raises(SweepError, match="at least one experiment"):
            discover_guardband_fleet({})
        with pytest.raises(SweepError, match="VCCBRAM rail only"):
            FleetProbeKernel(fleet(), rail=VCCINT)
        with pytest.raises(SweepError, match="at least 1"):
            FleetProbeKernel(fleet(), probe_runs=0)
