"""Property-based tests (hypothesis) for the adaptive-search contract.

Three families, matching the invariants the subsystem leans on:

* **monotonicity** — fault counts never decrease as the rail goes down
  (``_int_fault_count`` analytically, the batched chip counts on a real
  die), which is what makes threshold crossings bisectable at all;
* **equivalence** — bisection equals the exhaustive linear scan on random
  grids and random monotone fault maps, with or without (possibly wrong)
  warm-start hints, and the certificate always verifies;
* **round-trip** — random evaluation caches survive the trip through the
  campaign store byte-exactly.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.campaign import CampaignSpec, CampaignStore, ChipGroup
from repro.core.batch import OperatingGrid
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment
from repro.search import (
    BracketHint,
    EvalCache,
    PointEvaluation,
    ThresholdBisector,
    exhaustive_first_false,
)

#: One shared small experiment; every property here is read-only on it.
_EXPERIMENT = None


def experiment():
    global _EXPERIMENT
    if _EXPERIMENT is None:
        _EXPERIMENT = UndervoltingExperiment(FpgaChip.build("ZC702"), runs_per_step=3)
    return _EXPERIMENT


# ----------------------------------------------------------------------
# Monotonicity
# ----------------------------------------------------------------------
class TestMonotonicity:
    @given(
        low=st.floats(min_value=0.30, max_value=1.0),
        high=st.floats(min_value=0.30, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_int_fault_count_monotone_in_voltage(self, low, high):
        if low > high:
            low, high = high, low
        # The probe primitive (and with it the VCCINT fault shape) lives on
        # the experiment's execution backend (repro.exec.SimulatedBackend).
        backend = experiment().engine.backend
        assert backend._int_fault_count(low) >= backend._int_fault_count(high)
        assert backend._int_fault_count(low) >= 0

    @given(data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_chip_counts_monotone_along_descending_grid(self, data):
        """Chip-level counts never drop as VCCBRAM drops (fixed run index)."""
        voltages = sorted(
            data.draw(
                st.lists(
                    st.floats(min_value=0.40, max_value=0.75),
                    min_size=2,
                    max_size=8,
                    unique=True,
                )
            ),
            reverse=True,
        )
        run = data.draw(st.integers(min_value=0, max_value=5))
        pattern = data.draw(st.sampled_from(["FFFF", "AAAA", "5555", "0000"]))
        field = experiment().fault_field
        grid = OperatingGrid.from_axes(voltages, (50.0,), runs=(run,))
        counts = field.batch.chip_counts(grid, pattern)[:, 0, 0]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    @given(runs=st.integers(min_value=1, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_median_over_runs_preserves_monotonicity(self, runs):
        """The int-median of per-run counts is monotone along the ladder."""
        exp = experiment()
        ladder = exp._guardband_ladder(exp.calibration.vnom_v)
        field = exp.fault_field
        grid = OperatingGrid.from_axes(ladder[::4], (50.0,), runs=runs)
        counts = field.batch.chip_counts(grid, "FFFF")
        import numpy as np

        medians = [int(np.median(row)) for row in counts[:, 0, :]]
        assert all(a <= b for a, b in zip(medians, medians[1:]))


# ----------------------------------------------------------------------
# Exhaustive-vs-adaptive equivalence
# ----------------------------------------------------------------------
class TestEquivalenceOnRandomGrids:
    @given(
        n=st.integers(min_value=1, max_value=120),
        boundary_fraction=st.floats(min_value=0.0, max_value=1.0),
        hint_lo=st.one_of(st.none(), st.integers(min_value=-10, max_value=130)),
        hint_hi=st.one_of(st.none(), st.integers(min_value=-10, max_value=130)),
    )
    @settings(max_examples=300, deadline=None)
    def test_bisection_equals_linear_scan(self, n, boundary_fraction, hint_lo, hint_hi):
        ladder = tuple(round(1.0 - 0.01 * i, 4) for i in range(n))
        boundary = round(boundary_fraction * n)

        def predicate(index):
            return index < boundary

        probes = []

        def probe(index):
            probes.append(index)
            return predicate(index), False

        hint = BracketHint(
            above_v=None if hint_hi is None else 1.0 - 0.01 * hint_hi,
            below_v=None if hint_lo is None else 1.0 - 0.01 * hint_lo,
        )
        certificate = ThresholdBisector(ladder, probe).find_first_false(
            "vmin", hint=hint
        )
        assert certificate.boundary_index == exhaustive_first_false(ladder, predicate)
        assert certificate.verify()
        assert len(probes) == len(set(probes)), "no index probed twice"

    @given(
        thresholds=st.lists(
            st.floats(min_value=0.30, max_value=0.99), min_size=0, max_size=60
        ),
        n=st.integers(min_value=2, max_value=90),
    )
    @settings(max_examples=200, deadline=None)
    def test_random_fault_maps_yield_identical_vmin(self, thresholds, n):
        """A random bag of cell failure voltages defines a monotone count."""
        ladder = tuple(round(1.0 - 0.01 * i, 4) for i in range(n))

        def count_at(voltage):
            return sum(1 for t in thresholds if t > voltage)

        def predicate(index):  # fault-free?
            return count_at(ladder[index]) == 0

        def probe(index):
            return predicate(index), False

        certificate = ThresholdBisector(ladder, probe).find_first_false("vmin")
        assert certificate.boundary_index == exhaustive_first_false(ladder, predicate)
        assert certificate.verify()


class TestEquivalenceOnRealDies:
    @given(
        pattern=st.sampled_from(["FFFF", "AAAA", "5555", "0000", "random50"]),
        probe_runs=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_guardband_equivalence_random_pattern_and_runs(self, pattern, probe_runs):
        exp = experiment()
        exhaustive, _ = exp.discover_guardband(pattern=pattern, probe_runs=probe_runs)
        adaptive = exp.discover_guardband_adaptive(
            pattern=pattern, probe_runs=probe_runs
        )
        assert adaptive.measurement == exhaustive
        assert adaptive.report.verify_certificates()


# ----------------------------------------------------------------------
# Cache round-trip through the campaign store
# ----------------------------------------------------------------------
_evaluations = st.builds(
    PointEvaluation,
    voltage_v=st.floats(min_value=0.30, max_value=1.0).map(lambda v: round(v, 4)),
    temperature_c=st.sampled_from([25.0, 50.0, 80.0]),
    rail=st.sampled_from(["VCCBRAM", "VCCINT"]),
    pattern=st.sampled_from(["FFFF", "AAAA", "0000"]),
    n_runs=st.integers(min_value=0, max_value=5),
    counts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=5).map(tuple),
    operational=st.booleans(),
    bram_power_w=st.one_of(st.none(), st.floats(min_value=0.0, max_value=10.0)),
    per_bram_counts=st.one_of(
        st.none(),
        st.lists(st.integers(min_value=0, max_value=99), max_size=8).map(tuple),
    ),
)


class TestCacheStoreRoundTrip:
    @given(entries=st.lists(_evaluations, max_size=25))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_round_trip_preserves_every_entry(self, tmp_path_factory, entries):
        root = tmp_path_factory.mktemp("cache-prop")
        spec = CampaignSpec(
            name="cache-prop",
            groups=(ChipGroup(platform="ZC702", serials=("S1",)),),
            runs_per_step=2,
        )
        store = CampaignStore.open(spec, root)
        cache = EvalCache(platform="ZC702", serial="S1")
        for entry in entries:
            cache.store(entry)
        store.save_eval_cache(cache)
        loaded = store.load_eval_cache("ZC702", "S1")
        assert loaded.entries == cache.entries
