"""Unit tests for fleet-quantile warm starting."""

from repro.search import WarmStartModel


class TestWarmStartModel:
    def test_empty_model_yields_cold_hints(self):
        model = WarmStartModel(step_v=0.01)
        assert model.vmin_hint("ZC702", "VCCBRAM").is_cold
        assert model.vcrash_hint("ZC702", "VCCBRAM").is_cold
        assert model.n_observations == 0

    def test_brackets_span_observations_with_margin(self):
        model = WarmStartModel(step_v=0.01, margin_steps=1)
        model.add("ZC702", "VCCBRAM", 0.61, 0.54)
        model.add("ZC702", "VCCBRAM", 0.60, 0.53)
        vmin = model.vmin_hint("ZC702", "VCCBRAM")
        assert vmin.above_v == 0.61 + 0.01
        assert vmin.below_v == 0.60 - 0.01
        vcrash = model.vcrash_hint("ZC702", "VCCBRAM")
        assert vcrash.above_v == 0.54 + 0.01
        assert vcrash.below_v == 0.53 - 0.01

    def test_same_part_number_takes_precedence_over_pool(self):
        model = WarmStartModel(step_v=0.01)
        model.add("VC707", "VCCBRAM", 0.70, 0.60)
        model.add("ZC702", "VCCBRAM", 0.61, 0.54)
        hint = model.vmin_hint("ZC702", "VCCBRAM")
        assert hint.above_v == 0.61 + 0.01  # ZC702's own data, not the pooled 0.70

    def test_pooled_fallback_for_unknown_platform(self):
        model = WarmStartModel(step_v=0.01)
        model.add("VC707", "VCCBRAM", 0.61, 0.54)
        model.add("ZC702", "VCCBRAM", 0.63, 0.55)
        hint = model.vmin_hint("KC705-A", "VCCBRAM")
        assert not hint.is_cold
        assert hint.above_v == 0.63 + 0.01
        assert hint.below_v == 0.61 - 0.01

    def test_rails_never_mix(self):
        model = WarmStartModel(step_v=0.01)
        model.add("ZC702", "VCCINT", 0.67, 0.60)
        assert model.vmin_hint("ZC702", "VCCBRAM").is_cold
        assert not model.vmin_hint("ZC702", "VCCINT").is_cold

    def test_dict_round_trip(self):
        model = WarmStartModel(step_v=0.01, margin_steps=2)
        model.add("ZC702", "VCCBRAM", 0.61, 0.54)
        model.add("KC705-A", "VCCINT", 0.67, 0.60)
        again = WarmStartModel.from_dict(model.to_dict())
        assert again.step_v == model.step_v
        assert again.margin_steps == model.margin_steps
        assert again.observations == model.observations
