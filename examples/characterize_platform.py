#!/usr/bin/env python3
"""Full Section II characterization of one platform.

Reproduces the four fault-characterization studies on a chosen board:

1. data-pattern dependence (Fig. 4);
2. stability over repeated runs (Table II);
3. per-BRAM variability and k-means vulnerability classes (Fig. 5);
4. the physical Fault Variation Map (Fig. 6), including an ASCII rendering.

Run with:  python examples/characterize_platform.py [PLATFORM]
"""

from __future__ import annotations

import sys

from repro.analysis import render_table
from repro.core import FaultField
from repro.core.characterization import (
    STUDY_PATTERNS,
    flip_direction_study,
    pattern_study,
    stability_study,
    variability_study,
)
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment


def main(platform: str = "KC705-A") -> None:
    chip = FpgaChip.build(platform)
    field = FaultField(chip)
    cal = field.calibration
    vcrash = cal.vcrash_bram_v
    print(f"Characterizing {chip.describe()} at Vcrash = {vcrash:.2f} V\n")

    # 1. Data-pattern dependence.
    patterns = pattern_study(field, vcrash, patterns=STUDY_PATTERNS)
    print(
        render_table(
            ["pattern", "faults per Mbit", "relative to FFFF"],
            [
                (name, patterns.rate(name), patterns.rate(name) / patterns.rate("FFFF"))
                for name in STUDY_PATTERNS
            ],
            title="1) Impact of the initial data pattern (Fig. 4)",
        )
    )
    flips = flip_direction_study(field, vcrash)
    print(
        f"   {100 * flips.one_to_zero_fraction:.1f} % of faults are 1->0 flips "
        "(paper: 99.9 %)\n"
    )

    # 2. Stability over time.
    stability = stability_study(field, vcrash, n_runs=100)
    print(
        render_table(
            ["metric", "faults per Mbit"],
            list(stability.as_table_row().items()),
            title="2) Stability over 100 consecutive runs (Table II)",
        )
    )
    print(f"   fault-location overlap across runs: {stability.location_overlap:.3f}\n")

    # 3. Variability among BRAMs.
    variability = variability_study(field, vcrash)
    print(
        render_table(
            ["metric", "value"],
            [
                ("max per-BRAM rate (%)", variability.max_percent),
                ("min per-BRAM rate (%)", variability.min_percent),
                ("mean per-BRAM rate (%)", variability.mean_percent),
                ("never-faulty BRAMs (%)", 100 * variability.never_faulty_fraction),
                ("Gini coefficient", variability.gini_coefficient()),
            ],
            title="3) Per-BRAM variability (Fig. 5)",
        )
    )

    # 4. Fault Variation Map.
    experiment = UndervoltingExperiment(chip, fault_field=field, runs_per_step=3)
    fvm = experiment.extract_fvm()
    clustering = fvm.clustering()
    print(
        render_table(
            ["class", "BRAMs", "share (%)"],
            [
                (name, clustering.cluster(name).size, 100 * clustering.fraction(name))
                for name in ("low", "mid", "high")
            ],
            title="4) Vulnerability classes over the Fault Variation Map (Fig. 6)",
        )
    )
    print("\nASCII FVM (. low, o mid, # high, blank = empty site):\n")
    print(fvm.ascii_map(chip.floorplan))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "KC705-A")
