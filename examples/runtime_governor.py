#!/usr/bin/env python3
"""Closed-loop runtime undervolting end to end (the PR 4 runtime subsystem).

Walkthrough of serving a quantized-NN inference fleet at its minimum safe
VCCBRAM:

1. characterize a small ZC702 fleet (adaptive guardband discovery, shared
   warm-start) into a governor-ready bundle;
2. train and quantize the case-study network and compile it per die with
   the ICBP last-layer placement;
3. serve a diurnal workload trace — cold night troughs below the 50 degC
   characterization temperature, hot day peaks above it — under all four
   governor policies;
4. compare energy, guardband recovery, uncorrected-fault inferences and
   SLO outcomes, and show the predictive telemetry replays bit-identically.

Run with:  python examples/runtime_governor.py [--fast]
where --fast shrinks the fleet, horizon and training set for a quick smoke
run (used by CI); the full settings mirror the acceptance benchmark's
narrative on a smaller fleet.
"""

from __future__ import annotations

import sys

from repro.analysis import render_table
from repro.analysis.runtime import policy_comparison, summarize_telemetry
from repro.fpga import FpgaChip
from repro.fpga.platform import fleet_serials
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_mnist,
    train_network,
)
from repro.runtime import FleetSimulator, GovernorBundle, POLICY_NAMES, diurnal_trace


def main(fast: bool = False) -> None:
    n_chips, n_steps, n_train = (2, 120, 300) if fast else (4, 480, 2000)

    print(f"Characterizing a {n_chips}-chip ZC702 fleet ...")
    chips = [
        FpgaChip.build("ZC702", serial=serial)
        for serial in fleet_serials("ZC702", n_chips)
    ]
    bundle = GovernorBundle.from_chips(chips, runs_per_step=3)
    for die in bundle:
        print(
            f"  {die.serial}: Vmin {die.vmin_v:.2f} V, Vcrash {die.vcrash_v:.2f} V, "
            f"guardband {100 * die.guardband_fraction:.0f} %"
        )

    print("Training and quantizing the served network ...")
    dataset = synthetic_mnist(n_train=n_train, n_test=300)
    trained = train_network(
        dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3)
    )
    network = QuantizedNetwork.from_network(trained.network)

    trace = diurnal_trace(n_steps=n_steps, seed=7)
    print(
        f"Serving a {n_steps}-step diurnal trace "
        f"({trace.total_requests} arrivals, ambient "
        f"{trace.ambient_c.min():.0f}-{trace.ambient_c.max():.0f} degC) ..."
    )
    simulator = FleetSimulator(bundle, network, trace, capacity_rps=900.0)
    logs = simulator.run_policies()

    nominal_j = simulator.nominal_energy_j()
    floor_j = simulator.guardband_floor_energy_j()
    summaries = {name: summarize_telemetry(log) for name, log in logs.items()}
    rows = policy_comparison(summaries, nominal_j, floor_j, order=POLICY_NAMES)
    print()
    print(render_table(
        ["policy", "mean V", "energy (J)", "guardband recovered %",
         "faulty inferences", "SLO violations"],
        [
            (
                row["policy"],
                round(row["mean_voltage_v"], 4),
                round(row["energy_j"], 2),
                round(100.0 * row["guardband_recovered_fraction"], 2),
                row["faulty_inferences"],
                row["slo_violations"],
            )
            for row in rows
        ],
        title=f"Governor policies on {n_chips} chips ({trace.kind} trace)",
    ))

    digest = logs["predictive"].digest()
    replay = simulator.run("predictive").digest()
    print()
    print(f"Predictive telemetry digest: {digest[:16]} "
          f"(replay {'matches' if replay == digest else 'DIFFERS'})")
    predictive = summaries["predictive"]
    assert predictive.faulty_inferences == 0 and replay == digest
    print(
        "The predictive governor held every die at its ITD-compensated "
        "minimum safe voltage: zero uncorrected-fault inferences at "
        f"{100 * (1 - predictive.energy_j / nominal_j):.1f} % BRAM energy savings."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
