#!/usr/bin/env python3
"""NN accelerator under low-voltage BRAMs (Section III, Figs. 10 and 11).

Trains the (width-scaled) Table III classifier on the synthetic MNIST
benchmark, quantizes it to 16-bit per-layer fixed point, maps the weights
onto the VC707's BRAMs, and then lowers VCCBRAM: the on-chip power breakdown
collapses while the classification error starts to climb once faults appear
below Vmin.

Run with:  python examples/nn_undervolting.py [--fast]
where --fast shrinks the training set and seed count for a quick smoke
run (used by CI); the full settings reproduce the Figs. 10/11 numbers.
"""

from __future__ import annotations

import sys

from repro.accelerator import AcceleratorPowerModel, NnAccelerator, mean_error_sweep
from repro.analysis import render_table
from repro.core import FaultField
from repro.fpga import FpgaChip
from repro.nn import QuantizedNetwork, SCALED_TOPOLOGY, TrainingConfig, synthetic_mnist, train_network


def main(fast: bool = False) -> None:
    n_train, n_test, n_seeds = (600, 300, 1) if fast else (6000, 1500, 4)
    # Offline training (the FPGA only runs inference).
    dataset = synthetic_mnist(n_train=n_train, n_test=n_test)
    print(f"Training the classifier on {dataset.name}: {dataset.summary()}")
    result = train_network(dataset, topology=SCALED_TOPOLOGY, config=TrainingConfig(seed=3))
    network = QuantizedNetwork.from_network(result.network)
    baseline = network.classification_error(dataset.test_inputs, dataset.test_labels)
    print(
        f"Trained float test error {100 * result.test_error:.2f} %, quantized "
        f"{100 * baseline:.2f} %, {100 * network.zero_bit_fraction():.1f} % of weight bits are zero\n"
    )

    chip = FpgaChip.build("VC707")
    field = FaultField(chip)
    cal = field.calibration
    accelerator = NnAccelerator(chip=chip, network=network, fault_field=field)
    utilization = accelerator.utilization()
    print(
        f"Mapped {accelerator.mapping.n_logical_brams} weight BRAMs onto {chip.name} "
        f"({utilization.percent('BRAM'):.1f} % of the BRAM pool)\n"
    )

    # Power breakdown at the three operating points of Fig. 10.
    power = AcceleratorPowerModel(chip=chip, bram_utilization=utilization.fraction("BRAM"))
    rows = []
    for label, voltage in (("Vnom", cal.vnom_v), ("Vmin", cal.vmin_bram_v), ("Vcrash", cal.vcrash_bram_v)):
        breakdown = power.breakdown_w(voltage)
        rows.append(
            (
                f"{label} ({voltage:.2f} V)",
                breakdown["bram"],
                sum(breakdown.values()) - breakdown["bram"],
                sum(breakdown.values()),
                100 * power.total_reduction_fraction(voltage),
            )
        )
    print(
        render_table(
            ["operating point", "BRAM (W)", "rest (W)", "total (W)", "total saving (%)"],
            rows,
            title="On-chip power breakdown (Fig. 10)",
        )
    )

    # Classification error versus voltage (Fig. 11), averaged over compilations.
    voltages = [round(cal.vmin_bram_v - 0.01 * i, 3) for i in range(8)]
    voltages = [v for v in voltages if v >= cal.vcrash_bram_v - 1e-9]
    points = mean_error_sweep(
        chip, network, dataset, voltages,
        compile_seeds=range(n_seeds), fault_field=field, max_samples=n_test,
    )
    print()
    print(
        render_table(
            ["VCCBRAM (V)", "error (%)", "weight bit faults"],
            [(p.voltage_v, 100 * p.classification_error, p.weight_faults) for p in points],
            title="Classification error vs VCCBRAM (Fig. 11)",
        )
    )
    print(
        "\nThe error stays at the inherent level down to Vmin and then rises with the "
        "exponentially growing fault rate; see examples/icbp_mitigation.py for the fix."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
