#!/usr/bin/env python3
"""Heat-chamber study: the Inverse Thermal Dependence effect (Fig. 8).

Places a board in the simulated heat chamber, sweeps the critical voltage
region at 50/60/70/80 degC, and shows that hotter silicon faults *less* under
aggressive undervolting — by more than 3x on the performance-optimized VC707
between 50 and 80 degC, and more weakly on the power-optimized KC705.

Run with:  python examples/temperature_study.py [PLATFORM]
"""

from __future__ import annotations

import sys

from repro.analysis import render_table
from repro.core.temperature import STUDY_TEMPERATURES_C
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment


def main(platform: str = "VC707") -> None:
    chip = FpgaChip.build(platform)
    experiment = UndervoltingExperiment(chip, runs_per_step=5)
    print(f"Temperature study on {chip.describe()}")
    print(f"Chamber setpoints: {', '.join(f'{t:.0f} degC' for t in STUDY_TEMPERATURES_C)}\n")

    sweeps = experiment.temperature_sweep(STUDY_TEMPERATURES_C, n_runs=5)

    voltages = sweeps[STUDY_TEMPERATURES_C[0]].voltages()
    rows = []
    for index, voltage in enumerate(voltages):
        rows.append(
            (voltage, *[sweeps[t].fault_rates_per_mbit()[index] for t in STUDY_TEMPERATURES_C])
        )
    print(
        render_table(
            ["VCCBRAM (V)"] + [f"{t:.0f} degC" for t in STUDY_TEMPERATURES_C],
            rows,
            title="Fault rate (per Mbit) vs voltage and temperature (Fig. 8)",
        )
    )

    cold = sweeps[50.0].fault_rates_per_mbit()[-1]
    hot = sweeps[80.0].fault_rates_per_mbit()[-1]
    print(
        f"\nAt Vcrash the fault rate falls from {cold:.0f} to {hot:.0f} per Mbit "
        f"({cold / max(hot, 1e-9):.1f}x) when heating from 50 to 80 degC."
    )
    print(
        "This is the Inverse Thermal Dependence property: near the threshold "
        "voltage, higher temperature lowers the threshold and lets the bitcells "
        "switch faster, so fewer paths miss timing."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "VC707")
