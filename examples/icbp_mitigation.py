#!/usr/bin/env python3
"""ICBP mitigation end to end (Section III-C, Figs. 12-14).

For each of the three paper benchmarks (synthetic MNIST, Forest, Reuters):

1. train and quantize the classifier;
2. extract the chip's Fault Variation Map and the per-layer vulnerability;
3. compile the accelerator with the default placement and with ICBP
   (the most sensitive layer constrained to low-vulnerable BRAMs);
4. run both at Vcrash and compare the accuracy loss at identical power.

Run with:  python examples/icbp_mitigation.py [--fast]
where --fast shrinks the training sets and seed count for a quick smoke
run (used by CI); the full settings reproduce the Fig. 14 numbers.
"""

from __future__ import annotations

import sys

from repro.accelerator import IcbpFlow, PlacementPolicy
from repro.analysis import render_table
from repro.core import FaultField
from repro.fpga import FpgaChip
from repro.nn import (
    QuantizedNetwork,
    SCALED_TOPOLOGY,
    TrainingConfig,
    synthetic_forest,
    synthetic_mnist,
    synthetic_reuters,
    train_network,
)

BENCHMARKS = {
    "MNIST": (synthetic_mnist, SCALED_TOPOLOGY),
    "Forest": (synthetic_forest, (54, 64, 48, 32, 16, 7)),
    "Reuters": (synthetic_reuters, (1000, 128, 64, 48, 32, 8)),
}


def main(fast: bool = False) -> None:
    n_train, n_test, n_seeds = (600, 300, 1) if fast else (6000, 1000, 4)
    chip = FpgaChip.build("VC707")
    field = FaultField(chip)
    rows = []
    for name, (loader, topology) in BENCHMARKS.items():
        dataset = loader(n_train=n_train, n_test=n_test)
        print(f"Training on {dataset.name} ...")
        result = train_network(dataset, topology=topology, config=TrainingConfig(seed=3))
        network = QuantizedNetwork.from_network(result.network)

        flow = IcbpFlow(
            chip=chip, network=network, dataset=dataset, fault_field=field, max_eval_samples=n_test
        )
        vulnerability = flow.analyze_vulnerability()
        most_sensitive = vulnerability.most_vulnerable_first()[0]
        print(
            f"  most vulnerable layer: Layer{most_sensitive} "
            f"(normalized vulnerability {vulnerability.normalized()[most_sensitive]:.1f})"
        )

        comparison = flow.compare_policies(compile_seeds=range(n_seeds))
        default = comparison[PlacementPolicy.DEFAULT]
        icbp = comparison[PlacementPolicy.LAST_LAYER]
        rows.append(
            (
                name,
                100 * default.baseline_error,
                100 * default.accuracy_loss,
                100 * icbp.accuracy_loss,
                100 * icbp.power_savings_vs_vmin,
                str(list(icbp.protected_layers)),
            )
        )

    print()
    print(
        render_table(
            [
                "benchmark",
                "baseline error (%)",
                "default-placement loss (%)",
                "ICBP loss (%)",
                "power saved vs Vmin (%)",
                "protected layers",
            ],
            rows,
            title="ICBP vs default placement at Vcrash on VC707 (Fig. 14)",
        )
    )
    print(
        "\nBoth placements dissipate the same power — ICBP only changes *which* physical "
        "BRAMs hold the most sensitive weights, so the accuracy loss shrinks to almost "
        "nothing at no timing, area or power cost."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
