#!/usr/bin/env python3
"""Quickstart: undervolt one FPGA board and look at the consequences.

Builds a VC707 board model, discovers its VCCBRAM guardband the way the paper
does (sweep down from nominal until the design crashes), then walks the
critical region between Vmin and Vcrash reporting the fault rate and the BRAM
power at every 10 mV step.

Run with:  python examples/quickstart.py [PLATFORM]
where PLATFORM is one of VC707, ZC702, KC705-A, KC705-B (default VC707).
"""

from __future__ import annotations

import sys

from repro.analysis import render_table
from repro.fpga import FpgaChip
from repro.harness import UndervoltingExperiment


def main(platform: str = "VC707") -> None:
    chip = FpgaChip.build(platform)
    print(f"Board under test: {chip.describe()}")

    experiment = UndervoltingExperiment(chip, runs_per_step=11)

    # Step 1 - discover the voltage guardband (Fig. 1).
    measurement, _ = experiment.discover_guardband()
    print(
        f"\nVCCBRAM guardband: nominal {measurement.nominal_v:.2f} V, "
        f"Vmin {measurement.vmin_v:.2f} V, Vcrash {measurement.vcrash_v:.2f} V "
        f"({100 * measurement.guardband_fraction:.0f} % below nominal)"
    )
    print(
        f"BRAM power at Vmin is {measurement.power_reduction_factor_at_vmin:.1f}x "
        "lower than at the nominal voltage, with no faults observed."
    )

    # Step 2 - characterize the critical region (Listing 1 / Fig. 3).
    sweep = experiment.critical_region_sweep(n_runs=11)
    rows = [
        (step.voltage_v, step.median_fault_rate_per_mbit, step.bram_power_w)
        for step in sweep.steps
    ]
    print()
    print(
        render_table(
            ["VCCBRAM (V)", "faults per Mbit", "BRAM power (W)"],
            rows,
            title=f"Critical-region sweep of {platform} (pattern 0xFFFF)",
        )
    )

    crash_rate = sweep.fault_rates_per_mbit()[-1]
    print(
        f"\nAt Vcrash the chip shows {crash_rate:.0f} faults per Mbit; "
        "between Vmin and Vcrash the fault rate grows exponentially while the "
        "BRAM power keeps falling — the trade-off the paper characterizes."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "VC707")
