"""Reporting helpers: summary statistics, fleet aggregation, ASCII tables."""

from .fleet import (
    DEFAULT_PERCENTILES,
    FleetDistribution,
    PairSimilarity,
    evaluation_totals,
    fleet_percentiles,
    fvm_similarity,
    population_summary,
    similarity_extremes,
)
from .report import ExperimentReport, ReportError, Section
from .runtime import (
    RuntimeSummary,
    guardband_recovery_fraction,
    policy_comparison,
    summarize_telemetry,
)
from .stats import (
    StatsError,
    Summary,
    fit_exponential_rate,
    geometric_mean,
    relative_change,
    summarize,
)
from .tables import TableError, format_value, render_kv, render_table

__all__ = [
    "DEFAULT_PERCENTILES",
    "ExperimentReport",
    "FleetDistribution",
    "PairSimilarity",
    "ReportError",
    "RuntimeSummary",
    "Section",
    "StatsError",
    "Summary",
    "TableError",
    "evaluation_totals",
    "fit_exponential_rate",
    "fleet_percentiles",
    "format_value",
    "fvm_similarity",
    "geometric_mean",
    "guardband_recovery_fraction",
    "policy_comparison",
    "population_summary",
    "relative_change",
    "render_kv",
    "render_table",
    "similarity_extremes",
    "summarize",
    "summarize_telemetry",
]
