"""Reporting helpers: summary statistics, ASCII tables, experiment reports."""

from .report import ExperimentReport, ReportError, Section
from .stats import (
    StatsError,
    Summary,
    fit_exponential_rate,
    geometric_mean,
    relative_change,
    summarize,
)
from .tables import TableError, format_value, render_kv, render_table

__all__ = [
    "ExperimentReport",
    "ReportError",
    "Section",
    "StatsError",
    "Summary",
    "TableError",
    "fit_exponential_rate",
    "format_value",
    "geometric_mean",
    "relative_change",
    "render_kv",
    "render_table",
    "summarize",
]
