"""Experiment-result containers with simple serialization.

Benches and examples produce structured results; this module gives them a
uniform container that can be rendered as text (for the console) and as a
plain dictionary (for JSON dumps next to ``bench_output.txt``), without any
third-party dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .tables import render_table


class ReportError(ValueError):
    """Raised for malformed report sections."""


@dataclass
class Section:
    """One table of an experiment report."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row, validating the column count."""
        if len(cells) != len(self.headers):
            raise ReportError(
                f"section {self.title!r} expects {len(self.headers)} columns, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-form note rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Text rendering of the section."""
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  * {note}" for note in self.notes)
        return text


@dataclass
class ExperimentReport:
    """A named collection of sections for one paper artefact (table/figure)."""

    experiment_id: str
    description: str
    sections: List[Section] = field(default_factory=list)

    def new_section(self, title: str, headers: Sequence[str]) -> Section:
        """Create, register and return a new section."""
        section = Section(title=title, headers=list(headers))
        self.sections.append(section)
        return section

    def render(self) -> str:
        """Full text rendering of the report."""
        header = f"== {self.experiment_id}: {self.description} =="
        body = "\n\n".join(section.render() for section in self.sections)
        return f"{header}\n{body}" if body else header

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for JSON serialization."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "sections": [
                {
                    "title": section.title,
                    "headers": section.headers,
                    "rows": section.rows,
                    "notes": section.notes,
                }
                for section in self.sections
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON rendering (all cells must be JSON-serializable)."""
        return json.dumps(self.to_dict(), indent=indent, default=str)
