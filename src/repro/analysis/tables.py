"""ASCII table rendering for benchmark and example output.

The benchmarks regenerate the paper's tables and figure series as text; this
module provides one consistent renderer so every bench prints comparable,
aligned output without depending on third-party table libraries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class TableError(ValueError):
    """Raised for inconsistent table shapes."""


def format_value(value: object, float_digits: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_digits: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a separator under the header."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [format_value(cell, float_digits) for cell in row]
        if len(cells) != len(headers):
            raise TableError(
                f"row has {len(cells)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append(cells)

    widths = [len(str(h)) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(cells) for cells in rendered_rows)
    return "\n".join(parts)


def render_kv(title: str, pairs: Sequence[Sequence[object]], float_digits: int = 3) -> str:
    """Render a two-column key/value block."""
    return render_table(["metric", "value"], pairs, float_digits=float_digits, title=title)
