"""Population statistics over fleets of chips.

The paper's cross-board findings — guardbands in a narrow band across four
boards, a 4.1x fault-rate ratio between two same-part-number dies — are
statements about *populations*.  The campaign subsystem
(:mod:`repro.campaign`) produces per-chip results for arbitrary fleets; this
module provides the aggregation layer: distribution summaries with
percentiles for any per-chip metric, and pairwise Fault-Variation-Map
similarity between dies sharing a part number (the Fig. 7 comparison,
generalized from one pair to ``n*(n-1)/2`` pairs).

Everything here is deliberately decoupled from the campaign store: inputs
are plain sequences and mappings, so single-board studies and ad-hoc scripts
can use the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.fvm import FaultVariationMap
from repro.search import merge_search_documents

from .stats import StatsError, Summary, summarize

#: Percentiles reported for fleet distributions, in order.
DEFAULT_PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)


def fleet_percentiles(
    values: Sequence[float], percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[str, float]:
    """Named percentiles (``"p5"`` ... ``"p95"``) of a per-chip metric."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise StatsError("cannot take percentiles of an empty fleet")
    points = np.percentile(array, list(percentiles))
    return {f"p{q:g}": float(v) for q, v in zip(percentiles, points)}


@dataclass(frozen=True)
class FleetDistribution:
    """Distribution of one metric across a fleet of chips."""

    metric: str
    summary: Summary
    percentiles: Dict[str, float]

    @classmethod
    def from_values(
        cls,
        metric: str,
        values: Sequence[float],
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> "FleetDistribution":
        """Summarize one metric over the fleet."""
        return cls(
            metric=metric,
            summary=summarize(values),
            percentiles=fleet_percentiles(values, percentiles),
        )

    @property
    def spread_fraction(self) -> float:
        """Max-to-min spread relative to the fleet mean (0 for a flat fleet)."""
        if self.summary.mean == 0:
            return 0.0
        return (self.summary.maximum - self.summary.minimum) / abs(self.summary.mean)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary: summary fields plus the percentile points."""
        payload = self.summary.as_dict()
        payload.update(self.percentiles)
        payload["spread_fraction"] = self.spread_fraction
        return payload


def population_summary(
    metric_values: Mapping[str, Sequence[float]],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[str, FleetDistribution]:
    """One :class:`FleetDistribution` per named metric."""
    return {
        metric: FleetDistribution.from_values(metric, values, percentiles)
        for metric, values in metric_values.items()
    }


# ----------------------------------------------------------------------
# Evaluation accounting across a fleet
# ----------------------------------------------------------------------
def evaluation_totals(search_documents) -> Dict[str, object]:
    """Fleet-wide evaluations-saved accounting over per-unit search records.

    ``search_documents`` is an iterable of the ``search`` dictionaries stored
    in campaign unit summaries (empty dictionaries — e.g. units written
    before the adaptive subsystem existed — are skipped).  Returns totals
    plus the derived ``saved_fraction`` and ``speedup_factor`` the fleet
    reports and the adaptive-search benchmark publish.
    """
    return merge_search_documents(search_documents)


def evaluation_totals_from_counts(
    n_units: int,
    n_evaluations: int,
    n_cache_hits: int,
    n_exhaustive_equivalent: int,
) -> Dict[str, object]:
    """The :func:`evaluation_totals` document from pre-summed counters.

    The v2 columnar campaign store keeps the search counters as integer
    columns and sums them without re-opening any per-unit summary; this
    builds the identical totals document (same derived ``saved_fraction``
    and ``speedup_factor`` arithmetic as
    :func:`repro.search.merge_search_documents`) from those sums.
    """
    totals: Dict[str, object] = {
        "n_units": int(n_units),
        "n_evaluations": int(n_evaluations),
        "n_cache_hits": int(n_cache_hits),
        "n_exhaustive_equivalent": int(n_exhaustive_equivalent),
    }
    saved = max(0, int(n_exhaustive_equivalent) - int(n_evaluations))
    totals["evaluations_saved"] = saved
    totals["saved_fraction"] = (
        saved / int(n_exhaustive_equivalent) if int(n_exhaustive_equivalent) > 0 else 0.0
    )
    totals["speedup_factor"] = (
        int(n_exhaustive_equivalent) / int(n_evaluations)
        if int(n_evaluations) > 0
        else 0.0
    )
    return totals


# ----------------------------------------------------------------------
# FVM similarity between same-part-number dies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairSimilarity:
    """Fig. 7-style comparison of two dies sharing a part number."""

    platform: str
    serial_a: str
    serial_b: str
    rate_ratio: float
    count_correlation: float
    high_class_jaccard: float

    def as_dict(self) -> Dict[str, object]:
        """JSON form of the pair comparison.

        A non-finite rate ratio (one die fault-free) maps to ``null`` so the
        document stays strict JSON — ``json.dumps`` would otherwise emit the
        non-standard ``Infinity`` token.
        """
        return {
            "platform": self.platform,
            "serial_a": self.serial_a,
            "serial_b": self.serial_b,
            "rate_ratio": self.rate_ratio if np.isfinite(self.rate_ratio) else None,
            "count_correlation": self.count_correlation,
            "high_class_jaccard": self.high_class_jaccard,
        }


def fvm_similarity(
    maps_by_serial: Mapping[str, FaultVariationMap], platform: str
) -> List[PairSimilarity]:
    """Pairwise FVM similarity across one platform's fleet.

    Serials are compared in sorted order, each unordered pair once, and the
    ``rate_ratio`` is normalized to >= 1 so it reads as "the hotter die shows
    N times the faults of the cooler die" regardless of pair orientation; a
    pair where one die shows no faults at all is ``inf`` either way around.
    """
    pairs: List[PairSimilarity] = []
    for serial_a, serial_b in combinations(sorted(maps_by_serial), 2):
        comparison = maps_by_serial[serial_a].compare(maps_by_serial[serial_b])
        ratio = comparison["rate_ratio"]
        if ratio == 0:
            ratio = float("inf")
        elif np.isfinite(ratio) and ratio < 1.0:
            ratio = 1.0 / ratio
        pairs.append(
            PairSimilarity(
                platform=platform,
                serial_a=serial_a,
                serial_b=serial_b,
                rate_ratio=float(ratio),
                count_correlation=comparison["count_correlation"],
                high_class_jaccard=comparison["high_class_jaccard"],
            )
        )
    return pairs


def similarity_extremes(pairs: Sequence[PairSimilarity]) -> Dict[str, Optional[float]]:
    """Headline numbers over a set of pair comparisons.

    The paper's die-to-die claim generalizes to: large rate ratios, near-zero
    map correlation, and little overlap of the high-vulnerable sets — even
    across a whole fleet of identical part numbers.  The ratio entries are
    ``None`` when no pair has a finite ratio (every comparison involved a
    fault-free die), keeping the JSON form strict.
    """
    if not pairs:
        raise StatsError("no die pairs to summarize")
    ratios = [p.rate_ratio for p in pairs if np.isfinite(p.rate_ratio)]
    correlations = [abs(p.count_correlation) for p in pairs]
    jaccards = [p.high_class_jaccard for p in pairs]
    return {
        "n_pairs": float(len(pairs)),
        "max_rate_ratio": float(max(ratios)) if ratios else None,
        "median_rate_ratio": float(np.median(ratios)) if ratios else None,
        "max_abs_correlation": float(max(correlations)),
        "max_high_class_jaccard": float(max(jaccards)),
    }
