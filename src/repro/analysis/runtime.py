"""Energy, accuracy and SLO summaries over runtime telemetry.

The runtime subsystem (:mod:`repro.runtime`) logs per-step, per-chip
telemetry; this module is its aggregation layer, deliberately decoupled the
same way :mod:`repro.analysis.fleet` is decoupled from the campaign store:
inputs are plain telemetry *documents* (the JSON form of
:class:`repro.runtime.telemetry.TelemetryLog`, or any object exposing
``to_document()``), so saved runs, live runs and ad-hoc scripts all
summarize through one code path.

The headline metric is the **guardband recovery fraction**: of the BRAM
power the static guardband wastes (nominal-voltage energy minus the energy
of parking every die at its characterized Vmin), how much did a policy
actually recover?  The acceptance benchmark requires the predictive
governor to recover at least 60 % of it with zero uncorrected-fault
inferences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .stats import StatsError


def _telemetry_fields(telemetry: Any) -> Dict[str, Any]:
    """Normalize a telemetry input without a serialization round trip.

    A live :class:`~repro.runtime.telemetry.TelemetryLog` already holds its
    arrays in memory — read them directly; a document mapping (a saved run)
    is converted on the fly.  Both paths land on the same field names, so
    there is exactly one aggregation implementation below.
    """
    if hasattr(telemetry, "arrays") and hasattr(telemetry, "trace"):
        return {
            "policy": telemetry.policy,
            "trace": telemetry.trace,
            "n_actuations": telemetry.n_actuations,
            "arrays": dict(telemetry.arrays),
        }
    if isinstance(telemetry, Mapping):
        return {
            "policy": telemetry["policy"],
            "trace": telemetry["trace"],
            "n_actuations": telemetry.get("n_actuations", 0),
            "arrays": {
                name: np.asarray(values)
                for name, values in telemetry["arrays"].items()
            },
        }
    raise StatsError(
        "telemetry must be a document mapping or a TelemetryLog-like object"
    )


@dataclass(frozen=True)
class RuntimeSummary:
    """Fleet-wide outcome of one policy over one trace.

    Attributes
    ----------
    policy:
        Governor policy name.
    n_chips / n_steps:
        Fleet and horizon sizes.
    requests:
        Total inference arrivals of the trace.
    served:
        Inferences actually completed.
    faulty_inferences:
        Inferences served while the accelerator's weight BRAMs carried an
        uncorrected fault (the zero-tolerance acceptance metric).
    slo_violations:
        Arrivals that missed service: routed to no operational chip, or
        beyond a chip's per-step capacity.
    crash_steps:
        Chip-steps spent down or rebooting after a crash.
    n_actuations:
        ``VOUT_COMMAND`` writes the governor issued.
    energy_j / mean_bram_power_w / mean_voltage_v:
        Fleet BRAM-rail energy and its per-step averages.
    """

    policy: str
    n_chips: int
    n_steps: int
    requests: int
    served: int
    faulty_inferences: int
    slo_violations: int
    crash_steps: int
    n_actuations: int
    energy_j: float
    mean_bram_power_w: float
    mean_voltage_v: float

    @property
    def served_fraction(self) -> float:
        """Fraction of arrivals served (the availability metric)."""
        if self.requests == 0:
            return 1.0
        return self.served / self.requests

    @property
    def faulty_fraction(self) -> float:
        """Fraction of served inferences carrying uncorrected faults."""
        if self.served == 0:
            return 0.0
        return self.faulty_inferences / self.served

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (flat scalars plus the derived fractions)."""
        return {
            "policy": self.policy,
            "n_chips": self.n_chips,
            "n_steps": self.n_steps,
            "requests": self.requests,
            "served": self.served,
            "served_fraction": self.served_fraction,
            "faulty_inferences": self.faulty_inferences,
            "faulty_fraction": self.faulty_fraction,
            "slo_violations": self.slo_violations,
            "crash_steps": self.crash_steps,
            "n_actuations": self.n_actuations,
            "energy_j": self.energy_j,
            "mean_bram_power_w": self.mean_bram_power_w,
            "mean_voltage_v": self.mean_voltage_v,
        }


def summarize_telemetry(telemetry: Any) -> RuntimeSummary:
    """Condense one run's telemetry into a :class:`RuntimeSummary`."""
    fields = _telemetry_fields(telemetry)
    arrays = fields["arrays"]
    n_chips, n_steps = arrays["voltages_v"].shape
    requests = int(fields["trace"].get("total_requests", arrays["assigned"].sum()))
    assigned = int(arrays["assigned"].sum())
    served = int(arrays["served"].sum())
    # Arrivals nobody was up to take, plus over-capacity spill at the chips.
    slo_violations = (requests - assigned) + (assigned - served)
    return RuntimeSummary(
        policy=str(fields["policy"]),
        n_chips=int(n_chips),
        n_steps=int(n_steps),
        requests=requests,
        served=served,
        faulty_inferences=int(arrays["faulty"].sum()),
        slo_violations=int(slo_violations),
        crash_steps=int(arrays["crashed"].sum()),
        n_actuations=int(fields["n_actuations"]),
        energy_j=float(arrays["energy_j"].sum()),
        mean_bram_power_w=float(arrays["bram_power_w"].mean()),
        mean_voltage_v=float(arrays["voltages_v"].mean()),
    )


def guardband_recovery_fraction(
    summary: RuntimeSummary,
    nominal_energy_j: float,
    floor_energy_j: float,
) -> float:
    """Share of the static guardband's wasted power a policy recovered.

    ``nominal_energy_j`` is the fleet's energy with every rail at nominal
    over the same horizon; ``floor_energy_j`` the energy with every rail
    parked at its characterized Vmin (the "static guardband" potential).  A
    thermal-headroom-aware policy can exceed 1.0 by undervolting below the
    characterized Vmin on hot silicon.
    """
    wasted = nominal_energy_j - floor_energy_j
    if wasted <= 0:
        raise StatsError(
            "nominal energy must exceed the guardband floor to define recovery"
        )
    return (nominal_energy_j - summary.energy_j) / wasted


def policy_comparison(
    summaries: Mapping[str, RuntimeSummary],
    nominal_energy_j: float,
    floor_energy_j: float,
    order: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Side-by-side policy rows (the ``runtime`` CLI/benchmark table).

    Each row is a summary's flat dictionary plus its
    ``guardband_recovered_fraction``; ``order`` fixes the row order
    (defaults to mapping order).
    """
    names = list(summaries) if order is None else list(order)
    rows: List[Dict[str, Any]] = []
    for name in names:
        summary = summaries[name]
        row = summary.to_dict()
        row["guardband_recovered_fraction"] = guardband_recovery_fraction(
            summary, nominal_energy_j, floor_energy_j
        )
        rows.append(row)
    return rows
