"""Summary statistics shared by the experiments and benchmarks.

Small, dependency-light helpers: robust summaries of repeated measurements
(the paper reports medians of 100 runs), exponential-fit diagnostics for the
fault-rate curves, and relative-change helpers used when comparing the
reproduction's numbers against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


class StatsError(ValueError):
    """Raised for degenerate statistical inputs."""


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a repeated measurement."""

    mean: float
    median: float
    minimum: float
    maximum: float
    std_dev: float
    n: int

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form, convenient for table rows."""
        return {
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std_dev,
            "n": float(self.n),
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sequence of repeated measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise StatsError("cannot summarize an empty sequence")
    return Summary(
        mean=float(array.mean()),
        median=float(np.median(array)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        std_dev=float(array.std()),
        n=int(array.size),
    )


def relative_change(measured: float, reference: float) -> float:
    """Relative deviation of a measured value from a reference value."""
    if reference == 0:
        raise StatsError("reference value must be non-zero")
    return (measured - reference) / reference


def fit_exponential_rate(voltages: Sequence[float], rates: Sequence[float]) -> Tuple[float, float]:
    """Fit ``rate = a * exp(-k * voltage)`` to positive-rate sweep points.

    Returns ``(k, r_squared)`` of a least-squares line through
    ``log(rate)`` versus voltage.  Used by tests and benches to confirm the
    measured fault-rate curves are exponential, as the paper reports.
    """
    voltages = np.asarray(list(voltages), dtype=float)
    rates = np.asarray(list(rates), dtype=float)
    mask = rates > 0
    if mask.sum() < 3:
        raise StatsError("need at least three positive-rate points for an exponential fit")
    x = voltages[mask]
    y = np.log(rates[mask])
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = y - predicted
    total = y - y.mean()
    denom = float((total**2).sum())
    r_squared = 1.0 - float((residual**2).sum()) / denom if denom > 0 else 1.0
    return float(-slope), r_squared


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for cross-platform factors)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise StatsError("cannot take the geometric mean of nothing")
    if (array <= 0).any():
        raise StatsError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))
