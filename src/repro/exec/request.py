"""The evaluation request: one operating point, one question.

Every fault-field evaluation the reproduction performs — a guardband-walk
probe, a critical-region voltage step, an FVM per-BRAM column — asks the
same underlying question: *what does this die show at this operating
point?*  :class:`EvalRequest` is the frozen descriptor of that question;
the backends in :mod:`repro.exec.backends` answer it with a
:class:`~repro.search.PointEvaluation`, and the
:class:`~repro.exec.engine.ExecutionEngine` decides where and how the
answer is computed (cache, simulation, replay; serial or parallel).

Three request kinds cover every driver in the codebase:

``probe``
    One step of the Fig. 1 guardband-discovery walk: program the rail,
    count faults over ``n_runs`` read-back passes while the design
    operates, read the rail power.  Mutates the (simulated) hardware, so
    probes always execute inline, never on worker threads or processes.
``region``
    One voltage step of the Listing 1 critical-region sweep: chip-level
    fault counts over the run axis plus the rail power, computed purely
    from the fault field.  Parallelizes freely.
``fvm``
    One voltage row of a Fault Variation Map: the per-BRAM count vector
    under the batch engine's no-run-axis convention (``n_runs = 0``).
    Parallelizes freely.

``pattern`` keeps the caller's original ``str | int`` value (the fault
model accepts both spellings and they are *not* interchangeable once
stringified: ``str(0xFFFF)`` is ``"65535"``, which the pattern parser
would read as hex).  Cache keys always use ``str(pattern)``, matching the
:func:`repro.search.point_key` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


class ExecError(RuntimeError):
    """Raised for invalid requests, backends or engine configurations."""


#: Request kinds (see the module docstring).
PROBE = "probe"
REGION = "region"
FVM = "fvm"
REQUEST_KINDS: Tuple[str, ...] = (PROBE, REGION, FVM)


@dataclass(frozen=True)
class EvalRequest:
    """One fault-field evaluation to perform at one operating point."""

    kind: str
    rail: str
    voltage_v: float
    temperature_c: float
    pattern: Union[str, int]
    n_runs: int

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ExecError(
                f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}"
            )
        object.__setattr__(self, "voltage_v", float(self.voltage_v))
        object.__setattr__(self, "temperature_c", float(self.temperature_c))
        object.__setattr__(self, "n_runs", int(self.n_runs))
        if self.kind == FVM:
            if self.n_runs != 0:
                raise ExecError("fvm requests use the no-run-axis convention (n_runs = 0)")
        elif self.n_runs < 1:
            raise ExecError(f"{self.kind} requests need at least one run")

    @property
    def pattern_text(self) -> str:
        """The cache-key spelling of the pattern (``str(pattern)``)."""
        return str(self.pattern)


__all__ = ["ExecError", "EvalRequest", "FVM", "PROBE", "REGION", "REQUEST_KINDS"]
