"""The execution engine's scheduling substrate: serial / thread / process.

One small abstraction owns every "fan work out over workers" decision in
the codebase: :class:`WorkScheduler` runs a list of task invocations under
a chosen scheduler with a bounded in-flight queue and returns results in
**submission order**, no matter in which order workers finish.  The
:class:`~repro.exec.engine.ExecutionEngine` shards evaluation-request
chunks through it, and :func:`repro.campaign.runner.run_campaign` shards
per-die unit groups through the same code path — so campaigns and
single-chip sweeps share one scheduling implementation instead of each
growing their own pool management.

Determinism contract: scheduling can change *when* a task runs, never
*what* it computes or where its result lands.  ``on_result`` callbacks
fire in completion order (that is what progress reporting wants); the
returned list is always in submission order (that is what result
consumers want).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import trace as obs_trace

from .request import ExecError

#: The three scheduling substrates every ``--backend``-aware layer accepts.
SCHEDULERS: Tuple[str, ...] = ("serial", "thread", "process")

#: In-flight submissions per worker when no explicit queue depth is given.
#: Bounding the queue keeps memory flat for huge request lists while still
#: hiding per-task latency behind the next submission.
DEFAULT_QUEUE_FACTOR = 2


def validate_scheduler(scheduler: str) -> str:
    """Normalize and validate a scheduler knob value."""
    normalized = str(scheduler).strip().lower()
    if normalized not in SCHEDULERS:
        raise ExecError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    return normalized


def process_context() -> Optional[multiprocessing.context.BaseContext]:
    """Fork context where available (inherits ``sys.path`` and warm module
    state, which is what makes single-chip process sharding affordable);
    ``None`` falls back to the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


@dataclass
class WorkScheduler:
    """Run task batches serially, on threads, or on worker processes.

    Parameters
    ----------
    scheduler:
        One of :data:`SCHEDULERS`.
    jobs:
        Worker count for the parallel schedulers; ignored serially.
    queue_depth:
        Maximum in-flight submissions; defaults to
        ``DEFAULT_QUEUE_FACTOR * jobs``.
    """

    scheduler: str = "serial"
    jobs: int = 1
    queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        self.scheduler = validate_scheduler(self.scheduler)
        if self.jobs < 1:
            raise ExecError("jobs must be at least 1")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ExecError("queue_depth must be at least 1")
        #: Long-lived worker pool while used as a context manager; outside
        #: one, every :meth:`map_tasks` call builds and tears its own pool
        #: down so no worker ever outlives the call.
        self._pool = None
        self._managed = False

    # ------------------------------------------------------------------
    # Pool lifetime: `with WorkScheduler(...) as work:` keeps one pool
    # alive across several map_tasks calls (e.g. a campaign's scout wave
    # followed by the warm wave); the default is per-call pools.
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkScheduler":
        self._managed = True
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Tear down the managed pool (no-op when none is alive)."""
        self._managed = False
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _build_pool(self):
        if self.scheduler == "thread":
            return ThreadPoolExecutor(max_workers=self.jobs)
        context = process_context()
        kwargs = {"max_workers": self.jobs}
        if context is not None:
            kwargs["mp_context"] = context
        return ProcessPoolExecutor(**kwargs)

    # ------------------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        """Whether this configuration degenerates to in-process execution."""
        return self.scheduler == "serial" or self.jobs == 1

    def effective_queue_depth(self) -> int:
        """The in-flight submission bound actually applied."""
        if self.queue_depth is not None:
            return self.queue_depth
        return DEFAULT_QUEUE_FACTOR * self.jobs

    # ------------------------------------------------------------------
    def map_tasks(
        self,
        fn: Callable[..., Any],
        task_args: Sequence[Tuple],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Run ``fn(*args)`` for every args-tuple; results in submission order.

        ``on_result(index, result)`` fires as each task finishes (completion
        order under the parallel schedulers).  For the process scheduler,
        ``fn`` must be a module-level callable and every argument and result
        must be picklable.
        """
        recorder = obs_trace.get_recorder()
        task_name = getattr(fn, "__name__", "task")

        if self.is_serial or len(task_args) <= 1:
            results: List[Any] = []
            for index, args in enumerate(task_args):
                if recorder.enabled:
                    t0 = time.monotonic()
                    result = fn(*args)
                    recorder.record(
                        "sched.task",
                        t0,
                        time.monotonic() - t0,
                        {"task": task_name, "index": index},
                    )
                else:
                    result = fn(*args)
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
            return results

        if self._managed:
            if self._pool is None:
                self._pool = self._build_pool()
            pool = self._pool
        else:
            pool = self._build_pool()

        results = [None] * len(task_args)
        depth = self.effective_queue_depth()
        pending = {}
        # Dispatch spans measure submission -> completion (queue wait plus
        # execution); recorded from the parent under its open span, so the
        # worker-side spans and the dispatch spans tell queueing apart.
        dispatch_parent = recorder.current_span_id() if recorder.enabled else None
        submitted_at: dict = {}
        try:
            next_index = 0
            while next_index < len(task_args) or pending:
                while next_index < len(task_args) and len(pending) < depth:
                    future = pool.submit(fn, *task_args[next_index])
                    pending[future] = next_index
                    if recorder.enabled:
                        submitted_at[next_index] = time.monotonic()
                    next_index += 1
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = pending.pop(future)
                    result = future.result()
                    results[index] = result
                    if recorder.enabled:
                        t0 = submitted_at.pop(index)
                        recorder.record(
                            "sched.task",
                            t0,
                            time.monotonic() - t0,
                            {"task": task_name, "index": index},
                            parent_id=dispatch_parent,
                        )
                    if on_result is not None:
                        on_result(index, result)
        except BaseException:
            # A task (or an on_result callback) failed: cancel everything
            # still in flight and drain it before propagating, so a managed
            # pool holds no orphaned work and stays reusable for the next
            # map_tasks call.
            _cancel_and_drain(pending)
            raise
        finally:
            if not self._managed:
                pool.shutdown(wait=True)
        return results


def _cancel_and_drain(pending: dict) -> None:
    """Cancel in-flight futures and wait until none is still running.

    Futures a worker already picked up cannot be cancelled; those are
    awaited to completion and their outcome (result or exception) is
    explicitly retrieved so no "exception was never retrieved" warning
    fires after the original error propagates.
    """
    for future in pending:
        future.cancel()
    if pending:
        wait(list(pending))
    for future in pending:
        if not future.cancelled():
            future.exception()
    pending.clear()


def chunked(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, order-preserving
    chunks of near-equal size; no chunk is ever empty, so an empty ``items``
    yields no chunks at all."""
    if n_chunks < 1:
        raise ExecError("n_chunks must be at least 1")
    if not items:
        return []
    n_chunks = min(n_chunks, len(items))
    size, remainder = divmod(len(items), n_chunks)
    chunks: List[List[Any]] = []
    start = 0
    for index in range(n_chunks):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(list(items[start:stop]))
        start = stop
    return chunks


__all__ = [
    "DEFAULT_QUEUE_FACTOR",
    "SCHEDULERS",
    "WorkScheduler",
    "chunked",
    "process_context",
    "validate_scheduler",
]
