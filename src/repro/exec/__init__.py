"""Unified execution backend layer for fault-field evaluations.

Every layer of the reproduction asks the same primitive question —
*evaluate one (platform, die, rail, V, T, pattern) operating point* — and
before this subsystem each layer answered it its own way: the sweep
drivers probed directly, the adaptive search wrapped an
:class:`~repro.search.EvalCache` by hand, the campaign runner owned a
process pool, the runtime layer looped live discovery itself.
``repro.exec`` separates the *what to evaluate* contract from the
*where/how it runs* substrate:

* :class:`EvalRequest` — the frozen operating-point question
  (``probe`` / ``region`` / ``fvm`` kinds);
* :class:`EvalBackend` — the answer protocol, implemented by
  :class:`SimulatedBackend` (the behavioural fault model) and
  :class:`ReplayBackend` (bit-identical replay from a recorded store);
* :class:`ExecutionEngine` — scheduling (serial / thread / process shards
  with bounded work queues), in-flight request deduplication, the
  evaluation cache, telemetry counters and deterministic result ordering;
* :class:`WorkScheduler` — the bare scheduling substrate, also used by
  the campaign runner for per-die shards.

See ``docs/architecture.md`` for the layer diagram and a backend how-to;
``benchmarks/bench_exec_engine.py`` is the acceptance benchmark
(cross-scheduler bit-identity, >=2x parallel speedup on a single-chip
sweep, zero-evaluation replay).
"""

from .backends import ReplayBackend, SimulatedBackend, backend_from_spec, rail_thresholds
from .engine import EngineCounters, EvalBackend, ExecutionEngine
from .request import FVM, PROBE, REGION, REQUEST_KINDS, EvalRequest, ExecError
from .scheduler import SCHEDULERS, WorkScheduler, chunked, process_context, validate_scheduler

__all__ = [
    "EngineCounters",
    "EvalBackend",
    "EvalRequest",
    "ExecError",
    "ExecutionEngine",
    "FVM",
    "PROBE",
    "REGION",
    "REQUEST_KINDS",
    "ReplayBackend",
    "SCHEDULERS",
    "SimulatedBackend",
    "WorkScheduler",
    "backend_from_spec",
    "chunked",
    "process_context",
    "rail_thresholds",
    "validate_scheduler",
]
