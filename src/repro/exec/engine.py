"""The execution engine: one front door for every fault-field evaluation.

:class:`ExecutionEngine` binds an :class:`~repro.exec.backends.EvalBackend`
to the machinery every evaluation caller used to re-implement for itself:

* the **evaluation cache** (:class:`~repro.search.EvalCache`) — looked up
  before the backend runs, populated after, with per-kind validity checks
  (an FVM row must actually carry a per-BRAM vector of the right width);
* **scheduling** — :meth:`evaluate_many` shards pure requests over the
  serial / thread / process substrates of
  :class:`~repro.exec.scheduler.WorkScheduler` with a bounded in-flight
  queue; ``probe`` requests (which mutate the simulated hardware) always
  run inline;
* **request deduplication** — identical in-flight requests inside one
  batch are evaluated once and fanned back out to every position;
* **telemetry** — :class:`EngineCounters` counts requests, cache hits,
  backend evaluations and deduplicated requests; drivers snapshot/delta
  the counters to build their :class:`~repro.search.SearchReport`;
* **deterministic ordering** — results always come back in request order,
  whatever order workers finish in, so scheduling can never change a
  downstream artifact.

Equivalence contract: the engine never changes *what* is computed, only
*where*.  Every request is a pure function of its operating point (see
``docs/batch_engine.md``), so serial, threaded and process execution are
bit-identical — asserted by ``tests/exec/`` and the
``bench_exec_engine.py`` acceptance benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.obs import adapters as obs_adapters
from repro.obs import trace as obs_trace
from repro.search import EvalCache, PointEvaluation, point_key

from .backends import backend_from_spec
from .request import FVM, PROBE, EvalRequest, ExecError
from .scheduler import WorkScheduler, chunked


class EvalBackend(Protocol):
    """What the engine needs from a backend (see ``docs/architecture.md``).

    ``kind`` names the implementation (``"simulated"``, ``"replay"``);
    ``platform``/``serial`` identify the die, which anchors cache keys;
    ``n_brams`` (may be ``None``) validates cached FVM rows; ``spec()``
    returns a picklable rebuild recipe or ``None`` when process scheduling
    is impossible; ``evaluate`` answers one request.
    """

    kind: str

    @property
    def platform(self) -> str: ...

    @property
    def serial(self) -> str: ...

    @property
    def n_brams(self) -> Optional[int]: ...

    def spec(self) -> Optional[Tuple]: ...

    def evaluate(self, request: EvalRequest) -> PointEvaluation: ...


@dataclass
class EngineCounters:
    """Telemetry of one engine (or the shared telemetry of a family of
    cache-variant engines over one backend).

    ``n_requests`` counts every question asked; ``n_cache_hits`` the ones
    answered from the evaluation cache; ``n_backend_evaluations`` the ones
    the backend actually computed; ``n_deduplicated`` in-flight duplicates
    collapsed inside batches; ``n_batches`` the ``evaluate_many`` calls.
    ``n_backend_calls`` counts *Python-level crossings into the backend* —
    a batched crossing answers many evaluations in one call, so
    ``n_backend_calls <= n_backend_evaluations`` measures how well batching
    amortizes per-request overhead.  It is engine telemetry only and stays
    out of :meth:`to_dict`, which the CLI golden documents pin.

    One counters object is routinely shared: cache-variant engines over one
    backend, and service deployments where every request-handler thread
    drives its own per-die engine into one fleet-wide telemetry block.  All
    increments therefore go through :meth:`add`, which holds a lock — a
    bare ``+=`` from concurrent threads is a read-modify-write race that
    silently loses updates.
    """

    n_requests: int = 0
    n_cache_hits: int = 0
    n_backend_evaluations: int = 0
    n_deduplicated: int = 0
    n_batches: int = 0
    n_backend_calls: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, int]:
        # Locks do not pickle; counters travel as their plain counts and
        # get a fresh lock on the other side.
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add(
        self,
        requests: int = 0,
        cache_hits: int = 0,
        backend_evaluations: int = 0,
        deduplicated: int = 0,
        batches: int = 0,
        backend_calls: int = 0,
    ) -> None:
        """Atomically accumulate one engine event (thread-safe)."""
        with self._lock:
            self.n_requests += requests
            self.n_cache_hits += cache_hits
            self.n_backend_evaluations += backend_evaluations
            self.n_deduplicated += deduplicated
            self.n_batches += batches
            self.n_backend_calls += backend_calls

    def snapshot(self) -> "EngineCounters":
        """A frozen, consistent copy for later deltas."""
        with self._lock:
            return EngineCounters(
                n_requests=self.n_requests,
                n_cache_hits=self.n_cache_hits,
                n_backend_evaluations=self.n_backend_evaluations,
                n_deduplicated=self.n_deduplicated,
                n_batches=self.n_batches,
                n_backend_calls=self.n_backend_calls,
            )

    def since(self, snapshot: "EngineCounters") -> "EngineCounters":
        """Counter deltas accumulated after ``snapshot`` was taken."""
        current = self.snapshot()
        return EngineCounters(
            n_requests=current.n_requests - snapshot.n_requests,
            n_cache_hits=current.n_cache_hits - snapshot.n_cache_hits,
            n_backend_evaluations=(
                current.n_backend_evaluations - snapshot.n_backend_evaluations
            ),
            n_deduplicated=current.n_deduplicated - snapshot.n_deduplicated,
            n_batches=current.n_batches - snapshot.n_batches,
            n_backend_calls=current.n_backend_calls - snapshot.n_backend_calls,
        )

    def to_dict(self) -> Dict[str, int]:
        """JSON form carried by the CLI ``backend`` blocks."""
        with self._lock:
            return {
                "n_requests": self.n_requests,
                "n_cache_hits": self.n_cache_hits,
                "n_backend_evaluations": self.n_backend_evaluations,
                "n_deduplicated": self.n_deduplicated,
            }


#: Worker-process backend instances, keyed by spec.  Populated lazily in
#: each worker; with the fork start method workers usually inherit the
#: parent's warm chip/field caches instead and never rebuild at all.
_WORKER_BACKENDS: Dict[Tuple, Any] = {}


def _worker_backend(spec: Tuple) -> Any:
    """The worker-local backend for a spec, built on first use."""
    backend = _WORKER_BACKENDS.get(spec)
    if backend is None:
        backend = backend_from_spec(spec)
        _WORKER_BACKENDS[spec] = backend
    return backend


def _evaluate_spec_chunk(
    spec: Tuple, requests: Tuple[EvalRequest, ...]
) -> List[PointEvaluation]:
    """Process-pool entry point: evaluate one chunk on a worker-local backend."""
    backend = _worker_backend(spec)
    return [backend.evaluate(request) for request in requests]


def _evaluate_spec_batch(
    spec: Tuple, requests: Tuple[EvalRequest, ...]
) -> List[PointEvaluation]:
    """Process-pool entry point: answer one chunk via a single batched call."""
    return _worker_backend(spec).evaluate_batch(list(requests))


def _evaluate_backend_batch(
    backend: "EvalBackend", requests: Tuple[EvalRequest, ...]
) -> List[PointEvaluation]:
    """Thread-pool entry point: answer one chunk via a single batched call."""
    return backend.evaluate_batch(list(requests))


class ExecutionEngine:
    """Schedule, deduplicate, cache and count fault-field evaluations.

    Parameters
    ----------
    backend:
        Where evaluations are computed (or replayed) — anything satisfying
        :class:`EvalBackend`.
    scheduler / jobs / queue_depth:
        The :class:`~repro.exec.scheduler.WorkScheduler` configuration used
        by :meth:`evaluate_many` for pure request batches.
    cache:
        Optional :class:`~repro.search.EvalCache` consulted before and
        populated after every backend evaluation.  Must belong to the
        backend's die.
    counters:
        Optional shared :class:`EngineCounters` — cache-variant engines
        over one backend pass the root engine's counters here so the
        telemetry of one experiment stays in one place.
    batch:
        Whether :meth:`evaluate_many` may answer a pure miss set through
        the backend's ``evaluate_batch`` capability (one Python crossing
        per batch instead of one per request).  On by default; results are
        bit-identical either way, so this knob exists for benchmarking and
        for the CLI's ``--no-batch`` escape hatch.
    """

    def __init__(
        self,
        backend: EvalBackend,
        scheduler: str = "serial",
        jobs: int = 1,
        cache: Optional[EvalCache] = None,
        queue_depth: Optional[int] = None,
        counters: Optional[EngineCounters] = None,
        batch: bool = True,
    ) -> None:
        self.backend = backend
        self.batch = bool(batch)
        self.work = WorkScheduler(scheduler=scheduler, jobs=jobs, queue_depth=queue_depth)
        self.cache = cache
        self.counters = counters if counters is not None else EngineCounters()
        # No-op unless a process-wide metrics registry is on (--obs-metrics);
        # idempotent per counters object, so cache-variant engines sharing
        # counters register once.
        obs_adapters.bind_engine_counters(self.counters)
        if cache is not None and (
            cache.platform != backend.platform or cache.serial != backend.serial
        ):
            raise ExecError(
                f"cache belongs to die {cache.platform}/{cache.serial}, engine "
                f"backend is {backend.platform}/{backend.serial}"
            )

    # ------------------------------------------------------------------
    @property
    def platform(self) -> str:
        return self.backend.platform

    @property
    def serial(self) -> str:
        return self.backend.serial

    @property
    def scheduler(self) -> str:
        return self.work.scheduler

    @property
    def jobs(self) -> int:
        return self.work.jobs

    def with_cache(self, cache: Optional[EvalCache]) -> "ExecutionEngine":
        """A cache-variant engine sharing this engine's backend, scheduling
        configuration and telemetry counters."""
        if cache is self.cache:
            return self
        return ExecutionEngine(
            self.backend,
            scheduler=self.work.scheduler,
            jobs=self.work.jobs,
            cache=cache,
            queue_depth=self.work.queue_depth,
            counters=self.counters,
            batch=self.batch,
        )

    def describe(self) -> Dict[str, Any]:
        """The ``backend`` block of the CLI ``--json`` documents."""
        return {
            "kind": self.backend.kind,
            "scheduler": self.work.scheduler,
            "jobs": self.work.jobs,
            "source": getattr(self.backend, "source", None),
            "counters": self.counters.to_dict(),
        }

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _key(self, request: EvalRequest) -> Tuple:
        return point_key(
            self.backend.platform,
            self.backend.serial,
            request.rail,
            request.voltage_v,
            request.temperature_c,
            request.pattern_text,
            request.n_runs,
        )

    def _cache_entry_valid(self, request: EvalRequest, point: PointEvaluation) -> bool:
        """Whether a cached evaluation actually answers this request kind.

        FVM requests need the per-BRAM vector (of the die's width, when the
        backend knows it); run-bearing kinds need a full count vector unless
        the recorded point was non-operational (an empty count vector is the
        honest answer below Vcrash).
        """
        if request.kind == FVM:
            if point.per_bram_counts is None:
                return False
            n_brams = self.backend.n_brams
            return n_brams is None or len(point.per_bram_counts) == n_brams
        if not point.operational:
            return request.kind == PROBE
        return len(point.counts) == request.n_runs

    def _lookup(self, request: EvalRequest) -> Optional[PointEvaluation]:
        if self.cache is None:
            return None
        found = self.cache.lookup(
            request.rail,
            request.voltage_v,
            request.temperature_c,
            request.pattern_text,
            request.n_runs,
        )
        if found is not None and not self._cache_entry_valid(request, found):
            return None
        return found

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, request: EvalRequest) -> Tuple[PointEvaluation, bool]:
        """Answer one request inline; returns ``(point, served_from_cache)``.

        This is the path the sequential searches (guardband walks and
        bisections) use: scheduling never applies to a single request, so
        hardware-mutating probes are naturally safe here.
        """
        with obs_trace.span("engine.evaluate", kind=request.kind):
            self.counters.add(requests=1)
            found = self._lookup(request)
            if found is not None:
                self.counters.add(cache_hits=1)
                return found, True
            point = self.backend.evaluate(request)
            self.counters.add(backend_evaluations=1, backend_calls=1)
            if self.cache is not None:
                self.cache.store(point)
            return point, False

    def evaluate_many(self, requests: Sequence[EvalRequest]) -> List[PointEvaluation]:
        """Answer a batch of requests; results in request order.

        Deduplicates identical in-flight requests, serves what the cache
        can, and shards the remaining *pure* requests over the configured
        scheduler.  Batches containing ``probe`` requests fall back to
        inline evaluation — probes mutate the simulated hardware, which is
        a serial protocol by nature.
        """
        with obs_trace.span("engine.evaluate_many", n=len(requests)):
            self.counters.add(batches=1, requests=len(requests))

            # In-flight deduplication: first occurrence wins, every later
            # position reuses its result.
            order: List[Tuple] = []
            unique: Dict[Tuple, EvalRequest] = {}
            for request in requests:
                key = (request.kind,) + self._key(request)
                order.append(key)
                if key not in unique:
                    unique[key] = request
            self.counters.add(deduplicated=len(requests) - len(unique))

            resolved: Dict[Tuple, PointEvaluation] = {}
            misses: List[Tuple[Tuple, EvalRequest]] = []
            n_hits = 0
            for key, request in unique.items():
                found = self._lookup(request)
                if found is not None:
                    n_hits += 1
                    resolved[key] = found
                else:
                    misses.append((key, request))
            self.counters.add(cache_hits=n_hits)

            if misses:
                points = self._evaluate_misses([request for _key, request in misses])
                for (key, _request), point in zip(misses, points):
                    resolved[key] = point
                    if self.cache is not None:
                        self.cache.store(point)
                self.counters.add(backend_evaluations=len(misses))

            return [resolved[key] for key in order]

    def _evaluate_misses(self, requests: List[EvalRequest]) -> List[PointEvaluation]:
        """Compute fresh evaluations, scheduling pure batches over workers.

        With batching on, a pure miss set crosses into the backend once per
        scheduled chunk (``evaluate_batch``) instead of once per request;
        the ``engine.batch`` span covers the whole batched answer and its
        ``n`` label counts the requests it settled.
        """
        mutating = any(request.kind == PROBE for request in requests)
        batchable = (
            self.batch
            and not mutating
            and len(requests) > 1
            and callable(getattr(self.backend, "evaluate_batch", None))
        )

        if self.work.is_serial or mutating or len(requests) <= 1:
            if batchable:
                with obs_trace.span("engine.batch", n=len(requests)):
                    self.counters.add(backend_calls=1)
                    return self.backend.evaluate_batch(list(requests))
            self.counters.add(backend_calls=len(requests))
            return [self.backend.evaluate(request) for request in requests]

        if self.work.scheduler == "process":
            spec = self.backend.spec()
            if spec is None:
                raise ExecError(
                    "the process scheduler needs a spec-buildable backend "
                    "(stock die, default fault field); use the thread "
                    "scheduler for customized backends"
                )
            if batchable:
                # Exporting the flat fault table to mmap-backed files lets
                # spawned workers attach instead of rebuilding the cell
                # population from scratch (fork workers inherit it anyway).
                share = getattr(self.backend, "share_table", None)
                if share is not None:
                    shared_spec = share()
                    if shared_spec is not None:
                        spec = shared_spec
                fn, context = _evaluate_spec_batch, spec
            else:
                fn, context = _evaluate_spec_chunk, spec
        elif batchable:
            fn, context = _evaluate_backend_batch, self.backend
        else:
            fn, context = _evaluate_backend_chunk, self.backend

        # Evaluate the first request inline to settle the backend's lazily
        # built caches (flat table, sorted pattern thresholds) before the
        # fan-out — threads then share them race-free, and fork-context
        # workers inherit them for free.
        if batchable:
            with obs_trace.span("engine.batch", n=len(requests)):
                first = self.backend.evaluate(requests[0])
                # One wide chunk per worker: each is a single crossing.
                chunks = chunked(requests[1:], self.work.jobs)
                chunk_results = self.work.map_tasks(
                    fn, [(context, tuple(chunk)) for chunk in chunks]
                )
                self.counters.add(backend_calls=1 + len(chunks))
        else:
            first = self.backend.evaluate(requests[0])
            chunks = chunked(requests[1:], self.work.jobs * 2)
            chunk_results = self.work.map_tasks(
                fn, [(context, tuple(chunk)) for chunk in chunks]
            )
            self.counters.add(backend_calls=1 + sum(len(c) for c in chunks))
        return [first] + [point for chunk in chunk_results for point in chunk]


def _evaluate_backend_chunk(
    backend: EvalBackend, requests: Tuple[EvalRequest, ...]
) -> List[PointEvaluation]:
    """Thread-pool entry point: evaluate one chunk on the shared backend."""
    return [backend.evaluate(request) for request in requests]


__all__ = ["EngineCounters", "EvalBackend", "ExecutionEngine"]
