"""Zero-copy fault-table sharing for process-scheduled evaluation.

Spawned worker processes used to rebuild a die's entire vulnerable-cell
population from scratch (``FpgaChip.build`` → ``cached_fault_field`` →
per-BRAM profile materialization) before answering their first request —
the dominant cost of ``--backend process`` at fleet scale, and exactly the
serialization tax the ROADMAP wants gone.  This module exports a built
:class:`~repro.core.batch.FlatFaultTable` once, parent-side, as plain
``.npy`` files in a private temporary directory; workers then *attach* with
``numpy.load(..., mmap_mode="r")``, so the kernel pages the threshold
columns into every process without pickling, copying, or reconstructing a
single profile.  The same substrate backs the v2 campaign store's columnar
segments, which is why file-backed mmap was chosen over
``multiprocessing.shared_memory`` (no resource-tracker lifetime puzzles,
and attach works across unrelated processes).

Bit-identity: the exported arrays are the exact arrays the parent built, a
``.npy`` round-trip is lossless, and the table is itself a deterministic
function of the die's seeded fault field — so an attached worker computes
exactly what a rebuilt worker would, only without paying for the rebuild.

The export lives until :func:`release_all` (registered ``atexit``) removes
it; deleting the files while workers still map them is safe on POSIX.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import FlatFaultTable

#: Column files of one exported table, in a fixed order.
_COLUMNS = ("bram_ids", "cols", "thresholds_v", "one_to_zero")


@dataclass(frozen=True)
class SharedTableSpec:
    """Picklable, hashable handle to one exported flat fault table.

    Travels inside the backend's worker spec tuple (see
    :meth:`repro.exec.backends.SimulatedBackend.share_table`), so it must
    stay plain data: a directory of ``.npy`` columns plus the scalar the
    table cannot recover from its arrays (``n_brams`` — trailing BRAMs may
    have no vulnerable cells at all).
    """

    directory: str
    n_brams: int
    n_cells: int


#: Directories this process exported, removed at interpreter exit.
_EXPORT_DIRS: List[str] = []
_EXPORT_LOCK = threading.Lock()


def export_table(table: "FlatFaultTable") -> SharedTableSpec:
    """Write a built table's columns to mmap-attachable ``.npy`` files."""
    directory = Path(tempfile.mkdtemp(prefix="repro-shm-table-"))
    for name in _COLUMNS:
        np.save(directory / f"{name}.npy", np.ascontiguousarray(getattr(table, name)))
    with _EXPORT_LOCK:
        _EXPORT_DIRS.append(str(directory))
    return SharedTableSpec(
        directory=str(directory), n_brams=int(table.n_brams), n_cells=int(table.n_cells)
    )


def attach_table(spec: SharedTableSpec) -> "FlatFaultTable":
    """Map an exported table read-only; no copies, no profile rebuilds."""
    from repro.core.batch import FlatFaultTable

    directory = Path(spec.directory)
    columns: Dict[str, np.ndarray] = {
        name: np.load(directory / f"{name}.npy", mmap_mode="r") for name in _COLUMNS
    }
    table = FlatFaultTable(n_brams=spec.n_brams, **columns)
    if table.n_cells != spec.n_cells:
        raise ValueError(
            f"shared table at {directory} holds {table.n_cells} cells, "
            f"descriptor says {spec.n_cells}"
        )
    return table


def release(spec: SharedTableSpec) -> None:
    """Remove one export's files (attached mappings stay valid on POSIX)."""
    with _EXPORT_LOCK:
        if spec.directory in _EXPORT_DIRS:
            _EXPORT_DIRS.remove(spec.directory)
    shutil.rmtree(spec.directory, ignore_errors=True)


def release_all() -> None:
    """Remove every export this process created (registered ``atexit``)."""
    with _EXPORT_LOCK:
        directories, _EXPORT_DIRS[:] = _EXPORT_DIRS[:], []
    for directory in directories:
        shutil.rmtree(directory, ignore_errors=True)


atexit.register(release_all)

__all__ = [
    "SharedTableSpec",
    "attach_table",
    "export_table",
    "release",
    "release_all",
]
