"""Evaluation backends: where an operating-point question is answered.

An :class:`EvalBackend` turns one :class:`~repro.exec.request.EvalRequest`
into one :class:`~repro.search.PointEvaluation`.  Two implementations ship:

* :class:`SimulatedBackend` — the behavioural fault model.  It owns the
  point-probing logic the sweep drivers used to carry themselves (program
  the rail, count faults over the read-back runs, read the rail power) and
  answers the pure ``region``/``fvm`` kinds straight from the batch engine
  of :mod:`repro.core.batch`.  Per-voltage evaluation is bit-identical to
  the full-grid batch call because every grid point is an independent pure
  function of its own operating point (same IEEE-754 comparisons, same
  operation order — see ``docs/batch_engine.md``).

* :class:`ReplayBackend` — a recorded evaluation store.  It answers every
  request from previously persisted :class:`~repro.search.PointEvaluation`
  documents (a campaign store's per-die cache files, or a cache document
  saved with ``--record-store``) and *raises* on anything it has never
  seen, so offline re-analysis and CI runs provably never touch the fault
  model.

Backends report their identity through ``kind``/``platform``/``serial``
and, when they can be rebuilt inside a worker process from a plain tuple,
through :meth:`spec` (see :func:`backend_from_spec`).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import OperatingGrid, cached_fault_field, power_curve
from repro.core.calibration import PlatformCalibration
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM, VCCINT
from repro.search import EvalCache, PointEvaluation, point_key

from .request import FVM, PROBE, REGION, EvalRequest, ExecError


def rail_thresholds(
    calibration: PlatformCalibration, rail: str
) -> Tuple[float, float]:
    """Calibrated (Vmin, Vcrash) of one rail; rejects unknown rails.

    The single source of truth for which rails the characterization loops
    understand — the sweep drivers translate the :class:`ExecError` into
    their own error type but do not duplicate the logic.
    """
    if rail == VCCBRAM:
        return calibration.vmin_bram_v, calibration.vcrash_bram_v
    if rail == VCCINT:
        return calibration.vmin_int_v, calibration.vcrash_int_v
    raise ExecError(f"unsupported rail {rail!r}")


@dataclass
class SimulatedBackend:
    """The behavioural fault model as an evaluation backend.

    Parameters
    ----------
    chip:
        Die under test.  ``fault_field``, ``host`` and ``power_meter``
        default to the same objects :class:`~repro.harness.sweep.\
UndervoltingExperiment` would build, and the experiment shares its
        instances with the backend so the simulated hardware sees one
        consistent command sequence.
    step_v:
        Sweep grid step; parameterizes the VCCINT observable-fault shape.
    latency_s:
        Optional per-evaluation wall-clock latency modelling what real
        hardware spends on regulator settling and serial read-back.  The
        default (``0.0``) leaves results and timings untouched; the
        execution-engine benchmark uses it to show that parallel
        scheduling overlaps exactly this latency.
    spec_buildable:
        Whether :meth:`spec` may describe this backend as rebuildable from
        ``(platform, serial)`` alone.  Set false when the caller supplied
        a custom fault field, host or power meter that a worker process
        could not reconstruct.
    """

    chip: Any
    fault_field: Optional[Any] = None
    host: Optional[Any] = None
    power_meter: Optional[Any] = None
    step_v: float = DEFAULT_STEP_V
    latency_s: float = 0.0
    spec_buildable: bool = True

    kind = "simulated"
    source: Optional[str] = None

    #: Fresh fault-model evaluations this backend has performed (all kinds).
    n_evaluations: int = field(default=0, init=False)
    #: :meth:`evaluate_batch` calls answered (each is one Python crossing
    #: however many requests it carried).
    n_kernel_batches: int = field(default=0, init=False)
    #: Memoized zero-copy export of the flat fault table (see
    #: :meth:`share_table`).
    _shared_table: Optional[Any] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        # Imported here (not at module top) to keep repro.exec importable
        # below repro.harness in the layer diagram: the harness imports the
        # engine at module load, the backend only touches the harness
        # classes when a backend is actually built.
        from repro.harness.host import HostController
        from repro.harness.powermeter import PowerMeter

        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)
        if self.host is None:
            self.host = HostController(self.chip, fault_field=self.fault_field)
        if self.power_meter is None:
            self.power_meter = PowerMeter(
                self.chip, calibration=self.fault_field.calibration
            )
        if self.latency_s < 0:
            raise ExecError("latency_s cannot be negative")

    # ------------------------------------------------------------------
    @property
    def platform(self) -> str:
        return self.chip.name

    @property
    def serial(self) -> str:
        return self.chip.spec.serial_number

    @property
    def calibration(self) -> PlatformCalibration:
        return self.fault_field.calibration

    @property
    def n_brams(self) -> Optional[int]:
        """BRAM count of the die (used to validate cached FVM rows)."""
        return int(self.chip.spec.n_brams)

    def spec(self) -> Optional[Tuple]:
        """Plain-tuple description a worker process can rebuild from.

        ``None`` when the backend carries state (custom field, host or
        power meter) that :func:`backend_from_spec` could not reproduce;
        the engine then refuses process scheduling rather than silently
        evaluating something else.
        """
        if not self.spec_buildable:
            return None
        return ("simulated", self.platform, self.serial, self.step_v, self.latency_s)

    def share_table(self) -> Optional[Tuple]:
        """A worker spec carrying a zero-copy handle to the flat fault table.

        Exports the built :class:`~repro.core.batch.FlatFaultTable` once
        (memoized) via :mod:`repro.exec.shm` and returns :meth:`spec`
        extended with the :class:`~repro.exec.shm.SharedTableSpec`; worker
        processes attach to the mmap-backed columns instead of rebuilding
        the die's cell population.  ``None`` when the backend is not
        spec-buildable (same contract as :meth:`spec`).
        """
        spec = self.spec()
        if spec is None:
            return None
        if self._shared_table is None:
            from .shm import export_table

            self._shared_table = export_table(self.fault_field.batch.table)
        return spec + (self._shared_table,)

    def describe(self) -> Dict[str, Any]:
        """JSON-serializable identity block (part of the CLI ``backend`` doc)."""
        return {"kind": self.kind, "source": self.source}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, request: EvalRequest) -> PointEvaluation:
        """Answer one request from the fault model."""
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
        self.n_evaluations += 1
        if request.kind == PROBE:
            return self._evaluate_probe(request)
        if request.kind == REGION:
            return self._evaluate_region(request)
        return self._evaluate_fvm(request)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> List[PointEvaluation]:
        """Answer a whole batch with one kernel call per request group.

        Pure ``region``/``fvm`` requests are grouped by
        ``(kind, rail, pattern, n_runs, temperature)``; each group becomes
        one multi-voltage :class:`OperatingGrid` answered by a single
        ``chip_counts``/``per_bram_counts`` kernel call, so a fleet ladder
        of N voltages crosses the Python/NumPy boundary once instead of N
        times.  Results are bit-identical to per-request :meth:`evaluate`
        because every grid point is an independent pure function of its own
        operating point (same IEEE-754 comparisons, same operation order).
        ``probe`` requests — which mutate the simulated hardware — fall back
        to the sequential per-point protocol in request order.

        Latency modelling is aggregate: one sleep of ``latency_s`` per
        request, taken up front, so wall-clock accounting matches a
        sequential evaluation of the same batch.
        """
        requests = list(requests)
        if not requests:
            return []
        if self.latency_s > 0.0:
            time.sleep(self.latency_s * len(requests))
        self.n_evaluations += len(requests)
        self.n_kernel_batches += 1
        results: List[Optional[PointEvaluation]] = [None] * len(requests)
        groups: Dict[Tuple, List[int]] = {}
        for index, request in enumerate(requests):
            if request.kind == PROBE:
                results[index] = self._evaluate_probe(request)
                continue
            key = (
                request.kind,
                request.rail,
                request.pattern_text,
                request.n_runs,
                request.temperature_c,
            )
            groups.setdefault(key, []).append(index)
        for key, indices in groups.items():
            group = [requests[i] for i in indices]
            if key[0] == REGION:
                points = self._batch_region(group)
            else:
                points = self._batch_fvm(group)
            for index, point in zip(indices, points):
                results[index] = point
        return results  # type: ignore[return-value]

    def _batch_region(self, requests: List[EvalRequest]) -> List[PointEvaluation]:
        """One ``chip_counts`` kernel call answering a same-shape region group."""
        first = requests[0]
        if first.rail != VCCBRAM:
            raise ExecError("region requests characterize the VCCBRAM rail")
        grid = OperatingGrid.from_axes(
            tuple(request.voltage_v for request in requests),
            (first.temperature_c,),
            runs=first.n_runs,
        )
        counts = self.fault_field.batch.chip_counts(grid, first.pattern)
        power = power_curve(
            self.power_meter.bram_model,
            grid.voltages_v,
            self.power_meter.bram_utilization,
        )
        return [
            PointEvaluation(
                voltage_v=request.voltage_v,
                temperature_c=request.temperature_c,
                rail=VCCBRAM,
                pattern=request.pattern_text,
                n_runs=request.n_runs,
                counts=tuple(int(c) for c in counts[i, 0, :]),
                operational=True,
                bram_power_w=float(power[i]),
            )
            for i, request in enumerate(requests)
        ]

    def _batch_fvm(self, requests: List[EvalRequest]) -> List[PointEvaluation]:
        """One ``per_bram_counts`` kernel call answering a whole FVM ladder."""
        first = requests[0]
        if first.rail != VCCBRAM:
            raise ExecError("fvm requests characterize the VCCBRAM rail")
        grid = OperatingGrid.from_axes(
            tuple(request.voltage_v for request in requests),
            (first.temperature_c,),
        )
        rows = self.fault_field.batch.per_bram_counts(grid, first.pattern)
        return [
            PointEvaluation(
                voltage_v=request.voltage_v,
                temperature_c=request.temperature_c,
                rail=VCCBRAM,
                pattern=request.pattern_text,
                n_runs=0,
                counts=(),
                operational=True,
                per_bram_counts=tuple(int(c) for c in rows[i, 0, 0, :]),
            )
            for i, request in enumerate(requests)
        ]

    def _int_fault_count(self, vccint_v: float) -> int:
        """Observable logic faults when undervolting VCCINT (Fig. 1b).

        The paper does not characterize VCCINT faults bit-by-bit (the rail
        feeds LUTs, DSPs and routing, which cannot be read back like BRAMs);
        it only locates the SAFE/CRITICAL/CRASH boundaries.  The reproduction
        models the observable fault count with the same exponential-onset
        shape anchored at the calibrated VCCINT thresholds.
        """
        cal = self.calibration
        if vccint_v >= cal.vmin_int_v:
            return 0
        window = cal.vmin_int_v - cal.vcrash_int_v
        slope = math.log(500.0) / window
        return int(round(2.0 * math.exp(slope * (cal.vmin_int_v - vccint_v) - slope * self.step_v)))

    def _evaluate_probe(self, request: EvalRequest) -> PointEvaluation:
        """One guardband-walk operating point on one rail.

        Performs exactly the per-step work of the Fig. 1 discovery loop —
        program the rail, count faults over ``n_runs`` read-back passes
        while the design operates, read the rail power — so the exhaustive
        walk and the bisection probes produce bit-identical data at every
        voltage either of them visits.  Mutates the simulated hardware;
        the engine therefore never schedules probes onto workers.
        """
        _vmin_true, vcrash_true = rail_thresholds(self.calibration, request.rail)
        voltage = request.voltage_v
        operational = voltage >= vcrash_true - 1e-9
        if request.rail == VCCBRAM:
            self.chip.set_vccbram(max(voltage, 0.40))
            counts = (
                [int(c) for c in self.host.count_chip_faults_over_runs(request.n_runs)]
                if operational
                else []
            )
        else:
            self.chip.set_vccint(max(voltage, 0.40))
            counts = [self._int_fault_count(voltage)] * request.n_runs if operational else []
        return PointEvaluation(
            voltage_v=voltage,
            temperature_c=self.chip.board_temperature_c,
            rail=request.rail,
            pattern=request.pattern_text,
            n_runs=request.n_runs,
            counts=tuple(counts),
            operational=operational,
            bram_power_w=(
                self.power_meter.read_bram_power_w(voltage)
                if request.rail == VCCBRAM
                else None
            ),
        )

    def _evaluate_region(self, request: EvalRequest) -> PointEvaluation:
        """One Listing 1 voltage step: chip counts over the run axis + power."""
        if request.rail != VCCBRAM:
            raise ExecError("region requests characterize the VCCBRAM rail")
        grid = OperatingGrid.from_axes(
            (request.voltage_v,), (request.temperature_c,), runs=request.n_runs
        )
        counts = self.fault_field.batch.chip_counts(grid, request.pattern)
        power = power_curve(
            self.power_meter.bram_model,
            grid.voltages_v,
            self.power_meter.bram_utilization,
        )
        return PointEvaluation(
            voltage_v=request.voltage_v,
            temperature_c=request.temperature_c,
            rail=VCCBRAM,
            pattern=request.pattern_text,
            n_runs=request.n_runs,
            counts=tuple(int(c) for c in counts[0, 0, :]),
            operational=True,
            bram_power_w=float(power[0]),
        )

    def _evaluate_fvm(self, request: EvalRequest) -> PointEvaluation:
        """One FVM voltage row: the per-BRAM count vector (no run axis)."""
        if request.rail != VCCBRAM:
            raise ExecError("fvm requests characterize the VCCBRAM rail")
        grid = OperatingGrid.from_axes((request.voltage_v,), (request.temperature_c,))
        row = self.fault_field.batch.per_bram_counts(grid, request.pattern)[0, 0, 0, :]
        return PointEvaluation(
            voltage_v=request.voltage_v,
            temperature_c=request.temperature_c,
            rail=VCCBRAM,
            pattern=request.pattern_text,
            n_runs=0,
            counts=(),
            operational=True,
            per_bram_counts=tuple(int(c) for c in row),
        )


@dataclass
class ReplayBackend:
    """Serve evaluations bit-identically from a recorded store.

    ``entries`` maps :func:`repro.search.point_key` tuples to recorded
    :class:`~repro.search.PointEvaluation` objects.  A request the store
    has never seen raises :class:`ExecError` — replay never silently falls
    back to recomputation, which is the property that makes it usable as a
    no-fault-model CI backend.
    """

    platform: str
    serial: str
    entries: Dict[Tuple, PointEvaluation] = field(default_factory=dict)
    source: Optional[str] = None

    kind = "replay"

    #: Requests this backend has served from the store.
    n_served: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    @property
    def n_brams(self) -> Optional[int]:
        """Unknown for replayed data; cached-row validation is skipped."""
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def spec(self) -> Optional[Tuple]:
        """Replay stores are in-memory; process scheduling is unsupported."""
        return None

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "source": self.source}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_cache(cls, cache: EvalCache, source: Optional[str] = None) -> "ReplayBackend":
        """Wrap an in-memory evaluation cache as a replay store."""
        backend = cls(platform=cache.platform, serial=cache.serial, source=source)
        for evaluation in cache:
            backend.record(evaluation)
        return backend

    @classmethod
    def open(
        cls,
        path: "str | Path",
        platform: Optional[str] = None,
        serial: Optional[str] = None,
    ) -> "ReplayBackend":
        """Open a recorded store from disk.

        ``path`` may be a single evaluation-cache JSON document (written by
        ``--record-store`` or :meth:`repro.campaign.store.CampaignStore.\
save_eval_cache`) or a campaign store directory, whose ``cache/``
        subdirectory is searched for the die matching ``platform``/
        ``serial`` (or for the single recorded die when neither is given).
        Both campaign store layouts work: the v1 per-unit store and the v2
        segmented columnar store (``store_version: 2``) share the same
        ``cache/<die>.json`` convention, and migration carries the caches
        over verbatim.
        """
        path = Path(path)
        if path.is_dir():
            candidates = sorted((path / "cache").glob("*.json")) or sorted(
                path.glob("*.json")
            )
            if not candidates:
                raise ExecError(f"no recorded evaluation caches under {path}")
            dies = []
            for candidate in candidates:
                try:
                    cache = _load_cache_document(candidate)
                except ExecError:
                    continue  # manifests and unit markers are not caches
                dies.append((candidate, cache))
            matching = [
                (file, cache)
                for file, cache in dies
                if (platform is None or cache.platform == platform)
                and (serial is None or cache.serial == serial)
            ]
            if not matching:
                known = ", ".join(
                    f"{cache.platform}/{cache.serial}" for _file, cache in dies
                ) or "none"
                raise ExecError(
                    f"store {path} holds no recorded die matching "
                    f"{platform or '*'}/{serial or '*'} (recorded: {known})"
                )
            if len(matching) > 1:
                raise ExecError(
                    f"store {path} holds {len(matching)} recorded dies; "
                    "name the die with platform and serial"
                )
            file, cache = matching[0]
            return cls.from_cache(cache, source=str(file))
        cache = _load_cache_document(path)
        if platform is not None and cache.platform != platform:
            raise ExecError(
                f"recorded store {path} holds die {cache.platform}/{cache.serial}, "
                f"not platform {platform}"
            )
        if serial is not None and cache.serial != serial:
            raise ExecError(
                f"recorded store {path} holds die {cache.platform}/{cache.serial}, "
                f"not serial {serial}"
            )
        return cls.from_cache(cache, source=str(path))

    def record(self, evaluation: PointEvaluation) -> PointEvaluation:
        """Add one recorded evaluation (idempotent for identical points)."""
        key = point_key(
            self.platform,
            self.serial,
            evaluation.rail,
            evaluation.voltage_v,
            evaluation.temperature_c,
            evaluation.pattern,
            evaluation.n_runs,
        )
        self.entries[key] = evaluation
        return evaluation

    # ------------------------------------------------------------------
    def _key_for(self, request: EvalRequest) -> Tuple:
        return point_key(
            self.platform,
            self.serial,
            request.rail,
            request.voltage_v,
            request.temperature_c,
            request.pattern_text,
            request.n_runs,
        )

    def _raise_missing(self, request: EvalRequest) -> None:
        raise ExecError(
            f"replay store{f' {self.source}' if self.source else ''} has no "
            f"recorded evaluation for {self.platform}/{self.serial} "
            f"{request.rail} at {request.voltage_v:.3f} V, "
            f"{request.temperature_c:.1f} degC, pattern "
            f"{request.pattern_text}, {request.n_runs} runs"
        )

    def evaluate(self, request: EvalRequest) -> PointEvaluation:
        """Serve one request from the store; missing points are an error."""
        found = self.entries.get(self._key_for(request))
        if found is None:
            self._raise_missing(request)
        self.n_served += 1
        return found

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> List[PointEvaluation]:
        """Serve a whole batch in one index probe over the store.

        One Python-level call answers every request; any unrecorded point
        raises the same :class:`ExecError` as :meth:`evaluate` (replay
        never recomputes), and nothing is counted as served on a miss.
        """
        requests = list(requests)
        entries = self.entries
        found = [entries.get(self._key_for(request)) for request in requests]
        for request, point in zip(requests, found):
            if point is None:
                self._raise_missing(request)
        self.n_served += len(requests)
        return found  # type: ignore[return-value]


def _load_cache_document(path: Path) -> EvalCache:
    """Read an evaluation-cache JSON document strictly (replay is loud)."""
    if not path.exists():
        raise ExecError(f"no recorded evaluation store at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExecError(f"recorded store {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or "entries" not in document:
        raise ExecError(f"{path} is not an evaluation-cache document")
    try:
        cache = EvalCache.from_document(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise ExecError(
            f"recorded store {path} holds malformed evaluations ({exc!r}); "
            "re-record it"
        ) from exc
    if not cache.entries and document.get("entries"):
        raise ExecError(
            f"recorded store {path} was written by an incompatible cache "
            "version; re-record it"
        )
    return cache


def backend_from_spec(spec: Tuple) -> SimulatedBackend:
    """Rebuild a worker-side backend from :meth:`SimulatedBackend.spec`.

    Accepts both the plain 5-tuple of :meth:`SimulatedBackend.spec` and the
    extended form of :meth:`SimulatedBackend.share_table`, whose trailing
    :class:`~repro.exec.shm.SharedTableSpec` lets the worker attach to the
    parent's mmap-exported fault table instead of rebuilding it.
    """
    from repro.fpga.platform import FpgaChip

    if not spec or spec[0] != "simulated":
        raise ExecError(f"cannot rebuild a backend from spec {spec!r}")
    if len(spec) == 6:
        _kind, platform, serial, step_v, latency_s, shared = spec
    else:
        _kind, platform, serial, step_v, latency_s = spec
        shared = None
    chip = FpgaChip.build(platform, serial=serial)
    backend = SimulatedBackend(chip=chip, step_v=step_v, latency_s=latency_s)
    if shared is not None:
        from .shm import attach_table

        backend.fault_field.batch.adopt_table(attach_table(shared))
    return backend


__all__ = [
    "ReplayBackend",
    "SimulatedBackend",
    "backend_from_spec",
    "rail_thresholds",
]
