"""Host controller: initialize BRAMs, read them back, analyse faults.

Fig. 2 of the paper splits the setup into a hardware side (the FPGA design
that dumps BRAM contents over a serial link) and a software side (the host
that programs the regulator over PMBUS, initializes the BRAMs, and analyses
the returned data).  The read-back interface is verified to be reliable at
any ``VCCBRAM`` — only the BRAM *contents* are affected by undervolting.

:class:`HostController` is that software side.  It owns the chip, the fault
field that corrupts read-back data below ``Vmin``, and the PMBUS adapter; the
sweep drivers in :mod:`repro.harness.sweep` are written on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.batch import cached_fault_field
from repro.core.faultmodel import FaultField, FaultRecord
from repro.fpga.bitstream import ConfiguredDevice, CrashError, Design, compile_design
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM

from .pmbus import PmbusAdapter


class HostError(RuntimeError):
    """Raised for invalid host-controller operations."""


@dataclass
class HostController:
    """Software host of the undervolting setup (Fig. 2, right-hand side).

    Parameters
    ----------
    chip:
        Board under test.
    fault_field:
        Fault model corrupting read-back data; defaults to the calibrated
        field for the chip's platform.
    device:
        Configured-device wrapper tracking DONE/crash state; defaults to one
        whose crash voltage comes from the fault field's calibration.
    """

    chip: FpgaChip
    fault_field: Optional[FaultField] = None
    device: Optional[ConfiguredDevice] = None
    adapter: Optional[PmbusAdapter] = None
    current_pattern: "str | int" = 0xFFFF

    def __post_init__(self) -> None:
        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)
        if self.adapter is None:
            self.adapter = PmbusAdapter(self.chip)
        if self.device is None:
            self.device = ConfiguredDevice(
                chip=self.chip,
                crash_voltage_v=self.fault_field.calibration.vcrash_bram_v,
            )
        if self.device.bitstream is None:
            # The BRAM read-back design of Fig. 2: a serial bridge plus the
            # read-back logic.  It claims no BRAM blocks of its own (it dumps
            # the whole pool directly) and a token amount of logic.
            readback = Design(name="bram-readback", lut_used=0, ff_used=0, dsp_used=0)
            self.device.program(compile_design(readback, self.chip))

    # ------------------------------------------------------------------
    # Rail control (PMBUS path)
    # ------------------------------------------------------------------
    def set_vccbram(self, volts: float) -> float:
        """Program the BRAM rail through the PMBUS adapter."""
        return self.adapter.vout_command(VCCBRAM, volts)

    def undervolt_step(self, step_v: float = 0.010) -> float:
        """Lower VCCBRAM by one sweep step (Listing 1, line 9)."""
        return self.set_vccbram(self.chip.vccbram - step_v)

    @property
    def temperature_c(self) -> float:
        """Current on-board temperature."""
        return self.chip.board_temperature_c

    # ------------------------------------------------------------------
    # BRAM initialization and read-back
    # ------------------------------------------------------------------
    def initialize_brams(self, pattern: "str | int" = 0xFFFF) -> None:
        """Fill every BRAM with an initial data pattern (host -> FPGA)."""
        self.chip.brams.fill_all(pattern)
        self.current_pattern = pattern

    def read_bram(self, bram_index: int, run_index: Optional[int] = None) -> np.ndarray:
        """Read one BRAM back through the (reliable) serial interface.

        The returned image is the stored content corrupted by whatever the
        fault field dictates at the current voltage and temperature.
        """
        self.device.check_operational()
        stored = self.chip.brams[bram_index].dump()
        return self.fault_field.observed_image(
            bram_index,
            stored,
            self.chip.vccbram,
            temperature_c=self.temperature_c,
            run_index=run_index,
        )

    def analyze_bram(self, bram_index: int, run_index: Optional[int] = None) -> List[FaultRecord]:
        """Read one BRAM and return the faulty bitcells (rate and location)."""
        observed = self.read_bram(bram_index, run_index=run_index)
        stored = self.chip.brams[bram_index].dump()
        records: List[FaultRecord] = []
        rows, cols = np.nonzero(stored != observed)
        for row, col in zip(rows, cols):
            records.append(
                FaultRecord(
                    bram_index=bram_index,
                    row=int(row),
                    col=int(col),
                    expected_bit=int(stored[row, col]),
                    observed_bit=int(observed[row, col]),
                )
            )
        return records

    def count_chip_faults(self, run_index: Optional[int] = None) -> int:
        """Count faults across the whole BRAM pool for the current pattern.

        Uses the fault field's vectorized counting path (equivalent to reading
        every BRAM one-by-one and diffing, which the bit-level tests verify on
        samples) so that 100-run sweeps over thousands of BRAMs stay fast.
        """
        self.device.check_operational()
        return self.fault_field.chip_fault_count(
            self.chip.vccbram,
            temperature_c=self.temperature_c,
            run_index=run_index,
            pattern=self.current_pattern,
        )

    def count_chip_faults_over_runs(self, n_runs: int) -> np.ndarray:
        """Chip-level fault counts for ``n_runs`` read-back passes.

        One batched query over the run axis at the current operating point —
        equivalent to calling :meth:`count_chip_faults` once per run index.
        """
        self.device.check_operational()
        return self.fault_field.counts_over_runs(
            self.chip.vccbram,
            n_runs,
            temperature_c=self.temperature_c,
            pattern=self.current_pattern,
        )

    def per_bram_fault_counts(self, run_index: Optional[int] = None) -> np.ndarray:
        """Fault count of every BRAM at the current operating point."""
        self.device.check_operational()
        return self.fault_field.per_bram_counts(
            self.chip.vccbram,
            temperature_c=self.temperature_c,
            run_index=run_index,
            pattern=self.current_pattern,
        )

    def is_operational(self) -> bool:
        """Whether the configured design still responds (DONE asserted)."""
        try:
            self.device.check_operational()
        except CrashError:
            return False
        return True

    def recover_from_crash(self) -> None:
        """Power-cycle and reprogram after driving the board below Vcrash."""
        self.adapter.operation_soft_off()
        self.adapter.operation_on()
        self.device.recover()
