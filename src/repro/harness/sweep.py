"""Voltage-sweep drivers implementing the paper's measurement loops.

Two loops matter:

* the **guardband discovery** sweep of Fig. 1: start at the nominal voltage
  and walk each rail down in 10 mV steps until the design crashes, noting the
  lowest fault-free voltage (``Vmin``) and the lowest operational voltage
  (``Vcrash``);
* the **critical-region characterization** loop of Listing 1: for every
  voltage between ``Vmin`` and ``Vcrash``, read the whole BRAM pool back 100
  times, analyse fault rate and location, record power, step down 10 mV and
  repeat.

Both are implemented here on top of :class:`repro.harness.host.HostController`
and return the typed records of :mod:`repro.harness.records`, which the
benchmarks turn into the paper's tables and figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import PlatformCalibration, get_calibration
from repro.core.faultmodel import FaultField
from repro.core.fvm import FaultVariationMap
from repro.core.guardband import GuardbandResult, SweepObservation, detect_guardband
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM, VCCINT

from .environment import HeatChamber
from .host import HostController
from .powermeter import PowerMeter
from .records import GuardbandMeasurement, RunObservation, SweepResult, VoltageStepResult


class SweepError(RuntimeError):
    """Raised for invalid sweep configurations."""


@dataclass
class UndervoltingExperiment:
    """The end-to-end undervolting experiment on one board.

    Parameters
    ----------
    chip:
        Board under test; a fresh chip is normally built per experiment.
    fault_field:
        Fault model; defaults to the calibrated field for the platform.
    runs_per_step:
        Read-back repetitions per voltage step.  The paper uses 100; smaller
        values keep the benchmarks quick and the statistics are unaffected in
        expectation.
    """

    chip: FpgaChip
    fault_field: Optional[FaultField] = None
    host: Optional[HostController] = None
    power_meter: Optional[PowerMeter] = None
    runs_per_step: int = 100
    step_v: float = DEFAULT_STEP_V

    def __post_init__(self) -> None:
        if self.runs_per_step < 1:
            raise SweepError("runs_per_step must be at least 1")
        if self.fault_field is None:
            self.fault_field = FaultField(self.chip)
        if self.host is None:
            self.host = HostController(self.chip, fault_field=self.fault_field)
        if self.power_meter is None:
            self.power_meter = PowerMeter(self.chip, calibration=self.fault_field.calibration)

    # ------------------------------------------------------------------
    @property
    def calibration(self) -> PlatformCalibration:
        """Calibration backing the fault field."""
        return self.fault_field.calibration

    def _int_fault_count(self, vccint_v: float) -> int:
        """Observable logic faults when undervolting VCCINT (Fig. 1b).

        The paper does not characterize VCCINT faults bit-by-bit (the rail
        feeds LUTs, DSPs and routing, which cannot be read back like BRAMs);
        it only locates the SAFE/CRITICAL/CRASH boundaries.  The reproduction
        models the observable fault count with the same exponential-onset
        shape anchored at the calibrated VCCINT thresholds.
        """
        cal = self.calibration
        if vccint_v >= cal.vmin_int_v:
            return 0
        window = cal.vmin_int_v - cal.vcrash_int_v
        slope = math.log(500.0) / window
        return int(round(2.0 * math.exp(slope * (cal.vmin_int_v - vccint_v) - slope * self.step_v)))

    # ------------------------------------------------------------------
    # Guardband discovery (Fig. 1)
    # ------------------------------------------------------------------
    def discover_guardband(
        self,
        rail: str = VCCBRAM,
        pattern: "str | int" = 0xFFFF,
        probe_runs: int = 3,
    ) -> Tuple[GuardbandMeasurement, SweepResult]:
        """Walk one rail down from nominal until the design stops operating."""
        cal = self.calibration
        if rail == VCCBRAM:
            vmin_true, vcrash_true = cal.vmin_bram_v, cal.vcrash_bram_v
        elif rail == VCCINT:
            vmin_true, vcrash_true = cal.vmin_int_v, cal.vcrash_int_v
        else:
            raise SweepError(f"unsupported rail {rail!r}")

        self.host.initialize_brams(pattern)
        result = SweepResult(platform=self.chip.name, rail=rail, pattern=str(pattern))
        observations: List[SweepObservation] = []
        voltage = cal.vnom_v
        crashed_at: Optional[float] = None
        while voltage > 0.3:
            operational = voltage >= vcrash_true - 1e-9
            if rail == VCCBRAM:
                self.chip.set_vccbram(max(voltage, 0.40))
                counts = (
                    [self.host.count_chip_faults(run_index=r) for r in range(probe_runs)]
                    if operational
                    else []
                )
            else:
                self.chip.set_vccint(max(voltage, 0.40))
                counts = [self._int_fault_count(voltage)] * probe_runs if operational else []
            step = VoltageStepResult(
                voltage_v=voltage,
                temperature_c=self.chip.board_temperature_c,
                runs=[RunObservation(run_index=r, fault_count=c) for r, c in enumerate(counts)],
                bram_power_w=self.power_meter.read_bram_power_w(voltage) if rail == VCCBRAM else None,
                operational=operational,
                total_mbits=self.chip.brams.total_mbits,
            )
            result.steps.append(step)
            observations.append(
                SweepObservation(
                    voltage_v=voltage,
                    fault_count=int(step.median_fault_count),
                    operational=operational,
                )
            )
            if not operational:
                crashed_at = voltage
                break
            voltage = round(voltage - self.step_v, 4)

        result.crashed_at_v = crashed_at
        guardband: GuardbandResult = detect_guardband(observations, nominal_v=cal.vnom_v)
        reduction = self.power_meter.bram_reduction_factor(cal.vnom_v, guardband.vmin_v)
        measurement = GuardbandMeasurement(
            platform=self.chip.name,
            rail=rail,
            nominal_v=cal.vnom_v,
            vmin_v=guardband.vmin_v,
            vcrash_v=guardband.vcrash_v,
            power_reduction_factor_at_vmin=reduction,
        )
        # Leave the board in a sane state for whatever runs next.
        self.chip.regulator.reset_all()
        self.host.recover_from_crash()
        return measurement, result

    # ------------------------------------------------------------------
    # Critical-region characterization (Listing 1, Fig. 3)
    # ------------------------------------------------------------------
    def critical_region_sweep(
        self,
        pattern: "str | int" = 0xFFFF,
        n_runs: Optional[int] = None,
        start_v: Optional[float] = None,
        stop_v: Optional[float] = None,
        collect_per_bram: bool = False,
        temperature_c: Optional[float] = None,
    ) -> SweepResult:
        """Listing 1: sweep VCCBRAM from ``Vmin`` down to ``Vcrash``.

        Every step reads the pool ``n_runs`` times (vectorized through the
        fault field), records the median fault rate, optionally the per-BRAM
        counts (for FVM construction) and the BRAM power.
        """
        cal = self.calibration
        n_runs = self.runs_per_step if n_runs is None else n_runs
        if n_runs < 1:
            raise SweepError("n_runs must be at least 1")
        start = cal.vmin_bram_v if start_v is None else start_v
        stop = cal.vcrash_bram_v if stop_v is None else stop_v
        if stop > start:
            raise SweepError("critical-region sweep must go downward")
        if temperature_c is not None:
            self.chip.set_temperature(temperature_c)

        self.host.initialize_brams(pattern)
        result = SweepResult(platform=self.chip.name, rail=VCCBRAM, pattern=str(pattern))
        voltage = start
        while voltage >= stop - 1e-9:
            self.chip.set_vccbram(voltage)
            counts = self.fault_field.counts_over_runs(
                voltage,
                n_runs,
                temperature_c=self.chip.board_temperature_c,
                pattern=pattern,
            )
            per_bram = None
            if collect_per_bram:
                per_bram = tuple(
                    int(c)
                    for c in self.fault_field.per_bram_counts(
                        voltage,
                        temperature_c=self.chip.board_temperature_c,
                        pattern=pattern,
                    )
                )
            step = VoltageStepResult(
                voltage_v=voltage,
                temperature_c=self.chip.board_temperature_c,
                runs=[RunObservation(run_index=r, fault_count=int(c)) for r, c in enumerate(counts)],
                per_bram_counts=per_bram,
                bram_power_w=self.power_meter.read_bram_power_w(voltage),
                operational=True,
                total_mbits=self.chip.brams.total_mbits,
            )
            result.steps.append(step)
            self.chip.soft_reset()
            voltage = round(voltage - self.step_v, 4)
        self.chip.set_vccbram(cal.vnom_v)
        return result

    # ------------------------------------------------------------------
    # Fault Variation Map extraction (Figs. 6 and 7)
    # ------------------------------------------------------------------
    def extract_fvm(
        self,
        pattern: "str | int" = 0xFFFF,
        voltages: Optional[Sequence[float]] = None,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> FaultVariationMap:
        """Build the chip's FVM by sweeping the critical region once."""
        cal = self.calibration
        if voltages is None:
            voltages = []
            voltage = cal.vmin_bram_v
            while voltage >= cal.vcrash_bram_v - 1e-9:
                voltages.append(round(voltage, 4))
                voltage -= self.step_v
        counts_by_voltage = [
            [
                int(c)
                for c in self.fault_field.per_bram_counts(
                    voltage, temperature_c=temperature_c, pattern=pattern
                )
            ]
            for voltage in voltages
        ]
        return FaultVariationMap.from_counts(
            platform=self.chip.name,
            floorplan=self.chip.floorplan,
            voltages_v=voltages,
            counts_by_voltage=counts_by_voltage,
            bram_bits=self.chip.spec.bram_rows * self.chip.spec.bram_cols,
        )

    # ------------------------------------------------------------------
    # Temperature study (Fig. 8)
    # ------------------------------------------------------------------
    def temperature_sweep(
        self,
        temperatures_c: Sequence[float],
        pattern: "str | int" = 0xFFFF,
        n_runs: int = 5,
    ) -> Dict[float, SweepResult]:
        """Repeat the critical-region sweep at several chamber temperatures."""
        if not temperatures_c:
            raise SweepError("at least one temperature is required")
        chamber = HeatChamber(self.chip)
        results: Dict[float, SweepResult] = {}
        for target in temperatures_c:
            chamber.go_to(target)
            results[float(target)] = self.critical_region_sweep(
                pattern=pattern, n_runs=n_runs
            )
        chamber.go_to(REFERENCE_TEMPERATURE_C)
        return results
