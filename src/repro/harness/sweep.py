"""Voltage-sweep drivers implementing the paper's measurement loops.

Two loops matter:

* the **guardband discovery** sweep of Fig. 1: start at the nominal voltage
  and walk each rail down in 10 mV steps until the design crashes, noting the
  lowest fault-free voltage (``Vmin``) and the lowest operational voltage
  (``Vcrash``);
* the **critical-region characterization** loop of Listing 1: for every
  voltage between ``Vmin`` and ``Vcrash``, read the whole BRAM pool back 100
  times, analyse fault rate and location, record power, step down 10 mV and
  repeat.

Both are implemented here on top of :class:`repro.harness.host.HostController`
and return the typed records of :mod:`repro.harness.records`, which the
benchmarks turn into the paper's tables and figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import (
    BatchGridResult,
    OperatingGrid,
    cached_fault_field,
    power_curve,
    voltage_ladder,
)
from repro.core.calibration import PlatformCalibration, get_calibration
from repro.core.faultmodel import FaultField
from repro.core.fvm import FaultVariationMap
from repro.core.guardband import GuardbandResult, SweepObservation, detect_guardband
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM, VCCINT

from .environment import HeatChamber
from .host import HostController
from .powermeter import PowerMeter
from .records import GuardbandMeasurement, RunObservation, SweepResult, VoltageStepResult


class SweepError(RuntimeError):
    """Raised for invalid sweep configurations."""


@dataclass
class UndervoltingExperiment:
    """The end-to-end undervolting experiment on one board.

    Parameters
    ----------
    chip:
        Board under test; a fresh chip is normally built per experiment.
    fault_field:
        Fault model; defaults to the calibrated field for the platform.
    runs_per_step:
        Read-back repetitions per voltage step.  The paper uses 100; smaller
        values keep the benchmarks quick and the statistics are unaffected in
        expectation.
    """

    chip: FpgaChip
    fault_field: Optional[FaultField] = None
    host: Optional[HostController] = None
    power_meter: Optional[PowerMeter] = None
    runs_per_step: int = 100
    step_v: float = DEFAULT_STEP_V

    def __post_init__(self) -> None:
        if self.runs_per_step < 1:
            raise SweepError("runs_per_step must be at least 1")
        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)
        if self.host is None:
            self.host = HostController(self.chip, fault_field=self.fault_field)
        if self.power_meter is None:
            self.power_meter = PowerMeter(self.chip, calibration=self.fault_field.calibration)

    # ------------------------------------------------------------------
    @property
    def calibration(self) -> PlatformCalibration:
        """Calibration backing the fault field."""
        return self.fault_field.calibration

    def _int_fault_count(self, vccint_v: float) -> int:
        """Observable logic faults when undervolting VCCINT (Fig. 1b).

        The paper does not characterize VCCINT faults bit-by-bit (the rail
        feeds LUTs, DSPs and routing, which cannot be read back like BRAMs);
        it only locates the SAFE/CRITICAL/CRASH boundaries.  The reproduction
        models the observable fault count with the same exponential-onset
        shape anchored at the calibrated VCCINT thresholds.
        """
        cal = self.calibration
        if vccint_v >= cal.vmin_int_v:
            return 0
        window = cal.vmin_int_v - cal.vcrash_int_v
        slope = math.log(500.0) / window
        return int(round(2.0 * math.exp(slope * (cal.vmin_int_v - vccint_v) - slope * self.step_v)))

    # ------------------------------------------------------------------
    # Guardband discovery (Fig. 1)
    # ------------------------------------------------------------------
    def discover_guardband(
        self,
        rail: str = VCCBRAM,
        pattern: "str | int" = 0xFFFF,
        probe_runs: int = 3,
    ) -> Tuple[GuardbandMeasurement, SweepResult]:
        """Walk one rail down from nominal until the design stops operating."""
        cal = self.calibration
        if rail == VCCBRAM:
            vmin_true, vcrash_true = cal.vmin_bram_v, cal.vcrash_bram_v
        elif rail == VCCINT:
            vmin_true, vcrash_true = cal.vmin_int_v, cal.vcrash_int_v
        else:
            raise SweepError(f"unsupported rail {rail!r}")

        self.host.initialize_brams(pattern)
        result = SweepResult(platform=self.chip.name, rail=rail, pattern=str(pattern))
        observations: List[SweepObservation] = []
        voltage = cal.vnom_v
        crashed_at: Optional[float] = None
        while voltage > 0.3:
            operational = voltage >= vcrash_true - 1e-9
            if rail == VCCBRAM:
                self.chip.set_vccbram(max(voltage, 0.40))
                counts = (
                    [int(c) for c in self.host.count_chip_faults_over_runs(probe_runs)]
                    if operational
                    else []
                )
            else:
                self.chip.set_vccint(max(voltage, 0.40))
                counts = [self._int_fault_count(voltage)] * probe_runs if operational else []
            step = VoltageStepResult(
                voltage_v=voltage,
                temperature_c=self.chip.board_temperature_c,
                runs=[RunObservation(run_index=r, fault_count=c) for r, c in enumerate(counts)],
                bram_power_w=self.power_meter.read_bram_power_w(voltage) if rail == VCCBRAM else None,
                operational=operational,
                total_mbits=self.chip.brams.total_mbits,
            )
            result.steps.append(step)
            observations.append(
                SweepObservation(
                    voltage_v=voltage,
                    fault_count=int(step.median_fault_count),
                    operational=operational,
                )
            )
            if not operational:
                crashed_at = voltage
                break
            voltage = round(voltage - self.step_v, 4)

        result.crashed_at_v = crashed_at
        guardband: GuardbandResult = detect_guardband(observations, nominal_v=cal.vnom_v)
        reduction = self.power_meter.bram_reduction_factor(cal.vnom_v, guardband.vmin_v)
        measurement = GuardbandMeasurement(
            platform=self.chip.name,
            rail=rail,
            nominal_v=cal.vnom_v,
            vmin_v=guardband.vmin_v,
            vcrash_v=guardband.vcrash_v,
            power_reduction_factor_at_vmin=reduction,
        )
        # Leave the board in a sane state for whatever runs next.
        self.chip.regulator.reset_all()
        self.host.recover_from_crash()
        return measurement, result

    # ------------------------------------------------------------------
    # Critical-region characterization (Listing 1, Fig. 3)
    # ------------------------------------------------------------------
    def critical_region_sweep(
        self,
        pattern: "str | int" = 0xFFFF,
        n_runs: Optional[int] = None,
        start_v: Optional[float] = None,
        stop_v: Optional[float] = None,
        collect_per_bram: bool = False,
        temperature_c: Optional[float] = None,
    ) -> SweepResult:
        """Listing 1: sweep VCCBRAM from ``Vmin`` down to ``Vcrash``.

        The whole (voltage x run) grid is evaluated in one call through the
        batch engine — a single sorted-threshold query replaces the per-step
        per-BRAM loops — and the result is unpacked back into the per-step
        records the analyses consume.  The per-step rail programming and soft
        reset of Listing 1 are still issued so the simulated hardware sees
        the same command sequence as before.
        """
        cal = self.calibration
        n_runs = self.runs_per_step if n_runs is None else n_runs
        if n_runs < 1:
            raise SweepError("n_runs must be at least 1")
        start = cal.vmin_bram_v if start_v is None else start_v
        stop = cal.vcrash_bram_v if stop_v is None else stop_v
        if stop > start:
            raise SweepError("critical-region sweep must go downward")
        if temperature_c is not None:
            self.chip.set_temperature(temperature_c)

        self.host.initialize_brams(pattern)
        voltages = self._descending_voltages(start, stop)
        temperature = self.chip.board_temperature_c
        grid = OperatingGrid.from_axes(voltages, (temperature,), runs=n_runs)
        counts = self.fault_field.batch.chip_counts(grid, pattern)
        per_bram_matrix = None
        if collect_per_bram:
            per_bram_matrix = self.fault_field.batch.per_bram_counts(
                OperatingGrid.from_axes(voltages, (temperature,)), pattern
            )[:, 0, 0, :]
        powers = power_curve(
            self.power_meter.bram_model, voltages, self.power_meter.bram_utilization
        )

        result = SweepResult(platform=self.chip.name, rail=VCCBRAM, pattern=str(pattern))
        for index, voltage in enumerate(voltages):
            self.chip.set_vccbram(voltage)
            step = VoltageStepResult(
                voltage_v=voltage,
                temperature_c=temperature,
                runs=[
                    RunObservation(run_index=r, fault_count=int(c))
                    for r, c in enumerate(counts[index, 0, :])
                ],
                per_bram_counts=(
                    tuple(int(c) for c in per_bram_matrix[index])
                    if per_bram_matrix is not None
                    else None
                ),
                bram_power_w=float(powers[index]),
                operational=True,
                total_mbits=self.chip.brams.total_mbits,
            )
            result.steps.append(step)
            self.chip.soft_reset()
        self.chip.set_vccbram(cal.vnom_v)
        return result

    def _descending_voltages(self, start: float, stop: float) -> List[float]:
        """The 10 mV (``step_v``) ladder from ``start`` down to ``stop``."""
        return list(voltage_ladder(start, stop, self.step_v))

    # ------------------------------------------------------------------
    # Batched grid evaluation (the scenario fan-out entry point)
    # ------------------------------------------------------------------
    def grid_sweep(
        self,
        voltages_v: Optional[Sequence[float]] = None,
        temperatures_c: Optional[Sequence[float]] = None,
        n_runs: Optional[int] = None,
        pattern: "str | int" = 0xFFFF,
    ) -> BatchGridResult:
        """Evaluate a whole (voltage x temperature x run) operating grid.

        This is the first-class batched API: every scenario in the cross
        product is evaluated in one NumPy pass, with no per-step hardware
        mutation — ideal for wide scenario exploration, and the path the
        batch-engine benchmark measures.  Defaults cover the critical region
        at the reference temperature with ``runs_per_step`` runs.
        """
        if voltages_v is None:
            cal = self.calibration
            voltages_v = self._descending_voltages(cal.vmin_bram_v, cal.vcrash_bram_v)
        grid = OperatingGrid.from_axes(
            voltages_v,
            temperatures_c,
            runs=self.runs_per_step if n_runs is None else n_runs,
        )
        counts = self.fault_field.batch.chip_counts(grid, pattern)
        powers = power_curve(
            self.power_meter.bram_model, grid.voltages_v, self.power_meter.bram_utilization
        )
        return BatchGridResult(
            grid=grid,
            chip_counts=counts,
            total_mbits=self.chip.brams.total_mbits,
            pattern=str(pattern),
            bram_power_w=powers,
        )

    # ------------------------------------------------------------------
    # Fault Variation Map extraction (Figs. 6 and 7)
    # ------------------------------------------------------------------
    def extract_fvm(
        self,
        pattern: "str | int" = 0xFFFF,
        voltages: Optional[Sequence[float]] = None,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> FaultVariationMap:
        """Build the chip's FVM by sweeping the critical region once.

        The whole (voltage x BRAM) count matrix comes out of a single batched
        per-BRAM evaluation; no per-voltage Python loop remains.
        """
        cal = self.calibration
        if voltages is None:
            voltages = [
                round(v, 4)
                for v in self._descending_voltages(cal.vmin_bram_v, cal.vcrash_bram_v)
            ]
        grid = OperatingGrid.from_axes(voltages, (temperature_c,))
        matrix = self.fault_field.batch.per_bram_counts(grid, pattern)[:, 0, 0, :]
        return FaultVariationMap.from_matrix(
            platform=self.chip.name,
            floorplan=self.chip.floorplan,
            voltages_v=list(voltages),
            counts=matrix,
            bram_bits=self.chip.spec.bram_rows * self.chip.spec.bram_cols,
        )

    # ------------------------------------------------------------------
    # Temperature study (Fig. 8)
    # ------------------------------------------------------------------
    def temperature_sweep(
        self,
        temperatures_c: Sequence[float],
        pattern: "str | int" = 0xFFFF,
        n_runs: int = 5,
    ) -> Dict[float, SweepResult]:
        """Repeat the critical-region sweep at several chamber temperatures."""
        if not temperatures_c:
            raise SweepError("at least one temperature is required")
        chamber = HeatChamber(self.chip)
        results: Dict[float, SweepResult] = {}
        for target in temperatures_c:
            chamber.go_to(target)
            results[float(target)] = self.critical_region_sweep(
                pattern=pattern, n_runs=n_runs
            )
        chamber.go_to(REFERENCE_TEMPERATURE_C)
        return results
