"""Voltage-sweep drivers implementing the paper's measurement loops.

Two loops matter:

* the **guardband discovery** sweep of Fig. 1: start at the nominal voltage
  and walk each rail down in 10 mV steps until the design crashes, noting the
  lowest fault-free voltage (``Vmin``) and the lowest operational voltage
  (``Vcrash``);
* the **critical-region characterization** loop of Listing 1: for every
  voltage between ``Vmin`` and ``Vcrash``, read the whole BRAM pool back 100
  times, analyse fault rate and location, record power, step down 10 mV and
  repeat.

Both are implemented here on top of :class:`repro.harness.host.HostController`
and return the typed records of :mod:`repro.harness.records`, which the
benchmarks turn into the paper's tables and figures.

Each loop exists in two search modes.  The **exhaustive** drivers walk every
grid point, exactly as the paper's Listing 1 does.  The **adaptive** variants
(:meth:`UndervoltingExperiment.discover_guardband_adaptive` and the
``cache=`` parameters of the region sweeps) find the same grid answers with
certified bisection (:mod:`repro.search`) plus a shared
:class:`~repro.search.EvalCache`, and report their evaluation cost as a
:class:`~repro.search.SearchReport`; ``docs/adaptive_search.md`` documents
the equivalence argument.

Every operating-point evaluation either mode performs goes through the
experiment's :class:`~repro.exec.ExecutionEngine` — the probing primitive
itself lives in :class:`repro.exec.SimulatedBackend`, the cache sits behind
the engine, and the pure sweep kinds (critical region, FVM) parallelize
over the engine's thread/process schedulers without changing a single bit
of output (``docs/architecture.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import (
    BatchGridResult,
    OperatingGrid,
    cached_fault_field,
    power_curve,
    voltage_ladder,
)
from repro.core.calibration import PlatformCalibration
from repro.core.faultmodel import FaultField
from repro.core.fvm import FaultVariationMap
from repro.core.guardband import GuardbandResult, SweepObservation, detect_guardband
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.exec import (
    FVM,
    PROBE,
    REGION,
    EvalRequest,
    ExecError,
    ExecutionEngine,
    SimulatedBackend,
    rail_thresholds,
)
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM
from repro.search import (
    BisectionCertificate,
    BracketHint,
    EvalCache,
    PointEvaluation,
    SearchReport,
    ThresholdBisector,
    WarmStartModel,
)

from .environment import HeatChamber
from .host import HostController
from .powermeter import PowerMeter
from .records import GuardbandMeasurement, RunObservation, SweepResult, VoltageStepResult


class SweepError(RuntimeError):
    """Raised for invalid sweep configurations."""


@dataclass(frozen=True)
class GuardbandPlanOutcome:
    """Everything one completed guardband plan discovered.

    ``evaluated`` maps probed ladder indices to their evaluations (the
    sparse walk); the certificates prove the Vmin/Vcrash boundaries equal
    the exhaustive grid answers.  ``vcrash_certificate`` is ``None`` when
    no fault-free point exists (the exhaustive walk's error path).
    """

    evaluated: Dict[int, PointEvaluation]
    certificates: Tuple[BisectionCertificate, ...]
    vmin_certificate: BisectionCertificate
    vcrash_certificate: Optional[BisectionCertificate]
    n_exhaustive_equivalent: int


def guardband_plan(
    ladder: Sequence[float],
    vmin_hint: Optional[BracketHint] = None,
    vcrash_hint: Optional[BracketHint] = None,
) -> Generator[int, Tuple[PointEvaluation, bool], GuardbandPlanOutcome]:
    """The Fig. 1 adaptive discovery as a resumable probe plan.

    Yields the ladder indices that need probing, in exactly the order the
    sequential :meth:`UndervoltingExperiment.discover_guardband_adaptive`
    driver would probe them; the caller sends back ``(point,
    served_from_cache)`` for each.  The plan chains the certified Vmin
    bisection into the Vcrash bisection (sharing every evaluated point and
    anchoring the crash bracket at the lowest fault-free voltage) and
    returns a :class:`GuardbandPlanOutcome` as the ``StopIteration`` value.

    Separating the *plan* (which indices, in which order) from the *probe*
    (who answers them) is what lets :func:`repro.harness.fleet.\
discover_guardband_fleet` hold one plan per die open concurrently and
    answer whole waves of pending probes with a single batched kernel call
    — while this generator guarantees, by construction, that every die
    still runs the exact sequential search.
    """
    evaluated: Dict[int, PointEvaluation] = {}

    def drive(
        steps: Generator[int, Tuple[bool, bool], BisectionCertificate],
        predicate_of: Callable[[PointEvaluation], bool],
    ) -> Generator[int, Tuple[PointEvaluation, bool], BisectionCertificate]:
        # Bridge the bisector's (predicate, from_cache) protocol onto the
        # plan's (point, from_cache) protocol, memoizing evaluations so the
        # Vcrash search reuses every point the Vmin search paid for.
        try:
            index = next(steps)
            while True:
                if index in evaluated:
                    answer = (predicate_of(evaluated[index]), True)
                else:
                    point, from_cache = yield index
                    evaluated[index] = point
                    answer = (predicate_of(point), from_cache)
                index = steps.send(answer)
        except StopIteration as stop:
            return stop.value

    vmin_cert = yield from drive(
        ThresholdBisector(ladder).search_steps("vmin", vmin_hint),
        lambda point: point.fault_free,
    )
    certificates = [vmin_cert]
    if vmin_cert.boundary_index > 0:
        # The lowest fault-free point is operational, so it anchors the
        # true side of the Vcrash bracket for free (already evaluated).
        hint = vcrash_hint
        if hint is None or hint.is_cold:
            hint = BracketHint(above_v=vmin_cert.boundary_voltage_above)
        vcrash_cert: Optional[BisectionCertificate] = yield from drive(
            ThresholdBisector(ladder).search_steps("vcrash", hint),
            lambda point: point.operational,
        )
        certificates.append(vcrash_cert)
        n_exhaustive = min(vcrash_cert.boundary_index + 1, len(ladder))
    else:
        # No fault-free point exists: the exhaustive walk would still
        # have walked to the crash; mirror its error path downstream.
        vcrash_cert = None
        n_exhaustive = len(ladder)
    return GuardbandPlanOutcome(
        evaluated=evaluated,
        certificates=tuple(certificates),
        vmin_certificate=vmin_cert,
        vcrash_certificate=vcrash_cert,
        n_exhaustive_equivalent=n_exhaustive,
    )


@dataclass(frozen=True)
class AdaptiveGuardbandResult:
    """Outcome of one certified adaptive guardband discovery on one rail.

    ``measurement`` is bit-identical to what the exhaustive walk reports on
    the same grid; ``sweep`` holds only the probed voltage steps (sparse,
    descending); ``report`` carries the evaluation accounting plus the
    bisection certificates proving grid equivalence.
    """

    measurement: GuardbandMeasurement
    sweep: SweepResult
    report: SearchReport


@dataclass
class UndervoltingExperiment:
    """The end-to-end undervolting experiment on one board.

    Parameters
    ----------
    chip:
        Board under test; a fresh chip is normally built per experiment.
    fault_field:
        Fault model; defaults to the calibrated field for the platform.
    runs_per_step:
        Read-back repetitions per voltage step.  The paper uses 100; smaller
        values keep the benchmarks quick and the statistics are unaffected in
        expectation.
    """

    chip: FpgaChip
    fault_field: Optional[FaultField] = None
    host: Optional[HostController] = None
    power_meter: Optional[PowerMeter] = None
    runs_per_step: int = 100
    step_v: float = DEFAULT_STEP_V
    #: Execution engine every operating-point evaluation routes through.
    #: ``None`` builds one over a :class:`~repro.exec.SimulatedBackend`
    #: sharing this experiment's chip/host/power-meter instances; pass an
    #: engine explicitly to replay recorded evaluations or share a backend.
    engine: Optional[ExecutionEngine] = None
    #: Scheduling of the engine built when ``engine`` is ``None`` (the pure
    #: sweep kinds shard over it; results are scheduler-independent).
    scheduler: str = "serial"
    jobs: int = 1
    #: Whether the built engine may answer pure miss batches through the
    #: backend's ``evaluate_batch`` (bit-identical; see ``--no-batch``).
    batch: bool = True

    #: Total operating-point probes this experiment has performed (the
    #: guardband-walk unit of cost; reset it freely between measurements).
    n_point_evaluations: int = field(default=0, init=False)
    #: Evaluation accounting of the most recent sweep/discovery call.
    last_search_report: Optional[SearchReport] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.runs_per_step < 1:
            raise SweepError("runs_per_step must be at least 1")
        customized = not (
            self.fault_field is None and self.host is None and self.power_meter is None
        )
        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)
        if self.host is None:
            self.host = HostController(self.chip, fault_field=self.fault_field)
        if self.power_meter is None:
            self.power_meter = PowerMeter(self.chip, calibration=self.fault_field.calibration)
        if self.engine is None:
            backend = SimulatedBackend(
                chip=self.chip,
                fault_field=self.fault_field,
                host=self.host,
                power_meter=self.power_meter,
                step_v=self.step_v,
                spec_buildable=not customized,
            )
            self.engine = ExecutionEngine(
                backend, scheduler=self.scheduler, jobs=self.jobs, batch=self.batch
            )
        elif (
            self.engine.platform != self.chip.name
            or self.engine.serial != self.chip.spec.serial_number
        ):
            raise SweepError(
                f"engine backend is die {self.engine.platform}/"
                f"{self.engine.serial}, experiment chip is "
                f"{self.chip.name}/{self.chip.spec.serial_number}"
            )

    # ------------------------------------------------------------------
    @property
    def calibration(self) -> PlatformCalibration:
        """Calibration backing the fault field."""
        return self.fault_field.calibration

    # ------------------------------------------------------------------
    # Engine plumbing (the probe primitive lives in repro.exec)
    # ------------------------------------------------------------------
    def _rail_thresholds(self, rail: str) -> Tuple[float, float]:
        """Calibrated (Vmin, Vcrash) of one rail; rejects unknown rails."""
        try:
            return rail_thresholds(self.calibration, rail)
        except ExecError as exc:
            raise SweepError(str(exc)) from None

    def _engine_for(self, cache: Optional[EvalCache]) -> ExecutionEngine:
        """The engine serving one driver call.

        ``None`` (and the engine's own cache) use the experiment's engine
        directly; an explicitly passed cache gets a throwaway cache-variant
        engine sharing the same backend, scheduling and telemetry counters
        (a variant is three references and a frozen scheduler config, so
        there is nothing worth memoizing), keeping the legacy ``cache=``
        call signatures working while the cache itself lives behind the
        engine.
        """
        if cache is None or cache is self.engine.cache:
            return self.engine
        return self.engine.with_cache(cache)

    def _probe(
        self,
        engine: ExecutionEngine,
        rail: str,
        voltage: float,
        pattern: "str | int",
        probe_runs: int,
    ) -> Tuple[PointEvaluation, bool]:
        """One guardband-walk probe through the engine.

        Returns ``(point, served_from_cache)``; fresh evaluations count
        toward :attr:`n_point_evaluations` exactly as the direct probes of
        earlier revisions did.
        """
        point, from_cache = engine.evaluate(
            EvalRequest(
                kind=PROBE,
                rail=rail,
                voltage_v=voltage,
                temperature_c=self.chip.board_temperature_c,
                pattern=pattern,
                n_runs=probe_runs,
            )
        )
        if not from_cache:
            self.n_point_evaluations += 1
        return point, from_cache

    def _guardband_ladder(self, vnom_v: float) -> Tuple[float, ...]:
        """The discovery walk's voltage grid: nominal down to the 0.3 V floor."""
        voltages: List[float] = []
        voltage = vnom_v
        while voltage > 0.3:
            voltages.append(voltage)
            voltage = round(voltage - self.step_v, 4)
        return tuple(voltages)

    @staticmethod
    def _step_from_point(point: PointEvaluation, total_mbits: float) -> VoltageStepResult:
        """The harness record for one probed operating point."""
        return VoltageStepResult(
            voltage_v=point.voltage_v,
            temperature_c=point.temperature_c,
            runs=[
                RunObservation(run_index=r, fault_count=c)
                for r, c in enumerate(point.counts)
            ],
            bram_power_w=point.bram_power_w,
            operational=point.operational,
            total_mbits=total_mbits,
        )

    def _finish_guardband(
        self,
        rail: str,
        result: SweepResult,
        observations: Sequence[SweepObservation],
    ) -> GuardbandMeasurement:
        """Detect the guardband, build the measurement, reset the board."""
        cal = self.calibration
        guardband: GuardbandResult = detect_guardband(observations, nominal_v=cal.vnom_v)
        reduction = self.power_meter.bram_reduction_factor(cal.vnom_v, guardband.vmin_v)
        measurement = GuardbandMeasurement(
            platform=self.chip.name,
            rail=rail,
            nominal_v=cal.vnom_v,
            vmin_v=guardband.vmin_v,
            vcrash_v=guardband.vcrash_v,
            power_reduction_factor_at_vmin=reduction,
        )
        # Leave the board in a sane state for whatever runs next.
        self.chip.regulator.reset_all()
        self.host.recover_from_crash()
        return measurement

    # ------------------------------------------------------------------
    # Guardband discovery (Fig. 1)
    # ------------------------------------------------------------------
    def discover_guardband(
        self,
        rail: str = VCCBRAM,
        pattern: "str | int" = 0xFFFF,
        probe_runs: int = 3,
    ) -> Tuple[GuardbandMeasurement, SweepResult]:
        """Walk one rail down from nominal until the design stops operating."""
        self._rail_thresholds(rail)  # reject unknown rails before touching hardware
        self.host.initialize_brams(pattern)
        engine = self.engine
        result = SweepResult(platform=self.chip.name, rail=rail, pattern=str(pattern))
        observations: List[SweepObservation] = []
        crashed_at: Optional[float] = None
        for voltage in self._guardband_ladder(self.calibration.vnom_v):
            point, _ = self._probe(engine, rail, voltage, pattern, probe_runs)
            step = self._step_from_point(point, self.chip.brams.total_mbits)
            result.steps.append(step)
            observations.append(
                SweepObservation(
                    voltage_v=voltage,
                    fault_count=int(step.median_fault_count),
                    operational=point.operational,
                )
            )
            if not point.operational:
                crashed_at = voltage
                break

        result.crashed_at_v = crashed_at
        measurement = self._finish_guardband(rail, result, observations)
        self.last_search_report = SearchReport(
            mode="exhaustive",
            n_evaluations=len(result.steps),
            n_exhaustive_equivalent=len(result.steps),
        )
        return measurement, result

    def discover_guardband_adaptive(
        self,
        rail: str = VCCBRAM,
        pattern: "str | int" = 0xFFFF,
        probe_runs: int = 3,
        cache: Optional[EvalCache] = None,
        warm: Optional[WarmStartModel] = None,
    ) -> "AdaptiveGuardbandResult":
        """Certified-bisection version of :meth:`discover_guardband`.

        Locates the same grid Vmin/Vcrash as the exhaustive walk — the Fig. 1
        boundaries are monotone threshold crossings on the 10 mV ladder, so
        bracketing + bisection provably reproduces them (the returned
        certificates record the adjacent-bracket evidence) — while paying
        ``O(log n)`` instead of ``O(n)`` fault-field evaluations.

        ``cache`` shares operating-point evaluations across searches and
        process restarts; ``warm`` seeds the brackets from fleet quantiles
        (see :class:`~repro.search.WarmStartModel`).  Both are optional;
        without them the search runs cold and still wins by a large factor.
        """
        self._rail_thresholds(rail)  # reject unknown rails before touching hardware
        self.host.initialize_brams(pattern)
        engine = self._engine_for(cache)
        ladder = self._guardband_ladder(self.calibration.vnom_v)
        vmin_hint = warm.vmin_hint(self.chip.name, rail) if warm is not None else None
        vcrash_hint = (
            warm.vcrash_hint(self.chip.name, rail) if warm is not None else None
        )

        # Drive the shared plan sequentially: every yielded ladder index is
        # answered immediately through the engine (cache, counters, spans).
        plan = guardband_plan(ladder, vmin_hint, vcrash_hint)
        try:
            index = next(plan)
            while True:
                index = plan.send(
                    self._probe(engine, rail, ladder[index], pattern, probe_runs)
                )
        except StopIteration as stop:
            outcome: GuardbandPlanOutcome = stop.value

        return self._assemble_adaptive_result(rail, str(pattern), outcome)

    def _assemble_adaptive_result(
        self,
        rail: str,
        pattern_text: str,
        outcome: GuardbandPlanOutcome,
    ) -> "AdaptiveGuardbandResult":
        """Turn one completed guardband plan into the adaptive result.

        Shared by the sequential driver above and the lockstep fleet driver
        (:func:`repro.harness.fleet.discover_guardband_fleet`).  Reassembles
        the sparse walk in descending-voltage order and lets the ordinary
        detector derive the thresholds from the probed evidence — the
        certificates guarantee it sees the decisive points.
        """
        result = SweepResult(platform=self.chip.name, rail=rail, pattern=pattern_text)
        observations = []
        for index in sorted(outcome.evaluated):
            point = outcome.evaluated[index]
            step = self._step_from_point(point, self.chip.brams.total_mbits)
            result.steps.append(step)
            observations.append(
                SweepObservation(
                    voltage_v=point.voltage_v,
                    fault_count=int(step.median_fault_count),
                    operational=point.operational,
                )
            )
        if outcome.vcrash_certificate is not None:
            result.crashed_at_v = outcome.vcrash_certificate.boundary_voltage_below

        report = SearchReport(
            mode="adaptive",
            n_evaluations=sum(c.n_evaluations for c in outcome.certificates),
            n_cache_hits=sum(c.n_cache_hits for c in outcome.certificates),
            n_exhaustive_equivalent=outcome.n_exhaustive_equivalent,
            certificates=outcome.certificates,
        )
        measurement = self._finish_guardband(rail, result, observations)
        self.last_search_report = report
        return AdaptiveGuardbandResult(
            measurement=measurement, sweep=result, report=report
        )

    # ------------------------------------------------------------------
    # Critical-region characterization (Listing 1, Fig. 3)
    # ------------------------------------------------------------------
    def critical_region_sweep(
        self,
        pattern: "str | int" = 0xFFFF,
        n_runs: Optional[int] = None,
        start_v: Optional[float] = None,
        stop_v: Optional[float] = None,
        collect_per_bram: bool = False,
        temperature_c: Optional[float] = None,
        cache: Optional[EvalCache] = None,
    ) -> SweepResult:
        """Listing 1: sweep VCCBRAM from ``Vmin`` down to ``Vcrash``.

        The whole (voltage x run) grid is evaluated in one call through the
        batch engine — a single sorted-threshold query replaces the per-step
        per-BRAM loops — and the result is unpacked back into the per-step
        records the analyses consume.  The per-step rail programming and soft
        reset of Listing 1 are still issued so the simulated hardware sees
        the same command sequence as before.

        With ``cache``, previously evaluated voltage points are served from
        the :class:`~repro.search.EvalCache` and only the missing subset of
        the grid goes through the batch engine (each point's counts are a
        pure per-voltage function, so subset evaluation is bit-identical);
        ``last_search_report`` then accounts for the evaluations avoided.
        The optional per-BRAM collection always evaluates in full.
        """
        cal = self.calibration
        n_runs = self.runs_per_step if n_runs is None else n_runs
        if n_runs < 1:
            raise SweepError("n_runs must be at least 1")
        start = cal.vmin_bram_v if start_v is None else start_v
        stop = cal.vcrash_bram_v if stop_v is None else stop_v
        if stop > start:
            raise SweepError("critical-region sweep must go downward")
        if temperature_c is not None:
            self.chip.set_temperature(temperature_c)

        self.host.initialize_brams(pattern)
        voltages = self._descending_voltages(start, stop)
        temperature = self.chip.board_temperature_c
        counts = self._region_counts(voltages, temperature, pattern, n_runs, cache)
        per_bram_matrix = None
        if collect_per_bram:
            per_bram_matrix = self.fault_field.batch.per_bram_counts(
                OperatingGrid.from_axes(voltages, (temperature,)), pattern
            )[:, 0, 0, :]
        powers = power_curve(
            self.power_meter.bram_model, voltages, self.power_meter.bram_utilization
        )

        result = SweepResult(platform=self.chip.name, rail=VCCBRAM, pattern=str(pattern))
        for index, voltage in enumerate(voltages):
            self.chip.set_vccbram(voltage)
            step = VoltageStepResult(
                voltage_v=voltage,
                temperature_c=temperature,
                runs=[
                    RunObservation(run_index=r, fault_count=int(c))
                    for r, c in enumerate(counts[index, 0, :])
                ],
                per_bram_counts=(
                    tuple(int(c) for c in per_bram_matrix[index])
                    if per_bram_matrix is not None
                    else None
                ),
                bram_power_w=float(powers[index]),
                operational=True,
                total_mbits=self.chip.brams.total_mbits,
            )
            result.steps.append(step)
            self.chip.soft_reset()
        self.chip.set_vccbram(cal.vnom_v)
        return result

    def _descending_voltages(self, start: float, stop: float) -> List[float]:
        """The 10 mV (``step_v``) ladder from ``start`` down to ``stop``."""
        return list(voltage_ladder(start, stop, self.step_v))

    def _region_counts(
        self,
        voltages: Sequence[float],
        temperature: float,
        pattern: "str | int",
        n_runs: int,
        cache: Optional[EvalCache],
    ) -> np.ndarray:
        """Chip counts over a critical-region grid, through the engine.

        Returns the ``(n_voltages, 1, n_runs)`` count array the batch engine
        would produce for the whole grid; the engine serves what its cache
        holds and evaluates (possibly in parallel) only the rest.  Each
        voltage's counts depend on nothing but its own operating point, so
        subset and sharded evaluation are bit-identical to the full-grid
        call.  Sets :attr:`last_search_report`.
        """
        engine = self._engine_for(cache)
        before = engine.counters.snapshot()
        points = engine.evaluate_many(
            [
                EvalRequest(
                    kind=REGION,
                    rail=VCCBRAM,
                    voltage_v=voltage,
                    temperature_c=temperature,
                    pattern=pattern,
                    n_runs=n_runs,
                )
                for voltage in voltages
            ]
        )
        counts = np.empty((len(voltages), 1, n_runs), dtype=np.int64)
        for index, point in enumerate(points):
            counts[index, 0, :] = point.counts
        delta = engine.counters.since(before)
        self.n_point_evaluations += delta.n_backend_evaluations
        self.last_search_report = SearchReport(
            mode="exhaustive" if engine.cache is None else "adaptive",
            n_evaluations=delta.n_backend_evaluations,
            n_cache_hits=delta.n_cache_hits,
            n_exhaustive_equivalent=len(voltages),
        )
        return counts

    # ------------------------------------------------------------------
    # Batched grid evaluation (the scenario fan-out entry point)
    # ------------------------------------------------------------------
    def grid_sweep(
        self,
        voltages_v: Optional[Sequence[float]] = None,
        temperatures_c: Optional[Sequence[float]] = None,
        n_runs: Optional[int] = None,
        pattern: "str | int" = 0xFFFF,
    ) -> BatchGridResult:
        """Evaluate a whole (voltage x temperature x run) operating grid.

        This is the first-class batched API: every scenario in the cross
        product is evaluated in one NumPy pass, with no per-step hardware
        mutation — ideal for wide scenario exploration, and the path the
        batch-engine benchmark measures.  Defaults cover the critical region
        at the reference temperature with ``runs_per_step`` runs.
        """
        if voltages_v is None:
            cal = self.calibration
            voltages_v = self._descending_voltages(cal.vmin_bram_v, cal.vcrash_bram_v)
        grid = OperatingGrid.from_axes(
            voltages_v,
            temperatures_c,
            runs=self.runs_per_step if n_runs is None else n_runs,
        )
        counts = self.fault_field.batch.chip_counts(grid, pattern)
        powers = power_curve(
            self.power_meter.bram_model, grid.voltages_v, self.power_meter.bram_utilization
        )
        return BatchGridResult(
            grid=grid,
            chip_counts=counts,
            total_mbits=self.chip.brams.total_mbits,
            pattern=str(pattern),
            bram_power_w=powers,
        )

    # ------------------------------------------------------------------
    # Fault Variation Map extraction (Figs. 6 and 7)
    # ------------------------------------------------------------------
    def extract_fvm(
        self,
        pattern: "str | int" = 0xFFFF,
        voltages: Optional[Sequence[float]] = None,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        cache: Optional[EvalCache] = None,
    ) -> FaultVariationMap:
        """Build the chip's FVM by sweeping the critical region once.

        The whole (voltage x BRAM) count matrix comes out of a single batched
        per-BRAM evaluation; no per-voltage Python loop remains.  With
        ``cache``, per-voltage BRAM count vectors are stored under the
        no-run-axis convention (``n_runs = 0``) and only missing voltages are
        evaluated — bit-identical, since every voltage row is an independent
        pure function of its operating point.  Sets
        :attr:`last_search_report`.
        """
        cal = self.calibration
        if voltages is None:
            voltages = [
                round(v, 4)
                for v in self._descending_voltages(cal.vmin_bram_v, cal.vcrash_bram_v)
            ]
        engine = self._engine_for(cache)
        before = engine.counters.snapshot()
        points = engine.evaluate_many(
            [
                EvalRequest(
                    kind=FVM,
                    rail=VCCBRAM,
                    voltage_v=voltage,
                    temperature_c=temperature_c,
                    pattern=pattern,
                    n_runs=0,
                )
                for voltage in voltages
            ]
        )
        n_brams = self.chip.spec.n_brams
        matrix = np.empty((len(voltages), n_brams), dtype=np.int64)
        for index, point in enumerate(points):
            matrix[index, :] = point.per_bram_counts
        delta = engine.counters.since(before)
        self.n_point_evaluations += delta.n_backend_evaluations
        self.last_search_report = SearchReport(
            mode="exhaustive" if engine.cache is None else "adaptive",
            n_evaluations=delta.n_backend_evaluations,
            n_cache_hits=delta.n_cache_hits,
            n_exhaustive_equivalent=len(voltages),
        )
        return FaultVariationMap.from_matrix(
            platform=self.chip.name,
            floorplan=self.chip.floorplan,
            voltages_v=list(voltages),
            counts=matrix,
            bram_bits=self.chip.spec.bram_rows * self.chip.spec.bram_cols,
        )

    # ------------------------------------------------------------------
    # Temperature study (Fig. 8)
    # ------------------------------------------------------------------
    def temperature_sweep(
        self,
        temperatures_c: Sequence[float],
        pattern: "str | int" = 0xFFFF,
        n_runs: int = 5,
    ) -> Dict[float, SweepResult]:
        """Repeat the critical-region sweep at several chamber temperatures."""
        if not temperatures_c:
            raise SweepError("at least one temperature is required")
        chamber = HeatChamber(self.chip)
        results: Dict[float, SweepResult] = {}
        for target in temperatures_c:
            chamber.go_to(target)
            results[float(target)] = self.critical_region_sweep(
                pattern=pattern, n_runs=n_runs
            )
        chamber.go_to(REFERENCE_TEMPERATURE_C)
        return results
