"""Power measurement: power meter plus XPE-style breakdown.

The paper measures total board power with an external power meter and uses
the Xilinx Power Estimator (XPE) to attribute the BRAM share at nominal
voltage; the power results in Fig. 3 and Fig. 10 combine the two.  The
reproduction's power meter reads the calibrated rail power models at the
chip's current setpoints, and the XPE-style estimator produces the same kind
of per-component breakdown the paper reports for the NN accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.calibration import PlatformCalibration, get_calibration
from repro.core.power import RailPowerModel, bram_power_model, vccint_power_model
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM, VCCINT


class PowerMeterError(RuntimeError):
    """Raised for invalid power-measurement requests."""


@dataclass
class PowerMeter:
    """Board-level power meter bound to one chip.

    Parameters
    ----------
    chip:
        Board under test.
    calibration:
        Platform calibration providing the BRAM rail model; defaults to the
        published calibration for the chip's platform.
    vccint_nominal_w:
        Nominal VCCINT power assumed for the board's current design.  The
        BRAM undervolting experiments leave VCCINT at nominal, so this only
        sets the scale of "rest of chip" numbers.
    bram_utilization:
        Fraction of the BRAM pool actually used by the configured design;
        1.0 for the read-back test design that touches every BRAM.
    """

    chip: FpgaChip
    calibration: Optional[PlatformCalibration] = None
    vccint_nominal_w: float = 2.0
    bram_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.calibration is None:
            self.calibration = get_calibration(self.chip.spec)
        if not 0.0 <= self.bram_utilization <= 1.0:
            raise PowerMeterError("bram_utilization must be in [0, 1]")
        self._bram_model: RailPowerModel = bram_power_model(self.calibration)
        self._int_model: RailPowerModel = vccint_power_model(self.calibration, self.vccint_nominal_w)

    # ------------------------------------------------------------------
    def read_bram_power_w(self, voltage_v: Optional[float] = None) -> float:
        """BRAM rail power at the chip's current (or an explicit) VCCBRAM."""
        voltage = self.chip.vccbram if voltage_v is None else voltage_v
        return self._bram_model.power_w(voltage, utilization=self.bram_utilization)

    def read_vccint_power_w(self, voltage_v: Optional[float] = None) -> float:
        """VCCINT rail power at the chip's current (or an explicit) VCCINT."""
        voltage = self.chip.vccint if voltage_v is None else voltage_v
        return self._int_model.power_w(voltage)

    def read_total_power_w(self) -> float:
        """Total measured power: both studied on-chip rails."""
        return self.read_bram_power_w() + self.read_vccint_power_w()

    def bram_reduction_factor(self, from_v: float, to_v: float) -> float:
        """How many times less BRAM power is drawn at ``to_v`` than ``from_v``."""
        return self._bram_model.reduction_factor(from_v, to_v, utilization=self.bram_utilization)

    @property
    def bram_model(self) -> RailPowerModel:
        """The underlying calibrated BRAM rail model."""
        return self._bram_model


@dataclass
class XpePowerEstimate:
    """XPE-style breakdown of the on-chip power of one configured design."""

    components_w: Dict[str, float] = field(default_factory=dict)

    @property
    def total_w(self) -> float:
        """Total on-chip power across all components."""
        return sum(self.components_w.values())

    def fraction(self, component: str) -> float:
        """Share of the total drawn by one component."""
        total = self.total_w
        if total == 0:
            return 0.0
        return self.components_w.get(component, 0.0) / total

    def as_percentages(self) -> Dict[str, float]:
        """Breakdown normalized to percentages (Fig. 10's stacked bars)."""
        total = self.total_w
        if total == 0:
            return {name: 0.0 for name in self.components_w}
        return {name: 100.0 * value / total for name, value in self.components_w.items()}
