"""PMBUS-style command interface to the on-board voltage controller.

On the real boards the host talks to the TI UCD9248 regulator through a TI
PMBUS USB adapter and a C API (Fig. 2): it issues ``VOUT_COMMAND`` writes to
change a rail, ``READ_VOUT`` to confirm it, and ``READ_TEMPERATURE`` to read
the on-board sensor.  The reproduction keeps that command vocabulary — and a
command log, which the tests use to assert the experiment actually drives the
rails the way Listing 1 says — while the electrical behaviour lives in
:mod:`repro.fpga.voltage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VoltageError

#: PMBUS command names used by the harness.
VOUT_COMMAND = "VOUT_COMMAND"
READ_VOUT = "READ_VOUT"
READ_TEMPERATURE = "READ_TEMPERATURE_1"
OPERATION_ON = "OPERATION_ON"
OPERATION_SOFT_OFF = "OPERATION_SOFT_OFF"


class PmbusError(RuntimeError):
    """Raised when a PMBUS transaction is rejected by the regulator."""


@dataclass(frozen=True)
class PmbusTransaction:
    """One logged PMBUS command and its response."""

    command: str
    rail: Optional[str]
    argument: Optional[float]
    response: Optional[float]


@dataclass
class PmbusAdapter:
    """Host-side PMBUS adapter bound to one board's regulator.

    Parameters
    ----------
    chip:
        The board whose regulator and temperature sensor this adapter reaches.
    """

    chip: FpgaChip
    log: List[PmbusTransaction] = field(default_factory=list)
    powered_on: bool = True

    def _record(
        self,
        command: str,
        rail: Optional[str] = None,
        argument: Optional[float] = None,
        response: Optional[float] = None,
    ) -> None:
        self.log.append(
            PmbusTransaction(command=command, rail=rail, argument=argument, response=response)
        )

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def vout_command(self, rail: str, volts: float) -> float:
        """Set a rail's output voltage (``VOUT_COMMAND``)."""
        if not self.powered_on:
            raise PmbusError("regulator output is off; issue OPERATION_ON first")
        try:
            applied = self.chip.regulator.set_voltage(rail, volts)
        except VoltageError as exc:
            self._record(VOUT_COMMAND, rail, volts, None)
            raise PmbusError(str(exc)) from exc
        self._record(VOUT_COMMAND, rail, volts, applied)
        return applied

    def read_vout(self, rail: str) -> float:
        """Read a rail's output voltage back (``READ_VOUT``)."""
        value = self.chip.regulator.read_voltage(rail)
        self._record(READ_VOUT, rail, None, value)
        return value

    def read_temperature(self) -> float:
        """Read the on-board temperature sensor (``READ_TEMPERATURE_1``)."""
        value = self.chip.board_temperature_c
        self._record(READ_TEMPERATURE, None, None, value)
        return value

    def operation_on(self) -> None:
        """Enable the regulator outputs."""
        self.powered_on = True
        self._record(OPERATION_ON)

    def operation_soft_off(self) -> None:
        """Soft-disable the regulator outputs (used for crash recovery)."""
        self.powered_on = False
        self._record(OPERATION_SOFT_OFF)

    # ------------------------------------------------------------------
    # Log queries
    # ------------------------------------------------------------------
    def commands_issued(self, command: Optional[str] = None) -> List[PmbusTransaction]:
        """The logged transactions, optionally filtered by command name."""
        if command is None:
            return list(self.log)
        return [entry for entry in self.log if entry.command == command]

    def last_setpoint(self, rail: str) -> Optional[float]:
        """Most recent ``VOUT_COMMAND`` value applied to a rail, if any."""
        for entry in reversed(self.log):
            if entry.command == VOUT_COMMAND and entry.rail == rail and entry.response is not None:
                return entry.response
        return None

    def clear_log(self) -> None:
        """Forget the transaction history (between experiments)."""
        self.log.clear()
