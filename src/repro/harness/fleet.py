"""Cross-die batched guardband discovery: one kernel call per wave.

The sequential fleet path (:func:`repro.runtime.characterization.\
characterize_die` in a loop) finishes die 0's whole bisection before die 1
starts, paying one Python-level engine→backend crossing per probe per die.
But a probe is a pure function of its operating point, and every die's
observable failure voltages live in one sorted array — so a *wave* of
pending probes, one per die, can be answered together:

* stack every die's sorted observable thresholds into one padded 2-D array
  (pad value ``+inf``, which no finite effective voltage reaches);
* assemble the wave's effective voltages exactly as the scalar path does —
  ``(quantized V + itd_shift) + ripple`` per run, in that operation order —
  into a ``(dies, runs)`` query matrix;
* run one vectorized bisection of the query matrix against the stack
  (``searchsorted(side="right")`` generalized over rows) and read every
  die's per-run fault counts off the result.

:class:`FleetProbeKernel` implements that kernel;
:func:`discover_guardband_fleet` pairs it with the per-die
:func:`~repro.harness.sweep.guardband_plan` generators and the lockstep
:class:`~repro.search.FleetBisector` so the whole fleet advances one
bisection step per kernel call.  Every die still sees the exact probe
sequence its sequential driver would produce, and every count comes out of
the same IEEE-754 comparisons against the same thresholds — which is why
the per-die measurements *and* certificates are bit-identical to the
sequential path (asserted by ``benchmarks/bench_fleet_batch.py``).

Only the ``VCCBRAM`` rail is batched: VCCINT probes model a closed-form
observable-fault shape with no threshold table to stack, and no fleet
driver characterizes VCCINT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exec.backends import rail_thresholds
from repro.exec.request import ExecError
from repro.fpga.voltage import VCCBRAM
from repro.obs import trace as obs_trace
from repro.search import EvalCache, PointEvaluation, WarmStartModel
from repro.search.fleet import FleetBisector

from .sweep import (
    AdaptiveGuardbandResult,
    SweepError,
    UndervoltingExperiment,
    guardband_plan,
)

#: Clamp the simulated regulator honours below the sweep floor (matches
#: ``SimulatedBackend._evaluate_probe``'s ``max(voltage, 0.40)``).
_REGULATOR_FLOOR_V = 0.40


@dataclass(frozen=True)
class FleetDiscoveryStats:
    """Cost accounting of one lockstep fleet discovery.

    ``n_waves`` is the number of batched kernel calls — the Python-level
    crossings the whole fleet paid, versus ``n_probes`` crossings for the
    sequential path.  ``n_probes = n_fresh + n_cache_hits``.
    """

    n_dies: int
    n_waves: int
    n_probes: int
    n_fresh: int
    n_cache_hits: int

    def to_dict(self) -> Dict[str, int]:
        """JSON form (benchmark emission)."""
        return {
            "n_dies": self.n_dies,
            "n_waves": self.n_waves,
            "n_probes": self.n_probes,
            "n_fresh": self.n_fresh,
            "n_cache_hits": self.n_cache_hits,
        }


@dataclass(frozen=True)
class FleetDiscoveryResult:
    """Per-die adaptive results plus the fleet-level cost accounting."""

    results: Dict[Hashable, AdaptiveGuardbandResult]
    stats: FleetDiscoveryStats


class FleetProbeKernel:
    """Answers one wave of per-die guardband probes with one vectorized kernel.

    Precomputes, once per die: the sorted observable thresholds (the exact
    array :meth:`~repro.core.batch.BatchFaultEvaluator.chip_counts`
    bisects), the ITD shift at the die's board temperature, the per-run
    ripple offsets, the calibrated crash threshold and the regulator's
    quantization — everything a probe needs that does not depend on the
    commanded voltage.  :meth:`evaluate_wave` then touches numpy exactly
    once per wave.
    """

    def __init__(
        self,
        experiments: Mapping[Hashable, UndervoltingExperiment],
        rail: str = VCCBRAM,
        pattern: "str | int" = 0xFFFF,
        probe_runs: int = 3,
        latency_s: float = 0.0,
    ) -> None:
        if rail != VCCBRAM:
            raise SweepError(
                f"fleet probe kernel batches the {VCCBRAM} rail only, not {rail!r}"
            )
        if probe_runs < 1:
            raise SweepError("probe_runs must be at least 1")
        self.rail = rail
        self.pattern = pattern
        self.pattern_text = str(pattern)
        self.probe_runs = int(probe_runs)
        #: Modelled wall-clock of one wave (regulator settle + read-back,
        #: the :attr:`~repro.exec.SimulatedBackend.latency_s` twin).  Every
        #: die is its own board, so a wave's settles happen concurrently and
        #: the whole wave pays the latency *once* — the physical root of the
        #: lockstep speedup.  The default leaves timings untouched.
        self.latency_s = float(latency_s)
        #: Batched kernel calls performed (one per :meth:`evaluate_wave`).
        self.n_kernel_calls = 0

        self._experiments: Dict[Hashable, UndervoltingExperiment] = dict(experiments)
        self._row: Dict[Hashable, int] = {}
        self._shift: Dict[Hashable, float] = {}
        self._ripples: Dict[Hashable, Optional[np.ndarray]] = {}
        self._vcrash_true: Dict[Hashable, float] = {}
        self._quantize: Dict[Hashable, Any] = {}

        per_die: List[np.ndarray] = []
        lengths: List[int] = []
        for index, (key, experiment) in enumerate(self._experiments.items()):
            fault_field = experiment.fault_field
            thresholds = fault_field.batch.sorted_observable_thresholds(pattern)
            per_die.append(thresholds)
            lengths.append(int(thresholds.size))
            self._row[key] = index
            self._shift[key] = fault_field.itd.voltage_shift(
                experiment.chip.board_temperature_c
            )
            if fault_field.config.ripple_enabled:
                self._ripples[key] = np.asarray(
                    [fault_field.ripple_v(r) for r in range(self.probe_runs)],
                    dtype=float,
                )
            else:
                self._ripples[key] = None
            try:
                _vmin, vcrash = rail_thresholds(experiment.calibration, rail)
            except ExecError as exc:
                raise SweepError(str(exc)) from None
            self._vcrash_true[key] = vcrash
            self._quantize[key] = experiment.chip.regulator.rail(rail).quantize

        width = max(lengths, default=0)
        stacked = np.full((len(per_die), width), np.inf)
        for index, thresholds in enumerate(per_die):
            stacked[index, : thresholds.size] = thresholds
        self._stacked = stacked
        self._lengths = np.asarray(lengths, dtype=np.int64)

    # ------------------------------------------------------------------
    def evaluate_wave(
        self, voltages: Mapping[Hashable, float]
    ) -> Dict[Hashable, PointEvaluation]:
        """Evaluate one probe per die, all in one vectorized kernel call.

        Each evaluation is field-for-field what the sequential
        ``SimulatedBackend._evaluate_probe`` would return for the same
        request: the rail's quantized clamp enters the count computation
        (the regulator applies ``max(V, 0.40)`` at its resolution), the
        *commanded* voltage is what the evaluation reports and what the
        power meter reads, and a die below its crash threshold answers
        non-operational with an empty count vector.
        """
        self.n_kernel_calls += 1
        if self.latency_s:
            time.sleep(self.latency_s)
        keys = list(voltages)
        queries = np.empty((len(keys), self.probe_runs), dtype=float)
        operational: List[bool] = []
        for index, key in enumerate(keys):
            voltage = voltages[key]
            operational.append(voltage >= self._vcrash_true[key] - 1e-9)
            applied = self._quantize[key](max(voltage, _REGULATOR_FLOOR_V))
            base = applied + self._shift[key]
            ripples = self._ripples[key]
            if ripples is not None:
                queries[index, :] = base + ripples
            else:
                queries[index, :] = base
        rows = np.asarray([self._row[key] for key in keys], dtype=np.int64)
        counts = self._batched_counts(rows, queries)

        answers: Dict[Hashable, PointEvaluation] = {}
        for index, key in enumerate(keys):
            experiment = self._experiments[key]
            voltage = voltages[key]
            answers[key] = PointEvaluation(
                voltage_v=voltage,
                temperature_c=experiment.chip.board_temperature_c,
                rail=self.rail,
                pattern=self.pattern_text,
                n_runs=self.probe_runs,
                counts=(
                    tuple(int(c) for c in counts[index])
                    if operational[index]
                    else ()
                ),
                operational=operational[index],
                bram_power_w=experiment.power_meter.read_bram_power_w(voltage),
            )
        return answers

    def _batched_counts(self, rows: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Per-(die, run) observable fault counts for a query matrix.

        A manually vectorized ``searchsorted(side="right")`` over the
        padded threshold stack: every lane binary-searches its own row at
        once, and the ``+inf`` pads sort strictly above every finite query,
        so each lane's insertion point equals the unpadded searchsorted
        result exactly.  The count at a point is the number of thresholds
        strictly above it — identical comparisons, identical integers.
        """
        sub = self._stacked[rows]
        lo = np.zeros(queries.shape, dtype=np.int64)
        hi = np.full(queries.shape, self._stacked.shape[1], dtype=np.int64)
        while True:
            active = lo < hi
            if not active.any():
                break
            # Lanes that already converged have lo == hi == width; clamp
            # their (masked-out) mid so the gather stays in bounds.
            mid = np.minimum((lo + hi) // 2, self._stacked.shape[1] - 1)
            go_right = np.take_along_axis(sub, mid, axis=1) <= queries
            lo = np.where(active & go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
        return self._lengths[rows][:, None] - lo


def discover_guardband_fleet(
    experiments: Mapping[Hashable, UndervoltingExperiment],
    rail: str = VCCBRAM,
    pattern: "str | int" = 0xFFFF,
    probe_runs: int = 3,
    caches: Optional[Mapping[Hashable, EvalCache]] = None,
    warm: Optional[WarmStartModel] = None,
    latency_s: float = 0.0,
) -> FleetDiscoveryResult:
    """Run every die's certified guardband discovery in batched lockstep.

    Holds one :func:`~repro.harness.sweep.guardband_plan` open per die,
    collects the fleet's pending probes into waves via
    :class:`~repro.search.FleetBisector`, and answers each wave with a
    single :class:`FleetProbeKernel` call.  Per-die ``caches`` (keyed like
    ``experiments``) are consulted before a probe joins its wave and are
    populated with fresh evaluations, exactly like the engine's cache path;
    ``warm`` seeds every die's brackets from its platform's fleet quantiles
    (all plans are seeded up front — lockstep has no earlier-die results to
    learn from, which changes probe *cost*, never a threshold).
    ``latency_s`` models one wave's concurrent regulator settle + read-back
    (see :class:`FleetProbeKernel`); results are identical at any value.

    Returns per-die :class:`~repro.harness.sweep.AdaptiveGuardbandResult`\\ s
    bit-identical to ``discover_guardband_adaptive`` run die-by-die with the
    same hints, plus the wave/probe accounting.
    """
    if not experiments:
        raise SweepError("fleet discovery needs at least one experiment")
    kernel = FleetProbeKernel(
        experiments,
        rail=rail,
        pattern=pattern,
        probe_runs=probe_runs,
        latency_s=latency_s,
    )
    ladders: Dict[Hashable, Tuple[float, ...]] = {}
    plans = {}
    for key, experiment in experiments.items():
        experiment.host.initialize_brams(pattern)
        ladders[key] = experiment._guardband_ladder(experiment.calibration.vnom_v)
        platform = experiment.chip.name
        vmin_hint = warm.vmin_hint(platform, rail) if warm is not None else None
        vcrash_hint = warm.vcrash_hint(platform, rail) if warm is not None else None
        plans[key] = guardband_plan(ladders[key], vmin_hint, vcrash_hint)

    counters = {"fresh": 0, "hits": 0}

    def evaluate_wave(
        pending: Dict[Hashable, int]
    ) -> Dict[Hashable, Tuple[PointEvaluation, bool]]:
        answers: Dict[Hashable, Tuple[PointEvaluation, bool]] = {}
        fresh: Dict[Hashable, float] = {}
        for key, ladder_index in pending.items():
            voltage = ladders[key][ladder_index]
            cache = caches.get(key) if caches is not None else None
            if cache is not None:
                found = cache.lookup(
                    rail,
                    voltage,
                    experiments[key].chip.board_temperature_c,
                    str(pattern),
                    probe_runs,
                )
                # Same validity rule as the engine's probe path: a
                # non-operational record answers any probe; an operational
                # one needs the full count vector.
                if found is not None and (
                    not found.operational or len(found.counts) == probe_runs
                ):
                    answers[key] = (found, True)
                    counters["hits"] += 1
                    continue
            fresh[key] = voltage
        if fresh:
            with obs_trace.span("fleet.wave", n=len(fresh)):
                evaluated = kernel.evaluate_wave(fresh)
            for key, point in evaluated.items():
                cache = caches.get(key) if caches is not None else None
                if cache is not None:
                    cache.store(point)
                experiments[key].n_point_evaluations += 1
                answers[key] = (point, False)
            counters["fresh"] += len(fresh)
        return answers

    fleet = FleetBisector(plans)
    outcomes = fleet.run(evaluate_wave)
    results = {
        key: experiments[key]._assemble_adaptive_result(
            rail, str(pattern), outcomes[key]
        )
        for key in experiments
    }
    stats = FleetDiscoveryStats(
        n_dies=len(experiments),
        n_waves=fleet.n_waves,
        n_probes=fleet.n_steps,
        n_fresh=counters["fresh"],
        n_cache_hits=counters["hits"],
    )
    return FleetDiscoveryResult(results=results, stats=stats)


__all__ = [
    "FleetDiscoveryResult",
    "FleetDiscoveryStats",
    "FleetProbeKernel",
    "discover_guardband_fleet",
]
