"""Experiment harness: the measurement methodology of Fig. 2 and Listing 1.

Provides the software host (PMBUS rail control, BRAM initialization and
read-back analysis), the heat chamber and power meter, and the sweep drivers
that produce the data behind every characterization figure in Section II.
"""

from .environment import EnvironmentError_, HeatChamber, TemperatureMonitor
from .fleet import (
    FleetDiscoveryResult,
    FleetDiscoveryStats,
    FleetProbeKernel,
    discover_guardband_fleet,
)
from .host import HostController, HostError
from .pmbus import (
    OPERATION_ON,
    OPERATION_SOFT_OFF,
    PmbusAdapter,
    PmbusError,
    PmbusTransaction,
    READ_TEMPERATURE,
    READ_VOUT,
    VOUT_COMMAND,
)
from .powermeter import PowerMeter, PowerMeterError, XpePowerEstimate
from .records import (
    GuardbandMeasurement,
    RecordError,
    RunObservation,
    SweepResult,
    VoltageStepResult,
)
from .sweep import AdaptiveGuardbandResult, SweepError, UndervoltingExperiment

__all__ = [
    "AdaptiveGuardbandResult",
    "EnvironmentError_",
    "FleetDiscoveryResult",
    "FleetDiscoveryStats",
    "FleetProbeKernel",
    "GuardbandMeasurement",
    "discover_guardband_fleet",
    "HeatChamber",
    "HostController",
    "HostError",
    "OPERATION_ON",
    "OPERATION_SOFT_OFF",
    "PmbusAdapter",
    "PmbusError",
    "PmbusTransaction",
    "PowerMeter",
    "PowerMeterError",
    "READ_TEMPERATURE",
    "READ_VOUT",
    "RecordError",
    "RunObservation",
    "SweepError",
    "SweepResult",
    "TemperatureMonitor",
    "UndervoltingExperiment",
    "VOUT_COMMAND",
    "VoltageStepResult",
    "XpePowerEstimate",
]
