"""Result records shared by the experiment harness.

The harness mirrors the paper's measurement loop (Listing 1): for each
voltage step the BRAM contents are read back repeatedly, faults are counted
and located, and the BRAM power is recorded.  These dataclasses are the
typed results that flow out of that loop into the analyses, benchmarks and
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


class RecordError(ValueError):
    """Raised for inconsistent experiment records."""


@dataclass(frozen=True)
class RunObservation:
    """One read-back pass over the whole BRAM pool at a fixed voltage."""

    run_index: int
    fault_count: int

    def __post_init__(self) -> None:
        if self.fault_count < 0:
            raise RecordError("fault counts cannot be negative")


@dataclass
class VoltageStepResult:
    """Everything measured at one voltage step of a sweep."""

    voltage_v: float
    temperature_c: float
    runs: List[RunObservation] = field(default_factory=list)
    per_bram_counts: Optional[Tuple[int, ...]] = None
    bram_power_w: Optional[float] = None
    operational: bool = True
    total_mbits: float = 1.0

    @property
    def fault_counts(self) -> List[int]:
        """Fault counts of the individual runs."""
        return [run.fault_count for run in self.runs]

    @property
    def median_fault_count(self) -> float:
        """Median fault count over the runs (the paper reports medians)."""
        if not self.runs:
            return 0.0
        return float(np.median(self.fault_counts))

    @property
    def median_fault_rate_per_mbit(self) -> float:
        """Median fault rate in faults per Mbit."""
        return self.median_fault_count / self.total_mbits

    @property
    def fault_rate_std_per_mbit(self) -> float:
        """Run-to-run standard deviation in faults per Mbit."""
        if len(self.runs) < 2:
            return 0.0
        return float(np.std(self.fault_counts)) / self.total_mbits

    def is_fault_free(self) -> bool:
        """Whether no run observed any fault at this voltage."""
        return self.operational and all(run.fault_count == 0 for run in self.runs)


@dataclass
class SweepResult:
    """A full downward voltage sweep on one platform."""

    platform: str
    rail: str
    pattern: str
    steps: List[VoltageStepResult] = field(default_factory=list)
    crashed_at_v: Optional[float] = None

    def voltages(self) -> List[float]:
        """Swept voltages in measurement order."""
        return [step.voltage_v for step in self.steps]

    def operational_steps(self) -> List[VoltageStepResult]:
        """Steps at which the design still operated."""
        return [step for step in self.steps if step.operational]

    def fault_rates_per_mbit(self) -> List[float]:
        """Median fault rate per step, the y-axis of Fig. 3 and Fig. 8."""
        return [step.median_fault_rate_per_mbit for step in self.steps]

    def powers_w(self) -> List[Optional[float]]:
        """BRAM power per step, the second y-axis of Fig. 3."""
        return [step.bram_power_w for step in self.steps]

    def step_at(self, voltage_v: float, tolerance_v: float = 5e-4) -> VoltageStepResult:
        """Look up the step measured at (approximately) one voltage."""
        for step in self.steps:
            if abs(step.voltage_v - voltage_v) <= tolerance_v:
                return step
        raise RecordError(f"no step measured at {voltage_v:.3f} V")

    def last_operational_voltage(self) -> float:
        """Lowest voltage at which the design still worked (the observed Vcrash)."""
        operational = self.operational_steps()
        if not operational:
            raise RecordError("the design never operated during this sweep")
        return min(step.voltage_v for step in operational)

    def first_faulty_voltage(self) -> Optional[float]:
        """Highest voltage at which any fault was observed, or ``None``."""
        faulty = [
            step.voltage_v
            for step in self.operational_steps()
            if step.median_fault_count > 0
        ]
        return max(faulty) if faulty else None

    def as_series(self) -> List[Tuple[float, float, Optional[float]]]:
        """Rows of ``(voltage, fault_rate_per_mbit, power_w)`` for tables."""
        return [
            (step.voltage_v, step.median_fault_rate_per_mbit, step.bram_power_w)
            for step in self.steps
        ]


@dataclass
class GuardbandMeasurement:
    """Outcome of the Vmin/Vcrash discovery experiment on one rail."""

    platform: str
    rail: str
    nominal_v: float
    vmin_v: float
    vcrash_v: float
    power_reduction_factor_at_vmin: float

    @property
    def guardband_fraction(self) -> float:
        """Guardband below nominal as a fraction (Fig. 1's headline numbers)."""
        return (self.nominal_v - self.vmin_v) / self.nominal_v
