"""Heat chamber and temperature monitoring.

For the temperature study (Section II-D, Fig. 8) the authors place the board
inside a heat chamber, regulate the ambient temperature, and read the
on-board temperature over PMBUS.  The reproduction's heat chamber simply
drives the chip's board-temperature state (which the ITD model in
:mod:`repro.core.temperature` consumes), ramps in finite steps like a real
chamber, and exposes the same monitoring call the harness scripts use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fpga.platform import FpgaChip

from .pmbus import PmbusAdapter


class EnvironmentError_(RuntimeError):
    """Raised for unreachable chamber setpoints."""


@dataclass
class HeatChamber:
    """Ambient-temperature chamber holding one board.

    Parameters
    ----------
    chip:
        Board under test; its ``board_temperature_c`` tracks the chamber.
    min_c / max_c:
        Achievable chamber range.  The paper studies 50–80 °C.
    ramp_step_c:
        Maximum temperature change applied per :meth:`settle` call, modelling
        the chamber's finite ramp rate.
    """

    chip: FpgaChip
    min_c: float = 20.0
    max_c: float = 110.0
    ramp_step_c: float = 5.0
    setpoint_c: Optional[float] = None
    history_c: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.setpoint_c is None:
            self.setpoint_c = self.chip.board_temperature_c
        self.history_c.append(self.chip.board_temperature_c)

    def set_temperature(self, celsius: float) -> None:
        """Command a new chamber setpoint (does not apply instantly)."""
        if not self.min_c <= celsius <= self.max_c:
            raise EnvironmentError_(
                f"setpoint {celsius} degC outside chamber range "
                f"[{self.min_c}, {self.max_c}]"
            )
        self.setpoint_c = float(celsius)

    def settle(self, max_steps: int = 100) -> float:
        """Ramp the board temperature to the setpoint and return it."""
        if self.setpoint_c is None:
            return self.chip.board_temperature_c
        for _ in range(max_steps):
            current = self.chip.board_temperature_c
            delta = self.setpoint_c - current
            if abs(delta) < 1e-9:
                break
            step = max(-self.ramp_step_c, min(self.ramp_step_c, delta))
            self.chip.set_temperature(current + step)
            self.history_c.append(self.chip.board_temperature_c)
        return self.chip.board_temperature_c

    def go_to(self, celsius: float) -> float:
        """Convenience: set a target and settle there."""
        self.set_temperature(celsius)
        return self.settle()


@dataclass
class TemperatureMonitor:
    """On-board temperature monitor read over PMBUS (Fig. 2's sensor path)."""

    adapter: PmbusAdapter

    def read_c(self) -> float:
        """Current on-board temperature in Celsius."""
        return self.adapter.read_temperature()

    def is_within(self, target_c: float, tolerance_c: float = 1.0) -> bool:
        """Whether the board has reached a target temperature."""
        return abs(self.read_c() - target_c) <= tolerance_c
