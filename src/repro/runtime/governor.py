"""The closed-loop voltage governor and its pluggable policies.

The offline result that makes a *runtime* governor possible is the paper's
fault taxonomy: undervolting faults are deterministic, location-stable and
temperature-dependent (ITD).  A governor therefore does not need to guess —
it needs a per-die threshold table (:mod:`repro.runtime.characterization`)
and a temperature reading, and it can hold every board at its minimum safe
voltage while the workload and thermal environment drift.

Four policies span the design space the runtime benchmark compares:

* ``static-nominal`` — the guardband baseline: never undervolt.  Zero risk,
  maximum power.
* ``static-undervolt`` — the guardband-informed static point: park the rail
  at the characterized ``Vmin``.  Recovers most of the guardband power but
  loses its safety margin the moment the board runs *colder* than the
  characterization temperature (ITD in reverse).
* ``reactive`` — fault-feedback control: sit at the characterized ``Vmin``,
  back off one step whenever the read-back scrubber reports faults, creep
  back down after a clean hold.  Finds the true boundary without a thermal
  model, but pays for every lesson with served faulty inferences.
* ``predictive`` — thermal-headroom-aware feed-forward: compensate the
  characterized ``Vmin`` with the fitted ITD coefficient for the *current*
  board temperature, keep the six-sigma ripple margin, and round up to the
  regulator resolution.  Tracks cold transients before they bite and dips
  below the characterized ``Vmin`` when the silicon runs hot — zero faults
  by construction of the margin.

:class:`VoltageGovernor` binds one policy to a characterization bundle and
actuates through the existing :class:`~repro.harness.pmbus.PmbusAdapter`, so
the simulated hardware sees the same ``VOUT_COMMAND`` traffic a real UCD9248
would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple, Type

from repro.fpga.voltage import VCCBRAM
from repro.harness.pmbus import PmbusAdapter

from .characterization import DieCharacterization, GovernorBundle


class GovernorError(RuntimeError):
    """Raised for unknown policies, dies or invalid policy parameters."""


#: Regulator setpoint resolution the policies quantize to (UCD9248: 1 mV).
RESOLUTION_V = 0.001


def ceil_to_resolution(volts: float, resolution_v: float = RESOLUTION_V) -> float:
    """Round *up* to the regulator resolution.

    Safety-critical direction: rounding a safe floor down could command a
    voltage below it, so every policy quantizes upward.
    """
    return round(math.ceil(volts / resolution_v - 1e-9) * resolution_v, 6)


@dataclass(frozen=True)
class GovernorObservation:
    """What the governor sees about one die at the top of a step."""

    step: int
    temperature_c: float
    faults_last_step: int
    setpoint_v: float


class GovernorPolicy:
    """Base class: maps (die characterization, observation) to a setpoint.

    Policies may keep per-die state (the reactive controller does); state is
    keyed by the die's chip key and wiped by :meth:`reset`, which the
    simulator calls once per run so repeated simulations are independent.

    Event-scheduling contract
    -------------------------
    The discrete-event core (:mod:`repro.runtime.event_core`) only
    re-evaluates a policy when something it *subscribes to* changes; between
    wakeups the commanded setpoint is assumed constant.  The three class
    flags declare the subscriptions, and the two hooks let stateful policies
    schedule and fast-forward their own internal events:

    * ``wakes_on_temperature`` — the target depends on the board
      temperature, so every heat-chamber transient crossing is a wakeup;
    * ``wakes_on_faults`` — the target depends on ``faults_last_step``, so
      the step after any fault-bit onset is a wakeup (plus whatever
      :meth:`steps_until_state_event` schedules);
    * ``wakes_every_step`` — dense fallback: re-evaluate at every step.
      The base class defaults every flag to ``True`` so an unknown custom
      policy degenerates to exactly the stepped simulator's cadence
      (correct, just without the event core's speedup).
    """

    #: Registry name; subclasses override.
    name = "base"
    #: Safety floor above the characterized crash voltage.
    floor_margin_v = 0.020
    #: Event subscriptions (see the class docstring); conservative defaults.
    wakes_every_step = True
    wakes_on_temperature = True
    wakes_on_faults = True

    def reset(self) -> None:
        """Forget any per-die controller state (start of a run)."""

    def steps_until_state_event(self, die: DieCharacterization) -> "int | None":
        """Steps until internal state alone forces a new target (or ``None``).

        Called by the event core immediately after an evaluation.  A return
        of ``k`` schedules the next wakeup ``k`` steps later even with no
        external stimulus (the reactive controller's downward creep);
        ``None`` means the state never fires on its own.
        """
        return None

    def advance_clean(self, die: DieCharacterization, n_steps: int) -> None:
        """Fast-forward ``n_steps`` fault-free, non-actuating evaluations.

        The event core calls this for the steps it *skipped* inside a
        window, so per-die counters (the reactive controller's clean-step
        count) stay bit-identical to the stepped simulator's bookkeeping.
        """

    def clamp(self, die: DieCharacterization, volts: float) -> float:
        """Clamp a request into the die's safe actuation window."""
        floor = die.vcrash_v + self.floor_margin_v
        return min(die.vnom_v, max(floor, volts))

    def target_voltage(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        """The setpoint this policy wants for the coming step."""
        raise NotImplementedError

    def notify_crash(self, die: DieCharacterization) -> None:
        """Called when the die crashed and was power-cycled (state reset)."""


class StaticNominalPolicy(GovernorPolicy):
    """Baseline: keep the full factory guardband (never undervolt)."""

    name = "static-nominal"
    wakes_every_step = False
    wakes_on_temperature = False
    wakes_on_faults = False

    def target_voltage(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        return die.vnom_v


class StaticUndervoltPolicy(GovernorPolicy):
    """Guardband-informed static point: park at the characterized Vmin.

    ``margin_v`` raises the parking spot; the default of zero reproduces the
    naive "deploy at Vmin" strategy whose cold-transient faults motivate the
    closed-loop policies.
    """

    name = "static-undervolt"
    wakes_every_step = False
    wakes_on_temperature = False
    wakes_on_faults = False

    def __init__(self, margin_v: float = 0.0) -> None:
        if margin_v < 0:
            raise GovernorError("margin_v must be non-negative")
        self.margin_v = margin_v

    def target_voltage(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        return self.clamp(die, ceil_to_resolution(die.vmin_v + self.margin_v))


class ReactiveBackoffPolicy(GovernorPolicy):
    """Fault-feedback control: back off on faults, creep down when clean.

    A classic additive-increase controller on the voltage axis: faults in
    the previous step raise the target by ``backoff_v`` immediately; after
    ``hold_steps`` consecutive clean steps the target creeps down by
    ``probe_v``.  The controller oscillates around the *true* (temperature
    dependent) fault boundary — it exploits thermal headroom without a
    thermal model, but every downward probe that crosses the boundary serves
    faulty inferences for one step.
    """

    name = "reactive"
    wakes_every_step = False
    wakes_on_temperature = False
    wakes_on_faults = True

    def __init__(
        self,
        backoff_v: float = 0.010,
        probe_v: float = 0.001,
        hold_steps: int = 25,
    ) -> None:
        if backoff_v <= 0 or probe_v <= 0:
            raise GovernorError("backoff_v and probe_v must be positive")
        if hold_steps < 1:
            raise GovernorError("hold_steps must be at least 1")
        self.backoff_v = backoff_v
        self.probe_v = probe_v
        self.hold_steps = hold_steps
        self._state: Dict[Tuple[str, str], Dict[str, float]] = {}

    def reset(self) -> None:
        self._state.clear()

    def notify_crash(self, die: DieCharacterization) -> None:
        # Restart conservatively from the characterized safe point.
        self._state.pop(die.chip_key, None)

    def target_voltage(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        state = self._state.setdefault(
            die.chip_key, {"target_v": die.vmin_v, "clean_steps": 0.0}
        )
        if observation.faults_last_step > 0:
            state["target_v"] = state["target_v"] + self.backoff_v
            state["clean_steps"] = 0.0
        else:
            state["clean_steps"] += 1.0
            if state["clean_steps"] >= self.hold_steps:
                state["target_v"] = state["target_v"] - self.probe_v
                state["clean_steps"] = 0.0
        state["target_v"] = self.clamp(die, ceil_to_resolution(state["target_v"]))
        return state["target_v"]

    def steps_until_state_event(self, die: DieCharacterization) -> "int | None":
        # The next fault-free evaluation that *changes* the target is the
        # one where the clean counter reaches the hold: exactly
        # ``hold_steps - clean_steps`` evaluations from now.
        state = self._state.get(die.chip_key)
        clean = 0.0 if state is None else state["clean_steps"]
        return int(self.hold_steps - clean)

    def advance_clean(self, die: DieCharacterization, n_steps: int) -> None:
        # Each skipped fault-free evaluation increments the clean counter by
        # exactly 1.0 without reaching the hold (the event core schedules a
        # real evaluation at the creep step), so a bulk add is bit-identical
        # to the stepped path's repeated ``+= 1.0``.
        if n_steps <= 0:
            return
        state = self._state.setdefault(
            die.chip_key, {"target_v": die.vmin_v, "clean_steps": 0.0}
        )
        state["clean_steps"] += float(n_steps)


class PredictiveItdPolicy(GovernorPolicy):
    """Thermal-headroom-aware feed-forward: ITD-compensated Vmin plus margin.

    The safe floor at board temperature ``T`` is the characterized ``Vmin``
    shifted by the fitted ITD coefficient; adding the die's six-sigma ripple
    margin and rounding *up* to the regulator resolution makes the command
    sit strictly above every failure threshold at every temperature — which
    is why this policy serves zero faulty inferences while undervolting
    below the characterized ``Vmin`` whenever the silicon runs hot.
    """

    name = "predictive"
    wakes_every_step = False
    wakes_on_temperature = True
    wakes_on_faults = False

    def __init__(self, extra_margin_v: float = 0.0) -> None:
        if extra_margin_v < 0:
            raise GovernorError("extra_margin_v must be non-negative")
        self.extra_margin_v = extra_margin_v

    def target_voltage(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        floor = die.compensated_vmin_v(observation.temperature_c)
        target = ceil_to_resolution(
            floor + die.ripple_margin_v + self.extra_margin_v
        )
        return self.clamp(die, target)


#: Policy registry, in documentation order (the CLI's ``--policy`` choices).
POLICIES: Dict[str, Type[GovernorPolicy]] = {
    StaticNominalPolicy.name: StaticNominalPolicy,
    StaticUndervoltPolicy.name: StaticUndervoltPolicy,
    ReactiveBackoffPolicy.name: ReactiveBackoffPolicy,
    PredictiveItdPolicy.name: PredictiveItdPolicy,
}

#: Policy names in registry order.
POLICY_NAMES: Tuple[str, ...] = tuple(POLICIES)


def build_policy(name: str, **kwargs: object) -> GovernorPolicy:
    """Instantiate a policy by registry name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise GovernorError(
            f"unknown policy {name!r}; available: {', '.join(POLICY_NAMES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]


@dataclass
class VoltageGovernor:
    """One policy bound to a fleet's characterization bundle.

    The governor is the only component that touches the rails: it reads the
    board temperature and writes setpoints exclusively through the bound
    die's :class:`~repro.harness.pmbus.PmbusAdapter`, so its entire hardware
    footprint is auditable from the adapter's transaction log.
    """

    policy: GovernorPolicy
    bundle: GovernorBundle
    #: Count of ``VOUT_COMMAND`` writes actually issued (setpoint changes).
    n_actuations: int = field(default=0, init=False)

    def die_of(self, adapter: PmbusAdapter) -> DieCharacterization:
        """The bundle entry for an adapter's chip; raises for unknown dies."""
        spec = adapter.chip.spec
        return self.bundle.get(spec.name, spec.serial_number)

    def plan(
        self, die: DieCharacterization, observation: GovernorObservation
    ) -> float:
        """The setpoint the policy wants, without touching hardware."""
        return self.policy.target_voltage(die, observation)

    def step(
        self,
        adapter: PmbusAdapter,
        step: int,
        faults_last_step: int,
    ) -> float:
        """One control iteration: read temperature, decide, actuate.

        Only issues a ``VOUT_COMMAND`` when the target differs from the
        current setpoint (real deployments avoid redundant PMBUS writes);
        returns the rail's setpoint after the step either way.
        """
        die = self.die_of(adapter)
        observation = GovernorObservation(
            step=step,
            temperature_c=adapter.read_temperature(),
            faults_last_step=faults_last_step,
            setpoint_v=adapter.chip.vccbram,
        )
        target = self.plan(die, observation)
        if abs(target - observation.setpoint_v) > 1e-9:
            self.n_actuations += 1
            return adapter.vout_command(VCCBRAM, target)
        return observation.setpoint_v
