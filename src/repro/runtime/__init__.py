"""Closed-loop runtime undervolting: governors, workloads, fleet serving.

The offline pipeline (batch engine, campaigns, adaptive search)
characterizes dies; this subpackage *uses* those characterizations online.
A :class:`GovernorBundle` carries per-die thresholds out of a campaign
store, a :class:`VoltageGovernor` with a pluggable policy actuates each
board's ``VCCBRAM`` over PMBUS, and a :class:`FleetSimulator` serves a
seeded :class:`WorkloadTrace` (diurnal, burst or batch-offline) on a fleet
of NN accelerators through heat-chamber temperature transients, logging a
bit-replayable :class:`TelemetryLog` that :mod:`repro.analysis.runtime`
turns into energy/accuracy/SLO summaries.

See ``docs/runtime.md`` for the policy and simulator models; the CLI front
end is ``repro-undervolt runtime``.
"""

from .characterization import (
    BUNDLE_FILENAME,
    CharacterizationError,
    DieCharacterization,
    GovernorBundle,
    bundle_path,
    characterize_die,
    characterize_fleet,
    write_governor_bundle,
)
from .governor import (
    POLICIES,
    POLICY_NAMES,
    GovernorError,
    GovernorObservation,
    GovernorPolicy,
    PredictiveItdPolicy,
    ReactiveBackoffPolicy,
    StaticNominalPolicy,
    StaticUndervoltPolicy,
    VoltageGovernor,
    build_policy,
    ceil_to_resolution,
)
from .event_core import (
    DieTimeline,
    chamber_temperature_path,
    merge_timelines,
    serving_phase,
    transient_steps,
)
from .simulator import (
    SIM_CORES,
    FleetChip,
    FleetSimulator,
    ServingModel,
    SimulationError,
    compile_accelerator,
    validate_core,
)
from .telemetry import TELEMETRY_VERSION, TelemetryError, TelemetryLog
from .workload import (
    TRACE_KINDS,
    TraceError,
    WorkloadTrace,
    batch_trace,
    build_trace,
    burst_trace,
    diurnal_trace,
    sparse_diurnal_trace,
)

__all__ = [
    "BUNDLE_FILENAME",
    "CharacterizationError",
    "DieCharacterization",
    "DieTimeline",
    "FleetChip",
    "FleetSimulator",
    "GovernorBundle",
    "GovernorError",
    "GovernorObservation",
    "GovernorPolicy",
    "POLICIES",
    "POLICY_NAMES",
    "PredictiveItdPolicy",
    "ReactiveBackoffPolicy",
    "SIM_CORES",
    "ServingModel",
    "SimulationError",
    "StaticNominalPolicy",
    "StaticUndervoltPolicy",
    "TELEMETRY_VERSION",
    "TRACE_KINDS",
    "TelemetryError",
    "TelemetryLog",
    "TraceError",
    "VoltageGovernor",
    "WorkloadTrace",
    "batch_trace",
    "build_policy",
    "build_trace",
    "bundle_path",
    "burst_trace",
    "ceil_to_resolution",
    "chamber_temperature_path",
    "characterize_die",
    "characterize_fleet",
    "compile_accelerator",
    "diurnal_trace",
    "merge_timelines",
    "serving_phase",
    "sparse_diurnal_trace",
    "transient_steps",
    "validate_core",
    "write_governor_bundle",
]
