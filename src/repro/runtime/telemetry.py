"""Fleet telemetry: the per-step, per-chip record of a simulation run.

Everything downstream — the energy/accuracy/SLO summaries of
:mod:`repro.analysis.runtime`, the CLI's ``runtime report`` and the
acceptance benchmark's determinism check — consumes telemetry, so the log
is deliberately plain: parallel ``(n_chips, n_steps)`` arrays plus run
metadata, JSON round-trippable, with a canonical digest that witnesses
bit-identical replays (same trace + seed + bundle ⇒ same digest).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

#: Telemetry document schema version.
TELEMETRY_VERSION = 1

#: The per-chip array fields a telemetry document carries, in order.
ARRAY_FIELDS: Tuple[str, ...] = (
    "voltages_v",
    "temperatures_c",
    "assigned",
    "served",
    "faulty",
    "fault_bits",
    "crashed",
    "bram_power_w",
    "energy_j",
)


class TelemetryError(ValueError):
    """Raised for inconsistent telemetry shapes or documents."""


@dataclass
class TelemetryLog:
    """Everything one :class:`~repro.runtime.simulator.FleetSimulator` run measured.

    Array semantics (all shaped ``(n_chips, n_steps)``):

    * ``voltages_v`` — VCCBRAM setpoint served at (nominal during recovery);
    * ``temperatures_c`` — board temperature after the chamber ramp;
    * ``assigned`` / ``served`` — inference requests routed to / completed by
      the chip that step;
    * ``faulty`` — *uncorrected-fault inferences*: requests served while the
      accelerator's weight BRAMs carried at least one active fault;
    * ``fault_bits`` — number of flipped weight bits the scrubber would see;
    * ``crashed`` — 1 while the chip is down or rebooting after a crash;
    * ``bram_power_w`` / ``energy_j`` — rail power at the served setpoint and
      the step's energy (power × step seconds).
    """

    policy: str
    trace: Dict[str, Any]
    chips: List[Tuple[str, str]]
    step_seconds: float
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Number of VOUT_COMMAND writes the governor issued over the run.
    n_actuations: int = 0

    def __post_init__(self) -> None:
        if not self.chips:
            raise TelemetryError("telemetry needs at least one chip")
        shape = (len(self.chips), int(self.trace.get("n_steps", 0)))
        for name in ARRAY_FIELDS:
            if name not in self.arrays:
                raise TelemetryError(f"telemetry array {name!r} is missing")
            self.arrays[name] = np.asarray(self.arrays[name])
            if self.arrays[name].shape != shape:
                raise TelemetryError(
                    f"telemetry array {name!r} has shape "
                    f"{self.arrays[name].shape}, expected {shape}"
                )

    # ------------------------------------------------------------------
    @property
    def n_chips(self) -> int:
        """Number of chips the run simulated."""
        return len(self.chips)

    @property
    def n_steps(self) -> int:
        """Number of simulation steps."""
        return int(self.arrays["voltages_v"].shape[1])

    def array(self, name: str) -> np.ndarray:
        """One telemetry array by field name."""
        try:
            return self.arrays[name]
        except KeyError:
            raise TelemetryError(f"unknown telemetry array {name!r}") from None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, Any]:
        """JSON document of the run (arrays as nested lists)."""
        payload_arrays: Dict[str, Any] = {}
        for name in ARRAY_FIELDS:
            array = self.arrays[name]
            if np.issubdtype(array.dtype, np.floating):
                payload_arrays[name] = [
                    [round(float(x), 9) for x in row] for row in array
                ]
            else:
                payload_arrays[name] = array.astype(np.int64).tolist()
        return {
            "version": TELEMETRY_VERSION,
            "policy": self.policy,
            "trace": dict(self.trace),
            "chips": [list(key) for key in self.chips],
            "step_seconds": self.step_seconds,
            "n_actuations": self.n_actuations,
            "arrays": payload_arrays,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "TelemetryLog":
        """Rebuild a log from its JSON document (strict on version)."""
        if document.get("version") != TELEMETRY_VERSION:
            raise TelemetryError(
                f"telemetry version {document.get('version')!r} is not the "
                f"supported {TELEMETRY_VERSION}"
            )
        arrays = {
            name: np.asarray(values)
            for name, values in document.get("arrays", {}).items()
        }
        return cls(
            policy=str(document["policy"]),
            trace=dict(document["trace"]),
            chips=[tuple(pair) for pair in document["chips"]],
            step_seconds=float(document["step_seconds"]),
            arrays=arrays,
            n_actuations=int(document.get("n_actuations", 0)),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical document: the bit-identity witness."""
        canonical = json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
