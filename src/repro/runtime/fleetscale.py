"""Population-scale governor simulation over synthetic die fleets.

The identity-grade event core (:mod:`repro.runtime.event_core`) simulates
*real* dies — compiled placements, per-bitcell thresholds, per-step supply
ripple — which is exactly right for a 16-chip fleet and exactly wrong for
the ROADMAP's 1M-device question: place-and-route per die alone makes the
population unreachable.  This module runs the same closed-loop governor
comparison on a **synthetic fleet**: per-die ``Vmin``/``Vcrash``/threshold
facts drawn from the platform calibration (the same population shape the
campaign stores measure), held as struct-of-arrays, and driven through a
discrete-event engine whose work scales with *events* (heat-chamber
transient crossings, crash/reboot cycles, reactive control activity) while
every per-die quantity inside a window is one vectorized expression.

Population model (the fidelity line, deliberately above the bitcell level):

* one fault threshold per die (``max_threshold_v``, the die's worst
  weight-observable cell): a die serves faulty inferences at step ``s``
  iff ``setpoint + itd_shift(T_s) < max_threshold_v``;
* supply ripple enters through the characterization's six-sigma margin
  (the per-step ripple draw is below the fidelity line at 100k+ dies);
* load balancing is mean-field: each step serves
  ``min(requests, operational x capacity)`` fleet-wide and attributes the
  faulty share ``served x fault_active // operational`` — the per-die
  remainder microstructure the identity core tracks exactly;
* rail power is the platform power model evaluated on the millivolt
  setpoint grid (one table lookup per segment);
* a die commanded below its **true** crash voltage reboot-thrashes —
  ``R+1``-step crash cycles at nominal — until the next evaluation whose
  target clears it.

Both engines in this module — the event core and the per-die-per-step
``stepped`` reference loop — implement this model *bit-identically* (same
float expressions in the same order, same integer formulas), so the
stepped loop is the oracle for the event engine's correctness and the
honest baseline for its throughput, at any fleet size.  Sharding splits
the die axis over :class:`repro.exec.WorkScheduler`; per-die arrays are
merged by die range and reduced once, so summaries and digests are
independent of worker count and completion order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.core.calibration import get_calibration
from repro.core.power import bram_power_model
from repro.core.temperature import REFERENCE_TEMPERATURE_C

from .event_core import chamber_temperature_path, transient_steps
from .governor import (
    POLICY_NAMES,
    GovernorError,
    PredictiveItdPolicy,
    ReactiveBackoffPolicy,
    RESOLUTION_V,
    StaticUndervoltPolicy,
)
from .simulator import SimulationError, validate_core
from .workload import WorkloadTrace

#: Nominal rail voltage of every studied platform (fleet-wide at scale).
NOMINAL_V = 1.0

#: Millivolt-grid size of the power lookup table (rail limits 0.40-1.10 V).
_GRID_MIN_MV = 400
_GRID_MAX_MV = 1100


class FleetScaleError(SimulationError):
    """Raised for inconsistent population-scale simulation requests."""


# ----------------------------------------------------------------------
# Synthetic fleets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticFleetSpec:
    """Parameters of a calibrated synthetic die population."""

    n_dies: int
    platform: str = "ZC702"
    seed: int = 2026
    #: Fleet-wide BRAM utilization the power model sees.
    utilization: float = 0.35

    def __post_init__(self) -> None:
        if self.n_dies < 1:
            raise FleetScaleError("n_dies must be at least 1")
        if not 0.0 <= self.utilization <= 1.0:
            raise FleetScaleError("utilization must be in [0, 1]")


@dataclass
class SyntheticFleet:
    """A die population as struct-of-arrays (shape ``(n_dies,)`` each).

    ``vmin_v``/``vcrash_v`` are the *characterized* facts a governor bundle
    would carry (what the policies see); ``true_vcrash_v`` is the silicon's
    actual crash boundary (what the environment enforces) and
    ``max_threshold_v`` the worst weight-observable cell threshold — drawn
    from the platform calibration with the same population spread the
    campaign stores measure (vmin on the 10 mV characterization grid, a
    50-70 mV crash gap, thresholds just below vmin).
    """

    spec: SyntheticFleetSpec
    vmin_v: np.ndarray
    vcrash_v: np.ndarray
    true_vcrash_v: np.ndarray
    max_threshold_v: np.ndarray
    itd_v_per_degc: float
    ripple_margin_v: float
    reference_c: float = REFERENCE_TEMPERATURE_C

    @property
    def n_dies(self) -> int:
        return int(self.vmin_v.size)

    @classmethod
    def draw(cls, spec: SyntheticFleetSpec) -> "SyntheticFleet":
        """Draw a deterministic population from the platform calibration."""
        calibration = get_calibration(spec.platform)
        rng = np.random.default_rng(spec.seed)
        n = spec.n_dies
        vmin = np.round(0.59 + 0.04 * rng.random(n), 2)
        vcrash = np.round(vmin - 0.05 - 0.02 * rng.random(n), 3)
        true_vcrash = np.round(vcrash + 0.030 * rng.random(n), 6)
        max_threshold = vmin - 0.001 - 0.008 * rng.random(n)
        # Two small honest subpopulations keep the crash machinery live at
        # scale.  "Crash-first" dies (~6%) hide their worst observable cell
        # below the true crash boundary, so a probing controller reboots
        # instead of faulting; "drifted" dies (~1.5%) have aged until the
        # true crash boundary sits above the *characterized* Vmin, so every
        # undervolting policy reboot-thrashes on them (predictive only in
        # hot windows, where the ITD compensation dips below the drift).
        kind = rng.random(n)
        drifted = kind < 0.015
        crash_first = (kind >= 0.015) & (kind < 0.075)
        true_vcrash = np.where(
            drifted, np.round(vmin + 0.002 + 0.008 * rng.random(n), 6), true_vcrash
        )
        max_threshold = np.where(
            crash_first | drifted,
            true_vcrash - 0.004 - 0.006 * rng.random(n),
            max_threshold,
        )
        return cls(
            spec=spec,
            vmin_v=vmin,
            vcrash_v=vcrash,
            true_vcrash_v=true_vcrash,
            max_threshold_v=max_threshold,
            itd_v_per_degc=calibration.itd_v_per_degc,
            ripple_margin_v=6.0 * calibration.ripple_sigma_v,
        )

    def slice(self, start: int, stop: int) -> "SyntheticFleet":
        """The contiguous die range ``[start, stop)`` as its own fleet."""
        return SyntheticFleet(
            spec=self.spec,
            vmin_v=self.vmin_v[start:stop],
            vcrash_v=self.vcrash_v[start:stop],
            true_vcrash_v=self.true_vcrash_v[start:stop],
            max_threshold_v=self.max_threshold_v[start:stop],
            itd_v_per_degc=self.itd_v_per_degc,
            ripple_margin_v=self.ripple_margin_v,
            reference_c=self.reference_c,
        )


# ----------------------------------------------------------------------
# Vectorized policy arithmetic (same constants as repro.runtime.governor)
# ----------------------------------------------------------------------
def _ceil_to_resolution_vec(volts: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`repro.runtime.governor.ceil_to_resolution`."""
    return np.round(
        np.ceil(volts / RESOLUTION_V - 1e-9) * RESOLUTION_V, 6
    )


def _clamp_vec(fleet: SyntheticFleet, volts: np.ndarray) -> np.ndarray:
    """Vectorized twin of :meth:`GovernorPolicy.clamp`."""
    floor = fleet.vcrash_v + 0.020
    return np.minimum(NOMINAL_V, np.maximum(floor, volts))


def _static_targets(
    fleet: SyntheticFleet, policy: str, temperature_c: float
) -> np.ndarray:
    """Per-die targets of the three stateless policies at one temperature."""
    if policy == "static-nominal":
        return np.full(fleet.n_dies, NOMINAL_V)
    if policy == "static-undervolt":
        margin = StaticUndervoltPolicy().margin_v
        return _clamp_vec(fleet, _ceil_to_resolution_vec(fleet.vmin_v + margin))
    if policy == "predictive":
        extra = PredictiveItdPolicy().extra_margin_v
        floor = fleet.vmin_v - fleet.itd_v_per_degc * (
            temperature_c - fleet.reference_c
        )
        return _clamp_vec(
            fleet, _ceil_to_resolution_vec(floor + fleet.ripple_margin_v + extra)
        )
    raise GovernorError(f"policy {policy!r} has no stateless target form")


def _power_table(fleet: SyntheticFleet) -> np.ndarray:
    """Rail power on the millivolt setpoint grid (index = mV - grid min)."""
    model = bram_power_model(get_calibration(fleet.spec.platform))
    grid = np.arange(_GRID_MIN_MV, _GRID_MAX_MV + 1) / 1000.0
    return model.power_array(grid, utilization=fleet.spec.utilization)


def _power_index(volts: np.ndarray) -> np.ndarray:
    """Millivolt table index of setpoint voltages (grid-snapped)."""
    return (
        np.round(np.asarray(volts) * 1000.0).astype(np.int64) - _GRID_MIN_MV
    )


@dataclass
class ShardTimeline:
    """Phase-1 output for one contiguous die range under one policy."""

    die_start: int
    die_stop: int
    #: Per-die totals over the whole trace.
    energy_j: np.ndarray
    crashed_steps: np.ndarray
    fault_steps: np.ndarray
    actuations: np.ndarray
    #: Per-step counts over this shard's dies.
    operational: np.ndarray
    fault_active: np.ndarray


def _simulate_scale_shard(
    fleet: SyntheticFleet,
    die_start: int,
    trace: WorkloadTrace,
    policy: str,
    crash_recovery_steps: int,
    core: str,
    temps: np.ndarray,
    windows: np.ndarray,
) -> ShardTimeline:
    """Run one die range through the population model (either core)."""
    if core == "event":
        if policy == "reactive":
            return _reactive_shard(
                fleet, die_start, trace, crash_recovery_steps, temps
            )
        return _static_event_shard(
            fleet, die_start, trace, policy, crash_recovery_steps, temps, windows
        )
    return _stepped_shard(
        fleet, die_start, trace, policy, crash_recovery_steps, temps, windows
    )


def _static_event_shard(
    fleet: SyntheticFleet,
    die_start: int,
    trace: WorkloadTrace,
    policy: str,
    recovery_steps: int,
    temps: np.ndarray,
    windows: np.ndarray,
) -> ShardTimeline:
    """Event engine for the stateless policies: one pass per T-window.

    Every per-die quantity inside a window is a closed form; the per-step
    operational/fault-active counts come from difference arrays, so the
    work per window is O(n_dies) regardless of window length.
    """
    n = fleet.n_dies
    n_steps = trace.n_steps
    cycle = recovery_steps + 1
    table = _power_table(fleet)
    dt = trace.step_seconds

    energy = np.zeros(n)
    crashed_steps = np.zeros(n, dtype=np.int64)
    fault_steps = np.zeros(n, dtype=np.int64)
    actuations = np.zeros(n, dtype=np.int64)
    op_diff = np.zeros(n_steps + 1, dtype=np.int64)
    fault_diff = np.zeros(n_steps + 1, dtype=np.int64)

    setpoint = np.full(n, NOMINAL_V)
    recover_at = np.zeros(n, dtype=np.int64)
    p_nominal = float(table[_power_index(np.array([NOMINAL_V]))[0]])

    for start, stop in zip(windows[:-1], windows[1:]):
        start, stop = int(start), int(stop)
        target = _static_targets(fleet, policy, float(temps[start]))
        avail = np.maximum(recover_at, start)
        waiting = np.minimum(avail, stop) - start  # recovery steps in window
        thrash = (avail < stop) & (target < fleet.true_vcrash_v - 1e-9)
        up = (avail < stop) & ~thrash

        # Dies still rebooting at the window start, then thrashing/up.
        crashed_in_window = waiting + np.where(
            thrash, stop - np.minimum(avail, stop), 0
        )
        crashed_steps += crashed_in_window

        # Reboot thrash: one evaluation (and one actuation, nominal ->
        # target) per R+1-step crash cycle from the die's first live step.
        n_evals = np.where(
            thrash, -(-(stop - np.minimum(avail, stop)) // cycle), 0
        )
        actuations += n_evals
        last_eval = np.minimum(avail, stop) + np.maximum(n_evals - 1, 0) * cycle
        recover_at = np.where(thrash, last_eval + cycle, recover_at)
        setpoint = np.where(thrash, NOMINAL_V, setpoint)

        # Up dies: actuate once if the target moved, then hold the window.
        actuations += (up & (np.abs(target - setpoint) > 1e-9)).astype(np.int64)
        setpoint = np.where(up, target, setpoint)

        # Fault activity is constant inside a T-window (one threshold
        # comparison per die, the scale twin of the searchsorted window).
        shift = fleet.itd_v_per_degc * (float(temps[start]) - fleet.reference_c)
        faulting = up & (setpoint + shift < fleet.max_threshold_v)
        up_steps = np.where(up, stop - np.maximum(avail, start), 0)
        fault_steps += np.where(faulting, up_steps, 0)

        # Per-step shard counts via difference arrays.
        up_from = np.maximum(avail, start)[up]
        np.add.at(op_diff, up_from, 1)
        op_diff[stop] -= up_from.size
        fault_from = np.maximum(avail, start)[faulting]
        np.add.at(fault_diff, fault_from, 1)
        fault_diff[stop] -= fault_from.size

        # Energy: a nominal-voltage segment (recovery + thrash) and a
        # held-setpoint segment per die, accumulated in time order.
        nominal_steps = crashed_in_window
        energy += nominal_steps * p_nominal * dt
        energy += up_steps * table[_power_index(setpoint)] * dt

    return ShardTimeline(
        die_start=die_start,
        die_stop=die_start + n,
        energy_j=energy,
        crashed_steps=crashed_steps,
        fault_steps=fault_steps,
        actuations=actuations,
        operational=np.cumsum(op_diff[:-1]),
        fault_active=np.cumsum(fault_diff[:-1]),
    )


def _reactive_shard(
    fleet: SyntheticFleet,
    die_start: int,
    trace: WorkloadTrace,
    recovery_steps: int,
    temps: np.ndarray,
) -> ShardTimeline:
    """Event engine for the reactive policy: per-step, vectorized over dies.

    The reactive controller's state can change at every step (fault
    backoff, clean-hold creep), so its event density *is* the step grid;
    the engine vectorizes the die axis instead — the same additive
    controller arithmetic as :class:`ReactiveBackoffPolicy`, element-wise.
    """
    defaults = ReactiveBackoffPolicy()
    backoff, probe, hold = defaults.backoff_v, defaults.probe_v, defaults.hold_steps
    n = fleet.n_dies
    n_steps = trace.n_steps
    table = _power_table(fleet)
    dt = trace.step_seconds
    shift_path = fleet.itd_v_per_degc * (temps - fleet.reference_c)

    energy = np.zeros(n)
    crashed_steps = np.zeros(n, dtype=np.int64)
    fault_steps = np.zeros(n, dtype=np.int64)
    actuations = np.zeros(n, dtype=np.int64)
    operational = np.zeros(n_steps, dtype=np.int64)
    fault_active_counts = np.zeros(n_steps, dtype=np.int64)

    target = fleet.vmin_v.copy()
    clean = np.zeros(n)
    setpoint = np.full(n, NOMINAL_V)
    recover_at = np.zeros(n, dtype=np.int64)
    faults_prev = np.zeros(n, dtype=bool)
    idx_nominal = _power_index(np.array([NOMINAL_V]))[0]

    for step in range(n_steps):
        down = recover_at > step
        up = ~down

        # Controller update (faults raise, clean holds creep down).
        backing = up & faults_prev
        target = np.where(backing, target + backoff, target)
        clean = np.where(backing, 0.0, clean)
        counting = up & ~faults_prev
        clean = np.where(counting, clean + 1.0, clean)
        creeping = counting & (clean >= hold)
        target = np.where(creeping, target - probe, target)
        clean = np.where(creeping, 0.0, clean)
        target = np.where(up, _clamp_vec(fleet, _ceil_to_resolution_vec(target)), target)

        moved = up & (np.abs(target - setpoint) > 1e-9)
        actuations += moved
        setpoint = np.where(moved, target, setpoint)

        crash = up & (setpoint < fleet.true_vcrash_v - 1e-9)
        recover_at = np.where(crash, step + recovery_steps + 1, recover_at)
        setpoint = np.where(crash, NOMINAL_V, setpoint)
        # A power-cycled controller restarts from the characterized point.
        target = np.where(crash, fleet.vmin_v, target)
        clean = np.where(crash, 0.0, clean)

        live = up & ~crash
        faulting = live & (setpoint + shift_path[step] < fleet.max_threshold_v)
        faults_prev = faulting
        crashed = down | crash

        operational[step] = int(np.count_nonzero(live))
        fault_active_counts[step] = int(np.count_nonzero(faulting))
        crashed_steps += crashed
        fault_steps += faulting
        energy += np.where(crashed, table[idx_nominal], table[_power_index(setpoint)]) * dt

    return ShardTimeline(
        die_start=die_start,
        die_stop=die_start + n,
        energy_j=energy,
        crashed_steps=crashed_steps,
        fault_steps=fault_steps,
        actuations=actuations,
        operational=operational,
        fault_active=fault_active_counts,
    )


def _stepped_shard(
    fleet: SyntheticFleet,
    die_start: int,
    trace: WorkloadTrace,
    policy: str,
    recovery_steps: int,
    temps: np.ndarray,
    windows: np.ndarray,
) -> ShardTimeline:
    """The per-die-per-step reference loop (the oracle and the baseline).

    Plain Python over every ``(die, step)`` pair — the same cost shape as
    the pre-event-core simulator — implementing the identical population
    model: evaluations at T-window boundaries (every step for reactive),
    ``R+1``-step crash cycles, segment-accumulated energy.  Bit-identical
    to the event engine by construction; slower by the activity ratio.
    """
    defaults = ReactiveBackoffPolicy()
    backoff, probe, hold = defaults.backoff_v, defaults.probe_v, defaults.hold_steps
    n = fleet.n_dies
    n_steps = trace.n_steps
    table = _power_table(fleet)
    dt = trace.step_seconds
    boundary = np.zeros(n_steps, dtype=bool)
    boundary[windows[:-1]] = True
    reactive = policy == "reactive"
    idx_nominal = int(_power_index(np.array([NOMINAL_V]))[0])
    p_nominal = float(table[idx_nominal])

    energy = np.zeros(n)
    crashed_steps = np.zeros(n, dtype=np.int64)
    fault_steps = np.zeros(n, dtype=np.int64)
    actuations = np.zeros(n, dtype=np.int64)
    operational = np.zeros(n_steps, dtype=np.int64)
    fault_active_counts = np.zeros(n_steps, dtype=np.int64)

    floor_margin = 0.020
    for die in range(n):
        vmin = float(fleet.vmin_v[die])
        floor = float(fleet.vcrash_v[die]) + floor_margin
        true_vcrash = float(fleet.true_vcrash_v[die])
        threshold = float(fleet.max_threshold_v[die])
        target = vmin
        clean = 0.0
        setpoint = NOMINAL_V
        recover_at = 0
        faults_prev = False
        seg_power = p_nominal
        seg_steps = 0
        die_energy = 0.0

        for step in range(n_steps):
            if recover_at > step:
                crashed_steps[die] += 1
                if reactive or seg_power != p_nominal or boundary[step]:
                    die_energy += seg_steps * seg_power * dt
                    seg_power, seg_steps = p_nominal, 0
                seg_steps += 1
                continue
            came_up = recover_at == step and step > 0
            evaluate = reactive or boundary[step] or recover_at == step
            if evaluate:
                if reactive:
                    if faults_prev:
                        target = target + backoff
                        clean = 0.0
                    else:
                        clean += 1.0
                        if clean >= hold:
                            target = target - probe
                            clean = 0.0
                    quantized = _ceil_to_resolution_vec(np.array([target]))[0]
                    target = min(NOMINAL_V, max(floor, float(quantized)))
                else:
                    scalar = _static_targets(
                        fleet.slice(die, die + 1), policy, float(temps[step])
                    )
                    target = float(scalar[0])
                if abs(target - setpoint) > 1e-9:
                    actuations[die] += 1
                    setpoint = target
                if setpoint < true_vcrash - 1e-9:
                    recover_at = step + recovery_steps + 1
                    setpoint = NOMINAL_V
                    target = vmin
                    clean = 0.0
                    faults_prev = False
                    crashed_steps[die] += 1
                    if reactive or seg_power != p_nominal or boundary[step]:
                        die_energy += seg_steps * seg_power * dt
                        seg_power, seg_steps = p_nominal, 0
                    seg_steps += 1
                    continue
            shift = fleet.itd_v_per_degc * (float(temps[step]) - fleet.reference_c)
            faulting = setpoint + shift < threshold
            faults_prev = faulting
            if faulting:
                fault_steps[die] += 1
                fault_active_counts[step] += 1
            operational[step] += 1
            power = float(table[int(round(setpoint * 1000.0)) - _GRID_MIN_MV])
            # Flush on every boundary the event engine treats as a segment
            # edge — per step for reactive, on T-windows, power moves and
            # crash->live transitions otherwise — so the per-die float sum
            # accumulates in exactly the event engine's term order.
            if reactive or power != seg_power or boundary[step] or came_up:
                die_energy += seg_steps * seg_power * dt
                seg_power, seg_steps = power, 0
            seg_steps += 1
        die_energy += seg_steps * seg_power * dt
        energy[die] = die_energy

    return ShardTimeline(
        die_start=die_start,
        die_stop=die_start + n,
        energy_j=energy,
        crashed_steps=crashed_steps,
        fault_steps=fault_steps,
        actuations=actuations,
        operational=operational,
        fault_active=fault_active_counts,
    )


# ----------------------------------------------------------------------
# Results, merging, digests
# ----------------------------------------------------------------------
@dataclass
class FleetScaleResult:
    """One policy's population-scale run: per-die arrays plus fleet totals."""

    policy: str
    fleet_spec: SyntheticFleetSpec
    trace: Dict[str, Any]
    capacity_per_step: int
    core: str
    energy_j: np.ndarray
    crashed_steps: np.ndarray
    fault_steps: np.ndarray
    actuations: np.ndarray
    operational: np.ndarray
    fault_active: np.ndarray
    served: np.ndarray = field(init=False)
    faulty: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        requests = np.asarray(self.trace_requests, dtype=np.int64)
        capacity = np.int64(self.capacity_per_step)
        self.served = np.minimum(requests, self.operational * capacity)
        with np.errstate(divide="ignore", invalid="ignore"):
            self.faulty = np.where(
                self.operational > 0,
                self.served * self.fault_active // np.maximum(self.operational, 1),
                0,
            )

    #: Filled by :func:`simulate_fleet` (the trace's request axis).
    trace_requests: Sequence[int] = ()

    @property
    def n_dies(self) -> int:
        return int(self.energy_j.size)

    def totals(self) -> Dict[str, Any]:
        """Fleet-level aggregates (the population-scale energy/SLO story)."""
        requests = int(np.sum(np.asarray(self.trace_requests, dtype=np.int64)))
        served = int(self.served.sum())
        return {
            "n_dies": self.n_dies,
            "requests": requests,
            "served": served,
            "slo_violations": requests - served,
            "faulty_inferences": int(self.faulty.sum()),
            "crash_steps": int(self.crashed_steps.sum()),
            "fault_active_die_steps": int(self.fault_steps.sum()),
            "n_actuations": int(self.actuations.sum()),
            "energy_j": round(float(np.sum(self.energy_j)), 9),
        }

    def digest(self) -> str:
        """SHA-256 witness over totals and every per-die/per-step array.

        Arrays are rounded to 9 decimals (floats) and hashed from their
        canonical byte layout, so two runs agree on the digest iff they
        agree bit-for-bit after the telemetry-standard rounding —
        independent of how many shards produced them.
        """
        hasher = hashlib.sha256()
        hasher.update(
            json.dumps(self.totals(), sort_keys=True, separators=(",", ":")).encode()
        )
        for array in (
            np.round(self.energy_j, 9),
            self.crashed_steps,
            self.fault_steps,
            self.actuations,
            self.operational,
            self.fault_active,
            self.served,
            self.faulty,
        ):
            hasher.update(np.ascontiguousarray(array).tobytes())
        return hasher.hexdigest()

    def to_summary(self) -> Dict[str, Any]:
        """JSON summary document (what ``runtime scale --json`` emits)."""
        duration_s = float(self.trace.get("n_steps", 0)) * float(
            self.trace.get("step_seconds", 0.0)
        )
        return {
            "policy": self.policy,
            "core": self.core,
            "totals": self.totals(),
            "device_seconds": self.n_dies * duration_s,
            "digest": self.digest(),
        }


def merge_shards(
    shards: Sequence[ShardTimeline],
    policy: str,
    fleet: SyntheticFleet,
    trace: WorkloadTrace,
    capacity_per_step: int,
    core: str,
) -> FleetScaleResult:
    """Merge shard timelines in die order, independent of submission order.

    Per-die arrays concatenate by ``die_start`` (so one reduction over the
    merged axis is identical for 1 worker or N); per-step counts add
    exactly (integers).  The audit fix this encodes: nothing downstream of
    the merge may depend on the order workers completed.
    """
    ordered = sorted(shards, key=lambda shard: shard.die_start)
    expected = 0
    for shard in ordered:
        if shard.die_start != expected:
            raise FleetScaleError("shard timelines do not tile the die axis")
        expected = shard.die_stop
    if expected != fleet.n_dies:
        raise FleetScaleError("shard timelines do not cover the fleet")
    operational = np.zeros(trace.n_steps, dtype=np.int64)
    fault_active = np.zeros(trace.n_steps, dtype=np.int64)
    for shard in ordered:
        operational += shard.operational
        fault_active += shard.fault_active
    return FleetScaleResult(
        policy=policy,
        fleet_spec=fleet.spec,
        trace=trace.to_dict(),
        capacity_per_step=capacity_per_step,
        core=core,
        energy_j=np.concatenate([shard.energy_j for shard in ordered]),
        crashed_steps=np.concatenate([shard.crashed_steps for shard in ordered]),
        fault_steps=np.concatenate([shard.fault_steps for shard in ordered]),
        actuations=np.concatenate([shard.actuations for shard in ordered]),
        operational=operational,
        fault_active=fault_active,
        trace_requests=trace.requests,
    )


def simulate_fleet(
    fleet: SyntheticFleet,
    trace: WorkloadTrace,
    policy: str,
    capacity_rps: float = 150.0,
    crash_recovery_steps: int = 3,
    core: str = "event",
    scheduler: str = "serial",
    jobs: int = 1,
) -> FleetScaleResult:
    """Run one policy over a synthetic population (either core, sharded).

    The die axis shards over :class:`repro.exec.WorkScheduler`
    (``scheduler``/``jobs``); results merge by die range, so the digest is
    identical for any worker count.
    """
    from repro.exec import WorkScheduler, chunked

    if policy not in POLICY_NAMES:
        raise GovernorError(
            f"unknown policy {policy!r}; available: {', '.join(POLICY_NAMES)}"
        )
    core = validate_core(core)
    if capacity_rps <= 0:
        raise FleetScaleError("capacity_rps must be positive")
    if crash_recovery_steps < 1:
        raise FleetScaleError("crash_recovery_steps must be at least 1")
    capacity_per_step = int(round(capacity_rps * trace.step_seconds))

    temps = chamber_temperature_path(trace)
    changes = transient_steps(temps)
    windows = np.concatenate(
        ([0], changes, [trace.n_steps])
    ).astype(np.int64)
    windows = np.unique(windows)

    work = WorkScheduler(scheduler=scheduler, jobs=jobs)
    if work.is_serial:
        shards = [
            _simulate_scale_shard(
                fleet, 0, trace, policy, crash_recovery_steps, core, temps, windows
            )
        ]
    else:
        ranges = chunked(list(range(fleet.n_dies)), work.jobs)
        tasks = [
            (
                fleet.slice(r[0], r[-1] + 1),
                r[0],
                r[-1] + 1,
                trace,
                policy,
                crash_recovery_steps,
                core,
                temps,
                windows,
            )
            for r in ranges
            if r
        ]
        shards = work.map_tasks(_shard_entry, tasks)
    return merge_shards(shards, policy, fleet, trace, capacity_per_step, core)


def _shard_entry(
    fleet_slice: SyntheticFleet,
    die_start: int,
    die_stop: int,
    trace: WorkloadTrace,
    policy: str,
    crash_recovery_steps: int,
    core: str,
    temps: np.ndarray,
    windows: np.ndarray,
) -> ShardTimeline:
    """Process-pool entry point (module-level for picklability)."""
    return _simulate_scale_shard(
        fleet_slice, die_start, trace, policy, crash_recovery_steps, core,
        temps, windows,
    )


def simulate_policies(
    fleet: SyntheticFleet,
    trace: WorkloadTrace,
    policies: Optional[Sequence[str]] = None,
    capacity_rps: float = 150.0,
    crash_recovery_steps: int = 3,
    core: str = "event",
    scheduler: str = "serial",
    jobs: int = 1,
) -> Dict[str, FleetScaleResult]:
    """The population-scale governor comparison (all four policies)."""
    names = list(POLICY_NAMES) if policies is None else list(policies)
    return {
        name: simulate_fleet(
            fleet,
            trace,
            name,
            capacity_rps=capacity_rps,
            crash_recovery_steps=crash_recovery_steps,
            core=core,
            scheduler=scheduler,
            jobs=jobs,
        )
        for name in names
    }


def nominal_energy_j(fleet: SyntheticFleet, trace: WorkloadTrace) -> float:
    """Fleet energy if every rail parked at nominal (the guardband anchor)."""
    table = _power_table(fleet)
    power = table[_power_index(np.full(fleet.n_dies, NOMINAL_V))]
    return float(np.sum(power * trace.n_steps * trace.step_seconds))


def guardband_floor_energy_j(fleet: SyntheticFleet, trace: WorkloadTrace) -> float:
    """Fleet energy if every rail parked at its characterized Vmin."""
    table = _power_table(fleet)
    power = table[_power_index(fleet.vmin_v)]
    return float(np.sum(power * trace.n_steps * trace.step_seconds))


__all__ = [
    "FleetScaleError",
    "FleetScaleResult",
    "ShardTimeline",
    "SyntheticFleet",
    "SyntheticFleetSpec",
    "guardband_floor_energy_j",
    "merge_shards",
    "nominal_energy_j",
    "simulate_fleet",
    "simulate_policies",
]
