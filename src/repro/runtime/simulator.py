"""Discrete-event fleet simulation of closed-loop undervolted serving.

One :class:`FleetSimulator` drives a fleet of chips through a
:class:`~repro.runtime.workload.WorkloadTrace`: every step, each board's
heat chamber ramps toward the trace's ambient setpoint, the
:class:`~repro.runtime.governor.VoltageGovernor` reads the board
temperature over PMBUS and actuates ``VCCBRAM``, the fleet splits the
step's inference arrivals, and each chip serves its share on the compiled
NN accelerator (default or ICBP placement) at whatever effective voltage
its bitcells see.

The fault path is bit-accurate to the offline pipeline but vectorized for
runtime scale: at simulator construction each chip's compiled placement is
flattened into a :class:`ServingModel` — the sorted failure voltages of
every *weight-observable* bitcell, i.e. exactly the cells
:meth:`repro.core.faultmodel.FaultField.corrupt_words` would flip given the
stored weight words — so a step's weight-fault count is one
``searchsorted`` instead of a per-BRAM Python loop, the same
sorted-threshold trick :class:`repro.core.batch.BatchFaultEvaluator` uses
for offline grids.  Rail power over the whole voltage path is evaluated in
one :func:`repro.core.batch.power_curve` broadcast per chip after the loop.
A thousand-step, 16-chip simulation completes in seconds, and the produced
:class:`~repro.runtime.telemetry.TelemetryLog` is a pure function of
(bundle, network, trace, policy, seed): replays are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.accelerator import NnAccelerator
from repro.accelerator.icbp import IcbpFlow, PlacementPolicy
from repro.core.batch import cached_fault_field, power_curve
from repro.core.faultmodel import FaultField
from repro.fpga.platform import FpgaChip
from repro.harness.environment import HeatChamber
from repro.harness.pmbus import PmbusAdapter
from repro.harness.powermeter import PowerMeter
from repro.nn.inference import QuantizedNetwork

from .characterization import GovernorBundle
from .governor import GovernorPolicy, VoltageGovernor, build_policy
from .telemetry import TelemetryLog
from .workload import WorkloadTrace


class SimulationError(RuntimeError):
    """Raised for inconsistent fleet-simulation configurations."""


#: The two simulation cores ``FleetSimulator.run`` dispatches between:
#: ``"event"`` (the discrete-event core, the default) and ``"stepped"``
#: (the original per-step loop, kept as the bit-identity oracle).
SIM_CORES: Tuple[str, ...] = ("event", "stepped")


def validate_core(core: str) -> str:
    """Normalize and validate a simulation-core knob value."""
    normalized = str(core).strip().lower()
    if normalized not in SIM_CORES:
        raise SimulationError(
            f"unknown simulation core {core!r}; expected one of {SIM_CORES}"
        )
    return normalized


def compile_accelerator(
    chip: FpgaChip,
    fault_field: FaultField,
    network: QuantizedNetwork,
    icbp: bool,
    compile_seed: int,
) -> NnAccelerator:
    """Compile one die's accelerator (ICBP or default placement).

    Module-level so the event core's process-pool workers can rebuild a
    die's serving model from its identity with the exact placement the
    simulator construction used.
    """
    if not icbp:
        return NnAccelerator(
            chip=chip,
            network=network,
            fault_field=fault_field,
            compile_seed=compile_seed,
        )
    # The last-layer ICBP constraint needs only the FVM, not the
    # vulnerability analysis, so the flow runs without a dataset here.
    flow = IcbpFlow(chip=chip, network=network, dataset=None, fault_field=fault_field)
    accelerator, _protected = flow.build_accelerator(
        PlacementPolicy.LAST_LAYER, compile_seed=compile_seed
    )
    return accelerator


@dataclass
class ServingModel:
    """The voltage-sensitivity of one compiled accelerator, flattened.

    ``thresholds_v`` holds the sorted failure voltages of every vulnerable
    bitcell that (a) lies inside a physical BRAM the placement assigned a
    weight segment to, (b) falls on a row holding a stored weight word and
    (c) would produce an *observable* flip for the bit actually stored
    there (a ``1 -> 0`` cell under a stored 1, a ``0 -> 1`` cell under a
    stored 0) — the exact cells ``corrupt_words`` flips.  A step's
    weight-fault count is then ``#{thresholds > effective_v}``, one
    ``searchsorted`` per query or one broadcast over a whole path.
    """

    thresholds_v: np.ndarray
    total_weight_bits: int
    bram_utilization: float

    @classmethod
    def from_accelerator(cls, accelerator: NnAccelerator) -> "ServingModel":
        """Flatten one compiled accelerator against its chip's fault field."""
        fault_field: FaultField = accelerator.fault_field
        cols = accelerator.chip.spec.bram_cols
        thresholds: List[np.ndarray] = []
        total_bits = 0
        for layer in accelerator.network.layers:
            flat = layer.flat_words()
            for segment in accelerator.mapping.segments_of_layer(layer.index):
                physical = accelerator.placement.site_of(segment.logical_name)
                words = flat[segment.word_slice()]
                total_bits += len(words) * layer.fmt.total_bits
                profile = fault_field.profile(physical)
                if profile.is_empty():
                    continue
                in_range = profile.rows < len(words)
                if not in_range.any():
                    continue
                rows = profile.rows[in_range]
                bit_positions = cols - 1 - profile.cols[in_range]
                stored = (words[rows] >> bit_positions) & 1
                observable = np.where(
                    profile.one_to_zero[in_range], stored == 1, stored == 0
                )
                thresholds.append(profile.failure_voltages_v[in_range][observable])
        merged = (
            np.sort(np.concatenate(thresholds))
            if thresholds
            else np.array([], dtype=float)
        )
        utilization = accelerator.mapping.bram_utilization_fraction(
            accelerator.chip.spec.n_brams
        )
        return cls(
            thresholds_v=merged,
            total_weight_bits=total_bits,
            bram_utilization=utilization,
        )

    def fault_bits(self, effective_v: "float | np.ndarray") -> "int | np.ndarray":
        """Flipped weight bits at an effective voltage (scalar or array)."""
        counts = self.thresholds_v.size - np.searchsorted(
            self.thresholds_v, effective_v, side="right"
        )
        if np.isscalar(effective_v):
            return int(counts)
        return counts.astype(np.int64)


@dataclass
class FleetChip:
    """Runtime state of one board in the simulated fleet."""

    chip: FpgaChip
    fault_field: FaultField
    adapter: PmbusAdapter
    serving: ServingModel
    power_meter: PowerMeter
    #: Deterministic per-step supply ripple, precomputed for the trace.
    ripple_v: np.ndarray
    crash_steps_left: int = 0
    faults_last_step: int = 0

    @property
    def key(self) -> Tuple[str, str]:
        """The (platform, serial) identity of the die."""
        return (self.chip.spec.name, self.chip.spec.serial_number)


class FleetSimulator:
    """Serve a workload trace on a characterized fleet under one governor.

    Parameters
    ----------
    bundle:
        Per-die characterizations (defines the fleet membership).
    network:
        Quantized network every chip accelerates; weights are mapped onto
        each die's own placement.
    trace:
        The workload to serve (requests and ambient per step).
    icbp:
        Compile each accelerator with the ICBP last-layer constraint
        (``True``, the paper's mitigation) or the default placement.
    capacity_rps:
        Per-chip serving capacity in requests per second; arrivals beyond
        the fleet's aggregate capacity (or routed to crashed chips) miss
        their SLO.
    crash_recovery_steps:
        Steps a crashed board spends rebooting at nominal voltage.
    compile_seed:
        Place-and-route seed shared by the fleet's compilations.
    core:
        Default simulation core :meth:`run` uses: ``"event"`` (the
        discrete-event core of :mod:`repro.runtime.event_core`) or
        ``"stepped"`` (the original per-step reference loop).  The two are
        bit-identical — same telemetry digest — for every input; the event
        core just scales wall-clock with *activity* instead of
        ``fleet x steps``.

    Building the simulator pays the expensive, policy-independent work once
    (chips, fault fields, compiled placements, serving models); each
    :meth:`run` then replays the same fleet under a different policy.
    """

    def __init__(
        self,
        bundle: GovernorBundle,
        network: QuantizedNetwork,
        trace: WorkloadTrace,
        icbp: bool = True,
        capacity_rps: float = 150.0,
        crash_recovery_steps: int = 3,
        compile_seed: int = 0,
        core: str = "event",
    ) -> None:
        if len(bundle) == 0:
            raise SimulationError("the characterization bundle is empty")
        if capacity_rps <= 0:
            raise SimulationError("capacity_rps must be positive")
        if crash_recovery_steps < 1:
            raise SimulationError("crash_recovery_steps must be at least 1")
        self.bundle = bundle
        self.network = network
        self.trace = trace
        self.icbp = icbp
        self.capacity_rps = capacity_rps
        self.capacity_per_step = int(round(capacity_rps * trace.step_seconds))
        self.crash_recovery_steps = crash_recovery_steps
        self.compile_seed = compile_seed
        self.core = validate_core(core)
        self.fleet: List[FleetChip] = []
        for die in bundle:
            chip = FpgaChip.build(die.platform, serial=die.serial)
            fault_field = cached_fault_field(chip)
            accelerator = compile_accelerator(
                chip, fault_field, network, icbp=icbp, compile_seed=compile_seed
            )
            serving = ServingModel.from_accelerator(accelerator)
            ripple = np.array(
                [fault_field.ripple_v(step) for step in range(trace.n_steps)]
            )
            self.fleet.append(
                FleetChip(
                    chip=chip,
                    fault_field=fault_field,
                    adapter=PmbusAdapter(chip),
                    serving=serving,
                    power_meter=PowerMeter(
                        chip, bram_utilization=serving.bram_utilization
                    ),
                    ripple_v=ripple,
                )
            )

    def with_trace(self, trace: WorkloadTrace) -> "FleetSimulator":
        """A simulator over the same compiled fleet serving another trace.

        Reuses every expensive policy-independent artifact (chips, fault
        fields, placements, serving models) and recomputes only the
        trace-dependent state (per-step ripple, capacity per step) — the
        cheap path the property tests and benchmarks use to sweep many
        traces over one fleet.  The clone shares the underlying chips, so
        do not run the original and the clone concurrently.
        """
        clone = object.__new__(FleetSimulator)
        clone.bundle = self.bundle
        clone.network = self.network
        clone.trace = trace
        clone.icbp = self.icbp
        clone.capacity_rps = self.capacity_rps
        clone.capacity_per_step = int(round(self.capacity_rps * trace.step_seconds))
        clone.crash_recovery_steps = self.crash_recovery_steps
        clone.compile_seed = self.compile_seed
        clone.core = self.core
        clone.fleet = [
            FleetChip(
                chip=fleet_chip.chip,
                fault_field=fleet_chip.fault_field,
                adapter=fleet_chip.adapter,
                serving=fleet_chip.serving,
                power_meter=fleet_chip.power_meter,
                ripple_v=np.array(
                    [
                        fleet_chip.fault_field.ripple_v(step)
                        for step in range(trace.n_steps)
                    ]
                ),
            )
            for fleet_chip in self.fleet
        ]
        return clone

    # ------------------------------------------------------------------
    # Analytic energy anchors (the guardband-recovery denominators)
    # ------------------------------------------------------------------
    def nominal_energy_j(self) -> float:
        """Fleet energy if every rail stayed at nominal the whole trace."""
        return self._static_energy_j(lambda die: die.vnom_v)

    def guardband_floor_energy_j(self) -> float:
        """Fleet energy if every rail parked at its characterized Vmin.

        The "static guardband" savings potential: the denominator of the
        guardband-recovery fraction the acceptance benchmark asserts on.
        """
        return self._static_energy_j(lambda die: die.vmin_v)

    def _static_energy_j(self, voltage_of) -> float:
        total = 0.0
        for fleet_chip in self.fleet:
            die = self.bundle.get(*fleet_chip.key)
            power = fleet_chip.power_meter.read_bram_power_w(voltage_of(die))
            total += power * self.trace.n_steps * self.trace.step_seconds
        return total

    # ------------------------------------------------------------------
    # The simulation cores
    # ------------------------------------------------------------------
    def run(
        self, policy: "str | GovernorPolicy", core: Optional[str] = None
    ) -> TelemetryLog:
        """Serve the whole trace under one policy and return the telemetry.

        Dispatches to the constructor's ``core`` (overridable per call):
        the discrete-event core or the stepped reference loop, which
        produce bit-identical telemetry.  Either way the fleet state is
        reset first (rails to nominal, boards to the trace's initial
        ambient, cleared policy state), so consecutive ``run`` calls on one
        simulator are independent and deterministic.
        """
        core = validate_core(self.core if core is None else core)
        if core == "event":
            return self.run_event(policy)
        return self.run_stepped(policy)

    def run_event(
        self,
        policy: "str | GovernorPolicy",
        scheduler: str = "serial",
        jobs: int = 1,
    ) -> TelemetryLog:
        """Run one policy on the discrete-event core.

        ``scheduler``/``jobs`` shard the per-die event walks over
        :class:`repro.exec.WorkScheduler`; the merged telemetry digest is
        identical in every mode (1 worker or N, any completion order).
        """
        from .event_core import run_event

        return run_event(self, policy, scheduler=scheduler, jobs=jobs)

    def run_stepped(self, policy: "str | GovernorPolicy") -> TelemetryLog:
        """Run one policy on the per-step reference loop (the oracle).

        Kept verbatim from the pre-event-core simulator: every die ticks at
        every step.  The property suite asserts the event core reproduces
        this loop's telemetry bit-for-bit.
        """
        if isinstance(policy, str):
            policy = build_policy(policy)
        policy.reset()
        governor = VoltageGovernor(policy=policy, bundle=self.bundle)
        trace = self.trace
        n_chips, n_steps = len(self.fleet), trace.n_steps

        chambers: List[HeatChamber] = []
        for fleet_chip in self.fleet:
            fleet_chip.chip.regulator.reset_all()
            fleet_chip.chip.set_temperature(float(trace.ambient_c[0]))
            fleet_chip.adapter.clear_log()
            fleet_chip.crash_steps_left = 0
            fleet_chip.faults_last_step = 0
            chambers.append(HeatChamber(fleet_chip.chip))

        voltages = np.zeros((n_chips, n_steps))
        temperatures = np.zeros((n_chips, n_steps))
        assigned = np.zeros((n_chips, n_steps), dtype=np.int64)
        served = np.zeros((n_chips, n_steps), dtype=np.int64)
        faulty = np.zeros((n_chips, n_steps), dtype=np.int64)
        fault_bits = np.zeros((n_chips, n_steps), dtype=np.int64)
        crashed = np.zeros((n_chips, n_steps), dtype=np.int64)

        for step in range(n_steps):
            # 1. Thermal transient: every chamber ramps toward the setpoint.
            for chamber in chambers:
                chamber.set_temperature(float(trace.ambient_c[step]))
                chamber.settle(max_steps=1)

            # 2. Governor actuation (and crash bookkeeping).
            operational: List[int] = []
            for index, fleet_chip in enumerate(self.fleet):
                temperatures[index, step] = fleet_chip.chip.board_temperature_c
                if fleet_chip.crash_steps_left > 0:
                    fleet_chip.crash_steps_left -= 1
                    crashed[index, step] = 1
                    voltages[index, step] = fleet_chip.chip.vccbram
                    fleet_chip.faults_last_step = 0
                    continue
                applied = governor.step(
                    fleet_chip.adapter, step, fleet_chip.faults_last_step
                )
                die = self.bundle.get(*fleet_chip.key)
                vcrash_true = fleet_chip.fault_field.calibration.vcrash_bram_v
                if applied < vcrash_true - 1e-9:
                    # The command killed the board: power-cycle to nominal
                    # and spend the recovery window rebooting.
                    fleet_chip.chip.regulator.reset_all()
                    fleet_chip.crash_steps_left = self.crash_recovery_steps
                    policy.notify_crash(die)
                    crashed[index, step] = 1
                    voltages[index, step] = fleet_chip.chip.vccbram
                    fleet_chip.faults_last_step = 0
                    continue
                voltages[index, step] = applied
                operational.append(index)

            # 3. Load balancing: split the step's arrivals evenly over the
            #    operational chips (deterministic remainder assignment).
            arrivals = int(trace.requests[step])
            if operational:
                base, remainder = divmod(arrivals, len(operational))
                for position, index in enumerate(operational):
                    assigned[index, step] = base + (1 if position < remainder else 0)

            # 4. Serving and fault accounting.
            for index in operational:
                fleet_chip = self.fleet[index]
                share = int(assigned[index, step])
                completed = min(share, self.capacity_per_step)
                served[index, step] = completed
                effective = (
                    fleet_chip.fault_field.itd.effective_voltage(
                        voltages[index, step], temperatures[index, step]
                    )
                    + fleet_chip.ripple_v[step]
                )
                bits = fleet_chip.serving.fault_bits(effective)
                fault_bits[index, step] = bits
                if bits > 0:
                    # Weight faults are live in the datapath: everything the
                    # chip served this step is an uncorrected-fault inference
                    # (the scrubber only reports at the step boundary).
                    faulty[index, step] = completed
                fleet_chip.faults_last_step = bits

        # 5. Power/energy, vectorized over each chip's whole voltage path.
        power = np.zeros((n_chips, n_steps))
        for index, fleet_chip in enumerate(self.fleet):
            power[index] = power_curve(
                fleet_chip.power_meter.bram_model,
                voltages[index],
                fleet_chip.serving.bram_utilization,
            )
        energy = power * trace.step_seconds

        return TelemetryLog(
            policy=policy.name,
            trace=trace.to_dict(),
            chips=[fleet_chip.key for fleet_chip in self.fleet],
            step_seconds=trace.step_seconds,
            arrays={
                "voltages_v": voltages,
                "temperatures_c": temperatures,
                "assigned": assigned,
                "served": served,
                "faulty": faulty,
                "fault_bits": fault_bits,
                "crashed": crashed,
                "bram_power_w": power,
                "energy_j": energy,
            },
            n_actuations=governor.n_actuations,
        )

    def run_policies(
        self,
        policies: Optional[Sequence[str]] = None,
        core: Optional[str] = None,
        scheduler: str = "serial",
        jobs: int = 1,
    ) -> Dict[str, TelemetryLog]:
        """Run several policies on the identical fleet and trace.

        ``core`` overrides the constructor's simulation core per batch;
        ``scheduler``/``jobs`` shard the event core's per-die walks (the
        stepped reference ignores them — it exists to be the serial
        oracle).
        """
        from .governor import POLICY_NAMES

        names = list(POLICY_NAMES) if policies is None else list(policies)
        resolved = validate_core(self.core if core is None else core)
        if resolved == "event":
            return {
                name: self.run_event(name, scheduler=scheduler, jobs=jobs)
                for name in names
            }
        return {name: self.run_stepped(name) for name in names}
