"""Workload traces: the request and ambient-temperature time series.

A runtime governor only matters under *traffic*: the fleet serves inference
requests while the thermal environment drifts, and the governor must keep
every die at its minimum safe voltage through both.  A
:class:`WorkloadTrace` is the deterministic, seeded time series that drives
one :class:`~repro.runtime.simulator.FleetSimulator` run: per simulation
step, how many inference requests arrive fleet-wide and what ambient
temperature the heat chambers are commanded to (the boards themselves ramp
toward it at the chamber's finite rate, producing the temperature
*transients* the predictive policy compensates for).

Three generator families cover the serving regimes a fleet operator sees:

* :func:`diurnal_trace` — a day/night cycle: load and ambient rise and fall
  together (traffic heats the racks), with cold troughs *below* the 50 °C
  characterization temperature — the regime where a naive static undervolt
  to the characterized Vmin starts faulting (ITD in reverse);
* :func:`burst_trace` — a flat baseline punctuated by seeded traffic bursts
  whose heat dissipates through a first-order thermal filter;
* :func:`batch_trace` — a sustained batch-offline ramp at high, steady
  ambient, the best case for thermal-headroom exploitation.

Every trace is a pure function of its parameters and seed: the same call
produces bit-identical arrays, which is what makes whole simulation runs
replayable (the acceptance property of ``bench_runtime_governor``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

#: Trace kinds exposed by :func:`build_trace` (and the CLI's ``--trace``).
TRACE_KINDS: Tuple[str, ...] = ("diurnal", "burst", "batch", "sparse-diurnal")


class TraceError(ValueError):
    """Raised for malformed workload-trace requests."""


@dataclass(frozen=True, eq=False)
class WorkloadTrace:
    """One deterministic simulation input: requests and ambient per step.

    Attributes
    ----------
    kind:
        Generator family (``"diurnal"``, ``"burst"`` or ``"batch"``).
    seed:
        Seed of the generator's RNG; together with the parameters it fully
        determines the arrays.
    step_seconds:
        Wall-clock duration one simulation step models (energy accounting
        multiplies power by this).
    requests:
        Fleet-wide inference arrivals per step, ``int64``, shape
        ``(n_steps,)``.
    ambient_c:
        Chamber setpoint per step in Celsius, shape ``(n_steps,)``.
    params:
        The generator parameters, kept for provenance and the digest.
    """

    kind: str
    seed: int
    step_seconds: float
    requests: np.ndarray
    ambient_c: np.ndarray
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", np.asarray(self.requests, dtype=np.int64))
        object.__setattr__(self, "ambient_c", np.asarray(self.ambient_c, dtype=float))
        if self.requests.ndim != 1 or self.ambient_c.shape != self.requests.shape:
            raise TraceError("requests and ambient_c must be equal-length 1-D arrays")
        if self.requests.size == 0:
            raise TraceError("a workload trace needs at least one step")
        if self.step_seconds <= 0:
            raise TraceError("step_seconds must be positive")
        if np.any(self.requests < 0):
            raise TraceError("request counts cannot be negative")

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        """Number of simulation steps the trace covers."""
        return int(self.requests.size)

    @property
    def total_requests(self) -> int:
        """Total inference arrivals over the whole trace."""
        return int(self.requests.sum())

    @property
    def duration_s(self) -> float:
        """Modelled wall-clock duration of the trace."""
        return self.n_steps * self.step_seconds

    def to_dict(self) -> Dict[str, Any]:
        """Provenance document: generator identity plus the array digest."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "step_seconds": self.step_seconds,
            "n_steps": self.n_steps,
            "total_requests": self.total_requests,
            "params": dict(self.params),
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical array content (determinism witness)."""
        payload = {
            "requests": self.requests.tolist(),
            "ambient_c": [round(float(t), 6) for t in self.ambient_c],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _check_common(n_steps: int, ambient_values: np.ndarray) -> None:
    """Shared validation of generator outputs before they become a trace."""
    if n_steps < 1:
        raise TraceError("n_steps must be at least 1")
    if np.any(ambient_values < 20.0) or np.any(ambient_values > 110.0):
        raise TraceError(
            "ambient setpoints must stay within the chamber range [20, 110] degC"
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def diurnal_trace(
    n_steps: int = 480,
    seed: int = 7,
    base_rps: float = 400.0,
    peak_rps: float = 1600.0,
    period_steps: int = 240,
    ambient_low_c: float = 30.0,
    ambient_high_c: float = 80.0,
    jitter: float = 0.05,
    step_seconds: float = 1.0,
) -> WorkloadTrace:
    """Day/night serving cycle with load-correlated ambient temperature.

    Load follows a raised cosine from ``base_rps`` (trough, the start of the
    trace) to ``peak_rps``; ambient follows the same phase between
    ``ambient_low_c`` and ``ambient_high_c``.  The default trough sits 20 °C
    *below* the characterization temperature, so static undervolting to the
    characterized Vmin loses its ITD margin at night — the scenario the
    reactive and predictive policies exist for.
    """
    if period_steps < 2:
        raise TraceError("period_steps must be at least 2")
    if peak_rps < base_rps:
        raise TraceError("peak_rps must be at least base_rps")
    if ambient_high_c < ambient_low_c:
        raise TraceError("ambient_high_c must be at least ambient_low_c")
    rng = np.random.default_rng(seed)
    t = np.arange(n_steps)
    phase = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / period_steps))
    load = base_rps + (peak_rps - base_rps) * phase
    noise = 1.0 + jitter * rng.standard_normal(n_steps)
    requests = np.maximum(0, np.round(load * step_seconds * noise)).astype(np.int64)
    ambient = ambient_low_c + (ambient_high_c - ambient_low_c) * phase
    _check_common(n_steps, ambient)
    return WorkloadTrace(
        kind="diurnal",
        seed=seed,
        step_seconds=step_seconds,
        requests=requests,
        ambient_c=ambient,
        params={
            "base_rps": base_rps,
            "peak_rps": peak_rps,
            "period_steps": period_steps,
            "ambient_low_c": ambient_low_c,
            "ambient_high_c": ambient_high_c,
            "jitter": jitter,
        },
    )


def burst_trace(
    n_steps: int = 480,
    seed: int = 7,
    base_rps: float = 500.0,
    burst_rps: float = 2500.0,
    n_bursts: int = 6,
    burst_steps: int = 12,
    ambient_base_c: float = 45.0,
    heat_per_krps_c: float = 12.0,
    thermal_tau_steps: float = 20.0,
    step_seconds: float = 1.0,
) -> WorkloadTrace:
    """Flat baseline with seeded traffic bursts and first-order heating.

    Burst start positions are drawn once from the seed; each burst holds
    ``burst_rps`` for ``burst_steps`` steps.  The ambient setpoint follows a
    discrete first-order filter of the load (time constant
    ``thermal_tau_steps``), modelling rack heating that lags traffic — so
    voltage decisions face temperatures that *trail* the load.
    """
    if n_bursts < 0 or burst_steps < 1:
        raise TraceError("n_bursts must be >= 0 and burst_steps >= 1")
    if thermal_tau_steps <= 0:
        raise TraceError("thermal_tau_steps must be positive")
    rng = np.random.default_rng(seed)
    load = np.full(n_steps, float(base_rps))
    if n_bursts > 0:
        starts = np.sort(rng.integers(0, max(1, n_steps - burst_steps), size=n_bursts))
        for start in starts:
            load[start : start + burst_steps] = burst_rps
    requests = np.maximum(0, np.round(load * step_seconds)).astype(np.int64)
    alpha = 1.0 / thermal_tau_steps
    ambient = np.empty(n_steps)
    level = ambient_base_c + heat_per_krps_c * base_rps / 1000.0
    for index in range(n_steps):
        target = ambient_base_c + heat_per_krps_c * load[index] / 1000.0
        level = level + alpha * (target - level)
        ambient[index] = level
    ambient = np.clip(ambient, 20.0, 110.0)
    _check_common(n_steps, ambient)
    return WorkloadTrace(
        kind="burst",
        seed=seed,
        step_seconds=step_seconds,
        requests=requests,
        ambient_c=ambient,
        params={
            "base_rps": base_rps,
            "burst_rps": burst_rps,
            "n_bursts": n_bursts,
            "burst_steps": burst_steps,
            "ambient_base_c": ambient_base_c,
            "heat_per_krps_c": heat_per_krps_c,
            "thermal_tau_steps": thermal_tau_steps,
        },
    )


def batch_trace(
    n_steps: int = 480,
    seed: int = 7,
    rps: float = 2000.0,
    ramp_steps: int = 30,
    ambient_c: float = 75.0,
    step_seconds: float = 1.0,
) -> WorkloadTrace:
    """Batch-offline inference: a ramp to sustained full load at high ambient.

    The steady high temperature maximizes ITD headroom, so this is the trace
    where the predictive policy undervolts *below* the characterized Vmin —
    the thermal-headroom exploitation case.
    """
    if ramp_steps < 0:
        raise TraceError("ramp_steps must be non-negative")
    t = np.arange(n_steps)
    ramp = np.minimum(1.0, (t + 1) / max(1, ramp_steps))
    requests = np.maximum(0, np.round(rps * step_seconds * ramp)).astype(np.int64)
    ambient = np.full(n_steps, float(ambient_c))
    _check_common(n_steps, ambient)
    return WorkloadTrace(
        kind="batch",
        seed=seed,
        step_seconds=step_seconds,
        requests=requests,
        ambient_c=ambient,
        params={"rps": rps, "ramp_steps": ramp_steps, "ambient_c": ambient_c},
    )


def sparse_diurnal_trace(
    n_steps: int = 720,
    seed: int = 7,
    base_rps: float = 400.0,
    peak_rps: float = 1600.0,
    period_steps: int = 720,
    epoch_steps: int = 30,
    ambient_low_c: float = 30.0,
    ambient_high_c: float = 80.0,
    jitter: float = 0.05,
    step_seconds: float = 120.0,
) -> WorkloadTrace:
    """Day/night cycle sampled at *epoch* granularity (piecewise constant).

    The dense :func:`diurnal_trace` changes load and ambient every step, so
    an event-driven simulator sees one event per step and gains nothing.
    Real fleet telemetry is far sparser: ambient and traffic drift on
    minute-to-hour scales while the simulation step stays fine enough to
    resolve governor reactions.  This generator holds both series constant
    within each ``epoch_steps``-long epoch (sampling the same raised cosine
    as the dense trace at epoch starts, with per-epoch jitter), and the
    default ``step_seconds`` of two minutes makes 720 steps model a full
    day — the workload regime where simulated-device-seconds per
    wall-second scales with *activity*, not step count.
    """
    if period_steps < 2:
        raise TraceError("period_steps must be at least 2")
    if epoch_steps < 1:
        raise TraceError("epoch_steps must be at least 1")
    if peak_rps < base_rps:
        raise TraceError("peak_rps must be at least base_rps")
    if ambient_high_c < ambient_low_c:
        raise TraceError("ambient_high_c must be at least ambient_low_c")
    rng = np.random.default_rng(seed)
    n_epochs = -(-n_steps // epoch_steps)  # ceil
    starts = np.arange(n_epochs) * epoch_steps
    phase = 0.5 * (1.0 - np.cos(2.0 * np.pi * starts / period_steps))
    load = base_rps + (peak_rps - base_rps) * phase
    noise = 1.0 + jitter * rng.standard_normal(n_epochs)
    epoch_requests = np.maximum(
        0, np.round(load * step_seconds * noise)
    ).astype(np.int64)
    epoch_ambient = ambient_low_c + (ambient_high_c - ambient_low_c) * phase
    requests = np.repeat(epoch_requests, epoch_steps)[:n_steps]
    ambient = np.repeat(epoch_ambient, epoch_steps)[:n_steps]
    _check_common(n_steps, ambient)
    return WorkloadTrace(
        kind="sparse-diurnal",
        seed=seed,
        step_seconds=step_seconds,
        requests=requests,
        ambient_c=ambient,
        params={
            "base_rps": base_rps,
            "peak_rps": peak_rps,
            "period_steps": period_steps,
            "epoch_steps": epoch_steps,
            "ambient_low_c": ambient_low_c,
            "ambient_high_c": ambient_high_c,
            "jitter": jitter,
        },
    )


_GENERATORS = {
    "diurnal": diurnal_trace,
    "burst": burst_trace,
    "batch": batch_trace,
    "sparse-diurnal": sparse_diurnal_trace,
}


def build_trace(kind: str, **kwargs: Any) -> WorkloadTrace:
    """Build a trace by generator name (the CLI's ``--trace`` dispatch)."""
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        raise TraceError(
            f"unknown trace kind {kind!r}; available: {', '.join(TRACE_KINDS)}"
        ) from None
    return generator(**kwargs)
