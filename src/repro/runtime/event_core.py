"""The discrete-event fleet simulation core.

The stepped :class:`~repro.runtime.simulator.FleetSimulator` loop ticks
every die at every step, so wall-clock grows with ``fleet x steps``
regardless of *activity* — a diurnal trace where nothing changes for hours
burns the same compute as a fault storm.  This module is the classic
discrete-event refactor of that loop: per die, a ``heapq``-scheduled event
queue of

* **governor wakeups** — the policy-declared re-evaluation points
  (:class:`~repro.runtime.governor.GovernorPolicy` event-scheduling
  contract), including the reactive controller's fault-onset and
  downward-creep events;
* **heat-chamber transient crossings** — steps where the shared ramp-limited
  temperature path actually changes (subscribed only by
  temperature-sensitive policies);
* **crash/recovery completions** — the step a rebooted board re-enters
  governor control;

is drained in step order, and everything *between* two events — fault-bit
counting over the whole constant-setpoint window, request splitting, power
— is computed vectorized (fault bits reuse the one-``searchsorted``
:class:`~repro.runtime.simulator.ServingModel` path over the window's
effective-voltage array; workload-epoch boundaries fall out of the batched
serving phase, which never needs per-step Python).

Identity guarantee
------------------
The event core is *bit-identical* to the stepped loop, not approximately
equal: it calls the same :class:`~repro.fpga.voltage.VoltageRail`
quantization, the same policy ``target_voltage`` arithmetic at every step
the stepped loop would have observed a state change, the same
ITD/ripple/threshold float expressions (element-wise, in the same
operation order), and the same integer load-balancing formulas — so
:meth:`TelemetryLog.digest` matches the stepped simulator exactly for any
(bundle, network, trace, policy) input.  ``tests/runtime/test_event_core.py``
enforces this property against the stepped oracle.

Cross-die structure
-------------------
Dies interact only *downstream* of voltage/fault state (load balancing and
energy never feed back into the governor), so the event walk runs per die
(phase 1) and the serving phase (phase 2) is one vectorized pass over crash
-pattern segments.  That factoring is also what makes process sharding
trivially deterministic: phase 1 shards over
:class:`repro.exec.WorkScheduler` with results keyed by die index, and the
merge sorts by that key, so the telemetry digest is independent of worker
count and completion order.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.batch import cached_fault_field, power_curve
from repro.obs import trace as obs_trace
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM, VoltageError, VoltageRail
from repro.harness.environment import HeatChamber
from repro.harness.pmbus import PmbusError

from .characterization import DieCharacterization
from .governor import GovernorObservation, GovernorPolicy, build_policy
from .telemetry import TelemetryLog
from .workload import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .simulator import FleetSimulator

#: Event kinds, in tie-break priority order at equal steps.  Coinciding
#: events (a recovery completing exactly on a transient crossing) collapse
#: into a single governor evaluation.
EVENT_WAKEUP = 0
EVENT_TRANSIENT = 1


class _ThermalStub:
    """Minimal chip stand-in driving one shared :class:`HeatChamber`.

    The chamber only reads and writes ``board_temperature_c``; replaying
    its exact ramp arithmetic against this stub yields the one temperature
    path every board in the fleet follows (they all start at the trace's
    initial ambient and receive identical setpoints).
    """

    __slots__ = ("board_temperature_c",)

    def __init__(self, start_c: float) -> None:
        self.board_temperature_c = float(start_c)

    def set_temperature(self, celsius: float) -> None:
        self.board_temperature_c = float(celsius)


def chamber_temperature_path(trace: WorkloadTrace) -> np.ndarray:
    """The fleet-shared board-temperature path, computed once per trace.

    Bit-identical to what every per-chip :class:`HeatChamber` in the
    stepped loop produces: same starting point (the trace's initial
    ambient), same ``set_temperature``/``settle(max_steps=1)`` call pair
    per step, same ramp clamp arithmetic.
    """
    stub = _ThermalStub(float(trace.ambient_c[0]))
    chamber = HeatChamber(stub)  # type: ignore[arg-type]
    temps = np.empty(trace.n_steps)
    for step in range(trace.n_steps):
        chamber.set_temperature(float(trace.ambient_c[step]))
        chamber.settle(max_steps=1)
        temps[step] = stub.board_temperature_c
    return temps


def transient_steps(temps: np.ndarray) -> np.ndarray:
    """Steps where the shared temperature path changes (crossing events)."""
    if temps.size < 2:
        return np.empty(0, dtype=np.int64)
    return (np.nonzero(temps[1:] != temps[:-1])[0] + 1).astype(np.int64)


@dataclass
class DieTimeline:
    """Phase-1 output for one die: its full per-step control history."""

    index: int
    voltages_v: np.ndarray
    crashed: np.ndarray
    fault_bits: np.ndarray
    n_actuations: int


def simulate_die(
    index: int,
    die: DieCharacterization,
    policy: GovernorPolicy,
    thresholds_v: np.ndarray,
    ripple_v: np.ndarray,
    itd_v_per_degc: float,
    itd_reference_c: float,
    vcrash_true_v: float,
    temps: np.ndarray,
    t_events: np.ndarray,
    crash_recovery_steps: int,
) -> DieTimeline:
    """Walk one die's event queue over the whole trace (phase 1).

    Exactly reproduces the stepped loop's per-die semantics: governor
    evaluation with the real policy object and a real
    :class:`VoltageRail` (same quantization/limits), actuation counting
    before the crash check, the ``R+1``-step crash span at nominal with
    ``faults_last_step`` cleared on resume, and per-step fault bits from
    ``effective = (applied + itd_shift) + ripple`` — evaluated as one
    ``searchsorted`` over each constant-setpoint window.
    """
    recorder = obs_trace.get_recorder()
    t_span = time.monotonic()
    n_windows = 0
    n_steps = temps.size
    rail = VoltageRail(name=VCCBRAM)
    voltages = np.zeros(n_steps)
    crashed = np.zeros(n_steps, dtype=np.int64)
    fault_bits = np.zeros(n_steps, dtype=np.int64)
    n_actuations = 0
    faults_prev = 0
    # Element-wise identical to the stepped scalar ITD expression
    # ``v + v_per_degc * (T - reference)`` applied per step.
    shift = itd_v_per_degc * (temps - itd_reference_c)

    heap: List[Tuple[int, int]] = [(0, EVENT_WAKEUP)]
    if policy.wakes_on_temperature or policy.wakes_every_step:
        for step in t_events:
            heapq.heappush(heap, (int(step), EVENT_TRANSIENT))
    filled_until = 0

    while heap:
        step, _kind = heapq.heappop(heap)
        if step >= n_steps:
            break
        if step < filled_until:
            continue  # stale: the step was covered by a crash span/window
        while heap and heap[0][0] == step:
            heapq.heappop(heap)  # coinciding events: one evaluation
        n_windows += 1

        # --- governor evaluation at `step` (same arithmetic as the
        # stepped VoltageGovernor.step + PmbusAdapter.vout_command) ---
        observation = GovernorObservation(
            step=step,
            temperature_c=float(temps[step]),
            faults_last_step=faults_prev,
            setpoint_v=rail.setpoint_v,
        )
        target = policy.target_voltage(die, observation)
        if abs(target - observation.setpoint_v) > 1e-9:
            n_actuations += 1
            try:
                applied = rail.set(target)
            except VoltageError as exc:
                raise PmbusError(str(exc)) from exc
        else:
            applied = rail.setpoint_v

        if applied < vcrash_true_v - 1e-9:
            # Crash: the actuation step plus the recovery window all read
            # crashed at nominal; the governor resumes with a clean slate.
            rail.reset()
            policy.notify_crash(die)
            end = min(n_steps, step + crash_recovery_steps + 1)
            crashed[step:end] = 1
            voltages[step:end] = rail.setpoint_v
            faults_prev = 0
            filled_until = end
            heapq.heappush(heap, (end, EVENT_WAKEUP))
            continue

        # --- window end: the next scheduled event bounds the constant-
        # setpoint window this evaluation opens ---
        end = min(heap[0][0], n_steps) if heap else n_steps
        if policy.wakes_every_step:
            end = min(end, step + 1)
        if abs(target - rail.setpoint_v) > 1e-9:
            # The regulator could not realize the target exactly: the
            # stepped loop would re-actuate next step, so wake densely.
            end = min(end, step + 1)

        window = (applied + shift[step:end]) + ripple_v[step:end]
        bits = (
            thresholds_v.size
            - np.searchsorted(thresholds_v, window, side="right")
        ).astype(np.int64)

        if policy.wakes_on_faults:
            fault_positions = np.nonzero(bits > 0)[0]
            cut = end
            if fault_positions.size:
                # A fault at step f is observed by the evaluation at f+1.
                cut = min(cut, step + int(fault_positions[0]) + 1)
            state_in = policy.steps_until_state_event(die)
            if state_in is not None:
                cut = min(cut, step + int(state_in))
            if cut < end:
                end = cut
                bits = bits[: end - step]

        voltages[step:end] = applied
        fault_bits[step:end] = bits
        faults_prev = int(bits[-1])
        policy.advance_clean(die, end - step - 1)
        filled_until = end
        heapq.heappush(heap, (end, EVENT_WAKEUP))

    if recorder.enabled:
        # Window count (governor evaluations drained) is deterministic —
        # the event core is bit-identical to the stepped loop — so the
        # label survives the trace digest's stripped form.
        recorder.record(
            "sim.die",
            t_span,
            time.monotonic() - t_span,
            {"index": index, "windows": n_windows},
        )
    return DieTimeline(
        index=index,
        voltages_v=voltages,
        crashed=crashed,
        fault_bits=fault_bits,
        n_actuations=n_actuations,
    )


def serving_phase(
    crashed: np.ndarray,
    fault_bits: np.ndarray,
    requests: np.ndarray,
    capacity_per_step: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized load balancing and fault accounting (phase 2).

    Splits each step's arrivals over the operational chips with the same
    integer base/remainder formula as the stepped loop, batched over every
    segment where the fleet's crash pattern is constant (workload-epoch
    boundaries need no events here — the request axis is vectorized).
    """
    n_chips, n_steps = crashed.shape
    assigned = np.zeros((n_chips, n_steps), dtype=np.int64)
    requests = np.asarray(requests, dtype=np.int64)

    if n_steps:
        pattern_changed = np.any(crashed[:, 1:] != crashed[:, :-1], axis=0)
        bounds = np.concatenate(
            ([0], np.nonzero(pattern_changed)[0] + 1, [n_steps])
        )
        for start, stop in zip(bounds[:-1], bounds[1:]):
            operational = np.nonzero(crashed[:, start] == 0)[0]
            if operational.size == 0:
                continue
            m = operational.size
            arrivals = requests[start:stop]
            base = arrivals // m
            remainder = arrivals - base * m
            positions = np.arange(m, dtype=np.int64)
            assigned[np.ix_(operational, np.arange(start, stop))] = base[
                None, :
            ] + (positions[:, None] < remainder[None, :])

    served = np.minimum(assigned, np.int64(capacity_per_step))
    faulty = np.where(fault_bits > 0, served, np.int64(0))
    return assigned, served, faulty


# ----------------------------------------------------------------------
# Driving a FleetSimulator's fleet through the event core
# ----------------------------------------------------------------------
def run_event(
    simulator: "FleetSimulator",
    policy: "str | GovernorPolicy",
    scheduler: str = "serial",
    jobs: int = 1,
) -> TelemetryLog:
    """Run one policy over a simulator's fleet on the event core.

    ``scheduler``/``jobs`` shard phase 1 (the per-die event walks) over
    :class:`repro.exec.WorkScheduler`; phases are merged by die index, so
    the telemetry — and its digest — is identical in every mode.
    """
    if isinstance(policy, str):
        policy = build_policy(policy)
    policy.reset()
    with obs_trace.span(
        "sim.run", policy=policy.name, n_dies=len(simulator.fleet)
    ):
        timelines, temps = die_timelines(simulator, policy, scheduler, jobs)
        return merge_timelines(simulator, policy, timelines, temps=temps)


def die_timelines(
    simulator: "FleetSimulator",
    policy: GovernorPolicy,
    scheduler: str = "serial",
    jobs: int = 1,
) -> "Tuple[List[DieTimeline], np.ndarray]":
    """Phase 1 alone: one :class:`DieTimeline` per fleet chip, plus the
    shared temperature path.  ``policy`` must already be built and reset;
    the returned timelines may be merged in any order
    (:func:`merge_timelines` sorts by die index).
    """
    from repro.exec import WorkScheduler

    trace = simulator.trace

    temps = chamber_temperature_path(trace)
    t_events = transient_steps(temps)

    work = WorkScheduler(scheduler=scheduler, jobs=jobs)
    if work.is_serial:
        timelines = []
        for index, fleet_chip in enumerate(simulator.fleet):
            die = simulator.bundle.get(*fleet_chip.key)
            itd = fleet_chip.fault_field.itd
            timelines.append(
                simulate_die(
                    index=index,
                    die=die,
                    policy=policy,
                    thresholds_v=fleet_chip.serving.thresholds_v,
                    ripple_v=fleet_chip.ripple_v,
                    itd_v_per_degc=itd.v_per_degc,
                    itd_reference_c=itd.reference_c,
                    vcrash_true_v=fleet_chip.fault_field.calibration.vcrash_bram_v,
                    temps=temps,
                    t_events=t_events,
                    crash_recovery_steps=simulator.crash_recovery_steps,
                )
            )
    else:
        tasks = [
            (
                index,
                fleet_chip.chip.spec.name,
                fleet_chip.chip.spec.serial_number,
                simulator.bundle.get(*fleet_chip.key),
                policy,
                simulator.network,
                trace,
                simulator.icbp,
                simulator.compile_seed,
                simulator.crash_recovery_steps,
                temps,
                t_events,
            )
            for index, fleet_chip in enumerate(simulator.fleet)
        ]
        timelines = work.map_tasks(_simulate_die_by_identity, tasks)

    return timelines, temps


def merge_timelines(
    simulator: "FleetSimulator",
    policy: GovernorPolicy,
    timelines: List[DieTimeline],
    temps: Optional[np.ndarray] = None,
) -> TelemetryLog:
    """Assemble telemetry from per-die timelines, in any submission order.

    Timelines are keyed and sorted by die index before any array is built,
    so the resulting log (and digest) is independent of the order workers
    completed or returned them — the same invariance the exec-layer
    scheduling tests enforce.
    """
    trace = simulator.trace
    n_chips, n_steps = len(simulator.fleet), trace.n_steps
    by_index = {timeline.index: timeline for timeline in timelines}
    if len(by_index) != n_chips or set(by_index) != set(range(n_chips)):
        raise ValueError("phase-1 timelines do not cover the fleet exactly")
    ordered = [by_index[index] for index in range(n_chips)]

    if temps is None:
        temps = chamber_temperature_path(trace)
    voltages = np.stack([timeline.voltages_v for timeline in ordered])
    crashed = np.stack([timeline.crashed for timeline in ordered])
    fault_bits = np.stack([timeline.fault_bits for timeline in ordered])
    temperatures = np.tile(temps, (n_chips, 1))
    n_actuations = sum(timeline.n_actuations for timeline in ordered)

    with obs_trace.span("sim.serve", n_dies=n_chips, n_steps=n_steps):
        assigned, served, faulty = serving_phase(
            crashed, fault_bits, trace.requests, simulator.capacity_per_step
        )

    power = np.zeros((n_chips, n_steps))
    for index, fleet_chip in enumerate(simulator.fleet):
        power[index] = power_curve(
            fleet_chip.power_meter.bram_model,
            voltages[index],
            fleet_chip.serving.bram_utilization,
        )
    energy = power * trace.step_seconds

    return TelemetryLog(
        policy=policy.name,
        trace=trace.to_dict(),
        chips=[fleet_chip.key for fleet_chip in simulator.fleet],
        step_seconds=trace.step_seconds,
        arrays={
            "voltages_v": voltages,
            "temperatures_c": temperatures,
            "assigned": assigned,
            "served": served,
            "faulty": faulty,
            "fault_bits": fault_bits,
            "crashed": crashed,
            "bram_power_w": power,
            "energy_j": energy,
        },
        n_actuations=n_actuations,
    )


def _simulate_die_by_identity(
    index: int,
    platform: str,
    serial: str,
    die: DieCharacterization,
    policy: GovernorPolicy,
    network: object,
    trace: WorkloadTrace,
    icbp: bool,
    compile_seed: int,
    crash_recovery_steps: int,
    temps: np.ndarray,
    t_events: np.ndarray,
) -> DieTimeline:
    """Process-pool entry point: rebuild one die by identity and walk it.

    Mirrors the ``_characterize_stock_die`` idiom — workers reconstruct the
    chip, fault field, compiled placement and per-trace ripple from the
    ``(platform, serial)`` identity, so only plain data crosses the process
    boundary.  The unpickled policy copy carries no cross-die coupling
    (state is keyed per die), which is what makes the shard merge
    submission-order independent.
    """
    from .simulator import ServingModel, compile_accelerator

    chip = FpgaChip.build(platform, serial=serial)
    fault_field = cached_fault_field(chip)
    accelerator = compile_accelerator(
        chip, fault_field, network, icbp=icbp, compile_seed=compile_seed
    )
    serving = ServingModel.from_accelerator(accelerator)
    ripple = np.array(
        [fault_field.ripple_v(step) for step in range(trace.n_steps)]
    )
    return simulate_die(
        index=index,
        die=die,
        policy=policy,
        thresholds_v=serving.thresholds_v,
        ripple_v=ripple,
        itd_v_per_degc=fault_field.itd.v_per_degc,
        itd_reference_c=fault_field.itd.reference_c,
        vcrash_true_v=fault_field.calibration.vcrash_bram_v,
        temps=temps,
        t_events=t_events,
        crash_recovery_steps=crash_recovery_steps,
    )
