"""Governor-ready per-die characterizations and their bundles.

The offline pipeline (PRs 1–3) produces everything a runtime governor needs
to know about a die — its characterized ``Vmin``/``Vcrash`` on the 10 mV
grid, its ITD temperature response and the supply-ripple spread — but
scatters it across campaign unit summaries, calibrations and caches.  This
module condenses that into one :class:`DieCharacterization` per die and one
:class:`GovernorBundle` per fleet: the exact artifact a deployment would
ship to its serving hosts.

Bundles come from two places:

* :func:`characterize_die` runs the adaptive guardband discovery on a live
  chip (the "first boot" path; shares the :class:`~repro.search.EvalCache`
  and warm-start machinery of PR 3);
* :meth:`GovernorBundle.from_campaign` reads a completed guardband
  campaign's store — and campaigns with the ``governor_bundle`` spec knob
  emit the bundle file (``governor_bundle.json``) into their store
  directory automatically at the end of a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.calibration import get_calibration
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.platform import FpgaChip
from repro.fpga.voltage import VCCBRAM
from repro.harness.sweep import UndervoltingExperiment
from repro.search import EvalCache, WarmStartModel

#: Bundle schema version; bumped when the document layout changes so stale
#: bundles are rejected loudly instead of misread.
BUNDLE_VERSION = 1

#: File name a campaign's emitted bundle lives under in its store directory.
BUNDLE_FILENAME = "governor_bundle.json"


class CharacterizationError(ValueError):
    """Raised for malformed characterizations or bundles."""


@dataclass(frozen=True)
class DieCharacterization:
    """Everything the governor needs to know about one die's VCCBRAM rail.

    Attributes
    ----------
    platform / serial:
        The die's identity (matches the campaign store's chip key).
    vnom_v:
        Nominal rail voltage (the static-nominal baseline's setpoint).
    vmin_v:
        Lowest fault-free grid voltage found by guardband discovery at the
        reference temperature.
    vcrash_v:
        Highest grid voltage at which the design stopped operating; the
        governor never commands at or below it.
    itd_v_per_degc:
        Fitted ITD coefficient (the Fig. 8 temperature study): equivalent
        voltage gained per degree above the reference temperature.
    ripple_margin_v:
        Supply-ripple allowance (six run-to-run sigmas, Table II): the
        safety margin a zero-fault policy must keep above the compensated
        Vmin.
    reference_temperature_c:
        Board temperature the characterization was taken at.
    """

    platform: str
    serial: str
    vnom_v: float
    vmin_v: float
    vcrash_v: float
    itd_v_per_degc: float
    ripple_margin_v: float
    reference_temperature_c: float = REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        if not self.vcrash_v < self.vmin_v <= self.vnom_v:
            raise CharacterizationError(
                f"die {self.platform}/{self.serial}: expected "
                "Vcrash < Vmin <= Vnom"
            )
        if self.itd_v_per_degc < 0:
            raise CharacterizationError("ITD coefficient must be non-negative")
        if self.ripple_margin_v < 0:
            raise CharacterizationError("ripple margin must be non-negative")

    # ------------------------------------------------------------------
    @property
    def chip_key(self) -> Tuple[str, str]:
        """The (platform, serial) pair identifying this die."""
        return (self.platform, self.serial)

    @property
    def guardband_fraction(self) -> float:
        """Fraction of the nominal voltage the guardband wastes on this die."""
        return (self.vnom_v - self.vmin_v) / self.vnom_v

    def compensated_vmin_v(self, temperature_c: float) -> float:
        """Minimum safe voltage at a board temperature (ITD-compensated).

        Hotter silicon tolerates a lower supply (ITD), so the safe floor
        *drops* above the reference temperature and *rises* below it —
        exactly the shift the predictive policy tracks.
        """
        return self.vmin_v - self.itd_v_per_degc * (
            temperature_c - self.reference_temperature_c
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of the characterization."""
        return {
            "platform": self.platform,
            "serial": self.serial,
            "vnom_v": self.vnom_v,
            "vmin_v": self.vmin_v,
            "vcrash_v": self.vcrash_v,
            "itd_v_per_degc": self.itd_v_per_degc,
            "ripple_margin_v": self.ripple_margin_v,
            "reference_temperature_c": self.reference_temperature_c,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "DieCharacterization":
        """Inverse of :meth:`to_dict`."""
        return cls(
            platform=str(document["platform"]),
            serial=str(document["serial"]),
            vnom_v=float(document["vnom_v"]),
            vmin_v=float(document["vmin_v"]),
            vcrash_v=float(document["vcrash_v"]),
            itd_v_per_degc=float(document["itd_v_per_degc"]),
            ripple_margin_v=float(document["ripple_margin_v"]),
            reference_temperature_c=float(
                document.get("reference_temperature_c", REFERENCE_TEMPERATURE_C)
            ),
        )


def characterize_die(
    chip: FpgaChip,
    runs_per_step: int = 3,
    cache: Optional[EvalCache] = None,
    warm: Optional[WarmStartModel] = None,
    engine: Optional[Any] = None,
) -> DieCharacterization:
    """Characterize one live chip for governor use (the "first boot" path).

    Runs the certified adaptive guardband discovery on ``VCCBRAM`` (bit
    identical to the exhaustive walk, a fraction of the evaluations) and
    pairs the measured thresholds with the platform's fitted ITD coefficient
    and ripple spread from the calibration — the quantities the Fig. 8
    temperature study and Table II stability runs establish offline.

    ``engine`` is an optional :class:`repro.exec.ExecutionEngine` bound to
    the same die — pass one to replay the discovery from a recorded store
    (:class:`repro.exec.ReplayBackend`) or to share a backend; the default
    builds the experiment's own simulated engine.
    """
    experiment = UndervoltingExperiment(
        chip, runs_per_step=runs_per_step, engine=engine
    )
    outcome = experiment.discover_guardband_adaptive(
        rail=VCCBRAM, probe_runs=runs_per_step, cache=cache, warm=warm
    )
    return _die_from_outcome(chip, outcome)


def _characterize_stock_die(
    platform: str, serial: str, runs_per_step: int
) -> DieCharacterization:
    """Process-pool entry point: characterize one stock-built die by identity."""
    return characterize_die(
        FpgaChip.build(platform, serial=serial), runs_per_step=runs_per_step
    )


def _die_from_outcome(chip: FpgaChip, outcome: Any) -> DieCharacterization:
    """The governor-facing record for one completed guardband discovery."""
    calibration = get_calibration(chip.spec)
    return DieCharacterization(
        platform=chip.name,
        serial=chip.spec.serial_number,
        vnom_v=outcome.measurement.nominal_v,
        vmin_v=outcome.measurement.vmin_v,
        vcrash_v=outcome.measurement.vcrash_v,
        itd_v_per_degc=calibration.itd_v_per_degc,
        ripple_margin_v=6.0 * calibration.ripple_sigma_v,
    )


def characterize_fleet(
    chips: "List[FpgaChip]",
    runs_per_step: int = 3,
    warm: Optional[WarmStartModel] = None,
) -> List[DieCharacterization]:
    """Characterize many live chips in batched lockstep (one kernel per wave).

    The cross-die fast path of :func:`characterize_die`: every die's
    certified bisection advances one step per
    :class:`~repro.harness.FleetProbeKernel` call instead of one
    engine→backend crossing per probe per die (see
    ``docs/batched_eval.md``).  Measurements are bit-identical to the
    die-by-die loop with the same warm hints; cold fleets match the
    parallel schedulers' cold characterizations exactly.
    """
    from repro.harness import discover_guardband_fleet

    experiments = {
        index: UndervoltingExperiment(chip, runs_per_step=runs_per_step)
        for index, chip in enumerate(chips)
    }
    discovery = discover_guardband_fleet(
        experiments, rail=VCCBRAM, probe_runs=runs_per_step, warm=warm
    )
    return [
        _die_from_outcome(chips[index], discovery.results[index])
        for index in range(len(chips))
    ]


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
@dataclass
class GovernorBundle:
    """A fleet's worth of governor-ready die characterizations.

    ``source`` records where the bundle came from (a campaign name or
    ``"inline"``); ``spec_hash`` pins the producing campaign spec when there
    is one, so a bundle cannot silently be replayed against a different
    fleet definition.
    """

    dies: Dict[Tuple[str, str], DieCharacterization] = field(default_factory=dict)
    source: Optional[str] = None
    spec_hash: Optional[str] = None

    def __len__(self) -> int:
        return len(self.dies)

    def __iter__(self) -> Iterator[DieCharacterization]:
        return iter(self.dies.values())

    def add(self, die: DieCharacterization) -> DieCharacterization:
        """Register one die (idempotent for identical keys)."""
        self.dies[die.chip_key] = die
        return die

    def get(self, platform: str, serial: str) -> DieCharacterization:
        """The characterization of one die; raises for unknown dies."""
        try:
            return self.dies[(platform, serial)]
        except KeyError:
            raise CharacterizationError(
                f"bundle has no characterization for die {platform}/{serial}"
            ) from None

    def chip_keys(self) -> List[Tuple[str, str]]:
        """Every (platform, serial) pair in insertion order."""
        return list(self.dies)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, Any]:
        """JSON document of the bundle."""
        return {
            "version": BUNDLE_VERSION,
            "source": self.source,
            "spec_hash": self.spec_hash,
            "dies": [die.to_dict() for die in self.dies.values()],
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "GovernorBundle":
        """Rebuild a bundle from its JSON document (strict on version)."""
        if document.get("version") != BUNDLE_VERSION:
            raise CharacterizationError(
                f"governor bundle version {document.get('version')!r} is not "
                f"the supported {BUNDLE_VERSION}; re-emit it from the campaign"
            )
        bundle = cls(
            source=document.get("source"), spec_hash=document.get("spec_hash")
        )
        for entry in document.get("dies", []):
            bundle.add(DieCharacterization.from_dict(entry))
        return bundle

    def save(self, path: "str | Path") -> Path:
        """Write the bundle document to ``path`` (pretty, sorted keys)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "GovernorBundle":
        """Read a bundle document back from disk."""
        path = Path(path)
        if not path.exists():
            raise CharacterizationError(f"no governor bundle at {path}")
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CharacterizationError(
                f"governor bundle at {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_document(document)

    # ------------------------------------------------------------------
    # Construction from the offline pipeline
    # ------------------------------------------------------------------
    @classmethod
    def from_chips(
        cls,
        chips: "List[FpgaChip]",
        runs_per_step: int = 3,
        source: str = "inline",
        scheduler: str = "serial",
        jobs: int = 1,
    ) -> "GovernorBundle":
        """Characterize a list of live chips into a bundle.

        Serially (the default), dies are characterized in order with a
        shared warm-start model, so every die after the first of its
        platform starts from the population's brackets — the same fleet
        economics as a campaign.

        ``scheduler``/``jobs`` fan the dies out over the execution layer's
        scheduling substrate (:class:`repro.exec.WorkScheduler`) instead.
        Parallel characterization runs every die cold — warm starts only
        ever change the evaluation *cost*, never a threshold (the
        bisection certificates guarantee it), so the bundle is bit-identical
        in every mode.  The process scheduler recharacterizes dies from
        their ``(platform, serial)`` identity and therefore expects
        stock-built chips (exactly what the CLI and ``fleet_serials``
        produce).

        ``scheduler="fleet"`` keeps everything in one process but advances
        every die's bisection in batched lockstep — one vectorized kernel
        call per fleet-wide wave (:func:`characterize_fleet`); like the
        parallel schedulers it runs every die cold, so its bundle is
        bit-identical too.
        """
        from repro.exec import WorkScheduler
        from repro.fpga.voltage import DEFAULT_STEP_V

        bundle = cls(source=source)
        if scheduler == "fleet":
            for die in characterize_fleet(chips, runs_per_step=runs_per_step):
                bundle.add(die)
            return bundle
        work = WorkScheduler(scheduler=scheduler, jobs=jobs)
        if work.is_serial:
            warm = WarmStartModel(step_v=DEFAULT_STEP_V)
            for chip in chips:
                die = characterize_die(chip, runs_per_step=runs_per_step, warm=warm)
                warm.add(die.platform, VCCBRAM, die.vmin_v, die.vcrash_v)
                bundle.add(die)
            return bundle
        if work.scheduler == "process":
            tasks = [
                (chip.name, chip.spec.serial_number, runs_per_step) for chip in chips
            ]
            dies = work.map_tasks(_characterize_stock_die, tasks)
        else:
            dies = work.map_tasks(
                characterize_die, [(chip, runs_per_step) for chip in chips]
            )
        for die in dies:
            bundle.add(die)
        return bundle

    @classmethod
    def from_campaign(cls, store: Any, spec: Optional[Any] = None) -> "GovernorBundle":
        """Condense a completed guardband campaign store into a bundle.

        ``store`` is a :class:`repro.campaign.CampaignStore` of either
        layout version — open it with :func:`repro.campaign.open_store`,
        which dispatches on the manifest's ``store_version`` (the v2
        columnar store serves ``results`` through the same interface);
        ``spec`` defaults to the store's manifest.  Only units measured at
        each die's first listed temperature contribute (the
        characterization anchor); re-characterizing at other temperatures
        belongs to the ITD fit, not the threshold table.
        """
        if spec is None:
            spec = store.load_manifest()
        if spec.sweep != "guardband":
            raise CharacterizationError(
                f"governor bundles need a guardband campaign, not {spec.sweep!r}"
            )
        anchor_temperature = spec.temperatures_c[0]
        bundle = cls(source=spec.name, spec_hash=spec.spec_hash)
        for result in store.results(spec, with_arrays=False):
            unit = result.unit
            if unit.temperature_c != anchor_temperature:
                continue
            if unit.chip_key in bundle.dies:
                continue  # first pattern wins; thresholds are pattern-robust
            rail = result.summary.get("rails", {}).get(VCCBRAM)
            if rail is None:
                continue
            calibration = get_calibration(unit.platform)
            bundle.add(
                DieCharacterization(
                    platform=unit.platform,
                    serial=unit.serial,
                    vnom_v=float(rail["vnom_v"]),
                    vmin_v=float(rail["vmin_v"]),
                    vcrash_v=float(rail["vcrash_v"]),
                    itd_v_per_degc=calibration.itd_v_per_degc,
                    ripple_margin_v=6.0 * calibration.ripple_sigma_v,
                )
            )
        if not bundle.dies:
            raise CharacterizationError(
                f"campaign {spec.name!r} has no completed guardband units at "
                f"{anchor_temperature} degC to bundle"
            )
        return bundle


def bundle_path(store: Any) -> Path:
    """Where a campaign store's emitted governor bundle lives."""
    return Path(store.directory) / BUNDLE_FILENAME


def write_governor_bundle(store: Any, spec: Optional[Any] = None) -> Path:
    """Emit a campaign's governor bundle file (the spec-knob side effect)."""
    bundle = GovernorBundle.from_campaign(store, spec)
    return bundle.save(bundle_path(store))
