"""Mapping of quantized NN weights onto BRAM blocks.

In the accelerator of Section III the weights live in on-chip BRAMs: each
basic BRAM stores 1024 16-bit words, so a layer with ``n`` weights occupies
``ceil(n / 1024)`` logical BRAM blocks, and the placement step decides which
*physical* BRAMs those become.  That mapping is what couples the NN accuracy
to the undervolting fault map — a fault in a physical BRAM corrupts exactly
the weight words mapped onto it.

:class:`WeightMapping` performs the logical side of that mapping: it slices
every layer's flat word array into BRAM-sized segments, names the logical
blocks (``layer3_w012``) and produces the :class:`repro.fpga.bitstream.Design`
the placer consumes.  Loading/corrupting the words against a *physical*
placement is done by :class:`repro.accelerator.accelerator.NnAccelerator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.fpga.bitstream import Design
from repro.fpga.bram import DEFAULT_ROWS
from repro.nn.inference import QuantizedNetwork


class MappingError(ValueError):
    """Raised when a network does not fit the targeted BRAM resources."""


def layer_group(layer_index: int) -> str:
    """Group tag used for all logical BRAMs of one layer."""
    return f"layer{layer_index}"


@dataclass(frozen=True)
class WeightSegment:
    """One BRAM-sized slice of a layer's flat weight-word array."""

    layer_index: int
    segment_index: int
    logical_name: str
    word_offset: int
    n_words: int

    def word_slice(self) -> slice:
        """Slice of the layer's flat word array covered by this segment."""
        return slice(self.word_offset, self.word_offset + self.n_words)


@dataclass
class WeightMapping:
    """Logical BRAM layout of a quantized network's weights."""

    network: QuantizedNetwork
    words_per_bram: int = DEFAULT_ROWS
    segments: List[WeightSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.words_per_bram <= 0:
            raise MappingError("words_per_bram must be positive")
        if not self.segments:
            self._build()

    def _build(self) -> None:
        for layer in self.network.layers:
            flat = layer.flat_words()
            n_segments = max(1, math.ceil(flat.size / self.words_per_bram))
            for seg in range(n_segments):
                offset = seg * self.words_per_bram
                n_words = min(self.words_per_bram, flat.size - offset)
                if n_words <= 0:
                    break
                self.segments.append(
                    WeightSegment(
                        layer_index=layer.index,
                        segment_index=seg,
                        logical_name=f"layer{layer.index}_w{seg:03d}",
                        word_offset=offset,
                        n_words=int(n_words),
                    )
                )

    # ------------------------------------------------------------------
    @property
    def n_logical_brams(self) -> int:
        """Total logical BRAM blocks needed by the weights."""
        return len(self.segments)

    def segments_of_layer(self, layer_index: int) -> List[WeightSegment]:
        """Segments (logical BRAMs) holding one layer's weights."""
        return [seg for seg in self.segments if seg.layer_index == layer_index]

    def brams_per_layer(self) -> Dict[int, int]:
        """Number of logical BRAMs per layer (the "size" series of Fig. 13)."""
        counts: Dict[int, int] = {}
        for seg in self.segments:
            counts[seg.layer_index] = counts.get(seg.layer_index, 0) + 1
        return counts

    def logical_names_of_layer(self, layer_index: int) -> List[str]:
        """Logical block names of one layer, in storage order."""
        return [seg.logical_name for seg in self.segments_of_layer(layer_index)]

    def segment_by_name(self, logical_name: str) -> WeightSegment:
        """Look up a segment by its logical block name."""
        for seg in self.segments:
            if seg.logical_name == logical_name:
                return seg
        raise MappingError(f"no weight segment named {logical_name!r}")

    def words_for_segment(self, segment: WeightSegment) -> np.ndarray:
        """Current weight words stored in one segment."""
        layer = self.network.layer(segment.layer_index)
        return layer.flat_words()[segment.word_slice()].copy()

    # ------------------------------------------------------------------
    def build_design(
        self,
        name: str = "nn-accelerator",
        dsp_used: int = 240,
        ff_used: int = 11_500,
        lut_used: int = 29_700,
        frequency_mhz: float = 100.0,
    ) -> Design:
        """The accelerator design: weight BRAMs plus datapath resources.

        The default DSP/FF/LUT figures reproduce the Table III utilization of
        the VC707 synthesis (8.6 % DSP, 3.8 % FF, 4.9 % LUT); callers targeting
        other devices can pass their own numbers.
        """
        design = Design(
            name=name,
            dsp_used=dsp_used,
            ff_used=ff_used,
            lut_used=lut_used,
            frequency_mhz=frequency_mhz,
        )
        for seg in self.segments:
            design.add_bram(seg.logical_name, group=layer_group(seg.layer_index))
        return design

    def bram_utilization_fraction(self, total_brams: int) -> float:
        """Fraction of the device BRAMs used by the weights (Table III: 70.8 %)."""
        if total_brams <= 0:
            raise MappingError("total_brams must be positive")
        if self.n_logical_brams > total_brams:
            raise MappingError(
                f"design needs {self.n_logical_brams} BRAMs but device only has {total_brams}"
            )
        return self.n_logical_brams / total_brams
