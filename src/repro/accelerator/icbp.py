"""Intelligently-Constrained BRAM Placement (ICBP) — the paper's mitigation.

ICBP (Section III-C, Fig. 12b) is an extra constraint added to the FPGA
placement stage.  It rests on two observations:

1. undervolting faults are deterministic and chip-dependent, so a
   pre-extracted Fault Variation Map tells which physical BRAMs are
   low-vulnerable;
2. NN layers differ in fault sensitivity — the last (smallest) layer is by
   far the most sensitive — so protecting a handful of BRAMs protects most of
   the accuracy.

The flow therefore constrains the logical BRAMs of the most sensitive layer
to physical BRAMs classified as low-vulnerable (using Vivado's Pblock
facility on hardware, :class:`repro.fpga.pblock.Pblock` here), leaves the
rest of the placement untouched, and pays essentially no timing, area or
power overhead.

Beyond the paper's last-layer policy, the reproduction also implements a
vulnerability-ordered policy (protect layers in decreasing sensitivity until
the low-vulnerable BRAMs run out) as the ablation benchmarks/bench_ablation_icbp_policies.py studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import OperatingGrid, cached_fault_field, voltage_ladder
from repro.core.faultmodel import FaultField
from repro.core.fvm import FaultVariationMap
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.pblock import ConstraintSet, Pblock
from repro.fpga.platform import FpgaChip
from repro.nn.datasets import Dataset
from repro.nn.inference import QuantizedNetwork

from .accelerator import NnAccelerator
from .mapping import WeightMapping
from .power import AcceleratorPowerModel
from .vulnerability import VulnerabilityReport, analyze_layer_vulnerability


class IcbpError(RuntimeError):
    """Raised when the ICBP constraints cannot be satisfied."""


class PlacementPolicy(Enum):
    """Which layers ICBP steers into low-vulnerable BRAMs."""

    #: Unconstrained placement — the paper's "default placement" baseline.
    DEFAULT = "default"
    #: The paper's policy: protect only the last (most sensitive) layer.
    LAST_LAYER = "last_layer"
    #: Extension: protect layers in decreasing vulnerability while the
    #: low-vulnerable BRAM budget lasts.
    VULNERABILITY_ORDERED = "vulnerability_ordered"


@dataclass(frozen=True)
class IcbpEvaluation:
    """Accuracy and power outcome of one placement policy at one voltage."""

    policy: PlacementPolicy
    voltage_v: float
    baseline_error: float
    classification_error: float
    protected_layers: Tuple[int, ...]
    power_savings_vs_vmin: float

    @property
    def accuracy_loss(self) -> float:
        """Error increase over the fault-free baseline (the Fig. 14 metric)."""
        return max(0.0, self.classification_error - self.baseline_error)


@dataclass
class IcbpFlow:
    """End-to-end ICBP flow for one chip + network + dataset combination.

    Parameters
    ----------
    chip:
        Target board.
    network:
        Quantized network whose weights will live in BRAMs.
    dataset:
        Benchmark providing the inference inputs/labels.
    fault_field:
        Calibrated fault model of the chip; shared by the FVM extraction and
        the accelerator evaluation so "pre-process" and "deployment" see the
        same die.
    fvm:
        Pre-extracted Fault Variation Map; extracted from the fault field if
        not supplied.
    """

    chip: FpgaChip
    network: QuantizedNetwork
    dataset: Dataset
    fault_field: Optional[FaultField] = None
    fvm: Optional[FaultVariationMap] = None
    vulnerability: Optional[VulnerabilityReport] = None
    compile_seed: int = 0
    max_eval_samples: Optional[int] = 1000

    def __post_init__(self) -> None:
        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)

    # ------------------------------------------------------------------
    # Pre-processing stages (Fig. 12b, left side)
    # ------------------------------------------------------------------
    def extract_fvm(self) -> FaultVariationMap:
        """Extract (or return the cached) Fault Variation Map of the chip."""
        if self.fvm is None:
            cal = self.fault_field.calibration
            voltages = [
                round(v, 4)
                for v in voltage_ladder(cal.vmin_bram_v, cal.vcrash_bram_v, 0.010)
            ]
            grid = OperatingGrid.from_axes(voltages)
            matrix = self.fault_field.batch.per_bram_counts(grid)[:, 0, 0, :]
            self.fvm = FaultVariationMap.from_matrix(
                platform=self.chip.name,
                floorplan=self.chip.floorplan,
                voltages_v=voltages,
                counts=matrix,
                bram_bits=self.chip.spec.bram_rows * self.chip.spec.bram_cols,
            )
        return self.fvm

    def analyze_vulnerability(self) -> VulnerabilityReport:
        """Run (or return the cached) per-layer sensitivity analysis."""
        if self.vulnerability is None:
            self.vulnerability = analyze_layer_vulnerability(
                self.network, self.dataset, max_samples=self.max_eval_samples
            )
        return self.vulnerability

    # ------------------------------------------------------------------
    # Constraint construction
    # ------------------------------------------------------------------
    def _protected_layers(self, policy: PlacementPolicy, mapping: WeightMapping) -> List[int]:
        if policy is PlacementPolicy.DEFAULT:
            return []
        if policy is PlacementPolicy.LAST_LAYER:
            return [self.network.n_weight_layers - 1]
        report = self.analyze_vulnerability()
        return report.most_vulnerable_first()

    def build_constraints(
        self, policy: PlacementPolicy = PlacementPolicy.LAST_LAYER
    ) -> Tuple[Optional[ConstraintSet], Tuple[int, ...]]:
        """Build the Pblock constraint set for one policy.

        Returns the constraint set (``None`` for the default policy) and the
        tuple of layer indices that ended up protected.
        """
        mapping = WeightMapping(self.network)
        ordered_layers = self._protected_layers(policy, mapping)
        if not ordered_layers:
            return None, ()

        fvm = self.extract_fvm()
        safe_sites = list(fvm.vulnerability_rank())  # least vulnerable first
        fault_free = set(fvm.fault_free_brams())
        low_class = set(fvm.low_vulnerable_brams())
        allowed_pool = [site for site in safe_sites if site in fault_free or site in low_class]

        constraints = ConstraintSet()
        protected: List[int] = []
        cursor = 0
        for layer_index in ordered_layers:
            names = mapping.logical_names_of_layer(layer_index)
            remaining = len(allowed_pool) - cursor
            if remaining < len(names):
                break  # out of low-vulnerable BRAMs; stop protecting further layers
            sites = allowed_pool[cursor : cursor + len(names)]
            cursor += len(names)
            constraints.add(
                Pblock.from_sites(
                    name=f"icbp_layer{layer_index}",
                    sites=sites,
                    blocks=names,
                )
            )
            protected.append(layer_index)
        if not protected:
            raise IcbpError(
                "the FVM does not contain enough low-vulnerable BRAMs to protect "
                "even the most sensitive layer"
            )
        return constraints, tuple(protected)

    # ------------------------------------------------------------------
    # Evaluation (Fig. 14)
    # ------------------------------------------------------------------
    def build_accelerator(
        self,
        policy: PlacementPolicy = PlacementPolicy.LAST_LAYER,
        compile_seed: Optional[int] = None,
    ) -> Tuple[NnAccelerator, Tuple[int, ...]]:
        """Compile the accelerator under one placement policy.

        ``compile_seed`` selects the place-and-route run; different seeds
        scatter the unconstrained logical BRAMs over different physical sites,
        exactly as recompiling the design does on hardware.
        """
        constraints, protected = self.build_constraints(policy)
        accelerator = NnAccelerator(
            chip=self.chip,
            network=self.network,
            fault_field=self.fault_field,
            constraints=constraints,
            compile_seed=self.compile_seed if compile_seed is None else compile_seed,
        )
        return accelerator, protected

    def _eval_inputs(self) -> Tuple[np.ndarray, np.ndarray]:
        inputs = self.dataset.test_inputs
        labels = self.dataset.test_labels
        if self.max_eval_samples is not None and len(labels) > self.max_eval_samples:
            inputs = inputs[: self.max_eval_samples]
            labels = labels[: self.max_eval_samples]
        return inputs, labels

    def evaluate(
        self,
        policy: PlacementPolicy = PlacementPolicy.LAST_LAYER,
        voltage_v: Optional[float] = None,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        compile_seeds: Sequence[int] = (0,),
        aggregate: str = "mean",
    ) -> IcbpEvaluation:
        """Measure accuracy loss and power savings for one policy at one voltage.

        The accuracy is aggregated over the given place-and-route seeds: the
        paper measures one board with one compilation, but in the reproduction
        the default placement's accuracy loss depends on which physical BRAMs
        the sensitive layers happen to land on.  ``aggregate="mean"`` gives the
        representative number over compilations; ``aggregate="max"`` gives the
        unlucky-compilation analogue of the measured board (ICBP's result is
        essentially seed-independent either way, which is the point of the
        technique).
        """
        if not compile_seeds:
            raise IcbpError("at least one compile seed is required")
        if aggregate not in ("mean", "max"):
            raise IcbpError(f"unknown aggregate {aggregate!r}; expected 'mean' or 'max'")
        cal = self.fault_field.calibration
        voltage = cal.vcrash_bram_v if voltage_v is None else voltage_v
        inputs, labels = self._eval_inputs()
        errors: List[float] = []
        baseline = 0.0
        protected: Tuple[int, ...] = ()
        for seed in compile_seeds:
            accelerator, protected = self.build_accelerator(policy, compile_seed=seed)
            baseline = accelerator.baseline_error(inputs, labels)
            errors.append(
                accelerator.classification_error_at(
                    voltage, inputs, labels, temperature_c=temperature_c
                )
            )
        mapping = WeightMapping(self.network)
        power = AcceleratorPowerModel(
            chip=self.chip,
            bram_utilization=mapping.bram_utilization_fraction(self.chip.spec.n_brams),
        )
        savings = power.bram_savings_between(cal.vmin_bram_v, voltage)
        aggregated = float(np.mean(errors)) if aggregate == "mean" else float(np.max(errors))
        return IcbpEvaluation(
            policy=policy,
            voltage_v=voltage,
            baseline_error=baseline,
            classification_error=aggregated,
            protected_layers=protected,
            power_savings_vs_vmin=savings,
        )

    def compare_policies(
        self,
        voltage_v: Optional[float] = None,
        policies: Sequence[PlacementPolicy] = (
            PlacementPolicy.DEFAULT,
            PlacementPolicy.LAST_LAYER,
        ),
        compile_seeds: Sequence[int] = (0,),
        aggregate: str = "mean",
    ) -> Dict[PlacementPolicy, IcbpEvaluation]:
        """Evaluate several placement policies at the same operating point."""
        return {
            policy: self.evaluate(
                policy, voltage_v, compile_seeds=compile_seeds, aggregate=aggregate
            )
            for policy in policies
        }
