"""On-chip power breakdown of the NN accelerator (Fig. 10).

Fig. 10 shows the accelerator's total on-chip power at ``Vnom``, ``Vmin`` and
``Vcrash``, broken into the BRAM share and the rest (clocking, DSPs, LUTs,
routing).  The headline numbers: lowering only ``VCCBRAM`` to ``Vmin``
removes more than an order of magnitude of BRAM power, which is a **24.1 %**
total on-chip reduction; continuing to ``Vcrash`` saves a further ~40 % of
the (already small) BRAM power.

The breakdown here uses the calibrated BRAM rail model of
:mod:`repro.core.power` for the BRAM component and holds the other components
constant (their rail, ``VCCINT``, stays at nominal in the case study).  The
nominal BRAM share is set so the published 24.1 % total reduction at ``Vmin``
is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.calibration import PlatformCalibration, get_calibration
from repro.core.power import RailPowerModel, bram_power_model
from repro.fpga.platform import FpgaChip

#: Fraction of the accelerator's on-chip power drawn by BRAMs at nominal
#: voltage.  Chosen so that removing ~92 % of the BRAM power (the calibrated
#: >10x reduction at Vmin) cuts total on-chip power by the published 24.1 %.
DEFAULT_BRAM_SHARE_AT_NOMINAL = 0.262

#: Relative split of the non-BRAM on-chip power (XPE-style categories).
DEFAULT_REST_SPLIT = {
    "clocking": 0.28,
    "dsp": 0.22,
    "logic_routing": 0.36,
    "io_other": 0.14,
}


class AcceleratorPowerError(ValueError):
    """Raised for inconsistent power-breakdown configurations."""


@dataclass
class AcceleratorPowerModel:
    """On-chip power of the NN accelerator as a function of VCCBRAM.

    Parameters
    ----------
    chip:
        Target board (sets the calibrated BRAM rail behaviour).
    bram_utilization:
        Fraction of device BRAMs used by the design (70.8 % in Table III).
    total_on_chip_nominal_w:
        Total on-chip power at nominal voltage.  Only sets the absolute scale
        of reported watts; all of the paper's claims are relative.
    bram_share_at_nominal:
        BRAM fraction of the on-chip total at nominal voltage.
    """

    chip: FpgaChip
    bram_utilization: float = 0.708
    total_on_chip_nominal_w: float = 10.0
    bram_share_at_nominal: float = DEFAULT_BRAM_SHARE_AT_NOMINAL
    rest_split: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_REST_SPLIT))
    calibration: Optional[PlatformCalibration] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bram_share_at_nominal < 1.0:
            raise AcceleratorPowerError("bram_share_at_nominal must be in (0, 1)")
        if not 0.0 < self.bram_utilization <= 1.0:
            raise AcceleratorPowerError("bram_utilization must be in (0, 1]")
        if self.total_on_chip_nominal_w <= 0:
            raise AcceleratorPowerError("total power must be positive")
        split_total = sum(self.rest_split.values())
        if abs(split_total - 1.0) > 1e-6:
            raise AcceleratorPowerError("rest_split fractions must sum to 1")
        if self.calibration is None:
            self.calibration = get_calibration(self.chip.spec)
        # Re-scale the calibrated rail model so that, at this design's BRAM
        # utilization, the nominal BRAM power equals the requested share of
        # the on-chip total.
        base_model = bram_power_model(self.calibration)
        target_nominal = self.bram_share_at_nominal * self.total_on_chip_nominal_w
        scale = target_nominal / base_model.power_w(self.calibration.vnom_v, self.bram_utilization)
        self._bram_model = RailPowerModel(
            nominal_power_w=base_model.nominal_power_w * scale,
            nominal_voltage_v=base_model.nominal_voltage_v,
            gamma_per_v=base_model.gamma_per_v,
            static_fraction=base_model.static_fraction,
        )

    # ------------------------------------------------------------------
    def bram_power_w(self, vccbram_v: float) -> float:
        """BRAM component of the on-chip power at one VCCBRAM value."""
        return self._bram_model.power_w(vccbram_v, utilization=self.bram_utilization)

    def rest_power_w(self) -> float:
        """Non-BRAM on-chip power (unchanged by VCCBRAM underscaling)."""
        return self.total_on_chip_nominal_w * (1.0 - self.bram_share_at_nominal)

    def breakdown_w(self, vccbram_v: float) -> Dict[str, float]:
        """Component breakdown at one VCCBRAM value (Fig. 10's stacked bar)."""
        rest = self.rest_power_w()
        breakdown = {name: fraction * rest for name, fraction in self.rest_split.items()}
        breakdown["bram"] = self.bram_power_w(vccbram_v)
        return breakdown

    def total_w(self, vccbram_v: float) -> float:
        """Total on-chip power at one VCCBRAM value."""
        return sum(self.breakdown_w(vccbram_v).values())

    def total_reduction_fraction(self, vccbram_v: float) -> float:
        """Total on-chip power saved relative to nominal (24.1 % at Vmin)."""
        nominal = self.total_w(self.calibration.vnom_v)
        return (nominal - self.total_w(vccbram_v)) / nominal

    def bram_reduction_factor(self, vccbram_v: float) -> float:
        """How many times less BRAM power than at nominal voltage."""
        return self._bram_model.reduction_factor(
            self.calibration.vnom_v, vccbram_v, utilization=self.bram_utilization
        )

    def bram_savings_between(self, from_v: float, to_v: float) -> float:
        """Fractional BRAM power saved between two voltages (Vmin -> Vcrash: ~40 %)."""
        return self._bram_model.savings_fraction(from_v, to_v, utilization=self.bram_utilization)

    def figure10_rows(self) -> Dict[str, Dict[str, float]]:
        """The three Fig. 10 operating points with their breakdowns."""
        cal = self.calibration
        return {
            "Vnom": self.breakdown_w(cal.vnom_v),
            "Vmin": self.breakdown_w(cal.vmin_bram_v),
            "Vcrash": self.breakdown_w(cal.vcrash_bram_v),
        }
