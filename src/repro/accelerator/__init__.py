"""FPGA-based NN accelerator case study and the ICBP mitigation.

Implements Section III of the paper: mapping quantized weights onto BRAMs,
running inference with those BRAMs undervolted, the on-chip power breakdown,
the per-layer vulnerability analysis, and the Intelligently-Constrained BRAM
Placement (ICBP) technique that recovers the accuracy lost below ``Vmin``.
"""

from .accelerator import AcceleratorError, ErrorSweepPoint, NnAccelerator, mean_error_sweep
from .icbp import IcbpError, IcbpEvaluation, IcbpFlow, PlacementPolicy
from .mapping import MappingError, WeightMapping, WeightSegment, layer_group
from .power import (
    AcceleratorPowerError,
    AcceleratorPowerModel,
    DEFAULT_BRAM_SHARE_AT_NOMINAL,
    DEFAULT_REST_SPLIT,
)
from .vulnerability import (
    LayerVulnerability,
    VulnerabilityError,
    VulnerabilityReport,
    analyze_layer_vulnerability,
    inject_layer_faults,
)

__all__ = [
    "AcceleratorError",
    "AcceleratorPowerError",
    "AcceleratorPowerModel",
    "DEFAULT_BRAM_SHARE_AT_NOMINAL",
    "DEFAULT_REST_SPLIT",
    "ErrorSweepPoint",
    "IcbpError",
    "IcbpEvaluation",
    "IcbpFlow",
    "LayerVulnerability",
    "MappingError",
    "NnAccelerator",
    "PlacementPolicy",
    "VulnerabilityError",
    "VulnerabilityReport",
    "WeightMapping",
    "WeightSegment",
    "analyze_layer_vulnerability",
    "inject_layer_faults",
    "layer_group",
    "mean_error_sweep",
]
