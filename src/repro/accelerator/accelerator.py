"""The FPGA-based NN accelerator operated with undervolted BRAMs.

This module ties everything together for the paper's case study
(Section III): a quantized network whose weight words are mapped onto
physical BRAMs of a chip, a fault field that corrupts those words when
``VCCBRAM`` drops below ``Vmin``, and the classification-error measurements
of Fig. 11 (error versus voltage) and Fig. 13 (faults per layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.batch import cached_fault_field
from repro.core.faultmodel import FaultField
from repro.core.temperature import REFERENCE_TEMPERATURE_C
from repro.fpga.bitstream import Bitstream, compile_design
from repro.fpga.pblock import ConstraintSet
from repro.fpga.placer import Placement
from repro.fpga.platform import FpgaChip
from repro.fpga.resources import ResourceBudget, Utilization
from repro.nn.datasets import Dataset
from repro.nn.inference import QuantizedNetwork

from .mapping import WeightMapping


class AcceleratorError(RuntimeError):
    """Raised for inconsistent accelerator configurations."""


@dataclass(frozen=True)
class ErrorSweepPoint:
    """Classification error and fault statistics at one VCCBRAM value (Fig. 11)."""

    voltage_v: float
    classification_error: float
    weight_faults: int
    fault_rate_per_mbit: float


@dataclass
class NnAccelerator:
    """A quantized NN whose weights live in the BRAMs of one chip.

    Parameters
    ----------
    chip:
        Target FPGA board.
    network:
        Quantized network to accelerate; the clean words are kept pristine and
        corrupted copies are produced per operating point.
    fault_field:
        Undervolting fault model; defaults to the calibrated field.
    constraints:
        Optional Pblock constraints (this is how ICBP plugs in).
    compile_seed:
        Seed of the default placement order, i.e. "which place-and-route run".
    """

    chip: FpgaChip
    network: QuantizedNetwork
    fault_field: Optional[FaultField] = None
    constraints: Optional[ConstraintSet] = None
    compile_seed: int = 0
    #: Datapath resources; ``None`` reproduces the Table III utilization
    #: percentages (8.6 % DSP, 3.8 % FF, 4.9 % LUT) on whatever device is used.
    dsp_used: Optional[int] = None
    ff_used: Optional[int] = None
    lut_used: Optional[int] = None
    mapping: WeightMapping = field(default=None, repr=False)  # type: ignore[assignment]
    bitstream: Bitstream = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fault_field is None:
            self.fault_field = cached_fault_field(self.chip)
        if self.dsp_used is None:
            self.dsp_used = int(round(0.086 * self.chip.spec.n_dsps))
        if self.ff_used is None:
            self.ff_used = int(round(0.038 * self.chip.spec.n_ffs))
        if self.lut_used is None:
            self.lut_used = int(round(0.049 * self.chip.spec.n_luts))
        if self.mapping is None:
            self.mapping = WeightMapping(self.network)
        if self.mapping.n_logical_brams > self.chip.spec.n_brams:
            raise AcceleratorError(
                f"{self.mapping.n_logical_brams} weight BRAMs do not fit on "
                f"{self.chip.name} ({self.chip.spec.n_brams} BRAMs); the paper "
                "reloads weights from DDR-3 on such boards — use a smaller topology"
            )
        if self.bitstream is None:
            design = self.mapping.build_design(
                dsp_used=self.dsp_used, ff_used=self.ff_used, lut_used=self.lut_used
            )
            self.bitstream = compile_design(
                design, self.chip, constraints=self.constraints, seed=self.compile_seed
            )

    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        """Logical-BRAM to physical-BRAM assignment of the compiled design."""
        return self.bitstream.placement

    @property
    def calibration(self):
        """Calibration of the underlying fault field."""
        return self.fault_field.calibration

    def utilization(self) -> Utilization:
        """Device utilization of the compiled design (Table III)."""
        budget = ResourceBudget.from_platform(self.chip.spec)
        return self.bitstream.design.utilization_on(budget)

    def physical_bram_of(self, logical_name: str) -> int:
        """Physical BRAM index holding one logical weight block."""
        return self.placement.site_of(logical_name)

    def layer_physical_brams(self, layer_index: int) -> List[int]:
        """Physical BRAM indices holding one layer's weights."""
        return [
            self.placement.site_of(name)
            for name in self.mapping.logical_names_of_layer(layer_index)
        ]

    # ------------------------------------------------------------------
    # Fault injection through the BRAM fault field
    # ------------------------------------------------------------------
    def faulty_network(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> QuantizedNetwork:
        """The network as the datapath sees it at a given operating point.

        Every weight segment is corrupted by the fault profile of the physical
        BRAM it is placed on; above ``Vmin`` this returns an exact copy.
        """
        corrupted = self.network.copy()
        for layer in corrupted.layers:
            flat = layer.flat_words()
            for segment in self.mapping.segments_of_layer(layer.index):
                physical = self.placement.site_of(segment.logical_name)
                words = flat[segment.word_slice()]
                flipped = self.fault_field.corrupt_words(
                    physical,
                    words,
                    vccbram_v,
                    start_row=0,
                    temperature_c=temperature_c,
                    run_index=run_index,
                )
                flat[segment.word_slice()] = np.asarray(flipped, dtype=np.uint32)
            layer.set_flat_words(flat)
        return corrupted

    def count_weight_faults(
        self,
        vccbram_v: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> Dict[int, int]:
        """Number of flipped weight bits per layer at an operating point (Fig. 13)."""
        corrupted = self.faulty_network(vccbram_v, temperature_c, run_index)
        per_layer: Dict[int, int] = {}
        for clean, faulty in zip(self.network.layers, corrupted.layers):
            diff = clean.weight_words ^ faulty.weight_words
            flipped_bits = 0
            for bit in range(clean.fmt.total_bits):
                flipped_bits += int(((diff >> bit) & 1).sum())
            per_layer[clean.index] = flipped_bits
        return per_layer

    # ------------------------------------------------------------------
    # Accuracy measurements
    # ------------------------------------------------------------------
    def classification_error_at(
        self,
        vccbram_v: float,
        inputs: np.ndarray,
        labels: np.ndarray,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        run_index: Optional[int] = None,
    ) -> float:
        """Classification error with the BRAMs at ``vccbram_v`` (one point of Fig. 11)."""
        network = self.faulty_network(vccbram_v, temperature_c, run_index)
        return network.classification_error(inputs, labels)

    def baseline_error(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Inherent (fault-free) classification error of the quantized network."""
        return self.network.classification_error(inputs, labels)

    def error_sweep(
        self,
        voltages_v: Sequence[float],
        inputs: np.ndarray,
        labels: np.ndarray,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> List[ErrorSweepPoint]:
        """Classification error versus VCCBRAM (the full Fig. 11 curve)."""
        points: List[ErrorSweepPoint] = []
        for voltage in voltages_v:
            faults = self.count_weight_faults(voltage, temperature_c)
            total_faults = sum(faults.values())
            error = self.classification_error_at(voltage, inputs, labels, temperature_c)
            points.append(
                ErrorSweepPoint(
                    voltage_v=float(voltage),
                    classification_error=error,
                    weight_faults=total_faults,
                    fault_rate_per_mbit=total_faults / self.chip.brams.total_mbits,
                )
            )
        return points

    def evaluate_on(self, dataset: Dataset, voltages_v: Sequence[float]) -> List[ErrorSweepPoint]:
        """Convenience wrapper running :meth:`error_sweep` on a dataset's test split."""
        return self.error_sweep(voltages_v, dataset.test_inputs, dataset.test_labels)


def mean_error_sweep(
    chip: FpgaChip,
    network: QuantizedNetwork,
    dataset: Dataset,
    voltages_v: Sequence[float],
    compile_seeds: Sequence[int] = (0, 1, 2),
    fault_field: Optional[FaultField] = None,
    constraints: Optional[ConstraintSet] = None,
    max_samples: Optional[int] = None,
) -> List[ErrorSweepPoint]:
    """Error-versus-voltage curve averaged over several place-and-route runs.

    The paper's Fig. 11 comes from one board and one compilation; in the
    reproduction the accuracy loss of the *default* placement depends on which
    physical BRAMs the sensitive layers land on, so averaging a few
    compilations gives the representative curve.  The fault counts are
    identical across seeds (the chip's fault population does not depend on the
    placement), so only the classification error is averaged.
    """
    if not compile_seeds:
        raise AcceleratorError("at least one compile seed is required")
    if fault_field is None:
        fault_field = cached_fault_field(chip)
    inputs = dataset.test_inputs
    labels = dataset.test_labels
    if max_samples is not None and len(labels) > max_samples:
        inputs = inputs[:max_samples]
        labels = labels[:max_samples]

    per_seed_points: List[List[ErrorSweepPoint]] = []
    for seed in compile_seeds:
        accelerator = NnAccelerator(
            chip=chip,
            network=network,
            fault_field=fault_field,
            constraints=constraints,
            compile_seed=seed,
        )
        per_seed_points.append(accelerator.error_sweep(voltages_v, inputs, labels))

    averaged: List[ErrorSweepPoint] = []
    for index, voltage in enumerate(voltages_v):
        errors = [points[index].classification_error for points in per_seed_points]
        reference = per_seed_points[0][index]
        averaged.append(
            ErrorSweepPoint(
                voltage_v=float(voltage),
                classification_error=float(np.mean(errors)),
                weight_faults=reference.weight_faults,
                fault_rate_per_mbit=reference.fault_rate_per_mbit,
            )
        )
    return averaged
