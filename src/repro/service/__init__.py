"""Characterization-as-a-service: the fleet's runtime query API.

The offline layers of this reproduction end in artifacts — campaign stores,
governor bundles, eval caches.  This package is the piece a deployment
would actually run against them: a long-lived asyncio HTTP/JSON server
(:class:`FleetService` behind :class:`ServiceApp`) answering per-die
guardband lookups, governor-bundle fetches, FVM statistics and similarity,
and "safe Vmin for serial X at temperature T now" — with engine-backed
queries coalesced so identical concurrent requests cost one backend
computation, and ``/stats`` telemetry proving it.

Start one from the CLI::

    repro-undervolt serve --store fleet16 --root campaigns/ --port 8080

or in-process (tests, benchmarks) via
:class:`repro.service.background.BackgroundServer`.  Everything is stdlib
``asyncio`` — the server adds no dependencies.
"""

from .background import BackgroundServer
from .client import ClientError, ServiceClient, fetch_json
from .http import (
    PROMETHEUS_CONTENT_TYPE,
    HttpError,
    HttpRequest,
    error_document,
    read_request,
    render_response,
    render_text_response,
)
from .service import (
    DEFAULT_ENGINE_WORKERS,
    DEFAULT_FVM_PATTERN,
    FleetService,
    ServiceApp,
    ServiceError,
    start_service,
)
from .stats import EndpointStats, ServiceStats

__all__ = [
    "BackgroundServer",
    "ClientError",
    "DEFAULT_ENGINE_WORKERS",
    "DEFAULT_FVM_PATTERN",
    "EndpointStats",
    "FleetService",
    "HttpError",
    "HttpRequest",
    "PROMETHEUS_CONTENT_TYPE",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ServiceStats",
    "error_document",
    "fetch_json",
    "read_request",
    "render_response",
    "render_text_response",
    "start_service",
]
