"""Characterization-as-a-service: the fleet query surface over ``repro.exec``.

A deployment that undervolts its BRAMs needs the offline pipeline's answers
*at runtime*: what is this die's guardband, what does its governor bundle
entry look like, how similar are two dies' fault maps, and — the question a
power-management daemon asks every control period — what voltage is safe
for serial X at temperature T *right now*.  :class:`FleetService` packages
those answers behind a small HTTP/JSON API, owning a per-die pool of
:class:`~repro.exec.ExecutionEngine` instances and one open characterization
bundle (built from a campaign store via :func:`repro.campaign.open_store`,
or loaded from an emitted ``governor_bundle.json``).

Two request classes, two execution paths:

* **table lookups** (``/v1/guardband``, ``/v1/safe-vmin``, ``/v1/bundle``,
  ``/v1/dies``) are pure functions of the bundle and run inline on the
  event loop — microseconds, never blocking;
* **engine-backed queries** (``/v1/fvm``, ``/v1/fvm-similarity``) sweep a
  die's critical region through its execution engine.  These are expensive,
  so they run on a worker-thread pool and are **coalesced**: concurrent
  identical queries share one in-flight computation (an
  :class:`asyncio.Future` per key), and the per-die
  :class:`~repro.search.EvalCache` plus an FVM object cache make repeats
  free.  The engines share one thread-safe
  :class:`~repro.exec.EngineCounters`, so ``/stats`` can prove the
  coalescing worked: backend evaluations stay far below request counts
  under duplicate load.

The HTTP layer itself lives in :mod:`repro.service.http`; per-endpoint
latency/QPS accounting in :mod:`repro.service.stats`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

import numpy as np

from repro import __version__
from repro.analysis.fleet import fvm_similarity
from repro.core.batch import voltage_ladder
from repro.core.calibration import get_calibration
from repro.core.fvm import FaultVariationMap
from repro.exec import FVM, EngineCounters, EvalRequest, ExecutionEngine, SimulatedBackend
from repro.fpga import FpgaChip
from repro.fpga.platform import platform_names
from repro.fpga.voltage import DEFAULT_STEP_V, VCCBRAM
from repro.obs import adapters as obs_adapters
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.runtime.characterization import (
    CharacterizationError,
    DieCharacterization,
    GovernorBundle,
)
from repro.runtime.governor import GovernorObservation, build_policy
from repro.search import EvalCache

from .http import (
    HttpError,
    HttpRequest,
    error_document,
    read_request,
    render_response,
    render_text_response,
)
from .stats import ServiceStats

#: Default worker threads for engine-backed queries.
DEFAULT_ENGINE_WORKERS = 4

#: Memory test pattern the service's FVM sweeps write (the paper's default).
DEFAULT_FVM_PATTERN = 0xFFFF


class ServiceError(Exception):
    """An endpoint-level failure with an HTTP status and stable error code.

    Same ``(status, code, message)`` shape as the protocol-level
    :class:`repro.service.http.HttpError`, so every error a client can see
    renders as the one structured JSON error document.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)

    def document(self) -> Dict[str, Any]:
        return error_document(self.status, self.code, self.message)


def _require(query: Dict[str, str], name: str) -> str:
    """A mandatory query parameter, or a 400 with a stable code."""
    value = query.get(name, "").strip()
    if not value:
        raise ServiceError(400, "missing-parameter", f"query parameter {name!r} is required")
    return value


def _float_param(query: Dict[str, str], name: str) -> float:
    """A mandatory finite float query parameter."""
    raw = _require(query, name)
    try:
        value = float(raw)
    except ValueError:
        raise ServiceError(
            400, "invalid-parameter", f"query parameter {name}={raw!r} is not a number"
        ) from None
    if not np.isfinite(value):
        raise ServiceError(400, "invalid-parameter", f"query parameter {name!r} must be finite")
    return value


class FleetService:
    """The query surface: one characterization bundle, one engine pool.

    Parameters
    ----------
    bundle:
        The fleet's :class:`~repro.runtime.characterization.GovernorBundle`.
    source:
        Where the fleet came from (campaign name or bundle path), surfaced
        in ``/stats``; defaults to the bundle's own ``source``.
    engine_workers:
        Worker threads for engine-backed queries (also the ceiling on
        concurrently computing dies).
    fvm_pattern:
        Memory test pattern the FVM sweeps write.
    batch:
        Whether per-die engines batch their misses into one backend
        crossing (the default; an FVM ladder becomes a single vectorized
        kernel call).  ``False`` evaluates request by request —
        bit-identical, kept for A/B verification.
    """

    def __init__(
        self,
        bundle: GovernorBundle,
        source: Optional[str] = None,
        engine_workers: int = DEFAULT_ENGINE_WORKERS,
        fvm_pattern: "str | int" = DEFAULT_FVM_PATTERN,
        batch: bool = True,
    ) -> None:
        if engine_workers < 1:
            raise ServiceError(500, "bad-config", "engine_workers must be at least 1")
        self.bundle = bundle
        self.source = source if source is not None else bundle.source
        self.fvm_pattern = fvm_pattern
        self.batch = batch
        #: One thread-safe counters object shared by every per-die engine —
        #: the fleet-wide backend telemetry ``/stats`` reports.
        self.counters = EngineCounters()
        self._policy = build_policy("predictive")
        self._engines: Dict[Tuple[str, str], ExecutionEngine] = {}
        self._fvms: Dict[Tuple[str, str], FaultVariationMap] = {}
        self._inflight: Dict[Tuple[str, ...], "asyncio.Future[Any]"] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=engine_workers, thread_name_prefix="fleet-service"
        )
        self.engine_workers = engine_workers

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_campaign(cls, name: str, root: "str | Path", **kwargs: Any) -> "FleetService":
        """Serve a completed guardband campaign's store."""
        from repro.campaign import open_store

        store = open_store(name, root)
        bundle = GovernorBundle.from_campaign(store)
        return cls(bundle, source=f"campaign:{name}", **kwargs)

    @classmethod
    def from_bundle_file(cls, path: "str | Path", **kwargs: Any) -> "FleetService":
        """Serve an emitted ``governor_bundle.json`` directly."""
        bundle = GovernorBundle.load(path)
        return cls(bundle, source=f"bundle:{path}", **kwargs)

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Die resolution
    # ------------------------------------------------------------------
    def resolve(self, platform: str, serial: str) -> DieCharacterization:
        """The characterization of one die, or a structured 404."""
        if platform not in platform_names():
            raise ServiceError(
                404,
                "unknown-platform",
                f"unknown platform {platform!r}; known: {', '.join(platform_names())}",
            )
        try:
            return self.bundle.get(platform, serial)
        except CharacterizationError as exc:
            raise ServiceError(404, "unknown-serial", str(exc)) from None

    def _engine(self, die: DieCharacterization) -> ExecutionEngine:
        """The die's lazily built engine (simulated backend + eval cache)."""
        engine = self._engines.get(die.chip_key)
        if engine is None:
            chip = FpgaChip.build(die.platform, serial=die.serial)
            engine = ExecutionEngine(
                SimulatedBackend(chip=chip),
                cache=EvalCache(platform=die.platform, serial=die.serial),
                counters=self.counters,
                batch=self.batch,
            )
            self._engines[die.chip_key] = engine
        return engine

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    async def _coalesced(self, key: Tuple[str, ...], compute: Callable[[], Any]) -> Any:
        """Run ``compute`` on the worker pool, sharing one in-flight
        computation among every concurrent caller with the same key.

        The first caller (the *leader*) dispatches the computation and
        publishes the outcome on a future; every later caller that arrives
        while the key is in flight (a *follower*) just awaits that future.
        This is what keeps N identical concurrent queries at exactly one
        backend computation.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            return await existing
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(self._executor, compute)
        except BaseException as exc:
            if isinstance(exc, Exception):
                future.set_exception(exc)
                future.exception()  # consumed here even with zero followers
            else:
                future.cancel()
            raise
        else:
            future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)

    async def fvm_for(self, platform: str, serial: str) -> FaultVariationMap:
        """The die's fault-variation map (cached after the first sweep)."""
        die = self.resolve(platform, serial)
        cached = self._fvms.get(die.chip_key)
        if cached is not None:
            return cached
        engine = self._engine(die)  # built on the loop; dict stays loop-owned
        fvm = await self._coalesced(
            ("fvm", die.platform, die.serial), lambda: self._compute_fvm(die, engine)
        )
        self._fvms[die.chip_key] = fvm
        return fvm

    def _compute_fvm(self, die: DieCharacterization, engine: ExecutionEngine) -> FaultVariationMap:
        """One full critical-region sweep through the die's engine.

        Runs on a worker thread; the coalescing key guarantees at most one
        computation per die is in flight, so the engine and its cache are
        touched from one thread at a time.
        """
        chip = engine.backend.chip
        calibration = get_calibration(chip.spec)
        voltages = voltage_ladder(
            calibration.vmin_bram_v, calibration.vcrash_bram_v, DEFAULT_STEP_V
        )
        points = engine.evaluate_many(
            [
                EvalRequest(
                    kind=FVM,
                    rail=VCCBRAM,
                    voltage_v=voltage,
                    temperature_c=die.reference_temperature_c,
                    pattern=self.fvm_pattern,
                    n_runs=0,
                )
                for voltage in voltages
            ]
        )
        matrix = np.empty((len(voltages), chip.spec.n_brams), dtype=np.int64)
        for index, point in enumerate(points):
            matrix[index, :] = point.per_bram_counts
        return FaultVariationMap.from_matrix(
            platform=chip.name,
            floorplan=chip.floorplan,
            voltages_v=list(voltages),
            counts=matrix,
            bram_bits=chip.spec.bram_rows * chip.spec.bram_cols,
        )

    # ------------------------------------------------------------------
    # Queries: table lookups (pure, inline)
    # ------------------------------------------------------------------
    def guardband(self, platform: str, serial: str) -> Dict[str, Any]:
        """The die's characterized thresholds and wasted-guardband fraction."""
        die = self.resolve(platform, serial)
        document = die.to_dict()
        document["guardband_fraction"] = die.guardband_fraction
        return document

    def bundle_document(
        self, platform: Optional[str] = None, serial: Optional[str] = None
    ) -> Dict[str, Any]:
        """The governor bundle — whole fleet, or one die's entry."""
        if platform is None and serial is None:
            return self.bundle.to_document()
        if platform is None or serial is None:
            raise ServiceError(
                400, "missing-parameter", "platform and serial must be given together"
            )
        return self.resolve(platform, serial).to_dict()

    def safe_vmin(self, platform: str, serial: str, temperature_c: float) -> Dict[str, Any]:
        """The predictive governor's setpoint for one die at one temperature.

        Exactly the arithmetic :class:`repro.runtime.governor.\
PredictiveItdPolicy` applies — ITD-compensated Vmin plus the six-sigma
        ripple margin, rounded up to the regulator resolution and clamped
        into the die's safe actuation window — so a daemon polling this
        endpoint commands the same voltages the in-process governor would.
        """
        die = self.resolve(platform, serial)
        observation = GovernorObservation(
            step=0,
            temperature_c=temperature_c,
            faults_last_step=0,
            setpoint_v=die.vnom_v,
        )
        safe_v = self._policy.target_voltage(die, observation)
        return {
            "platform": die.platform,
            "serial": die.serial,
            "temperature_c": temperature_c,
            "vnom_v": die.vnom_v,
            "vmin_v": die.vmin_v,
            "vcrash_v": die.vcrash_v,
            "compensated_vmin_v": die.compensated_vmin_v(temperature_c),
            "ripple_margin_v": die.ripple_margin_v,
            "safe_vmin_v": safe_v,
            "undervolt_fraction": (die.vnom_v - safe_v) / die.vnom_v,
        }

    def dies(self) -> Dict[str, Any]:
        """The fleet roster."""
        return {
            "n_dies": len(self.bundle),
            "dies": [
                {"platform": platform, "serial": serial}
                for platform, serial in self.bundle.chip_keys()
            ],
        }

    # ------------------------------------------------------------------
    # Queries: engine-backed (coalesced, worker pool)
    # ------------------------------------------------------------------
    async def fvm_statistics(self, platform: str, serial: str) -> Dict[str, Any]:
        """Fault-rate statistics of one die's FVM."""
        fvm = await self.fvm_for(platform, serial)
        return {
            "platform": platform,
            "serial": serial,
            "n_brams": fvm.n_brams,
            "statistics": fvm.statistics(),
        }

    async def similarity(self, platform: str, serial_a: str, serial_b: str) -> Dict[str, Any]:
        """Fig. 7-style pairwise FVM comparison of two same-platform dies."""
        if serial_a == serial_b:
            raise ServiceError(
                400, "invalid-parameter", "serial_a and serial_b must name different dies"
            )
        fvm_a, fvm_b = await asyncio.gather(
            self.fvm_for(platform, serial_a), self.fvm_for(platform, serial_b)
        )
        pair = fvm_similarity({serial_a: fvm_a, serial_b: fvm_b}, platform)[0]
        return pair.as_dict()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def backend_block(self) -> Dict[str, Any]:
        """The engine-pool telemetry block, mirroring the CLI's ``backend``
        blocks (kind/scheduler/jobs/source/counters) plus pool occupancy."""
        return {
            "kind": "simulated",
            "scheduler": "thread",
            "jobs": self.engine_workers,
            "source": self.source,
            "counters": self.counters.to_dict(),
            "n_engines": len(self._engines),
            "n_fvms_cached": len(self._fvms),
            "n_inflight": len(self._inflight),
        }


# ----------------------------------------------------------------------
# HTTP application
# ----------------------------------------------------------------------
Handler = Callable[[HttpRequest], "Awaitable[Dict[str, Any] | str]"]


class ServiceApp:
    """Routes HTTP requests onto a :class:`FleetService`."""

    def __init__(self, service: FleetService) -> None:
        self.service = service
        self.stats = ServiceStats()
        #: The app's own always-on registry behind ``/metrics`` —
        #: independent of the process-wide ``--obs-metrics`` switch, so a
        #: served fleet is always scrapable.  ``ServiceStats`` and the
        #: engine pool's shared counters stay the source of truth; the
        #: adapters mirror them in at render time, and only the latency
        #: histogram is instrumented directly (rings cannot rebuild
        #: bucketed history).
        self.registry = MetricsRegistry()
        obs_adapters.build_info(__version__, self.registry)
        obs_adapters.bind_service_stats(self.stats, self.registry)
        obs_adapters.bind_engine_counters(service.counters, self.registry)
        self._latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "Request handling latency, by endpoint.",
            ("endpoint",),
        )
        self._routes: Dict[str, Handler] = {
            "/healthz": self._handle_healthz,
            "/metrics": self._handle_metrics,
            "/stats": self._handle_stats,
            "/v1/dies": self._handle_dies,
            "/v1/guardband": self._handle_guardband,
            "/v1/bundle": self._handle_bundle,
            "/v1/safe-vmin": self._handle_safe_vmin,
            "/v1/fvm": self._handle_fvm,
            "/v1/fvm-similarity": self._handle_similarity,
        }

    @property
    def routes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._routes))

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: HttpRequest) -> Dict[str, Any]:
        return {
            "status": "ok",
            "n_dies": len(self.service.bundle),
            "version": __version__,
        }

    async def _handle_metrics(self, request: HttpRequest) -> str:
        # Returns Prometheus text, not JSON; dispatch/handle_connection
        # frame string payloads with render_text_response.
        return self.registry.render()

    async def _handle_stats(self, request: HttpRequest) -> Dict[str, Any]:
        return {
            "service": self.stats.to_dict(),
            "backend": self.service.backend_block(),
            "bundle": {
                "source": self.service.bundle.source,
                "spec_hash": self.service.bundle.spec_hash,
                "n_dies": len(self.service.bundle),
            },
        }

    async def _handle_dies(self, request: HttpRequest) -> Dict[str, Any]:
        return self.service.dies()

    async def _handle_guardband(self, request: HttpRequest) -> Dict[str, Any]:
        return self.service.guardband(
            _require(request.query, "platform"), _require(request.query, "serial")
        )

    async def _handle_bundle(self, request: HttpRequest) -> Dict[str, Any]:
        platform = request.query.get("platform", "").strip() or None
        serial = request.query.get("serial", "").strip() or None
        return self.service.bundle_document(platform, serial)

    async def _handle_safe_vmin(self, request: HttpRequest) -> Dict[str, Any]:
        return self.service.safe_vmin(
            _require(request.query, "platform"),
            _require(request.query, "serial"),
            _float_param(request.query, "temperature_c"),
        )

    async def _handle_fvm(self, request: HttpRequest) -> Dict[str, Any]:
        return await self.service.fvm_statistics(
            _require(request.query, "platform"), _require(request.query, "serial")
        )

    async def _handle_similarity(self, request: HttpRequest) -> Dict[str, Any]:
        return await self.service.similarity(
            _require(request.query, "platform"),
            _require(request.query, "serial_a"),
            _require(request.query, "serial_b"),
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: HttpRequest) -> "Tuple[int, Dict[str, Any] | str]":
        """Route one parsed request; always returns (status, document).

        The document is a JSON-serializable dict for every endpoint except
        ``/metrics``, whose handler returns the Prometheus exposition text
        as a plain string.
        """
        route = request.route.rstrip("/") or "/"
        handler = self._routes.get(route)
        endpoint = route if handler is not None else "<unknown>"
        started = time.monotonic()
        ok = False
        try:
            with obs_trace.span("service.request", endpoint=endpoint):
                if handler is None:
                    raise ServiceError(
                        404,
                        "unknown-route",
                        f"no endpoint {route!r}; available: {list(self.routes)}",
                    )
                if request.method != "GET":
                    raise ServiceError(
                        405, "method-not-allowed", f"{request.method} not allowed; use GET"
                    )
                document = await handler(request)
                ok = True
                return 200, document
        except ServiceError as exc:
            return exc.status, exc.document()
        except Exception as exc:  # the server must outlive any one request
            return 500, error_document(500, "internal-error", f"{type(exc).__name__}: {exc}")
        finally:
            elapsed = time.monotonic() - started
            self.stats.record(endpoint, elapsed, ok)
            self._latency.labels(endpoint=endpoint).observe(elapsed)

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (keep-alive loop)."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    # Protocol-level failure: answer once, then close — the
                    # stream position is no longer trustworthy.
                    writer.write(render_response(exc.status, exc.document(), keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, document = await self.dispatch(request)
                if isinstance(document, str):
                    payload = render_text_response(
                        status, document, keep_alive=request.keep_alive
                    )
                else:
                    payload = render_response(
                        status, document, keep_alive=request.keep_alive
                    )
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            return  # client went away mid-conversation; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancels handlers parked between requests; end
            # the task cleanly so the streams machinery has no orphaned
            # exception to complain about.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def start_service(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.base_events.Server":
    """Bind the app; ``port=0`` picks an ephemeral port (see the server's
    ``sockets[0].getsockname()`` for the actual one)."""
    return await asyncio.start_server(app.handle_connection, host=host, port=port)


__all__ = [
    "DEFAULT_ENGINE_WORKERS",
    "DEFAULT_FVM_PATTERN",
    "FleetService",
    "ServiceApp",
    "ServiceError",
    "start_service",
]
